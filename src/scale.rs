//! Workload-scale knobs shared by the examples.

/// Smallest key count [`keys_from_env`] returns: the examples index
/// into fixed relative positions of the keyset, which needs a minimal
/// dataset underneath.
pub const MIN_KEYS: usize = 1_000;

/// Resolve a key count: the `LI_KEYS` environment variable if set (and
/// parseable), else `default` — clamped to at least [`MIN_KEYS`].
///
/// All examples route their dataset size through this, so
/// `LI_KEYS=5000000 cargo run --release --example quickstart` scales an
/// example up (or down) without editing code — the same knob the
/// `repro` benchmark binary honors. Underscore separators are accepted
/// (`LI_KEYS=5_000_000`), matching `li_bench::resolve_keys`.
pub fn keys_from_env(default: usize) -> usize {
    let n = match std::env::var("LI_KEYS") {
        Ok(v) => v.trim().replace('_', "").parse().unwrap_or(default),
        Err(_) => default,
    };
    n.max(MIN_KEYS)
}
