//! # learned-indexes — facade crate
//!
//! Re-exports the whole workspace under one roof so examples, integration
//! tests and downstream users can write `use learned_indexes::...`.
//!
//! This workspace is a from-scratch Rust reproduction of
//! *"The Case for Learned Index Structures"* (Kraska, Beutel, Chi, Dean,
//! Polyzotis — SIGMOD 2018). See `README.md` for the tour, `DESIGN.md`
//! for the system inventory and `EXPERIMENTS.md` for paper-vs-measured
//! results.
//!
//! The three index families of the paper:
//!
//! * **Range indexes** (§2–3): [`rmi::Rmi`] — the Recursive Model Index —
//!   plus baselines in [`btree`].
//! * **Point indexes** (§4): [`hash::CdfHasher`] learned hash functions and
//!   the hash-map architectures of Appendices B/C.
//! * **Existence indexes** (§5): [`bloom::LearnedBloom`] and friends.
//!
//! The [`serve`] module is the production-facing layer on top: a
//! sharded, concurrently readable and writable serving index
//! ([`serve::ShardedIndex`], [`serve::WritableShard`], and the fully
//! sharded write path [`serve::ShardedWritable`] with dynamic shard
//! rebalancing) over the same `RangeIndex` vocabulary. The [`obs`]
//! module is the lock-free observability layer underneath it: striped
//! counters, log-linear latency histograms and the structural-event
//! trace ring that [`serve::ShardedWritable::metrics`] snapshots.

pub mod scale;

pub use li_bloom as bloom;
pub use li_btree as btree;
pub use li_core as rmi;
pub use li_data as data;
pub use li_hash as hash;
pub use li_index as index;
pub use li_models as models;
pub use li_obs as obs;
pub use li_serve as serve;

// The foundation vocabulary at the crate root: the shared key store,
// the common trait (with its batched lookup path), and predictions.
pub use li_index::{KeyStore, Prediction, RangeIndex};
