//! §3.1's Learning Index Framework in action: given data with an
//! unknown distribution, grid-search index configurations (learned and
//! B-Tree), measure real lookup latency, and pick a winner — optionally
//! under a memory budget.
//!
//! ```sh
//! cargo run --release --example index_synthesis
//! ```

use learned_indexes::data::Dataset;
use learned_indexes::models::FeatureMap;
use learned_indexes::rmi::{Lif, LifSpec, SearchStrategy, TopModel};

fn main() {
    run(learned_indexes::scale::keys_from_env(300_000));
}

/// The example body, parameterized by key count so the example smoke
/// tests (`tests/examples_smoke.rs`) can run it at tiny scale.
pub fn run(n: usize) {
    for ds in Dataset::ALL {
        let keyset = ds.generate(n, 5);
        println!("=== synthesizing an index for {} ===", ds.name());

        let spec = LifSpec {
            leaf_counts: vec![512, 2048],
            top_models: vec![
                TopModel::Linear,
                TopModel::Multivariate(FeatureMap::FULL),
                TopModel::Mlp {
                    hidden: 1,
                    width: 16,
                },
            ],
            searches: vec![
                SearchStrategy::ModelBiasedBinary,
                SearchStrategy::BiasedQuaternary,
            ],
            btree_pages: vec![64, 128, 256],
            size_budget: None,
            probe_queries: (n / 6).max(1_000),
            seed: 1,
        };
        let report = Lif::synthesize(keyset.keys(), &spec);

        println!(
            "  {:<45} {:>9} {:>10} {:>9}",
            "candidate", "ns/lookup", "size KB", "build ms"
        );
        for c in report.candidates.iter().take(6) {
            println!(
                "  {:<45} {:>9.0} {:>10.1} {:>9.1}",
                c.name,
                c.lookup_ns,
                c.size_bytes as f64 / 1024.0,
                c.build_ms
            );
        }
        println!("  … ({} candidates total)", report.candidates.len());
        println!("  fastest: {}\n", report.best().name);

        // Same search under a tight memory budget (64 KB).
        let budget_spec = LifSpec {
            size_budget: Some(64 * 1024),
            ..spec
        };
        let budget_report = Lif::synthesize(keyset.keys(), &budget_spec);
        println!(
            "  under a 64 KB budget: {} ({:.1} KB, {:.0} ns)\n",
            budget_report.best().name,
            budget_report.best().size_bytes as f64 / 1024.0,
            budget_report.best().lookup_ns
        );
    }
}
