//! Crash recovery: kill a process mid-write-burst and get every
//! acknowledged-durable write back.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```
//!
//! Snapshots make restarts warm (`warm_restart.rs` is that example),
//! but every write acknowledged *since* the last snapshot used to die
//! with the process. The WAL closes the gap, and this example proves
//! it the blunt way — with a real crash:
//!
//! 1. the parent re-executes itself as a **child** process;
//! 2. the child builds the serving tier, attaches a WAL
//!    (per-record `fsync`: every acknowledged write is durable),
//!    inserts a first burst, **saves a snapshot** (which truncates the
//!    log and stamps the snapshot LSN), inserts a second burst that
//!    only the log protects — then calls `std::process::abort()`;
//! 3. the parent observes the abnormal exit, runs
//!    `ShardedWritable::recover` on the dead child's files, and
//!    verifies every key from both bursts survived.
//!
//! The smoke-test entry point ([`run`]) exercises the same protocol
//! in-process (drop instead of abort, plus an injected torn tail), so
//! the example cannot rot.

use std::collections::BTreeSet;

use learned_indexes::data::Dataset;
use learned_indexes::serve::{ShardedWritable, ShardedWritableConfig, WalSyncPolicy};

const ROLE_VAR: &str = "LI_CRASH_ROLE";
const KEYS_VAR: &str = "LI_CRASH_KEYS";
const DIR_VAR: &str = "LI_CRASH_DIR";

/// The burst sizes around the snapshot: `BURST` acknowledged writes
/// land before the save (covered by the snapshot) and `BURST` after
/// (covered only by the log).
const BURST: usize = 500;

fn paths(dir: &std::path::Path) -> (std::path::PathBuf, std::path::PathBuf) {
    (dir.join("crash.lidx"), dir.join("crash.wal"))
}

/// The deterministic workload both processes can reconstruct: the base
/// keyset and the two insert bursts.
fn workload(n: usize) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let keyset = Dataset::Lognormal.generate(n, 42);
    let before = keyset.sample_missing(BURST, 11);
    let after = keyset.sample_missing(BURST, 13);
    (keyset.keys().to_vec(), before, after)
}

/// Child role: build, write durably, snapshot, write more, crash hard.
fn child(n: usize, dir: &std::path::Path) -> ! {
    let (base, before, after) = workload(n);
    let (snap, wal) = paths(dir);
    let sw = ShardedWritable::new(base, 4, ShardedWritableConfig::default());
    sw.enable_wal(&wal, WalSyncPolicy::PerRecord)
        .expect("enable_wal");
    for &k in &before {
        sw.insert(k);
    }
    // The checkpoint: the snapshot now covers the first burst, and the
    // log is truncated under the same lock — no record is covered
    // twice, none is dropped.
    sw.save(&snap).expect("save");
    for &k in &after {
        sw.insert(k);
    }
    // No shutdown hook gets to run: SIGABRT, the process is gone.
    std::process::abort();
}

/// Parent role: crash the child, then recover from its files.
fn parent(n: usize) {
    let dir = std::env::temp_dir().join(format!("li-crash-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    let exe = std::env::current_exe().expect("current_exe");
    println!("spawning child to crash mid-burst ({n} base keys, 2x{BURST} writes)...");
    let status = std::process::Command::new(exe)
        .env(ROLE_VAR, "child")
        .env(KEYS_VAR, n.to_string())
        .env(DIR_VAR, &dir)
        .status()
        .expect("spawn child");
    assert!(
        !status.success(),
        "the child is supposed to abort, got {status}"
    );
    println!("child died: {status}");

    let (base, before, after) = workload(n);
    let (snap, wal) = paths(&dir);
    verify_recovery(&snap, &wal, &base, &before, &after);

    let _ = std::fs::remove_dir_all(&dir);
    println!("OK: no acknowledged-durable write was lost.");
}

/// Recover from `snap` + `wal` and check both bursts survived.
fn verify_recovery(
    snap: &std::path::Path,
    wal: &std::path::Path,
    base: &[u64],
    before: &[u64],
    after: &[u64],
) {
    let t0 = std::time::Instant::now();
    let (rec, report) = ShardedWritable::recover_with_config(
        snap,
        wal,
        WalSyncPolicy::PerRecord,
        ShardedWritableConfig::default(),
    )
    .expect("recover");
    println!(
        "recovered in {:.1} ms: snapshot(lsn={}) + {} replayed records ({} torn bytes truncated)",
        t0.elapsed().as_secs_f64() * 1e3,
        report.snapshot_lsn,
        report.replayed,
        report.truncated_bytes,
    );
    assert!(report.snapshot_loaded, "the child saved a snapshot");
    assert_eq!(
        report.skipped, 0,
        "the checkpoint truncation left covered records in the log"
    );

    let expected: BTreeSet<u64> = base
        .iter()
        .chain(before.iter())
        .chain(after.iter())
        .copied()
        .collect();
    assert_eq!(rec.len(), expected.len(), "cardinality mismatch");
    for &k in before.iter().chain(after.iter()) {
        assert!(rec.contains(k), "acknowledged write {k} lost in the crash");
    }
    println!(
        "verified: all {} base keys + {} acknowledged writes present",
        base.len(),
        before.len() + after.len()
    );

    // The recovered structure is live: the re-armed log keeps
    // accepting durable writes with LSNs above everything replayed.
    let lsn_before = rec.wal_last_lsn();
    rec.insert(u64::MAX - 1);
    assert!(rec.wal_last_lsn() > lsn_before, "log did not re-arm");
}

fn main() {
    if std::env::var_os(ROLE_VAR).is_some() {
        let n: usize = std::env::var(KEYS_VAR)
            .expect("child needs LI_CRASH_KEYS")
            .parse()
            .expect("LI_CRASH_KEYS must be a number");
        let dir = std::env::var_os(DIR_VAR).expect("child needs LI_CRASH_DIR");
        child(n, std::path::Path::new(&dir));
    }
    parent(learned_indexes::scale::keys_from_env(200_000));
}

/// The example body, parameterized by key count so the example smoke
/// tests (`tests/examples_smoke.rs`) can run it at tiny scale. Same
/// protocol, in-process: the "crash" is dropping the structure without
/// shutdown, plus a torn half-record smeared onto the log tail (the
/// disk state an abort mid-`write(2)` leaves behind).
pub fn run(n: usize) {
    let dir = std::env::temp_dir().join(format!(
        "li-crash-recovery-inproc-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let (base, before, after) = workload(n);
    let (snap, wal) = paths(&dir);

    let sw = ShardedWritable::new(base.clone(), 4, ShardedWritableConfig::default());
    sw.enable_wal(&wal, WalSyncPolicy::PerRecord)
        .expect("enable_wal");
    for &k in &before {
        sw.insert(k);
    }
    sw.save(&snap).expect("save");
    for &k in &after {
        sw.insert(k);
    }
    drop(sw); // the crash

    // A torn tail: the first half of a record whose append never
    // finished. Recovery must truncate it, not choke on it.
    use std::io::Write;
    std::fs::OpenOptions::new()
        .append(true)
        .open(&wal)
        .and_then(|mut f| f.write_all(&21u32.to_le_bytes()))
        .expect("smear torn tail");

    verify_recovery(&snap, &wal, &base, &before, &after);
    let _ = std::fs::remove_dir_all(&dir);
}
