//! Quickstart: build a Recursive Model Index, look up keys, scan a range.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use learned_indexes::data::Dataset;
use learned_indexes::rmi::{Rmi, RmiConfig, SearchStrategy, TopModel};
use learned_indexes::{KeyStore, RangeIndex};

fn main() {
    run(learned_indexes::scale::keys_from_env(200_000));
}

/// The example body, parameterized by key count so the example smoke
/// tests (`tests/examples_smoke.rs`) can run it at tiny scale.
pub fn run(n: usize) {
    // 1. Get a sorted key set into a shared KeyStore. (Any sorted
    //    unique Vec<u64> works; this one reproduces the paper's
    //    Lognormal benchmark data.) Every index built over a clone of
    //    the store shares one key allocation — no copies.
    let keyset = Dataset::Lognormal.generate(n, 42);
    let keys = KeyStore::from(keyset.keys());
    println!("dataset: {} unique lognormal keys", keys.len());

    // 2. Train a two-stage RMI: one model on top, ~n/200 linear leaf
    //    models below, model-biased binary search for the last mile.
    let config = RmiConfig::two_stage(TopModel::Linear, (n / 200).max(1))
        .with_search(SearchStrategy::ModelBiasedBinary);
    let rmi = Rmi::build(keys.clone(), &config);

    let stats = rmi.stats();
    println!(
        "trained: {} leaves, {:.1} mean abs error, max {} — {:.1} KB index",
        stats.leaves,
        stats.mean_abs_err,
        stats.max_abs_err,
        stats.size_bytes as f64 / 1024.0
    );

    // 3. Point lookups.
    let probe = keys[keys.len() / 2];
    let pos = rmi.lookup(probe).expect("stored key must be found");
    println!("lookup({probe}) -> position {pos}");
    assert_eq!(keys[pos], probe);

    let missing = keyset.sample_missing(1, 7)[0];
    println!(
        "lookup({missing}) -> {:?} (not stored)",
        rmi.lookup(missing)
    );
    assert_eq!(rmi.lookup(missing), None);

    // 4. Range scan: all keys in [lo, hi).
    let a = keys.len() / 4;
    let b = (a + 20).min(keys.len().saturating_sub(1)).max(a);
    let (lo, hi) = (keys[a], keys[b]);
    let range = rmi.range(lo, hi);
    println!(
        "range [{lo}, {hi}) covers positions {range:?} = {} keys",
        range.len()
    );
    assert_eq!(range, a..b);

    // 5. lower_bound / upper_bound semantics match the sorted array.
    let q = keys[keys.len() / 8] + 1;
    assert_eq!(rmi.lower_bound(q), keyset.lower_bound(q));
    assert_eq!(rmi.upper_bound(q), keyset.upper_bound(q));
    println!("lower/upper bound verified against the sorted-array oracle");

    // 6. Compare against a read-optimized B-Tree — built over the same
    //    KeyStore, so both indexes read one shared key array.
    let btree = learned_indexes::btree::BTreeIndex::new(keys.clone(), 128);
    assert!(btree.key_store().ptr_eq(&keys));
    println!(
        "index sizes: rmi {:.1} KB vs btree(page=128) {:.1} KB",
        rmi.size_bytes() as f64 / 1024.0,
        btree.size_bytes() as f64 / 1024.0
    );

    // 7. Batched lookups: hand a whole query slice to the index and let
    //    the phase-split implementation run every model prediction
    //    before any last-mile search — on large datasets this overlaps
    //    the cache misses of independent queries. Results are
    //    position-for-position identical to scalar lower_bound.
    let batch: Vec<u64> = keys
        .iter()
        .step_by((keys.len() / 8).max(1))
        .copied()
        .collect();
    let mut positions = vec![0usize; batch.len()];
    rmi.lower_bound_batch(&batch, &mut positions);
    for (&q, &p) in batch.iter().zip(&positions) {
        assert_eq!(p, rmi.lower_bound(q));
    }
    println!(
        "batched lookup of {} keys verified against scalar",
        batch.len()
    );

    // 8. Scale out: range-partition the same store into 4 zero-copy
    //    shards, each served by its own RMI, routed by a learned shard
    //    router — and fan a batch across threads. ShardedIndex is a
    //    RangeIndex too, so everything above works on it unchanged.
    let sharded = learned_indexes::serve::ShardedIndex::build(
        keys.clone(),
        4,
        &learned_indexes::serve::RmiShardBuilder::new(),
    );
    assert!(sharded.key_store().ptr_eq(&keys), "sharding copies no keys");
    let mut parallel = vec![0usize; batch.len()];
    sharded.lower_bound_batch_parallel(&batch, &mut parallel, 4);
    assert_eq!(parallel, positions, "sharded ≡ flat, thread-for-thread");
    println!(
        "sharded serving: {} over {} shards agrees with the flat index",
        sharded.name(),
        sharded.shard_count()
    );

    // 9. Accept writes: the sharded write path routes concurrent
    //    inserts to owner shards, each buffering and retraining
    //    independently (Appendix D.1), splitting/merging shards as the
    //    load shifts. Readers take consistent cross-shard snapshots and
    //    read with no lock held.
    let writable = learned_indexes::serve::ShardedWritable::new(
        keys.clone(),
        4,
        learned_indexes::serve::ShardedWritableConfig::default(),
    );
    let fresh = keyset.sample_missing(100, 11);
    let before = writable.snapshot();
    let mut new_keys = 0usize;
    for &k in &fresh {
        new_keys += usize::from(writable.insert(k));
    }
    let after = writable.snapshot();
    assert_eq!(after.len(), keys.len() + new_keys);
    assert_eq!(before.len(), keys.len(), "old snapshot stays frozen");
    assert!(after.contains(fresh[0]) && !before.contains(fresh[0]));
    println!(
        "sharded writes: {new_keys} inserts over {} shards; snapshots stay consistent",
        writable.shard_count()
    );
}
