//! Live observability: watch a serving tier measure itself while a
//! background writer storm reshapes it.
//!
//! ```sh
//! cargo run --release --example live_stats
//! ```
//!
//! A writer thread floods a [`ShardedWritable`] with fresh keys (with
//! a background [`RebalanceWorker`] attached, so splits, merges and
//! compactions happen off the insert path) while the main thread
//! periodically scrapes [`ShardedWritable::render_text`] — exactly
//! what a Prometheus endpoint would serve — and prints the deltas: op
//! counters, per-shard gauges, sampled latency quantiles, and the
//! structural-event tail from the lock-free trace ring. The final
//! dump demonstrates the accounting is exact: every insert counted
//! once, every split/merge/compaction visible both as a counter and
//! as a ring event.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use learned_indexes::data::Dataset;
use learned_indexes::serve::{
    RebalanceConfig, RebalanceWorker, ShardedWritable, ShardedWritableConfig,
};

fn main() {
    run(learned_indexes::scale::keys_from_env(200_000));
}

/// The example body, parameterized by key count so the example smoke
/// tests (`tests/examples_smoke.rs`) can run it at tiny scale.
pub fn run(n: usize) {
    let keyset = Dataset::Lognormal.generate(n, 42);
    let keys = keyset.keys();
    let (initial, fresh) = keys.split_at(keys.len() / 2);
    println!(
        "dataset: {} lognormal keys ({} seeded, {} arriving live)",
        keys.len(),
        initial.len(),
        fresh.len()
    );

    // Tiered write path under real split pressure, so the storm
    // provokes seals, compactions and topology changes for the
    // metrics to see.
    let shards = 4;
    let max_shard_len = (initial.len() * 3 / (2 * shards)).max(1024);
    let sw = Arc::new(ShardedWritable::new(
        initial.to_vec(),
        shards,
        ShardedWritableConfig {
            merge_threshold: 1_000,
            max_runs: 4,
            rebalance: RebalanceConfig {
                max_shard_len,
                merge_max_len: (max_shard_len / 4).max(1),
                ..RebalanceConfig::default()
            },
            ..ShardedWritableConfig::default()
        },
    ));
    let worker = RebalanceWorker::spawn(Arc::clone(&sw));

    // Background writer storm + periodic scrapes of the same registry.
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writer = {
            let sw = Arc::clone(&sw);
            let done = &done;
            scope.spawn(move || {
                for chunk in fresh.chunks(512) {
                    sw.insert_batch(chunk);
                }
                done.store(true, Ordering::Release);
            })
        };

        let mut scrape = 0usize;
        while !done.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(20));
            scrape += 1;
            let snap = sw.metrics();
            println!(
                "scrape {scrape}: inserts={} shards={} splits={} seals={} compactions={}",
                snap.counter("li_batch_insert_keys_total").unwrap_or(0),
                snap.gauge("li_shard_count").unwrap_or(0),
                snap.counter("li_shard_splits_total").unwrap_or(0),
                snap.counter("li_buffer_seals_total").unwrap_or(0),
                snap.counter("li_compactions_total").unwrap_or(0),
            );
        }
        writer.join().expect("writer panicked");
    });
    worker.wait_until_stable(Duration::from_secs(30));

    // The full text exposition — what a /metrics endpoint would serve.
    println!("\n--- render_text() ---");
    print!("{}", sw.render_text());

    // The accounting is exact: every live key was counted exactly once
    // by the batch-insert counter.
    let snap = sw.metrics();
    assert_eq!(
        snap.counter("li_batch_insert_keys_total"),
        Some(fresh.len() as u64),
        "every batched key counted once"
    );
    // Worker accessors are thin reads of the same registry.
    assert_eq!(
        snap.counter("li_shard_splits_total"),
        Some(worker.splits() as u64)
    );
    assert_eq!(
        snap.counter("li_compactions_total"),
        Some(worker.compactions() as u64)
    );
    // The per-shard gauge families always match the final topology.
    assert_eq!(
        snap.gauge_set("li_shard_len").map(<[u64]>::len),
        Some(sw.shard_count())
    );
    println!(
        "\nfinal: {} keys, {} shards, {} splits / {} merges / {} compactions (worker == registry)",
        sw.len(),
        sw.shard_count(),
        worker.splits(),
        worker.merges(),
        worker.compactions(),
    );
}
