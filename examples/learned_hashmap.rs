//! §4's point-index scenario: a separate-chaining hash map whose hash
//! function is a learned CDF model, versus MurmurHash.
//!
//! Shows the Figure-8 conflict reduction and the Figure-11 space savings
//! on the Maps dataset.
//!
//! ```sh
//! cargo run --release --example learned_hashmap
//! ```

use learned_indexes::data::{Dataset, Record20};
use learned_indexes::hash::{conflict_stats, CdfHasher, ChainedHashMap, KeyHasher, MurmurHasher};

fn main() {
    run(learned_indexes::scale::keys_from_env(500_000));
}

/// The example body, parameterized by key count so the example smoke
/// tests (`tests/examples_smoke.rs`) can run it at tiny scale.
pub fn run(n: usize) {
    let keyset = Dataset::Maps.generate(n, 11);
    let keys = keyset.keys();
    println!("{n} map-feature keys (longitudes)");

    // Train the learned hash function: h(K) = F(K) · M (§4.1).
    let learned = CdfHasher::train(keys, (n / 2000).max(1));
    let random = MurmurHasher::new(3);
    println!(
        "learned hash model: {:.1} KB ({} linear leaf models)",
        learned.size_bytes() as f64 / 1024.0,
        learned.rmi().stats().leaves
    );

    // Figure 8: conflicts at slots == keys.
    let lc = conflict_stats(keys, &learned, keys.len());
    let rc = conflict_stats(keys, &random, keys.len());
    println!(
        "\nconflicts (slots == keys): learned {:.1}% vs murmur {:.1}% — {:.0}% reduction",
        lc.conflict_rate() * 100.0,
        rc.conflict_rate() * 100.0,
        lc.reduction_vs(&rc) * 100.0
    );

    // Figure 11: chained hash map with 20-byte records at 100% slots.
    let mut learned_map: ChainedHashMap<Record20, _> =
        ChainedHashMap::new(keys.len(), CdfHasher::train(keys, (n / 2000).max(1)));
    let mut murmur_map: ChainedHashMap<Record20, _> =
        ChainedHashMap::new(keys.len(), MurmurHasher::new(3));
    for &k in keys {
        learned_map.insert(k, Record20::from_key(k));
        murmur_map.insert(k, Record20::from_key(k));
    }
    let (ls, ms) = (learned_map.stats(), murmur_map.stats());
    println!("\nchained hash map with {} slots of 24 bytes:", keys.len());
    println!(
        "  learned: {:>6} empty slots ({:.2} MB wasted), {:>6} overflow records",
        ls.empty_slots,
        ls.empty_bytes as f64 / (1024.0 * 1024.0),
        ls.overflow
    );
    println!(
        "  murmur:  {:>6} empty slots ({:.2} MB wasted), {:>6} overflow records",
        ms.empty_slots,
        ms.empty_bytes as f64 / (1024.0 * 1024.0),
        ms.overflow
    );
    println!(
        "  wasted-space factor: {:.2}x (paper reports 0.21x on Map Data)",
        ls.empty_bytes as f64 / ms.empty_bytes.max(1) as f64
    );

    // Both maps still answer every key.
    for &k in keys.iter().step_by(991) {
        assert_eq!(learned_map.get(k).map(|r| r.key), Some(k));
        assert_eq!(murmur_map.get(k).map(|r| r.key), Some(k));
    }
    println!("\nall sampled lookups verified on both maps");
}
