//! The paper's introduction scenario: a secondary index over the request
//! timestamps of a university web server, answering time-window queries.
//!
//! Compares a learned index against the read-optimized B-Tree on the
//! hardest of the three integer datasets ("almost a worst-case scenario
//! for the learned index"), and demonstrates delta-buffered appends
//! (Appendix D.1) — new log entries arrive with increasing timestamps.
//!
//! ```sh
//! cargo run --release --example weblog_index
//! ```

use learned_indexes::btree::BTreeIndex;
use learned_indexes::data::Dataset;
use learned_indexes::rmi::{DeltaIndex, Rmi, RmiConfig, TopModel};
use learned_indexes::{KeyStore, RangeIndex};
use std::time::Instant;

fn main() {
    run(learned_indexes::scale::keys_from_env(500_000));
}

/// The example body, parameterized by key count so the example smoke
/// tests (`tests/examples_smoke.rs`) can run it at tiny scale.
pub fn run(n: usize) {
    let keyset = Dataset::Weblogs.generate(n, 7);
    // One shared KeyStore: the RMI, the B-Tree and the delta index's
    // base all read the same allocation.
    let keys = KeyStore::from(keyset.keys());
    println!("web log: {n} unique request timestamps over ~4 years");

    // Learned index: the weblog CDF needs a nonlinear top model.
    let t0 = Instant::now();
    let rmi = Rmi::build(
        keys.clone(),
        &RmiConfig::two_stage(
            TopModel::Mlp {
                hidden: 2,
                width: 16,
            },
            (n / 200).max(1),
        ),
    );
    println!(
        "rmi trained in {:.0} ms — {:.0} KB, mean abs err {:.1}",
        t0.elapsed().as_secs_f64() * 1e3,
        rmi.size_bytes() as f64 / 1024.0,
        rmi.stats().mean_abs_err
    );

    let btree = BTreeIndex::new(keys.clone(), 128);
    println!(
        "btree(page=128) — {:.0} KB",
        btree.size_bytes() as f64 / 1024.0
    );

    // Time-window query: "all requests in a 6-hour window".
    let day_micros = 86_400_000_000u64;
    let start = keys[n / 3] / day_micros * day_micros + 12 * 3_600_000_000; // noon
    let end = start + 6 * 3_600_000_000;
    let learned_range = rmi.range(start, end);
    let btree_range = btree.range(start, end);
    assert_eq!(learned_range, btree_range, "both indexes must agree");
    println!(
        "requests in the 6h window: {} (positions {learned_range:?})",
        learned_range.len()
    );

    // Throughput comparison on point lookups.
    let queries = keyset.sample_existing((n / 2).max(100), 99);
    let time = |f: &mut dyn FnMut(u64) -> usize| {
        let t = Instant::now();
        let mut acc = 0usize;
        for &q in &queries {
            acc = acc.wrapping_add(f(q));
        }
        std::hint::black_box(acc);
        t.elapsed().as_nanos() as f64 / queries.len() as f64
    };
    let rmi_ns = time(&mut |q| rmi.lower_bound(q));
    let btree_ns = time(&mut |q| btree.lower_bound(q));
    println!(
        "lookup latency: rmi {rmi_ns:.0} ns vs btree {btree_ns:.0} ns ({:.2}x)",
        btree_ns / rmi_ns
    );

    // Appendix D.1: appends with increasing timestamps via a delta index.
    let mut live = DeltaIndex::new(
        keys.clone(),
        RmiConfig::two_stage(TopModel::Linear, (n / 500).max(1)),
        (n / 10).max(1),
    );
    let last = *keys.last().expect("non-empty");
    let t0 = Instant::now();
    let appended = (n / 5) as u64;
    for i in 0..appended {
        live.insert(last + 1 + i * 1_000); // new requests, 1ms apart
    }
    println!(
        "appended {appended} new entries in {:.0} ms ({} merges, {} pending)",
        t0.elapsed().as_secs_f64() * 1e3,
        live.merges(),
        live.pending()
    );
    assert_eq!(live.len(), n + appended as usize);
    assert!(live.contains(last + 1));
}
