//! Warm restart: persist a trained serving tier and map it back in
//! without retraining a single model.
//!
//! ```sh
//! cargo run --release --example warm_restart
//! ```
//!
//! A learned index is expensive to *train* and cheap to *evaluate*.
//! This example shows the operational payoff of splitting the two: the
//! serving tier saves its key payload + model coefficients to one
//! page-aligned snapshot file, and a restarting process maps the keys
//! (zero-copy on 64-bit little-endian unix) and rebuilds every model
//! from its saved coefficients — `train_count` proves nothing was
//! refit.

use std::time::Instant;

use learned_indexes::data::Dataset;
use learned_indexes::rmi::train_count;
use learned_indexes::serve::{
    RmiShardBuilder, ShardedIndex, ShardedWritable, ShardedWritableConfig,
};
use learned_indexes::RangeIndex;

fn main() {
    run(learned_indexes::scale::keys_from_env(200_000));
}

/// The example body, parameterized by key count so the example smoke
/// tests (`tests/examples_smoke.rs`) can run it at tiny scale.
pub fn run(n: usize) {
    let dir = std::env::temp_dir();
    let read_path = dir.join(format!("li-example-warm-{}-read.lidx", std::process::id()));
    let write_path = dir.join(format!("li-example-warm-{}-write.lidx", std::process::id()));

    let keyset = Dataset::Lognormal.generate(n, 42);
    let keys = keyset.keys();
    println!("dataset: {} unique lognormal keys", keys.len());

    // 1. Cold-build the read tier (this trains every shard's models)…
    let t0 = Instant::now();
    let cold = ShardedIndex::build(keys.to_vec(), 8, &RmiShardBuilder::new());
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;

    // …and save one snapshot file: 4096-byte header, the key payload,
    // then a manifest of model coefficients. Published atomically
    // (tmp + rename), so a crash mid-save can never corrupt an
    // existing snapshot.
    cold.save(&read_path).expect("save failed");
    let file_kb = std::fs::metadata(&read_path).map(|m| m.len()).unwrap_or(0) / 1024;
    println!("cold build: {cold_ms:.1} ms; snapshot: {file_kb} KiB");

    // 2. "Restart": load the snapshot. The keys are mapped, the models
    //    deserialized — nothing trains, and the counter proves it.
    let trained_before = train_count();
    let t0 = Instant::now();
    let warm = ShardedIndex::load(&read_path).expect("load failed");
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        train_count(),
        trained_before,
        "warm load must train nothing"
    );
    println!(
        "warm load: {warm_ms:.2} ms ({:.0}x faster), trained 0 models, mapped: {}",
        cold_ms / warm_ms.max(1e-9),
        warm.key_store().is_mapped()
    );

    // 3. The loaded index answers exactly like the original.
    for &q in keyset.sample_existing(200, 7).iter() {
        assert_eq!(warm.lower_bound(q), cold.lower_bound(q));
    }
    println!("lookup parity verified on 200 sampled keys");

    // 4. The write tier round-trips too — including its *pending*
    //    delta buffers, which survive the restart un-merged.
    let sw = ShardedWritable::new(keys.to_vec(), 4, ShardedWritableConfig::default());
    let fresh = keyset.sample_missing(64, 11);
    for &k in &fresh {
        sw.insert(k);
    }
    sw.save(&write_path).expect("save failed");
    let restarted = ShardedWritable::load(&write_path).expect("load failed");
    assert_eq!(restarted.len(), sw.len());
    assert!(fresh.iter().all(|&k| restarted.contains(k)));
    assert!(restarted.insert(fresh[0] ^ 1) || restarted.contains(fresh[0] ^ 1));
    println!(
        "write tier: {} keys (incl. {} pending inserts) survived the restart and keep accepting writes",
        restarted.len(),
        fresh.len()
    );

    let _ = std::fs::remove_file(&read_path);
    let _ = std::fs::remove_file(&write_path);
}
