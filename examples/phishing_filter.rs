//! §5.2's scenario: an existence index over blacklisted phishing URLs.
//!
//! Trains a character-level classifier, wraps it into a learned Bloom
//! filter (classifier + overflow filter), and compares its memory
//! footprint against a standard Bloom filter at the same overall FPR —
//! while demonstrating the zero-false-negative guarantee.
//!
//! ```sh
//! cargo run --release --example phishing_filter
//! ```

use learned_indexes::bloom::{empirical_fpr, BloomFilter, LearnedBloom, ModelHashBloom};
use learned_indexes::data::strings::UrlGenerator;
use learned_indexes::models::NgramLogReg;

fn main() {
    run(learned_indexes::scale::keys_from_env(20_000));
}

/// The example body, parameterized by blacklist size so the example
/// smoke tests (`tests/examples_smoke.rs`) can run it at tiny scale.
pub fn run(n: usize) {
    // Blacklist + negatives (random valid URLs mixed with brand-bearing
    // whitelisted lookalikes, as in the paper).
    let mut gen = UrlGenerator::new(2024);
    let (blacklist, mut negatives) = gen.dataset(n, n * 2, 0.5);
    let test = negatives.split_off(n);
    let validation = negatives;
    println!(
        "{} blacklisted URLs, {} validation / {} test non-keys",
        blacklist.len(),
        validation.len(),
        test.len()
    );
    println!("  example key:     {}", blacklist[0]);
    println!("  example non-key: {}", test[0]);

    let keys: Vec<&[u8]> = blacklist.iter().map(|s| s.as_bytes()).collect();
    let val: Vec<&[u8]> = validation.iter().map(|s| s.as_bytes()).collect();

    // Train the URL classifier.
    // 2^11-bucket model (16KB): at this 20k-URL scale a bigger table would
    // dwarf the filters it replaces; §5.2's GRU idea is the same trade-off.
    let classifier = NgramLogReg::train(11, 8, 0.1, &keys, &val, 7);

    let target_fpr = 0.01;

    // Standard Bloom filter at 1% FPR.
    let mut standard = BloomFilter::new(blacklist.len(), target_fpr);
    for k in &keys {
        standard.insert(k);
    }

    // Learned Bloom filter (§5.1.1).
    let learned = LearnedBloom::build(classifier.clone(), &keys, &val, target_fpr, None);
    let r = learned.report();
    println!(
        "\nlearned filter: τ={:.3}, classifier FNR {:.0}%",
        r.tau,
        r.fnr * 100.0
    );

    // Model-hash variant (Appendix E).
    let model_hash = ModelHashBloom::build(
        classifier,
        &keys,
        &val,
        (blacklist.len() * 6 / 10).next_multiple_of(64),
        target_fpr,
        None,
    );

    // Guarantee: zero false negatives everywhere.
    for k in &keys {
        assert!(standard.contains(k) && learned.contains(k) && model_hash.contains(k));
    }
    println!(
        "zero-false-negative guarantee verified on all {} keys",
        keys.len()
    );

    // Memory + empirical FPR on the held-out test set.
    let report = |name: &str, bytes: usize, fpr: f64| {
        println!(
            "  {name:<28} {:>8.1} KB   test FPR {:.3}%  ({:+.0}% vs standard)",
            bytes as f64 / 1024.0,
            fpr * 100.0,
            100.0 * (bytes as f64 - standard.size_bytes() as f64) / standard.size_bytes() as f64
        );
    };
    println!("\nmemory at {:.1}% target FPR:", target_fpr * 100.0);
    report(
        "standard bloom",
        standard.size_bytes(),
        empirical_fpr(|x| standard.contains(x), test.iter().map(|s| s.as_bytes())),
    );
    report(
        "learned bloom (5.1.1)",
        learned.size_bytes(),
        empirical_fpr(|x| learned.contains(x), test.iter().map(|s| s.as_bytes())),
    );
    report(
        "model-hash bloom (5.1.2)",
        model_hash.size_bytes(),
        empirical_fpr(
            |x| model_hash.contains(x),
            test.iter().map(|s| s.as_bytes()),
        ),
    );
}
