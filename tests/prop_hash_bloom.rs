//! Property-based tests for the point- and existence-index crates.

use learned_indexes::bloom::BloomFilter;
use learned_indexes::hash::{
    ChainedHashMap, CuckooHashMap, InPlaceChained, KeyHasher, MurmurHasher,
};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chained_map_matches_std_hashmap(
        ops in prop::collection::vec((any::<u64>(), any::<u64>()), 1..400),
        slots in 1usize..200,
        queries in prop::collection::vec(any::<u64>(), 1..50),
    ) {
        let mut ours: ChainedHashMap<u64, _> = ChainedHashMap::new(slots, MurmurHasher::new(1));
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (k, v) in ops {
            prop_assert_eq!(ours.insert(k, v), model.insert(k, v));
        }
        prop_assert_eq!(ours.len(), model.len());
        for q in queries.into_iter().chain(model.keys().copied().collect::<Vec<_>>()) {
            prop_assert_eq!(ours.get(q), model.get(&q));
        }
    }

    #[test]
    fn cuckoo_map_matches_std_hashmap(
        ops in prop::collection::vec((any::<u64>(), any::<u64>()), 1..300),
    ) {
        let mut ours: CuckooHashMap<u64> = CuckooHashMap::new(1024);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (k, v) in ops {
            if ours.try_insert(k, v) {
                model.insert(k, v);
            }
        }
        for (&k, &v) in &model {
            prop_assert_eq!(ours.get(k), Some(v));
        }
    }

    #[test]
    fn commercial_cuckoo_never_rejects(
        keys in prop::collection::vec(any::<u64>(), 1..300),
    ) {
        let mut m: CuckooHashMap<u64> = CuckooHashMap::new_commercial(64);
        let mut expected: HashMap<u64, u64> = HashMap::new();
        for k in keys {
            prop_assert!(m.try_insert(k, k ^ 7));
            expected.insert(k, k ^ 7);
        }
        for (&k, &v) in &expected {
            prop_assert_eq!(m.get(k), Some(v));
        }
    }

    #[test]
    fn inplace_chained_total_and_exact(
        raw_keys in prop::collection::hash_set(any::<u64>(), 1..300),
        probes in prop::collection::vec(any::<u64>(), 1..50),
    ) {
        let records: Vec<(u64, u64)> = raw_keys.iter().map(|&k| (k, k.wrapping_mul(3))).collect();
        let m = InPlaceChained::build(&records, MurmurHasher::new(9));
        prop_assert_eq!(m.len(), records.len());
        for (k, v) in &records {
            prop_assert_eq!(m.get(*k), Some(v));
        }
        for p in probes {
            if !raw_keys.contains(&p) {
                prop_assert_eq!(m.get(p), None);
            }
        }
    }

    #[test]
    fn bloom_filter_has_no_false_negatives(
        keys in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 1..200),
        fpr in 0.001f64..0.3,
    ) {
        let mut bf = BloomFilter::new(keys.len(), fpr);
        for k in &keys {
            bf.insert(k);
        }
        for k in &keys {
            prop_assert!(bf.contains(k));
        }
    }

    #[test]
    fn murmur_slots_always_in_range(
        keys in prop::collection::vec(any::<u64>(), 1..100),
        m in 1usize..10_000,
        seed in any::<u64>(),
    ) {
        let h = MurmurHasher::new(seed);
        for k in keys {
            prop_assert!(h.slot(k, m) < m);
        }
    }
}
