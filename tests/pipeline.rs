//! End-to-end cross-crate pipelines: the workflows a downstream user of
//! the library would actually run.

use learned_indexes::bloom::{empirical_fpr, LearnedBloom};
use learned_indexes::data::strings::UrlGenerator;
use learned_indexes::data::{Dataset, Record20};
use learned_indexes::hash::{CdfHasher, ChainedHashMap, KeyHasher, MurmurHasher};
use learned_indexes::models::NgramLogReg;
use learned_indexes::rmi::{
    DeltaIndex, Lif, LifSpec, RangeIndex, Rmi, RmiConfig, SearchStrategy, StringRmi,
    StringRmiConfig, TopModel,
};

#[test]
fn lif_synthesis_end_to_end() {
    // Synthesize for sequential data: a learned config must beat B-Trees
    // (the §2 "keys 1 to 100M" argument), and the winner must be exact.
    let keyset = learned_indexes::data::keyset::sequential_keys(100_000, 1_000_000, 1);
    let spec = LifSpec {
        leaf_counts: vec![256],
        top_models: vec![TopModel::Linear],
        searches: vec![SearchStrategy::ModelBiasedBinary],
        btree_pages: vec![128],
        size_budget: None,
        probe_queries: 20_000,
        seed: 2,
    };
    let report = Lif::synthesize(keyset.keys(), &spec);
    // Every candidate (whichever wins the timing race at this scale)
    // must answer exactly; the learned candidate must be competitive in
    // speed (§2's O(1) argument) and far smaller than the B-Tree.
    for &k in keyset.keys().iter().step_by(977) {
        assert_eq!(
            report.best().index.lookup(k),
            keyset.keys().binary_search(&k).ok()
        );
    }
    let rmi = report
        .candidates
        .iter()
        .find(|c| c.name.starts_with("rmi"))
        .expect("learned candidate present");
    let btree = report
        .candidates
        .iter()
        .find(|c| c.name.starts_with("btree"))
        .expect("btree candidate present");
    assert!(
        rmi.lookup_ns < btree.lookup_ns * 2.0,
        "rmi {} vs btree {}",
        rmi.lookup_ns,
        btree.lookup_ns
    );
    assert!(
        rmi.size_bytes < btree.size_bytes,
        "rmi {} vs btree {}",
        rmi.size_bytes,
        btree.size_bytes
    );
}

#[test]
fn learned_hashmap_pipeline_on_every_dataset() {
    for ds in Dataset::ALL {
        let keyset = ds.generate(30_000, 5);
        let keys = keyset.keys();
        let hasher = CdfHasher::train(keys, keys.len() / 500);
        let mut map: ChainedHashMap<Record20, _> = ChainedHashMap::new(keys.len(), hasher);
        for &k in keys {
            map.insert(k, Record20::from_key(k));
        }
        assert_eq!(map.len(), keys.len());
        for &k in keys.iter().step_by(313) {
            assert_eq!(map.get(k).map(|r| r.key), Some(k), "{}", ds.name());
        }
        for &m in keyset.sample_missing(100, 8).iter() {
            assert!(map.get(m).is_none());
        }
    }
}

#[test]
fn phishing_blacklist_pipeline() {
    let mut gen = UrlGenerator::new(77);
    let (keys, mut negs) = gen.dataset(3_000, 6_000, 0.5);
    let test = negs.split_off(3_000);
    let validation = negs;
    let kb: Vec<&[u8]> = keys.iter().map(|s| s.as_bytes()).collect();
    let vb: Vec<&[u8]> = validation.iter().map(|s| s.as_bytes()).collect();
    let clf = NgramLogReg::train(12, 6, 0.1, &kb, &vb, 5);
    let filter = LearnedBloom::build(clf, &kb, &vb, 0.02, None);

    // Contract 1: zero false negatives.
    for k in &kb {
        assert!(filter.contains(k));
    }
    // Contract 2: held-out FPR within a small factor of target.
    let fpr = empirical_fpr(|x| filter.contains(x), test.iter().map(|s| s.as_bytes()));
    assert!(fpr < 0.08, "fpr {fpr}");
}

#[test]
fn string_secondary_index_pipeline() {
    let docs = learned_indexes::data::strings::doc_ids(8_000, 3);
    let rmi = StringRmi::build(
        docs.clone(),
        &StringRmiConfig {
            leaves: 512,
            hybrid_threshold: Some(128),
            ..Default::default()
        },
    );
    for (i, d) in docs.iter().enumerate().step_by(111) {
        assert_eq!(rmi.lookup(d), Some(i));
    }
    assert_eq!(rmi.lookup("not-a-doc-id"), None);
}

#[test]
fn updatable_index_pipeline() {
    // Start from weblog history, stream appends, verify rank stability.
    let keyset = Dataset::Weblogs.generate(20_000, 9);
    let mut idx = DeltaIndex::new(
        keyset.keys().to_vec(),
        RmiConfig::two_stage(TopModel::Linear, 128),
        2_000,
    );
    let last = *keyset.keys().last().unwrap();
    for i in 0..5_000u64 {
        idx.insert(last + 1 + i);
    }
    assert_eq!(idx.len(), 25_000);
    assert!(idx.merges() >= 2);
    assert_eq!(idx.rank(last + 1), 20_000);
    assert_eq!(idx.rank(u64::MAX), 25_000);
}

#[test]
fn learned_hash_beats_murmur_on_maps_at_scale() {
    // The Figure-8 claim as an integration-level guarantee.
    use learned_indexes::hash::conflict_stats;
    let keyset = Dataset::Maps.generate(60_000, 21);
    let keys = keyset.keys();
    let learned = CdfHasher::train(keys, keys.len() / 1000);
    let murmur = MurmurHasher::new(4);
    let lc = conflict_stats(keys, &learned, keys.len());
    let rc = conflict_stats(keys, &murmur, keys.len());
    assert!(
        lc.conflict_rate() < rc.conflict_rate() * 0.7,
        "learned {} vs murmur {}",
        lc.conflict_rate(),
        rc.conflict_rate()
    );
}

#[test]
fn facade_reexports_compile_and_work() {
    // The README's four-line pitch must actually work via the facade.
    let keys: Vec<u64> = (0..10_000u64).map(|i| i * 3).collect();
    let rmi = Rmi::build(keys, &RmiConfig::default());
    assert_eq!(rmi.lookup(3 * 777), Some(777));
    let h = MurmurHasher::new(0);
    assert!(h.slot(42, 7) < 7);
}
