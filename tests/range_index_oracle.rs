//! Cross-crate integration: every range index (learned and baseline)
//! must agree with the sorted-array oracle on every dataset.

use learned_indexes::btree::{BTreeIndex, FastTree, InterpBTree, LookupTable, RangeIndex};
use learned_indexes::data::Dataset;
use learned_indexes::models::FeatureMap;
use learned_indexes::rmi::{Rmi, RmiConfig, SearchStrategy, TopModel};

const N: usize = 30_000;

fn oracle(data: &[u64], q: u64) -> usize {
    data.partition_point(|&k| k < q)
}

fn queries(data: &[u64]) -> Vec<u64> {
    let mut qs = vec![0u64, 1, u64::MAX, u64::MAX - 1];
    for &k in data.iter().step_by(41) {
        qs.extend_from_slice(&[k.saturating_sub(1), k, k.saturating_add(1)]);
    }
    qs
}

fn check(idx: &dyn RangeIndex, data: &[u64], label: &str) {
    for q in queries(data) {
        assert_eq!(idx.lower_bound(q), oracle(data, q), "{label} q={q}");
    }
}

#[test]
fn all_structures_agree_on_all_datasets() {
    for ds in Dataset::ALL {
        let keyset = ds.generate(N, 123);
        let data = keyset.keys().to_vec();

        let structures: Vec<Box<dyn RangeIndex>> = vec![
            Box::new(BTreeIndex::new(data.clone(), 128)),
            Box::new(BTreeIndex::new(data.clone(), 32)),
            Box::new(FastTree::new(data.clone())),
            Box::new(LookupTable::new(data.clone())),
            Box::new(InterpBTree::with_budget(data.clone(), 16 * 1024)),
            Box::new(Rmi::build(
                data.clone(),
                &RmiConfig::two_stage(TopModel::Linear, 512),
            )),
            Box::new(Rmi::build(
                data.clone(),
                &RmiConfig::two_stage(TopModel::Multivariate(FeatureMap::FULL), 512),
            )),
        ];
        for s in &structures {
            check(s.as_ref(), &data, &format!("{} on {}", s.name(), ds.name()));
        }
    }
}

#[test]
fn rmi_all_search_strategies_agree_on_weblogs() {
    let keyset = Dataset::Weblogs.generate(N, 7);
    let data = keyset.keys().to_vec();
    for s in SearchStrategy::ALL {
        let rmi = Rmi::build(
            data.clone(),
            &RmiConfig::two_stage(TopModel::Linear, 256).with_search(s),
        );
        check(&rmi, &data, s.name());
    }
}

#[test]
fn hybrid_rmi_agrees_on_the_hardest_dataset() {
    let keyset = Dataset::Weblogs.generate(N, 9);
    let data = keyset.keys().to_vec();
    let rmi = Rmi::build(
        data.clone(),
        &RmiConfig::two_stage(TopModel::Linear, 64).with_hybrid(32),
    );
    assert!(
        rmi.stats().btree_leaves > 0,
        "weblogs at 64 leaves must trigger hybrid fallback"
    );
    check(&rmi, &data, "hybrid rmi");
}

#[test]
fn range_scans_match_across_structures() {
    let keyset = Dataset::Lognormal.generate(N, 3);
    let data = keyset.keys().to_vec();
    let rmi = Rmi::build(data.clone(), &RmiConfig::two_stage(TopModel::Linear, 256));
    let btree = BTreeIndex::new(data.clone(), 64);
    for i in (0..data.len() - 100).step_by(997) {
        let (lo, hi) = (data[i], data[i + 37]);
        assert_eq!(rmi.range(lo, hi), btree.range(lo, hi));
        assert_eq!(rmi.range(lo, hi), i..i + 37);
    }
}

#[test]
fn predict_windows_contain_the_answer_for_stored_keys() {
    let keyset = Dataset::Maps.generate(N, 17);
    let data = keyset.keys().to_vec();
    let rmi = Rmi::build(data.clone(), &RmiConfig::two_stage(TopModel::Linear, 512));
    for (i, &k) in data.iter().enumerate().step_by(13) {
        let p = rmi.predict(k);
        assert!(
            p.lo <= i && i < p.hi.max(p.lo + 1),
            "stored key {k} at {i} outside window {}..{}",
            p.lo,
            p.hi
        );
    }
}
