//! Property suite for the `li-obs` observability primitives.
//!
//! Three families of properties, matching the three guarantees the
//! serving tier's instrumentation leans on:
//!
//! * **Histogram quantiles are oracle-exact at bucket granularity**:
//!   for arbitrary sample sets (including 0, `u64::MAX`, single
//!   samples and heavy duplicates), `value_at_quantile(q)` lands in
//!   the *same bucket* as the true rank-order sample from a sorted
//!   oracle, is `>=` it, and overshoots by at most one bucket width
//!   (`<= max(1, sample/32)`; exact below 64). Merging sharded
//!   histograms must preserve the combined distribution's quantiles.
//! * **Striped counters never lose increments**: the cross-stripe sum
//!   equals a sequential oracle no matter how many threads record
//!   concurrently.
//! * **The trace ring never tears and drops oldest-first**: after `n`
//!   records into a capacity-`c` ring, the snapshot is exactly the
//!   last `min(n, c)` events in order, and a reader racing concurrent
//!   writers only ever observes whole events.

use learned_indexes::obs::{bucket_bounds, bucket_of, Counter, Histogram, TraceRing};
use proptest::prelude::*;

/// Quantiles probed by every histogram property (the rendered set plus
/// the extremes and a sub-permille point).
const QUANTILES: [f64; 8] = [0.0, 0.001, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];

/// The true rank-order sample for quantile `q` (the sorted oracle the
/// histogram's estimate is judged against): 1-based rank `⌈q·n⌉`
/// clamped to `[1, n]`.
fn oracle_at(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Assert the full bucket-width error contract for one sample set.
fn assert_quantiles_bounded(samples: &[u64], ctx: &str) -> Result<(), TestCaseError> {
    let hist = Histogram::new();
    for &v in samples {
        hist.record(v);
    }
    let snap = hist.snapshot();
    prop_assert_eq!(snap.count(), samples.len() as u64, "{}: count", ctx);
    let wrap_sum = samples.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
    prop_assert_eq!(snap.sum(), wrap_sum, "{}: sum", ctx);

    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    for &q in &QUANTILES {
        let est = snap.value_at_quantile(q);
        let want = oracle_at(&sorted, q);
        // Same bucket as the true sample — the exact-at-bucket-
        // granularity guarantee.
        prop_assert_eq!(
            bucket_of(est),
            bucket_of(want),
            "{}: q={} est={} want={}",
            ctx,
            q,
            est,
            want
        );
        // The estimate is the bucket's upper bound: >= the true
        // sample, and over by at most the bucket width.
        prop_assert!(est >= want, "{ctx}: q={q} est={est} < oracle {want}");
        let (lo, hi) = bucket_bounds(bucket_of(want));
        prop_assert!(est - want <= hi - lo, "{ctx}: q={q} est={est} want={want}");
        prop_assert!(
            u128::from(est - want) <= u128::from(want / 32).max(1),
            "{ctx}: q={q} width bound est={est} want={want}"
        );
        if want < 64 {
            prop_assert_eq!(est, want, "{}: exact below 64 (q={})", ctx, q);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Wide-domain samples (full u64 range): quantile estimates stay
    /// within one bucket of the sorted oracle everywhere.
    #[test]
    fn histogram_quantiles_track_sorted_oracle_wide(
        samples in prop::collection::vec(any::<u64>(), 1..300),
    ) {
        assert_quantiles_bounded(&samples, "wide")?;
    }

    /// Narrow-domain samples (latency-shaped: small values, heavy
    /// natural duplication) plus forced extremes: 0 and u64::MAX mixed
    /// into every set.
    #[test]
    fn histogram_quantiles_track_sorted_oracle_narrow(
        samples in prop::collection::vec(0u64..5000, 1..300),
        extremes in prop::collection::vec(0usize..3, 0..4),
    ) {
        // 0 = min, 1 = max, 2 = a boundary value (64 = first inexact
        // octave).
        let mut samples = samples;
        for e in extremes {
            samples.push(match e { 0 => 0, 1 => u64::MAX, _ => 64 });
        }
        assert_quantiles_bounded(&samples, "narrow")?;
    }

    /// Heavy duplicates: a handful of distinct values, many copies
    /// each. Quantiles must recover the duplicated values themselves
    /// (they dominate every rank).
    #[test]
    fn histogram_quantiles_survive_heavy_duplicates(
        values in prop::collection::vec(any::<u64>(), 1..5),
        reps in 1usize..80,
    ) {
        let samples: Vec<u64> = values
            .iter()
            .flat_map(|&v| std::iter::repeat_n(v, reps))
            .collect();
        assert_quantiles_bounded(&samples, "dups")?;
    }

    /// Sharded recording: samples split across several histograms and
    /// merged must answer every quantile identically to one histogram
    /// that saw everything.
    #[test]
    fn merged_shards_equal_the_whole(
        samples in prop::collection::vec(any::<u64>(), 1..200),
        shards in 1usize..5,
    ) {
        let whole = Histogram::new();
        let parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        for (i, &v) in samples.iter().enumerate() {
            whole.record(v);
            parts[i % shards].record(v);
        }
        let mut merged = parts[0].snapshot();
        for p in &parts[1..] {
            merged.merge(&p.snapshot());
        }
        let want = whole.snapshot();
        prop_assert_eq!(merged.count(), want.count());
        prop_assert_eq!(merged.sum(), want.sum());
        for &q in &QUANTILES {
            prop_assert_eq!(
                merged.value_at_quantile(q),
                want.value_at_quantile(q),
                "q={}",
                q
            );
        }
    }

    /// Striped counter under concurrent recording: the cross-stripe
    /// sum equals the sequential oracle — stripes spread increments,
    /// they never lose them.
    #[test]
    fn striped_counter_sum_equals_sequential_oracle(
        per_thread in prop::collection::vec(
            prop::collection::vec(1u64..1000, 0..50),
            1..6,
        ),
    ) {
        let oracle: u64 = per_thread.iter().flatten().sum();
        let counter = Counter::new();
        std::thread::scope(|s| {
            for adds in &per_thread {
                let counter = &counter;
                s.spawn(move || {
                    for &n in adds {
                        counter.add(n);
                    }
                });
            }
        });
        prop_assert_eq!(counter.value(), oracle);
    }

    /// Sequential ring records: the snapshot is exactly the newest
    /// `min(n, capacity)` events, oldest-first, payloads intact.
    #[test]
    fn ring_drops_oldest_first_at_capacity(
        capacity in 2usize..64,
        n in 0u64..300,
    ) {
        let ring = TraceRing::new(capacity, |_| "e");
        for i in 0..n {
            ring.record(1, i, !i);
        }
        let cap = ring.capacity() as u64; // rounded up to a power of 2
        let tail = ring.snapshot();
        prop_assert_eq!(tail.len() as u64, n.min(cap));
        let first = n.saturating_sub(cap);
        for (j, e) in tail.iter().enumerate() {
            let seq = first + j as u64;
            prop_assert_eq!(e.seq, seq, "oldest-first order");
            prop_assert_eq!(e.a, seq);
            prop_assert_eq!(e.b, !seq);
        }
        prop_assert_eq!(ring.recorded(), n);
        prop_assert_eq!(ring.dropped(), 0, "no writer stalled a full lap");
    }

    /// A reader racing concurrent writers never observes a torn event:
    /// every snapshotted payload satisfies the writers' `b == !a`
    /// invariant and seqs stay strictly increasing.
    #[test]
    fn ring_snapshots_never_tear_under_concurrent_writers(
        capacity in 2usize..32,
        per_writer in 100u64..600,
        writers in 2u64..5,
    ) {
        let ring = TraceRing::new(capacity, |_| "e");
        std::thread::scope(|s| {
            for t in 0..writers {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..per_writer {
                        let x = t * per_writer + i;
                        ring.record(1, x, !x);
                    }
                });
            }
            for _ in 0..50 {
                let tail = ring.snapshot();
                for e in &tail {
                    assert_eq!(e.b, !e.a, "torn event escaped");
                }
                assert!(
                    tail.windows(2).all(|w| w[0].seq < w[1].seq),
                    "snapshot out of order"
                );
                std::thread::yield_now();
            }
        });
        prop_assert_eq!(ring.recorded(), writers * per_writer);
        // Post-quiescence: whole events, in order, newest retained.
        let tail = ring.snapshot();
        for e in &tail {
            prop_assert_eq!(e.b, !e.a);
        }
    }
}

/// Deterministic edge cases the strategies above can only hit by luck.
mod edges {
    use super::*;

    #[test]
    fn empty_histogram_answers_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        for &q in &QUANTILES {
            assert_eq!(snap.value_at_quantile(q), 0);
        }
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        for v in [0u64, 1, 63, 64, 1 << 40, u64::MAX] {
            let h = Histogram::new();
            h.record(v);
            let snap = h.snapshot();
            for &q in &QUANTILES {
                let est = snap.value_at_quantile(q);
                assert_eq!(bucket_of(est), bucket_of(v), "v={v} q={q}");
                assert!(est >= v, "v={v} q={q} est={est}");
            }
        }
    }

    #[test]
    fn u64_max_is_representable_and_exactly_recovered() {
        let h = Histogram::new();
        h.record(u64::MAX);
        // The top bucket's upper bound is u64::MAX itself.
        assert_eq!(h.snapshot().value_at_quantile(1.0), u64::MAX);
    }
}
