//! Property tests for the model substrate and the extension modules
//! (string RMI, Z-order index, delta index, paging, quantization,
//! isotonic calibration).

use learned_indexes::models::{Codebook, IsotonicModel, LinearModel, Model, QuantizedLinear};
use learned_indexes::rmi::multidim::{morton_decode, morton_encode, ZOrderRmi};
use learned_indexes::rmi::{
    DeltaIndex, PagedRmi, PagedStore, RmiConfig, StringRmi, StringRmiConfig, TopModel,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ols_is_exact_on_affine_data(
        slope in -1e3f64..1e3,
        intercept in -1e6f64..1e6,
        xs in prop::collection::btree_set(-1_000_000i32..1_000_000, 2..60),
    ) {
        let xs: Vec<f64> = xs.into_iter().map(f64::from).collect();
        let pairs: Vec<(f64, f64)> = xs.iter().map(|&x| (x, slope * x + intercept)).collect();
        let m = LinearModel::fit(pairs.iter().copied());
        for &(x, y) in &pairs {
            let err = (m.predict(x) - y).abs();
            let tol = 1e-6 * (1.0 + y.abs());
            prop_assert!(err <= tol, "err {} at x {}", err, x);
        }
    }

    #[test]
    fn isotonic_output_is_always_monotone(
        ys in prop::collection::vec(-1e6f64..1e6, 1..200),
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let iso = IsotonicModel::fit_sorted(&xs, &ys);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..ys.len() * 2 {
            let v = iso.predict(i as f64 / 2.0);
            prop_assert!(v >= prev - 1e-9);
            prev = v;
        }
    }

    #[test]
    fn isotonic_preserves_monotone_input(
        deltas in prop::collection::vec(0.0f64..100.0, 1..100),
    ) {
        let mut acc = 0.0;
        let ys: Vec<f64> = deltas.iter().map(|d| { acc += d; acc }).collect();
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let iso = IsotonicModel::fit_sorted(&xs, &ys);
        for (&x, &y) in xs.iter().zip(&ys) {
            prop_assert!((iso.predict(x) - y).abs() < 1e-9);
        }
    }

    #[test]
    fn quantization_error_is_bounded(
        slope in -100.0f64..100.0,
        intercept in -1e5f64..1e5,
        probes in prop::collection::vec(-1e4f64..1e4, 1..30),
    ) {
        let m = LinearModel::new(slope, intercept);
        let (sb, ib) = QuantizedLinear::stage_codebooks(&[
            m,
            LinearModel::new(-100.0, -1e5),
            LinearModel::new(100.0, 1e5),
        ]);
        let q = QuantizedLinear::quantize(&m, sb, ib);
        let bound = q.prediction_error_bound(1e4);
        for &x in &probes {
            prop_assert!((q.predict(x) - m.predict(x)).abs() <= bound + 1e-9);
        }
    }

    #[test]
    fn codebook_roundtrip_error_half_step(v in -1e6f64..1e6) {
        let book = Codebook::covering(-1e6, 1e6);
        prop_assert!((book.decode(book.encode(v)) - v).abs() <= book.max_error() + 1e-9);
    }

    #[test]
    fn morton_roundtrips(x in any::<u32>(), y in any::<u32>()) {
        prop_assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
    }

    #[test]
    fn zorder_range_query_matches_filter(
        points in prop::collection::btree_set((0u32..200, 0u32..200), 0..150),
        x0 in 0u32..200, dx in 0u32..100,
        y0 in 0u32..200, dy in 0u32..100,
    ) {
        let points: Vec<(u32, u32)> = points.into_iter().collect();
        let idx = ZOrderRmi::build(points.clone(), &RmiConfig::two_stage(TopModel::Linear, 8));
        let (x1, y1) = (x0 + dx, y0 + dy);
        let mut expect: Vec<(u32, u32)> = points
            .iter()
            .copied()
            .filter(|&(x, y)| (x0..=x1).contains(&x) && (y0..=y1).contains(&y))
            .collect();
        expect.sort_unstable_by_key(|&(x, y)| morton_encode(x, y));
        prop_assert_eq!(idx.range_query(x0, y0, x1, y1), expect);
    }

    #[test]
    fn delta_index_matches_btreeset_model(
        initial in prop::collection::btree_set(any::<u64>(), 1..100),
        inserts in prop::collection::vec(any::<u64>(), 0..100),
        threshold in 1usize..40,
        probes in prop::collection::vec(any::<u64>(), 1..30),
    ) {
        let initial: Vec<u64> = initial.into_iter().collect();
        let mut model: BTreeSet<u64> = initial.iter().copied().collect();
        let mut idx = DeltaIndex::new(
            initial,
            RmiConfig::two_stage(TopModel::Linear, 8),
            threshold,
        );
        for k in inserts {
            idx.insert(k);
            model.insert(k);
        }
        prop_assert_eq!(idx.len(), model.len());
        for q in probes.iter().copied().chain(model.iter().copied().take(20)) {
            prop_assert_eq!(idx.contains(q), model.contains(&q), "q={}", q);
            prop_assert_eq!(idx.rank(q), model.range(..q).count(), "rank q={}", q);
        }
    }

    #[test]
    fn paged_rmi_finds_exactly_the_stored_keys(
        keys in prop::collection::btree_set(any::<u64>(), 2..300),
        page in 2usize..32,
        probes in prop::collection::vec(any::<u64>(), 1..30),
    ) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let store = PagedStore::new(&keys, page, 7);
        let idx = PagedRmi::build(&store, &RmiConfig::two_stage(TopModel::Linear, 8));
        for &k in &keys {
            prop_assert!(idx.lookup(k).is_some(), "lost {}", k);
        }
        let set: BTreeSet<u64> = keys.iter().copied().collect();
        for q in probes {
            prop_assert_eq!(idx.lookup(q).is_some(), set.contains(&q), "q={}", q);
        }
    }

    #[test]
    fn string_rmi_matches_oracle_on_arbitrary_strings(
        raw in prop::collection::btree_set("[a-z0-9]{0,12}", 1..120),
        queries in prop::collection::vec("[a-z0-9]{0,12}", 1..30),
        leaves in 1usize..32,
    ) {
        let data: Vec<String> = raw.into_iter().collect();
        let rmi = StringRmi::build(
            data.clone(),
            &StringRmiConfig { leaves, ..Default::default() },
        );
        for q in queries.iter().map(String::as_str).chain(data.iter().map(String::as_str)) {
            let expect = data.partition_point(|s| s.as_str() < q);
            prop_assert_eq!(rmi.lower_bound(q), expect, "q={}", q);
        }
    }
}
