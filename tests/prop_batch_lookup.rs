//! Property-based tests: `lower_bound_batch` must be observationally
//! identical to per-query `lower_bound` for **every** `RangeIndex`
//! implementation — including the phase-split specializations of `Rmi`
//! and `BTreeIndex` — over arbitrary keysets (empty, single-key,
//! duplicate-heavy) and probe points up to `u64::MAX`.

use learned_indexes::btree::{BTreeIndex, FastTree, InterpBTree, LookupTable};
use learned_indexes::rmi::{Rmi, RmiConfig, SearchStrategy, TopModel};
use learned_indexes::{KeyStore, RangeIndex};
use proptest::prelude::*;

fn sorted(mut keys: Vec<u64>) -> Vec<u64> {
    keys.sort_unstable();
    keys
}

fn sorted_unique(keys: Vec<u64>) -> Vec<u64> {
    let mut k = sorted(keys);
    k.dedup();
    k
}

/// Probe set: the raw queries plus domain extremes, so every run covers
/// the `u64::MAX` boundary regardless of what the generator drew.
fn probes(queries: &[u64]) -> Vec<u64> {
    let mut qs = queries.to_vec();
    qs.extend_from_slice(&[0, 1, u64::MAX - 1, u64::MAX]);
    qs
}

fn assert_batch_matches_scalar(idx: &dyn RangeIndex, queries: &[u64]) -> Result<(), TestCaseError> {
    let qs = probes(queries);
    let mut out = vec![usize::MAX; qs.len()];
    idx.lower_bound_batch(&qs, &mut out);
    for (&q, &got) in qs.iter().zip(&out) {
        prop_assert_eq!(got, idx.lower_bound(q), "{} q={}", idx.name(), q);
    }
    // Empty batches must be accepted too.
    idx.lower_bound_batch(&[], &mut []);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Baseline structures accept duplicate-free keysets of any size
    /// (covers empty and single-key via the 0.. lower bound).
    #[test]
    fn baselines_batch_equals_scalar(
        keys in prop::collection::vec(any::<u64>(), 0..400),
        queries in prop::collection::vec(any::<u64>(), 1..60),
        page in 2usize..64,
        budget in 64usize..2048,
    ) {
        let store = KeyStore::new(sorted_unique(keys));
        let indexes: Vec<Box<dyn RangeIndex>> = vec![
            Box::new(BTreeIndex::new(store.clone(), page)),
            Box::new(FastTree::new(store.clone())),
            Box::new(LookupTable::new(store.clone())),
            Box::new(InterpBTree::with_budget(store.clone(), budget)),
        ];
        for idx in &indexes {
            // The shared-store migration is part of the contract.
            prop_assert!(idx.key_store().ptr_eq(&store), "{}", idx.name());
            assert_batch_matches_scalar(idx.as_ref(), &queries)?;
        }
    }

    /// Duplicate-heavy multisets (keys drawn from a tiny domain so runs
    /// are long). Batch ≡ scalar must hold whatever each structure
    /// answers; additionally FastTree — which is exact on duplicates —
    /// must match the oracle, and the default `upper_bound` must skip
    /// whole duplicate runs.
    #[test]
    fn duplicates_batch_equals_scalar(
        keys in prop::collection::vec(0u64..16, 0..300),
        queries in prop::collection::vec(any::<u64>(), 1..40),
        page in 2usize..16,
    ) {
        let data = sorted(keys);
        let store = KeyStore::new(data.clone());
        let btree = BTreeIndex::new(store.clone(), page);
        let fast = FastTree::new(store.clone());
        assert_batch_matches_scalar(&btree, &queries)?;
        assert_batch_matches_scalar(&fast, &queries)?;
        for q in probes(&queries) {
            prop_assert_eq!(fast.lower_bound(q), data.partition_point(|&k| k < q));
            prop_assert_eq!(fast.upper_bound(q), data.partition_point(|&k| k <= q));
        }
    }

    /// The RMI (documented contract: sorted unique keys) across every
    /// search strategy, exercising its phase-split batch specialization.
    #[test]
    fn rmi_batch_equals_scalar(
        keys in prop::collection::vec(any::<u64>(), 0..400),
        queries in prop::collection::vec(any::<u64>(), 1..40),
        leaves in 1usize..48,
        strategy_idx in 0usize..4,
    ) {
        let store = KeyStore::new(sorted_unique(keys));
        let cfg = RmiConfig::two_stage(TopModel::Linear, leaves)
            .with_search(SearchStrategy::ALL[strategy_idx]);
        let rmi = Rmi::build(store.clone(), &cfg);
        prop_assert!(rmi.key_store().ptr_eq(&store));
        assert_batch_matches_scalar(&rmi, &queries)?;
    }

    /// Hybrid RMIs (B-Tree fallback leaves) go through a different plan
    /// branch; batch must stay identical to scalar there too.
    #[test]
    fn hybrid_rmi_batch_equals_scalar(
        keys in prop::collection::vec(any::<u64>(), 0..300),
        queries in prop::collection::vec(any::<u64>(), 1..40),
        threshold in 0u32..8,
    ) {
        let store = KeyStore::new(sorted_unique(keys));
        let cfg = RmiConfig::two_stage(TopModel::Linear, 8).with_hybrid(threshold);
        let rmi = Rmi::build(store.clone(), &cfg);
        assert_batch_matches_scalar(&rmi, &queries)?;
    }
}
