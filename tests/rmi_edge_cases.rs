//! Edge-case sweep for the RMI search strategies, mirroring the oracle
//! discipline of `range_index_oracle.rs`: empty keysets, single keys,
//! all-duplicate inputs, and queries at the top of the `u64` domain.

use learned_indexes::rmi::search::search_with_widening;
use learned_indexes::rmi::{RangeIndex, Rmi, RmiConfig, SearchStrategy, TopModel};

fn oracle(data: &[u64], q: u64) -> usize {
    data.partition_point(|&k| k < q)
}

fn sorted_unique(mut keys: Vec<u64>) -> Vec<u64> {
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// Build an RMI per (strategy × leaf count) and compare `lower_bound`
/// and `lookup` against the sorted-array oracle on every query.
fn check_all_strategies(data: &[u64], queries: &[u64]) {
    for strategy in SearchStrategy::ALL {
        for leaves in [1usize, 2, 8] {
            let cfg = RmiConfig::two_stage(TopModel::Linear, leaves).with_search(strategy);
            let rmi = Rmi::build(data.to_vec(), &cfg);
            for &q in queries {
                assert_eq!(
                    rmi.lower_bound(q),
                    oracle(data, q),
                    "lower_bound, strategy={} leaves={leaves} q={q}",
                    strategy.name()
                );
                assert_eq!(
                    rmi.lookup(q),
                    data.binary_search(&q).ok(),
                    "lookup, strategy={} leaves={leaves} q={q}",
                    strategy.name()
                );
            }
        }
    }
}

#[test]
fn empty_keyset() {
    check_all_strategies(&[], &[0, 1, 42, u64::MAX - 1, u64::MAX]);
}

#[test]
fn single_key() {
    for k in [0u64, 1, 7, u64::MAX - 1, u64::MAX] {
        let queries = [
            0,
            1,
            k.saturating_sub(1),
            k,
            k.saturating_add(1),
            u64::MAX - 1,
            u64::MAX,
        ];
        check_all_strategies(&[k], &queries);
    }
}

#[test]
fn two_extreme_keys() {
    // The widest possible key span stresses slope computation.
    let data = [0u64, u64::MAX];
    check_all_strategies(&data, &[0, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX]);
}

#[test]
fn all_duplicate_keys_collapse_through_dedup() {
    // `Rmi::build` requires sorted-unique data (the documented input
    // contract, enforced by a debug assertion); an all-duplicate keyset
    // enters through the same dedup every caller applies and must then
    // answer like the one-element oracle.
    for v in [0u64, 123, u64::MAX] {
        let data = sorted_unique(vec![v; 1000]);
        assert_eq!(data.len(), 1);
        let queries = [0, v.saturating_sub(1), v, v.saturating_add(1), u64::MAX];
        check_all_strategies(&data, &queries);
    }
}

#[test]
fn search_layer_handles_duplicate_runs() {
    // Below the RMI, the raw search strategies must stay exact on data
    // containing long duplicate runs, for any prediction and window.
    let mut data = vec![5u64; 64];
    data.extend_from_slice(&[9; 32]);
    data.extend_from_slice(&[u64::MAX; 16]);
    let n = data.len();
    for strategy in SearchStrategy::ALL {
        for q in [0u64, 4, 5, 6, 9, 10, u64::MAX - 1, u64::MAX] {
            for pos in [0usize, 1, n / 2, n - 1, n] {
                for (lo, hi) in [(0, n), (0, 1), (n / 2, n / 2 + 1), (n - 1, n), (n, n)] {
                    let got = search_with_widening(&data, q, strategy, pos, 4, lo, hi);
                    assert_eq!(
                        got,
                        oracle(&data, q),
                        "strategy={} q={q} pos={pos} window={lo}..{hi}",
                        strategy.name()
                    );
                }
            }
        }
    }
}

#[test]
fn max_domain_queries_on_a_dense_top_end() {
    // Keys packed against u64::MAX: predictions saturate, windows clip
    // at n, and lower_bound/lookup must still be exact.
    let data: Vec<u64> = (0..512u64).map(|i| u64::MAX - 2 * i).rev().collect();
    let mut queries = vec![0u64, 1];
    for &k in data.iter().step_by(31) {
        queries.extend_from_slice(&[k - 1, k, k.saturating_add(1)]);
    }
    queries.extend_from_slice(&[u64::MAX - 1, u64::MAX]);
    check_all_strategies(&data, &queries);
}
