//! Multi-threaded stress: concurrent readers must always observe a
//! consistent snapshot while a writer drives inserts through multiple
//! merge/retrain cycles.
//!
//! Two pressure points:
//!
//! 1. **Read path** — many threads hammer one `ShardedIndex` (scalar,
//!    batched and parallel-batched) while comparing every answer to the
//!    flat sorted-array oracle. The index is immutable, so any torn
//!    answer would be a `Send`/`Sync` violation in a backend.
//! 2. **Write path** — a writer drives `WritableShard::insert` through
//!    at least two merge+retrain cycles while readers take
//!    `DeltaSnapshot`s and check internal consistency with no lock
//!    held: ranks monotone in the key, no torn rank (base swapped
//!    mid-read would break `rank(∞) == len`), and the initial keyset
//!    permanently visible.
//! 3. **Sharded write path** — concurrent writers drive a
//!    `ShardedWritable` through at least one shard *merge* and one
//!    shard *split* while readers take cross-shard snapshots and
//!    verify they are never torn: router and shard vector always pair
//!    (each shard's keys inside its ownership range), lengths
//!    monotone, the initial keyset permanently visible, and every
//!    snapshot's bookkeeping exactly self-consistent.
//! 4. **Tiered write path** — with tiering on and a worker attached,
//!    writers seal runs while the worker compacts full stacks into
//!    the base. Readers validate the three-tier bookkeeping of every
//!    snapshot (base + sealed runs + pending buffer partition the
//!    keyset) with no lock held; compaction is proven worker-only by
//!    counter equality.
//! 5. **Metrics recording** — writers storm inserts while reader
//!    threads continuously take `metrics()` snapshots and render the
//!    text exposition. Every observed counter and histogram total
//!    must be monotone non-decreasing across successive snapshots
//!    (never torn backwards), the per-shard gauge family must always
//!    pair with the shard-count gauge taken under the same topology
//!    read, and the final totals must equal the exact op oracle.
//! 6. **Adaptive selection under storm** — with `Backend::Auto` and a
//!    worker attached, a writer storm drives splits and compactions,
//!    each of which re-runs backend selection; the selection counter
//!    must equal the structural event tally exactly, at least one
//!    rebuild must *switch* a shard's backend family, and the final
//!    topology must prove it structurally (a mix of RMI and
//!    tree-family shards).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use learned_indexes::rmi::{RmiConfig, TopModel};
use learned_indexes::serve::{
    Backend, RebalanceConfig, RebalanceWorker, RmiShardBuilder, ShardedIndex, ShardedWritable,
    ShardedWritableConfig, WritableShard,
};
use learned_indexes::{KeyStore, RangeIndex};

fn cfg() -> RmiConfig {
    RmiConfig::two_stage(TopModel::Linear, 64)
}

#[test]
fn concurrent_readers_agree_with_the_oracle() {
    let data: Vec<u64> = (0..60_000u64).map(|i| i * 3).collect();
    let store = KeyStore::new(data.clone());
    let idx = ShardedIndex::build(store, 8, &RmiShardBuilder::new());

    let readers = 4;
    std::thread::scope(|scope| {
        for t in 0..readers {
            let idx = &idx;
            let data = &data;
            scope.spawn(move || {
                // Each reader probes a different stride so the threads
                // cover different shards at the same time.
                let queries: Vec<u64> = (0..4000u64)
                    .map(|i| (i * 37 + t as u64 * 13) % 200_000)
                    .collect();
                let mut batch = vec![0usize; queries.len()];
                idx.lower_bound_batch(&queries, &mut batch);
                for (&q, &got) in queries.iter().zip(&batch) {
                    assert_eq!(got, data.partition_point(|&k| k < q), "t={t} q={q}");
                    assert_eq!(idx.lower_bound(q), got, "t={t} q={q}");
                }
            });
        }
        // Main thread runs the parallel path concurrently with the
        // scalar/batched readers above.
        let queries: Vec<u64> = (0..8000u64).map(|i| i * 23 % 200_000).collect();
        let mut out = vec![0usize; queries.len()];
        idx.lower_bound_batch_parallel(&queries, &mut out, 4);
        for (&q, &got) in queries.iter().zip(&out) {
            assert_eq!(got, data.partition_point(|&k| k < q), "parallel q={q}");
        }
    });
}

#[test]
fn writer_through_merge_cycles_never_tears_reader_snapshots() {
    // Initial keys: even numbers. The writer inserts odd keys, so any
    // even key's membership is an invariant of every snapshot.
    let initial = 20_000usize;
    let inserts = 4_000u64;
    let threshold = 512usize; // 4_000 / 512 -> at least 7 merges
    let base: Vec<u64> = (0..initial as u64).map(|i| i * 2).collect();
    let shard = WritableShard::new(base, cfg(), threshold);

    let done = AtomicBool::new(false);
    let snapshots_checked = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let shard_ref = &shard;
        let done_ref = &done;
        let checked_ref = &snapshots_checked;

        // Readers: grab a snapshot, verify internal consistency with no
        // lock held, repeat until the writer finishes.
        for t in 0..3 {
            scope.spawn(move || {
                let mut last_len = 0usize;
                loop {
                    let finished = done_ref.load(Ordering::Acquire);
                    let snap = shard_ref.snapshot();

                    // No torn length: rank over the whole domain plus
                    // the MAX-key membership must equal len() exactly —
                    // a base swap observed halfway would break this.
                    let total = snap.rank(u64::MAX) + usize::from(snap.contains(u64::MAX));
                    assert_eq!(total, snap.len(), "t={t}: torn snapshot length");

                    // Snapshot lengths are monotone per reader (inserts
                    // only ever add keys).
                    assert!(
                        snap.len() >= last_len,
                        "t={t}: len went backwards {last_len} -> {}",
                        snap.len()
                    );
                    assert!(
                        snap.len() <= initial + inserts as usize,
                        "t={t}: impossible len {}",
                        snap.len()
                    );
                    last_len = snap.len();

                    // Monotone lower-bound ranks across the key space,
                    // and rank deltas bounded by key-range population.
                    let mut prev = 0usize;
                    for q in (0..initial as u64 * 2 + 4).step_by(997) {
                        let r = snap.rank(q);
                        assert!(
                            r >= prev,
                            "t={t}: rank not monotone at q={q}: {prev} -> {r}"
                        );
                        prev = r;
                    }

                    // The initial (even) keys are permanently visible.
                    for k in (0..initial as u64).step_by(1013) {
                        assert!(snap.contains(k * 2), "t={t}: lost initial key {}", k * 2);
                    }

                    // Range scans come back sorted and in-bounds.
                    let lo = 1000u64;
                    let hi = 3000u64;
                    let scan = snap.range_keys(lo, hi);
                    assert!(
                        scan.windows(2).all(|w| w[0] <= w[1]),
                        "t={t}: unsorted scan"
                    );
                    assert!(
                        scan.iter().all(|&k| (lo..hi).contains(&k)),
                        "t={t}: scan out of bounds"
                    );

                    checked_ref.fetch_add(1, Ordering::Relaxed);
                    if finished {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        }

        // Writer: odd keys, spread over the domain, through >= 2 merge
        // cycles (asserted below).
        scope.spawn(move || {
            for i in 0..inserts {
                shard_ref.insert((i * 13 % (initial as u64 * 2)) | 1);
            }
            // Flush the tail so the final state is fully merged.
            shard_ref.merge();
            done_ref.store(true, Ordering::Release);
        });
    });

    assert!(
        shard.merges() >= 2,
        "writer must run through at least two merge/retrain cycles, got {}",
        shard.merges()
    );
    assert!(
        snapshots_checked.load(Ordering::Relaxed) > 0,
        "readers must have validated at least one snapshot"
    );

    // Final state: every initial key plus every distinct odd insert.
    let distinct_odd: std::collections::BTreeSet<u64> = (0..inserts)
        .map(|i| (i * 13 % (initial as u64 * 2)) | 1)
        .collect();
    assert_eq!(shard.len(), initial + distinct_odd.len());
    assert_eq!(shard.pending(), 0);
    for &k in distinct_odd.iter().step_by(97) {
        assert!(shard.contains(k), "lost inserted key {k}");
    }
}

/// The sharded write path under concurrent writers + snapshot readers,
/// across at least one shard merge cycle and at least one shard split
/// cycle. Readers validate every snapshot with no lock held; any torn
/// topology (router from one generation, shards from another) would
/// break the per-shard ownership checks or the length bookkeeping.
#[test]
fn sharded_writers_through_split_and_merge_cycles_never_tear_snapshots() {
    // Start with a deliberately cold 8-shard topology (4 keys per
    // shard, adjacent pairs inside the merge budget) so the first
    // rebalance *merges*; then concurrent writers push the keyspace
    // past the split threshold so later rebalances *split*.
    let initial: Vec<u64> = (0..32u64).map(|i| i * 1024).collect();
    let writers = 4u64;
    let per_writer = 600u64;
    let config = ShardedWritableConfig {
        merge_threshold: 32,
        leaf_fraction: 1.0 / 32.0,
        check_interval: 64,
        rebalance: RebalanceConfig {
            max_shard_len: 256,
            merge_max_len: 16,
            max_mean_err: None,
            max_shards: 24,
        },
        ..ShardedWritableConfig::default()
    };
    let sw = ShardedWritable::new(initial.clone(), 8, config);
    assert_eq!(sw.shard_count(), 8);

    // Provoke the merge cycle before the writers heat the topology up.
    sw.rebalance();
    assert!(sw.shard_merges() >= 1, "cold topology must merge first");

    let done = AtomicBool::new(false);
    let snapshots_checked = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let sw_ref = &sw;
        let done_ref = &done;
        let checked_ref = &snapshots_checked;
        let initial_ref = &initial;

        // Readers: take a cross-shard snapshot, validate it lock-free.
        for t in 0..3 {
            scope.spawn(move || {
                let mut last_len = 0usize;
                loop {
                    let finished = done_ref.load(Ordering::Acquire);
                    let snap = sw_ref.snapshot();

                    // Router ↔ shard-vector pairing from one topology.
                    let bounds = snap.router().boundaries();
                    assert_eq!(
                        snap.shard_count(),
                        bounds.len() + 1,
                        "t={t}: router paired with a different shard vector"
                    );
                    assert!(
                        bounds.windows(2).all(|w| w[0] <= w[1]),
                        "t={t}: unsorted bounds"
                    );

                    // No torn length: per-shard sums, prefix
                    // bookkeeping and rank(∞) must all agree.
                    let per_shard: usize = snap.shard_snapshots().iter().map(|s| s.len()).sum();
                    assert_eq!(per_shard, snap.len(), "t={t}: torn shard lengths");
                    let total = snap.rank(u64::MAX) + usize::from(snap.contains(u64::MAX));
                    assert_eq!(total, snap.len(), "t={t}: torn rank bookkeeping");

                    // Ownership: every shard's keys inside its range —
                    // a mixed-generation snapshot would misplace whole
                    // key runs.
                    for (s, shard) in snap.shard_snapshots().iter().enumerate() {
                        let lo = if s == 0 { 0 } else { bounds[s - 1] };
                        assert_eq!(
                            shard.rank(lo),
                            0,
                            "t={t}: shard {s} holds keys below its range"
                        );
                        if s < bounds.len() {
                            assert_eq!(
                                shard.rank(bounds[s]),
                                shard.len(),
                                "t={t}: shard {s} holds keys above its range"
                            );
                        }
                    }

                    // Monotone growth, initial keys permanently there.
                    assert!(
                        snap.len() >= last_len,
                        "t={t}: len went backwards {last_len} -> {}",
                        snap.len()
                    );
                    last_len = snap.len();
                    for &k in initial_ref.iter().step_by(7) {
                        assert!(snap.contains(k), "t={t}: lost initial key {k}");
                    }

                    // Scans sorted, in-bounds, rank-consistent.
                    let scan = snap.range_keys(1000, 20_000);
                    assert!(scan.windows(2).all(|w| w[0] < w[1]), "t={t}: bad scan");
                    assert!(scan.iter().all(|&k| (1000..20_000).contains(&k)));
                    assert_eq!(scan.len(), snap.rank(20_000) - snap.rank(1000));

                    checked_ref.fetch_add(1, Ordering::Relaxed);
                    if finished {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        }

        // Writers: disjoint key stripes spread over (and past) the
        // initial domain, enough to force splits.
        scope.spawn(move || {
            std::thread::scope(|inner| {
                for w in 0..writers {
                    inner.spawn(move || {
                        for i in 0..per_writer {
                            sw_ref.insert((w * per_writer + i) * 37 + 1);
                        }
                    });
                }
            });
            done_ref.store(true, Ordering::Release);
        });
    });

    assert!(
        sw.splits() >= 1,
        "writer load must run through at least one split cycle, got {}",
        sw.splits()
    );
    assert!(
        snapshots_checked.load(Ordering::Relaxed) > 0,
        "readers must have validated at least one snapshot"
    );

    // Final exact state: initial keys + every distinct insert.
    let mut expect: std::collections::BTreeSet<u64> = initial.into_iter().collect();
    for w in 0..writers {
        for i in 0..per_writer {
            expect.insert((w * per_writer + i) * 37 + 1);
        }
    }
    assert_eq!(sw.len(), expect.len());
    let dump = sw.range_keys(0, u64::MAX);
    assert_eq!(dump.len(), expect.len());
    assert!(dump.iter().eq(expect.iter()), "final contents diverged");
    // The generation trail accounts for every topology publication.
    assert_eq!(sw.generation(), (sw.splits() + sw.shard_merges()) as u64);
}

/// The writer-storm scenario for **background** rebalancing: with a
/// `RebalanceWorker` attached, inserting threads never rebalance — they
/// record pressure and signal. The storm must drive at least one shard
/// *merge* and at least one shard *split*, and both must be executed by
/// the worker thread (asserted by matching the worker's counters
/// against the structure's — in background mode nobody else may
/// publish a topology). Readers validate cross-shard snapshots
/// lock-free throughout: a torn topology — or a key lost in the
/// worker's off-lock rebuild / straggler hand-off — fails loudly.
#[test]
fn writer_storm_is_rebalanced_by_the_background_worker_only() {
    // Cold 12-shard start (3-ish keys per shard, adjacent pairs inside
    // the merge budget) so the worker's first pass merges; the storm
    // then pushes the keyspace far past the split threshold.
    let initial: Vec<u64> = (0..40u64).map(|i| i * 1024).collect();
    let writers = 4u64;
    let per_writer = 700u64;
    let config = ShardedWritableConfig {
        merge_threshold: 32,
        leaf_fraction: 1.0 / 32.0,
        check_interval: 64,
        rebalance: RebalanceConfig {
            max_shard_len: 256,
            merge_max_len: 16,
            max_mean_err: None,
            max_shards: 24,
        },
        ..ShardedWritableConfig::default()
    };
    let sw = Arc::new(ShardedWritable::new(initial.clone(), 12, config));
    assert_eq!(sw.shard_count(), 12);
    let worker = RebalanceWorker::spawn(Arc::clone(&sw));

    // Drain the cold topology first: merges happen on the worker
    // thread (nothing else is allowed to rebalance in this mode).
    worker.kick();
    assert!(
        worker.wait_until_stable(Duration::from_secs(60)),
        "worker failed to quiesce the cold topology"
    );
    assert!(worker.merges() >= 1, "cold neighbors must merge");

    let done = AtomicBool::new(false);
    let snapshots_checked = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let sw_ref = &*sw;
        let done_ref = &done;
        let checked_ref = &snapshots_checked;
        let initial_ref = &initial;

        // Readers: cross-shard snapshots validated with no lock held,
        // racing the writers AND the worker's topology publications.
        for t in 0..2 {
            scope.spawn(move || {
                let mut last_len = 0usize;
                loop {
                    let finished = done_ref.load(Ordering::Acquire);
                    let snap = sw_ref.snapshot();

                    // Router ↔ shard vector pairing from one topology.
                    let bounds = snap.router().boundaries();
                    assert_eq!(snap.shard_count(), bounds.len() + 1, "t={t}: torn topology");

                    // Length bookkeeping: per-shard sums, prefix and
                    // rank(∞) must all agree.
                    let per_shard: usize = snap.shard_snapshots().iter().map(|s| s.len()).sum();
                    assert_eq!(per_shard, snap.len(), "t={t}: torn shard lengths");
                    let total = snap.rank(u64::MAX) + usize::from(snap.contains(u64::MAX));
                    assert_eq!(total, snap.len(), "t={t}: torn rank bookkeeping");

                    // Ownership: every shard's keys inside its range.
                    for (s, shard) in snap.shard_snapshots().iter().enumerate() {
                        let lo = if s == 0 { 0 } else { bounds[s - 1] };
                        assert_eq!(shard.rank(lo), 0, "t={t}: shard {s} leaks low");
                        if s < bounds.len() {
                            assert_eq!(
                                shard.rank(bounds[s]),
                                shard.len(),
                                "t={t}: shard {s} leaks high"
                            );
                        }
                    }

                    // Monotone growth; the initial keys never vanish
                    // (an off-lock rebuild that dropped stragglers or
                    // lost a racing insert would break these).
                    assert!(snap.len() >= last_len, "t={t}: len went backwards");
                    last_len = snap.len();
                    for &k in initial_ref.iter().step_by(7) {
                        assert!(snap.contains(k), "t={t}: lost initial key {k}");
                    }

                    checked_ref.fetch_add(1, Ordering::Relaxed);
                    if finished {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        }

        // The storm: disjoint writer stripes spread over (and past) the
        // initial domain — with scalar AND batched inserts in the mix,
        // both of which only signal the worker in background mode.
        // Stripe keys are odd by construction (74k + 1) while the
        // initial keys are even (i * 1024), so every stripe key is
        // fresh — the all-true flag assertion below relies on it.
        scope.spawn(move || {
            std::thread::scope(|inner| {
                for w in 0..writers {
                    inner.spawn(move || {
                        let keys: Vec<u64> = (0..per_writer)
                            .map(|i| (w * per_writer + i) * 74 + 1)
                            .collect();
                        // Half the stripe scalar, half batched.
                        let half = keys.len() / 2;
                        for &k in &keys[..half] {
                            sw_ref.insert(k);
                        }
                        for chunk in keys[half..].chunks(64) {
                            let flags = sw_ref.insert_batch(chunk);
                            assert!(flags.iter().all(|&f| f), "w={w}: stripe keys are fresh");
                        }
                    });
                }
            });
            done_ref.store(true, Ordering::Release);
        });
    });

    assert!(
        worker.wait_until_stable(Duration::from_secs(60)),
        "worker failed to quiesce after the storm"
    );
    assert!(
        worker.splits() >= 1,
        "storm must drive at least one background split, got {}",
        worker.splits()
    );
    assert!(snapshots_checked.load(Ordering::Relaxed) > 0);

    // EVERY topology change was executed by the worker thread: the
    // inserting threads recorded pressure only. (Any inline rebalance
    // would make the structure's counters exceed the worker's.)
    assert_eq!(worker.splits(), sw.splits(), "a non-worker thread split");
    assert_eq!(
        worker.merges(),
        sw.shard_merges(),
        "a non-worker thread merged"
    );
    assert_eq!(sw.generation(), (sw.splits() + sw.shard_merges()) as u64);

    // Quiesced means within budget.
    for len in sw.shard_lens() {
        assert!(len <= 256, "unsplit hot shard survived: len {len}");
    }

    // Exact final contents: initial keys + every distinct storm key.
    let mut expect: std::collections::BTreeSet<u64> = initial.into_iter().collect();
    for w in 0..writers {
        for i in 0..per_writer {
            expect.insert((w * per_writer + i) * 74 + 1);
        }
    }
    assert_eq!(sw.len(), expect.len());
    let dump = sw.range_keys(0, u64::MAX);
    assert_eq!(dump.len(), expect.len());
    assert!(dump.iter().eq(expect.iter()), "final contents diverged");
}

/// The tiered write path under a writer storm with a background
/// worker attached: inserting threads seal runs (cheap mini-model
/// fits) but never compact — the worker folds every full run stack
/// into the learned base. Readers validate cross-shard snapshots
/// lock-free throughout, including the three-tier bookkeeping: in any
/// snapshot each shard's base, sealed runs and pending buffer
/// partition that shard's keyset exactly, every run is sorted-unique,
/// and `rank`/`contains` stay coherent mid-compaction. Worker-only
/// compaction is proven by counter equality (`worker.compactions() ==
/// sw.compactions()` — an inline compaction would break it), and with
/// `max_runs = 2` every fold must consume at least two runs.
#[test]
fn writer_storm_compactions_run_on_the_worker_and_never_tear_snapshots() {
    // Rebalance thresholds set far out of reach so the only background
    // activity is compaction: seals every 8 fresh keys per shard, a
    // fold due at 2 runs.
    let initial: Vec<u64> = (0..2_000u64).map(|i| i * 64).collect();
    let writers = 4u64;
    let per_writer = 800u64;
    let config = ShardedWritableConfig {
        merge_threshold: 8,
        check_interval: 0,
        max_runs: 2,
        rebalance: RebalanceConfig {
            max_shard_len: 1_000_000,
            merge_max_len: 0,
            max_mean_err: None,
            max_shards: 8,
        },
        ..ShardedWritableConfig::default()
    };
    let sw = Arc::new(ShardedWritable::new(initial.clone(), 4, config));
    let worker = RebalanceWorker::spawn(Arc::clone(&sw));

    let done = AtomicBool::new(false);
    let snapshots_checked = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let sw_ref = &*sw;
        let done_ref = &done;
        let checked_ref = &snapshots_checked;
        let initial_ref = &initial;

        // Readers: validate the tier bookkeeping of every snapshot
        // while the writers seal and the worker compacts.
        for t in 0..2 {
            scope.spawn(move || {
                let mut last_len = 0usize;
                loop {
                    let finished = done_ref.load(Ordering::Acquire);
                    let snap = sw_ref.snapshot();

                    // No torn length: per-shard sums and rank(∞) agree.
                    let per_shard: usize = snap.shard_snapshots().iter().map(|s| s.len()).sum();
                    assert_eq!(per_shard, snap.len(), "t={t}: torn shard lengths");
                    let total = snap.rank(u64::MAX) + usize::from(snap.contains(u64::MAX));
                    assert_eq!(total, snap.len(), "t={t}: torn rank bookkeeping");

                    // Three-tier accounting: base + sealed runs +
                    // pending buffer partition each shard's keyset. A
                    // compaction observed halfway (runs folded into the
                    // base but still counted, or vice versa) breaks the
                    // sum; a torn run vector breaks the sortedness.
                    for (s, shard) in snap.shard_snapshots().iter().enumerate() {
                        let base_len = shard.base_index().key_store().len();
                        let run_keys: usize = shard.runs().iter().map(|r| r.len()).sum();
                        assert_eq!(
                            base_len + run_keys + shard.delta_keys().len(),
                            shard.len(),
                            "t={t}: shard {s} tiers do not partition the keyset"
                        );
                        for run in shard.runs() {
                            assert!(!run.is_empty(), "t={t}: shard {s} empty sealed run");
                            assert!(
                                run.as_slice().windows(2).all(|w| w[0] < w[1]),
                                "t={t}: shard {s} torn run"
                            );
                        }
                    }

                    // Monotone growth; initial keys permanently there.
                    assert!(snap.len() >= last_len, "t={t}: len went backwards");
                    last_len = snap.len();
                    for &k in initial_ref.iter().step_by(131) {
                        assert!(snap.contains(k), "t={t}: lost initial key {k}");
                    }

                    // Scans sorted, deduplicated, rank-consistent even
                    // when the window spans all three tiers.
                    let scan = snap.range_keys(5_000, 40_000);
                    assert!(scan.windows(2).all(|w| w[0] < w[1]), "t={t}: bad scan");
                    assert_eq!(scan.len(), snap.rank(40_000) - snap.rank(5_000));

                    checked_ref.fetch_add(1, Ordering::Relaxed);
                    if finished {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        }

        // Writers: disjoint stripes of fresh odd keys (initial keys
        // are even) driving seal after seal in every shard.
        scope.spawn(move || {
            std::thread::scope(|inner| {
                for w in 0..writers {
                    inner.spawn(move || {
                        for i in 0..per_writer {
                            sw_ref.insert((w * per_writer + i) * 37 + 1);
                        }
                    });
                }
            });
            done_ref.store(true, Ordering::Release);
        });
    });

    assert!(
        worker.wait_until_stable(Duration::from_secs(60)),
        "worker failed to quiesce after the storm"
    );
    assert!(snapshots_checked.load(Ordering::Relaxed) > 0);

    // The storm sealed far more runs than one stack: the worker must
    // have compacted, and every fold consumed a full (>= max_runs)
    // stack in ONE retrain.
    assert!(
        worker.compactions() >= 1,
        "storm must drive at least one background compaction"
    );
    assert!(
        worker.runs_compacted() >= 2 * worker.compactions(),
        "each fold must consume at least max_runs = 2 runs, got {} runs over {} folds",
        worker.runs_compacted(),
        worker.compactions()
    );

    // EVERY compaction was executed by the worker thread — while a
    // worker is attached the inserting threads only record pressure
    // and signal, so the structure's counter and the worker's must
    // match exactly.
    assert_eq!(
        worker.compactions(),
        sw.compactions(),
        "a non-worker thread compacted"
    );
    // And compaction is not a topology event: the quiet rebalance
    // thresholds mean no split or merge ever published.
    assert_eq!(sw.splits(), 0);
    assert_eq!(sw.shard_merges(), 0);
    assert_eq!(sw.generation(), 0);

    // Quiesced means no shard still owes a fold.
    assert!(
        sw.run_count() < 2 * sw.shard_count(),
        "a full run stack survived quiescence"
    );

    // Exact final contents: initial keys + every distinct storm key.
    let mut expect: std::collections::BTreeSet<u64> = initial.into_iter().collect();
    for w in 0..writers {
        for i in 0..per_writer {
            expect.insert((w * per_writer + i) * 37 + 1);
        }
    }
    assert_eq!(sw.len(), expect.len());
    let dump = sw.range_keys(0, u64::MAX);
    assert_eq!(dump.len(), expect.len());
    assert!(dump.iter().eq(expect.iter()), "final contents diverged");
}

/// Case 5: metrics readers vs writer storm. Renderers scrape
/// `metrics()` / `render_text()` lock-free while three writers flood
/// inserts through splits and merges; every scraped total must be
/// monotone, internally consistent, and exact once the storm settles.
#[test]
fn metrics_snapshots_stay_monotone_and_untorn_under_writer_storm() {
    let initial: Vec<u64> = (0..4_000u64).map(|i| i * 8).collect();
    let writers = 3usize;
    let per_writer = 6_000u64;
    let sw = Arc::new(ShardedWritable::new(
        initial.clone(),
        2,
        ShardedWritableConfig {
            merge_threshold: 256,
            check_interval: 64,
            rebalance: RebalanceConfig {
                max_shard_len: 4_000,
                merge_max_len: 500,
                ..RebalanceConfig::default()
            },
            ..ShardedWritableConfig::default()
        },
    ));

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for w in 0..writers {
            let sw = Arc::clone(&sw);
            scope.spawn(move || {
                // Disjoint fresh keys per writer: every insert is a
                // key-adding op, so the oracle is exact.
                for i in 0..per_writer {
                    sw.insert((w as u64 * per_writer + i) * 8 + 1 + w as u64);
                }
            });
        }
        for _ in 0..2 {
            let sw = Arc::clone(&sw);
            let done = &done;
            scope.spawn(move || {
                let mut last_inserts = 0u64;
                let mut last_splits = 0u64;
                let mut last_hist = 0u64;
                let mut last_seq = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snap = sw.metrics();
                    // Counters only ever grow: a torn read (or a
                    // snapshot served from a half-reset registry)
                    // would run one of these backwards.
                    let inserts = snap.counter("li_inserts_total").expect("registered");
                    let splits = snap.counter("li_shard_splits_total").expect("registered");
                    let hist = snap.histogram("li_insert_ns").expect("registered").count();
                    assert!(inserts >= last_inserts, "{inserts} < {last_inserts}");
                    assert!(splits >= last_splits, "{splits} < {last_splits}");
                    assert!(hist >= last_hist, "{hist} < {last_hist}");
                    (last_inserts, last_splits, last_hist) = (inserts, splits, hist);
                    // Gauges are refreshed under one topology read:
                    // every per-shard family matches the shard count.
                    let shards = snap.gauge("li_shard_count").expect("registered") as usize;
                    for fam in ["li_shard_len", "li_shard_runs", "li_shard_pending"] {
                        assert_eq!(
                            snap.gauge_set(fam).map(<[u64]>::len),
                            Some(shards),
                            "{fam} torn vs shard count"
                        );
                    }
                    // The event tail is whole and ordered; rendering
                    // the exposition never panics mid-storm.
                    let events = snap.ring("li_events").expect("registered");
                    assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
                    if let Some(e) = events.last() {
                        assert!(e.seq >= last_seq);
                        last_seq = e.seq;
                    }
                    let text = snap.render_text();
                    assert!(text.contains(&format!("li_inserts_total {inserts}")));
                    std::thread::yield_now();
                }
            });
        }
        // Writer threads join when the non-reader spawns finish; flip
        // the flag from a watchdog scope instead: simplest is to wait
        // for the writers by joining them via a nested scope.
        scope.spawn({
            let sw = Arc::clone(&sw);
            let done = &done;
            let total = initial.len() + writers * per_writer as usize;
            move || {
                // Watchdog: writers are done exactly when every key
                // landed. Bounded by the suite timeout.
                while sw.len() < total {
                    std::thread::sleep(Duration::from_millis(1));
                }
                done.store(true, Ordering::Relaxed);
            }
        });
    });

    // Exact final accounting: every scalar insert was counted once.
    let snap = sw.metrics();
    let expected = (writers * per_writer as usize) as u64;
    assert_eq!(snap.counter("li_inserts_total"), Some(expected));
    // The storm provoked structure: splits recorded as both counter
    // and ring events, and the accessors are thin reads of the same
    // registry the snapshot came from.
    assert_eq!(
        snap.counter("li_shard_splits_total"),
        Some(sw.splits() as u64)
    );
    assert!(sw.splits() >= 1, "storm must split");
    let events = snap.ring("li_events").expect("registered");
    assert!(events.iter().any(|e| e.name == "shard_split"), "{events:?}");
    // Sampled latency saw roughly 1-in-8 inserts (exact per stripe;
    // allow generous slack for stripe boundaries).
    let sampled = snap.histogram("li_insert_ns").expect("registered").count();
    assert!(
        sampled >= expected / 16 && sampled <= expected,
        "sampled {sampled} of {expected}"
    );
}

#[test]
fn snapshot_taken_before_merges_serves_the_old_state_forever() {
    let shard = WritableShard::new((0..1000u64).map(|i| i * 2).collect::<Vec<_>>(), cfg(), 64);
    let before = shard.snapshot();
    assert_eq!(before.len(), 1000);

    // Two full merge cycles after the snapshot.
    for k in 0..200u64 {
        shard.insert(k * 2 + 1);
    }
    assert!(shard.merges() >= 2, "merges {}", shard.merges());

    assert_eq!(before.len(), 1000, "snapshot must be frozen");
    assert!(!before.contains(1));
    assert_eq!(before.rank(u64::MAX), 1000);
    assert_eq!(shard.len(), 1200);
}

/// Case 6: adaptive backend selection under a writer storm. The
/// structure starts with four dense near-linear shards (which the
/// selector provably keeps on RMI), and the storm lands entirely in
/// shard 0's range, driving it through sealed runs, compactions and at
/// least one split — every one of which re-runs selection on the
/// worker. The split halves are small enough that the cost model
/// provably prefers the FAST tree, so the storm must flip at least one
/// shard's backend family; the quiet shards must keep theirs. The
/// selection counter is then provable exactly from the structural
/// event counters: one grid search per shard built.
#[test]
fn writer_storm_reselects_backends_on_worker_rebuilds() {
    // 4 × 24_000 dense keys on a stride-64 grid: retuned RMI error is
    // ~0, so selection keeps RMI everywhere at build time.
    let initial: Vec<u64> = (0..96_000u64).map(|i| i * 64).collect();
    let writers = 4u64;
    let per_writer = 800u64;
    let config = ShardedWritableConfig {
        merge_threshold: 256, // seal every 256 fresh keys per shard
        check_interval: 0,
        max_runs: 2, // compaction due at 2 sealed runs
        backend: Backend::Auto,
        rebalance: RebalanceConfig {
            max_shard_len: 26_000, // shard 0 starts at 24_000: in reach
            merge_max_len: 0,      // merges off — splits only
            max_mean_err: None,
            max_shards: 16,
        },
        ..ShardedWritableConfig::default()
    };
    let sw = Arc::new(ShardedWritable::new(initial.clone(), 4, config));
    assert_eq!(
        sw.backend_selections(),
        4,
        "initial build must run one selection per shard"
    );
    assert_eq!(
        sw.hybrid_shards(),
        0,
        "dense linear shards must start on RMI"
    );
    let worker = RebalanceWorker::spawn(Arc::clone(&sw));

    let done = AtomicBool::new(false);
    let snapshots_checked = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let sw_ref = &*sw;
        let done_ref = &done;
        let checked_ref = &snapshots_checked;
        let initial_ref = &initial;

        // Readers: every snapshot stays consistent while shard 0's
        // backend family changes underneath them.
        for t in 0..2 {
            scope.spawn(move || {
                let mut last_len = 0usize;
                loop {
                    let finished = done_ref.load(Ordering::Acquire);
                    let snap = sw_ref.snapshot();

                    let per_shard: usize = snap.shard_snapshots().iter().map(|s| s.len()).sum();
                    assert_eq!(per_shard, snap.len(), "t={t}: torn shard lengths");
                    let total = snap.rank(u64::MAX) + usize::from(snap.contains(u64::MAX));
                    assert_eq!(total, snap.len(), "t={t}: torn rank bookkeeping");

                    assert!(snap.len() >= last_len, "t={t}: len went backwards");
                    last_len = snap.len();
                    for &k in initial_ref.iter().step_by(7919) {
                        assert!(snap.contains(k), "t={t}: lost initial key {k}");
                    }

                    let scan = snap.range_keys(1_000, 60_000);
                    assert!(scan.windows(2).all(|w| w[0] < w[1]), "t={t}: bad scan");
                    assert_eq!(scan.len(), snap.rank(60_000) - snap.rank(1_000));

                    checked_ref.fetch_add(1, Ordering::Relaxed);
                    if finished {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        }

        // Writers: disjoint stripes of fresh odd keys interleaving the
        // stride-64 grid inside shard 0's range only (max key
        // 3200·64+1 ≪ shard 0's initial upper bound 24_000·64).
        scope.spawn(move || {
            std::thread::scope(|inner| {
                for w in 0..writers {
                    inner.spawn(move || {
                        for i in 0..per_writer {
                            sw_ref.insert((w * per_writer + i) * 64 + 1);
                        }
                    });
                }
            });
            done_ref.store(true, Ordering::Release);
        });
    });

    assert!(
        worker.wait_until_stable(Duration::from_secs(60)),
        "worker failed to quiesce after the storm"
    );
    assert!(snapshots_checked.load(Ordering::Relaxed) > 0);

    // The storm must have driven shard 0 over its split threshold and
    // through at least one full run stack.
    assert!(worker.splits() >= 1, "storm must split shard 0");
    assert!(
        worker.compactions() >= 1,
        "storm must drive at least one compaction"
    );
    assert_eq!(sw.shard_merges(), 0, "merges are disabled");

    // THE invariant: one grid search per shard built, ever. Initial
    // build selects once per shard; every split builds two shards;
    // every merge and every compaction builds one.
    assert_eq!(
        sw.backend_selections(),
        4 + 2 * sw.splits() + sw.shard_merges() + sw.compactions(),
        "selection counter diverged from the structural event tally \
         (splits={}, merges={}, compactions={})",
        sw.splits(),
        sw.shard_merges(),
        sw.compactions()
    );
    // Worker-relative reads agree: attach-time baseline was 4.
    assert_eq!(
        worker.backend_selections(),
        2 * worker.splits() + worker.merges() + worker.compactions(),
        "worker-relative selection tally diverged"
    );

    // At least one rebuild flipped a family: shard 0's split halves
    // (~13k dense keys each) sit below the RMI/FAST crossover, while
    // it started on RMI.
    assert!(
        sw.backend_switches() >= 1,
        "the storm must switch at least one shard's backend family"
    );
    assert_eq!(worker.backend_switches(), sw.backend_switches());

    // Structural proof, not just counters: the hot region's shards are
    // now tree-family, the three untouched dense shards still RMI.
    let hybrid = sw.hybrid_shards();
    assert!(hybrid >= 1, "no tree-family shard after the storm");
    assert!(
        hybrid <= sw.shard_count() - 3,
        "untouched dense shards must stay on RMI (hybrid={hybrid} of {})",
        sw.shard_count()
    );

    // Exact final contents: initial keys + every storm key.
    let mut expect: std::collections::BTreeSet<u64> = initial.into_iter().collect();
    for w in 0..writers {
        for i in 0..per_writer {
            expect.insert((w * per_writer + i) * 64 + 1);
        }
    }
    assert_eq!(sw.len(), expect.len());
    let dump = sw.range_keys(0, u64::MAX);
    assert!(dump.iter().eq(expect.iter()), "final contents diverged");
}
