//! Property suite for the LSM-style tiered write path: a
//! `DeltaIndex` in tiered mode (`with_tiering`) must agree with a
//! `BTreeSet` oracle across every tier state the insert/compact
//! lifecycle can produce — empty run stacks, partially filled stacks,
//! stacks at the compaction bound, freshly compacted bases — and
//! snapshots cut mid-stream (including mid-compaction) must stay
//! frozen and internally consistent while the live index keeps
//! sealing and compacting. Edge cases pinned deterministically:
//! all-duplicate streams (no seal ever fires) and `u64::MAX` keys in
//! every tier.

use std::collections::BTreeSet;

use learned_indexes::rmi::{DeltaIndex, RmiConfig, TopModel};
use proptest::prelude::*;

fn cfg() -> RmiConfig {
    RmiConfig::two_stage(TopModel::Linear, 32)
}

fn sorted_unique(mut keys: Vec<u64>) -> Vec<u64> {
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// Probe points: around every 5th oracle key plus domain extremes.
fn probes(oracle: &BTreeSet<u64>) -> Vec<u64> {
    let mut qs = vec![0u64, 1, u64::MAX - 1, u64::MAX];
    for &k in oracle.iter().step_by(5) {
        qs.extend_from_slice(&[k.saturating_sub(1), k, k.saturating_add(1)]);
    }
    qs
}

fn assert_matches_oracle(
    idx: &DeltaIndex,
    oracle: &BTreeSet<u64>,
    ctx: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(idx.len(), oracle.len(), "{}: len", ctx);
    for &q in &probes(oracle) {
        prop_assert_eq!(
            idx.rank(q),
            oracle.range(..q).count(),
            "{}: rank({})",
            ctx,
            q
        );
        prop_assert_eq!(
            idx.contains(q),
            oracle.contains(&q),
            "{}: contains({})",
            ctx,
            q
        );
    }
    let qs = probes(oracle);
    for w in qs.windows(2) {
        let (lo, hi) = (w[0].min(w[1]), w[0].max(w[1]));
        let want: Vec<u64> = oracle.range(lo..hi).copied().collect();
        prop_assert_eq!(
            idx.range_keys(lo, hi),
            want,
            "{}: range [{},{})",
            ctx,
            lo,
            hi
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interleaved inserts and owner-driven compactions track the
    /// oracle through every tier transition, and the tier counters
    /// obey the lifecycle: tiered mode never auto-merges, seals are
    /// `unique_inserts / threshold`, and the run stack only exceeds
    /// the bound until the owner compacts it.
    #[test]
    fn tiered_index_tracks_oracle_through_seal_and_compact_cycles(
        initial in prop::collection::vec(any::<u64>(), 0..120),
        ops in prop::collection::vec((any::<u64>(), 0usize..12), 0..150),
        threshold in 2usize..10,
        max_runs in 1usize..5,
    ) {
        let init = sorted_unique(initial);
        let mut idx = DeltaIndex::new(init.clone(), cfg(), threshold).with_tiering(max_runs);
        let mut oracle: BTreeSet<u64> = init.iter().copied().collect();

        let mut compaction_events = 0usize;
        for (step, &(key, gate)) in ops.iter().enumerate() {
            prop_assert_eq!(idx.insert(key), oracle.insert(key), "insert {}", key);
            // The owner compacts at arbitrary moments (gate == 0), not
            // only exactly at the bound — mirroring a worker that may
            // run late (stack above bound) or early (partial or empty
            // stack). Compaction always folds the ENTIRE current stack
            // (one retrain), or nothing when there are no runs.
            if gate == 0 || idx.needs_compaction() {
                let runs = idx.run_count();
                if idx.needs_compaction() {
                    prop_assert!(runs >= max_runs);
                }
                let folded = idx.compact();
                prop_assert_eq!(folded, runs, "compaction folds the whole stack");
                prop_assert_eq!(idx.run_count(), 0);
                prop_assert!(!idx.needs_compaction());
                compaction_events += usize::from(folded > 0);
            }
            if step % 29 == 0 {
                assert_matches_oracle(&idx, &oracle, &format!("step {step}"))?;
            }
        }
        assert_matches_oracle(&idx, &oracle, "final")?;
        // Lifecycle accounting: tiered mode seals instead of merging —
        // exactly one seal per `threshold` fresh keys — and every
        // compaction event was counted exactly once.
        prop_assert_eq!(idx.merges(), 0, "tiered mode never full-merges on its own");
        let unique_inserts = oracle.len() - init.len();
        prop_assert_eq!(idx.seals(), unique_inserts / threshold);
        prop_assert_eq!(idx.compactions(), compaction_events);
        // The tiers partition the keyset: whatever was sealed and not
        // yet compacted, plus the pending buffer, is exactly what the
        // base does not hold.
        let base_len = idx.len() - idx.sealed_keys() - idx.pending();
        prop_assert!(base_len >= init.len());
    }

    /// Invariant 7 (tier partition) pinned on the insert path: a
    /// duplicate insert of a key currently living **only in a sealed
    /// run** (not the buffer — sealing emptied it; not the base — the
    /// key was fresh) must be reported as a duplicate and must not
    /// create cross-tier duplication. The run probe sits between the
    /// buffer probe and the base lookup in `DeltaIndex::insert`; this
    /// is the property that keeps it honest.
    #[test]
    fn reinserting_a_sealed_run_resident_key_is_a_duplicate(
        initial in prop::collection::vec(any::<u64>(), 0..80),
        stream in prop::collection::vec(any::<u64>(), 1..100),
        threshold in 2usize..8,
        max_runs in 2usize..5,
    ) {
        let init = sorted_unique(initial);
        let mut idx = DeltaIndex::new(init.clone(), cfg(), threshold).with_tiering(max_runs);
        let mut oracle: BTreeSet<u64> = init.iter().copied().collect();
        for &k in &stream {
            prop_assert_eq!(idx.insert(k), oracle.insert(k));
        }
        // Every key currently sealed in a run lives in NO other tier
        // (partition invariant), so re-inserting it must be a pure
        // duplicate: flag false, nothing moves, no tier grows.
        let snap = idx.snapshot();
        let sealed: Vec<u64> = snap.runs().iter().flat_map(|r| r.as_slice().iter().copied()).collect();
        let (len0, pend0, runs0, sealed0) =
            (idx.len(), idx.pending(), idx.run_count(), idx.sealed_keys());
        for &k in &sealed {
            prop_assert!(!idx.insert(k), "sealed key {} re-reported as new", k);
            prop_assert!(!idx.insert_batch(&[k])[0], "batched re-insert of sealed key {}", k);
        }
        prop_assert_eq!(idx.len(), len0);
        prop_assert_eq!(idx.pending(), pend0, "duplicates must not enter the buffer");
        prop_assert_eq!(idx.run_count(), runs0);
        prop_assert_eq!(idx.sealed_keys(), sealed0);
        // No cross-tier duplication anywhere: the exported merge of
        // all tiers is strictly sorted (a duplicated key would show up
        // as an equal adjacent pair).
        let exported = idx.export_keys();
        prop_assert!(exported.windows(2).all(|w| w[0] < w[1]), "export not strictly sorted");
        prop_assert_eq!(exported.len(), oracle.len());
    }

    /// The same partition pin one level up: a `ShardedWritable` in
    /// tiered mode routes the duplicate to the owner shard, whose
    /// sealed run must answer it — across shard boundaries, batched
    /// and scalar.
    #[test]
    fn sharded_reinsert_of_sealed_keys_never_duplicates(
        stream in prop::collection::vec(any::<u64>(), 8..80),
        shards in 1usize..4,
    ) {
        use li_serve::{ShardedWritable, ShardedWritableConfig};
        let config = ShardedWritableConfig {
            merge_threshold: 4,
            max_runs: 3,
            check_interval: 0,
            ..ShardedWritableConfig::default()
        };
        let sw = ShardedWritable::new((0..50u64).map(|i| i * 1000).collect::<Vec<_>>(), shards, config);
        let mut oracle: BTreeSet<u64> = (0..50u64).map(|i| i * 1000).collect();
        for &k in &stream {
            prop_assert_eq!(sw.insert(k), oracle.insert(k));
        }
        let len0 = sw.len();
        // Re-insert the entire stream (every key now lives in exactly
        // one tier of its owner shard): all duplicates, nothing grows.
        for &k in &stream {
            prop_assert!(!sw.insert(k), "key {} re-reported as new", k);
        }
        let flags = sw.insert_batch(&stream);
        prop_assert!(flags.iter().all(|&f| !f), "batched re-insert reported a new key");
        prop_assert_eq!(sw.len(), len0);
        let all = sw.range_keys(0, u64::MAX);
        prop_assert!(all.windows(2).all(|w| w[0] < w[1]), "global scan not strictly sorted");
    }

    /// A snapshot cut at an arbitrary point — including with a full
    /// run stack about to compact — is frozen: later inserts, seals
    /// and compactions on the live index never leak into it.
    #[test]
    fn snapshots_stay_frozen_across_later_seals_and_compactions(
        initial in prop::collection::vec(any::<u64>(), 1..80),
        before in prop::collection::vec(any::<u64>(), 0..60),
        after in prop::collection::vec(any::<u64>(), 1..60),
        threshold in 2usize..8,
        max_runs in 1usize..4,
    ) {
        let init = sorted_unique(initial);
        let mut idx = DeltaIndex::new(init.clone(), cfg(), threshold).with_tiering(max_runs);
        let mut oracle: BTreeSet<u64> = init.iter().copied().collect();
        for &k in &before {
            idx.insert(k);
            oracle.insert(k);
        }
        let cut = idx.snapshot();
        let frozen: Vec<u64> = oracle.iter().copied().collect();
        let frozen_runs = cut.runs().len();

        // Drive the live index through more seals and at least one
        // compaction opportunity.
        for &k in &after {
            idx.insert(k);
            if idx.needs_compaction() {
                idx.compact();
            }
        }
        idx.compact();

        // The cut is byte-for-byte the pre-mutation state.
        prop_assert_eq!(cut.len(), frozen.len());
        prop_assert_eq!(cut.runs().len(), frozen_runs, "runs grew into the snapshot");
        let hi = frozen.last().map_or(0, |&k| k.saturating_add(1));
        let visible: Vec<u64> = cut.range_keys(0, hi);
        let want: Vec<u64> = frozen.iter().copied().filter(|&k| k < hi).collect();
        prop_assert_eq!(visible, want);
        for (i, &k) in frozen.iter().enumerate() {
            prop_assert!(cut.contains(k), "snapshot lost {}", k);
            prop_assert_eq!(cut.rank(k), i, "rank {}", k);
        }
    }
}

/// All-duplicate streams never seal: every insert resolves in the
/// membership probe (buffer, runs, or base) and the tier state is
/// inert.
#[test]
fn all_duplicate_streams_never_seal_or_compact() {
    let data: Vec<u64> = (0..50u64).map(|i| i * 3).collect();
    let mut idx = DeltaIndex::new(data.clone(), cfg(), 4).with_tiering(2);
    for _round in 0..5 {
        for &k in &data {
            assert!(!idx.insert(k), "duplicate {k} must be a no-op");
        }
    }
    assert_eq!(idx.len(), 50);
    assert_eq!(idx.seals(), 0);
    assert_eq!(idx.run_count(), 0);
    assert_eq!(idx.compactions(), 0);
    assert_eq!(idx.pending(), 0);

    // Duplicates of keys already *sealed into runs* are no-ops too.
    for k in 0..8u64 {
        assert!(idx.insert(k * 3 + 1));
    }
    assert_eq!(idx.run_count(), 2);
    for k in 0..8u64 {
        assert!(!idx.insert(k * 3 + 1), "run-resident duplicate");
    }
    assert_eq!(idx.run_count(), 2, "duplicates never seal");
    assert_eq!(idx.len(), 58);
}

/// `u64::MAX` (and neighbors) behave in every tier: base, sealed run,
/// pending buffer — through a compaction.
#[test]
fn extreme_keys_work_in_every_tier() {
    let mut idx = DeltaIndex::new(vec![0u64, u64::MAX - 2], cfg(), 2).with_tiering(2);
    let mut oracle: BTreeSet<u64> = [0u64, u64::MAX - 2].into_iter().collect();
    for k in [u64::MAX, 1u64, u64::MAX - 1, 2, 3, 4] {
        assert_eq!(idx.insert(k), oracle.insert(k), "k={k}");
    }
    assert!(idx.run_count() > 0, "the stream must have sealed");
    for &q in &[0u64, 1, 2, 3, 4, 5, u64::MAX - 2, u64::MAX - 1, u64::MAX] {
        assert_eq!(idx.contains(q), oracle.contains(&q), "q={q}");
        assert_eq!(idx.rank(q), oracle.range(..q).count(), "rank q={q}");
    }
    while !idx.needs_compaction() {
        let next = idx.len() as u64 * 1000;
        idx.insert(next);
        oracle.insert(next);
    }
    assert!(idx.compact() > 0);
    assert_eq!(idx.len(), oracle.len());
    for &q in &[u64::MAX - 1, u64::MAX] {
        assert_eq!(idx.contains(q), oracle.contains(&q), "post-compact q={q}");
    }
}

/// The full-stack state itself (needs_compaction == true, owner not
/// yet run) serves reads exactly — the stack being "overdue" is a
/// scheduling fact, never a correctness state.
#[test]
fn reads_at_the_compaction_bound_are_exact() {
    let mut idx =
        DeltaIndex::new((0..20u64).map(|i| i * 10).collect::<Vec<_>>(), cfg(), 3).with_tiering(2);
    let mut oracle: BTreeSet<u64> = (0..20u64).map(|i| i * 10).collect();
    let mut k = 1u64;
    while !idx.needs_compaction() {
        assert_eq!(idx.insert(k), oracle.insert(k));
        k += 2;
    }
    assert_eq!(idx.run_count(), 2);
    assert_eq!(idx.len(), oracle.len());
    for q in 0..=200u64 {
        assert_eq!(idx.contains(q), oracle.contains(&q), "q={q}");
        assert_eq!(idx.rank(q), oracle.range(..q).count(), "q={q}");
    }
}
