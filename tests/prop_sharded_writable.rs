//! Property suite: `ShardedWritable` must be observationally identical
//! to a `BTreeSet<u64>` oracle under arbitrary interleavings of
//! inserts, lookups and range scans — across shard counts and through
//! rebalance triggers (load-driven splits and cold-neighbor merges).
//! Sharding, delta buffers, retraining and topology changes are all
//! implementation details; the observable semantics are a sorted set.
//!
//! The aggressive configuration (tiny `max_shard_len`, tiny merge
//! threshold, per-insert scan cadence) makes rebalancing *routine*
//! inside the property run rather than a rare event, so every oracle
//! comparison in the deep CI pass (`PROPTEST_CASES=256`) exercises
//! lookups and scans straddling freshly moved shard boundaries. Fixed
//! deterministic tests below pin the required split ≥ 1 / merge ≥ 1
//! coverage and the edge keysets (empty, single, all-duplicate,
//! `u64::MAX`).

use std::collections::BTreeSet;

use learned_indexes::serve::{
    RebalanceConfig, ShardedSnapshot, ShardedWritable, ShardedWritableConfig,
};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 3] = [1, 2, 5];

/// An aggressive configuration: rebalancing is routine, not rare.
fn aggressive_cfg() -> ShardedWritableConfig {
    ShardedWritableConfig {
        merge_threshold: 4,
        leaf_fraction: 1.0 / 8.0,
        check_interval: 8,
        rebalance: RebalanceConfig {
            max_shard_len: 24,
            merge_max_len: 8,
            max_mean_err: Some(16.0),
            max_shards: 12,
        },
        ..ShardedWritableConfig::default()
    }
}

fn sorted_unique(mut keys: Vec<u64>) -> Vec<u64> {
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// Full equivalence check of one live structure + one snapshot against
/// the oracle, probing around every oracle key and the domain extremes.
fn assert_oracle_equivalence(
    sw: &ShardedWritable,
    oracle: &BTreeSet<u64>,
) -> Result<(), TestCaseError> {
    let snap = sw.snapshot();
    prop_assert_eq!(sw.len(), oracle.len());
    prop_assert_eq!(snap.len(), oracle.len());

    // The full dump must be exactly the oracle's sorted contents.
    let dump = snap.range_keys(0, u64::MAX);
    let mut want: Vec<u64> = oracle.iter().copied().collect();
    let max_present = want.last() == Some(&u64::MAX);
    if max_present {
        want.pop(); // range_keys' hi bound is exclusive
    }
    prop_assert_eq!(dump, want);
    prop_assert_eq!(snap.contains(u64::MAX), max_present);

    let mut probes: Vec<u64> = vec![0, 1, u64::MAX - 1, u64::MAX];
    probes.extend(
        oracle
            .iter()
            .flat_map(|&k| [k.saturating_sub(1), k, k.saturating_add(1)]),
    );
    for q in probes {
        prop_assert_eq!(sw.contains(q), oracle.contains(&q), "live contains q={}", q);
        prop_assert_eq!(
            snap.contains(q),
            oracle.contains(&q),
            "snap contains q={}",
            q
        );
        prop_assert_eq!(snap.rank(q), oracle.range(..q).count(), "snap rank q={}", q);
    }
    assert_snapshot_internally_consistent(&snap)?;
    Ok(())
}

/// Structural invariants every snapshot must satisfy regardless of the
/// oracle: prefix bookkeeping sums to the total, and each shard's view
/// holds only keys inside its ownership range.
fn assert_snapshot_internally_consistent(snap: &ShardedSnapshot) -> Result<(), TestCaseError> {
    let total = snap.rank(u64::MAX) + usize::from(snap.contains(u64::MAX));
    prop_assert_eq!(total, snap.len(), "torn snapshot length");
    let bounds = snap.router().boundaries();
    prop_assert_eq!(snap.shard_count(), bounds.len() + 1);
    let per_shard: usize = snap.shard_snapshots().iter().map(|s| s.len()).sum();
    prop_assert_eq!(per_shard, snap.len());
    for (s, shard) in snap.shard_snapshots().iter().enumerate() {
        let lo = if s == 0 { 0 } else { bounds[s - 1] };
        // Keys below the ownership range: none.
        prop_assert_eq!(shard.rank(lo), 0, "shard {} holds keys below its range", s);
        // Keys at/above the next bound: none — the upper bound belongs
        // to the next shard.
        if s < bounds.len() {
            let hi = bounds[s];
            prop_assert!(!shard.contains(hi), "shard {} holds its upper bound", s);
            prop_assert_eq!(
                shard.rank(hi),
                shard.len(),
                "shard {} holds keys above its upper bound",
                s
            );
        }
    }
    Ok(())
}

/// Drive an op sequence against both structure and oracle.
fn apply_ops(
    sw: &ShardedWritable,
    oracle: &mut BTreeSet<u64>,
    ops: &[(u8, u64, u64)],
) -> Result<(), TestCaseError> {
    for &(op, a, b) in ops {
        match op % 4 {
            0 | 1 => {
                // Insert dominates the mix: it is what moves topology.
                prop_assert_eq!(sw.insert(a), oracle.insert(a), "insert {}", a);
            }
            2 => {
                prop_assert_eq!(sw.contains(a), oracle.contains(&a), "contains {}", a);
            }
            _ => {
                let (lo, hi) = (a.min(b), a.max(b));
                let got = sw.range_keys(lo, hi);
                let want: Vec<u64> = oracle.range(lo..hi).copied().collect();
                prop_assert_eq!(got, want, "range [{}, {})", lo, hi);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary interleavings over a small key domain (dense
    /// collisions, duplicate inserts, boundary-straddling ranges) at
    /// every shard count, with rebalancing running hot.
    #[test]
    fn interleaved_ops_match_btreeset_small_domain(
        initial in prop::collection::vec(0u64..512, 0..64),
        ops in prop::collection::vec((any::<u8>(), 0u64..512, 0u64..512), 1..150),
    ) {
        let init = sorted_unique(initial);
        for shards in SHARD_COUNTS {
            let sw = ShardedWritable::new(init.clone(), shards, aggressive_cfg());
            let mut oracle: BTreeSet<u64> = init.iter().copied().collect();
            apply_ops(&sw, &mut oracle, &ops)?;
            assert_oracle_equivalence(&sw, &oracle)?;
        }
    }

    /// Full-domain keys (extreme spreads, u64::MAX neighborhoods).
    #[test]
    fn interleaved_ops_match_btreeset_full_domain(
        initial in prop::collection::vec(any::<u64>(), 0..48),
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..100),
    ) {
        let init = sorted_unique(initial);
        for shards in [1usize, 3] {
            let sw = ShardedWritable::new(init.clone(), shards, aggressive_cfg());
            let mut oracle: BTreeSet<u64> = init.iter().copied().collect();
            apply_ops(&sw, &mut oracle, &ops)?;
            assert_oracle_equivalence(&sw, &oracle)?;
        }
    }

    /// `insert_batch` must be observationally identical to N scalar
    /// `insert` calls in input order: the same per-key newly-inserted
    /// flags, and the same final snapshot — across shard counts, with
    /// the aggressive configuration keeping rebalance triggers routine
    /// mid-stream (batches land before, between, and after splits and
    /// merges). Intra-batch duplicates and cross-batch duplicates are
    /// both exercised by the small key domain.
    #[test]
    fn insert_batch_equals_scalar_inserts(
        initial in prop::collection::vec(0u64..400, 0..48),
        batches in prop::collection::vec(
            prop::collection::vec(0u64..400, 0..40), 1..12),
    ) {
        let init = sorted_unique(initial);
        for shards in SHARD_COUNTS {
            let batched = ShardedWritable::new(init.clone(), shards, aggressive_cfg());
            let scalar = ShardedWritable::new(init.clone(), shards, aggressive_cfg());
            for batch in &batches {
                let got = batched.insert_batch(batch);
                let want: Vec<bool> = batch.iter().map(|&k| scalar.insert(k)).collect();
                prop_assert_eq!(got, want, "shards={}", shards);
            }
            // Same final snapshot, bit for bit.
            let bs = batched.snapshot();
            let ss = scalar.snapshot();
            prop_assert_eq!(bs.len(), ss.len());
            prop_assert_eq!(
                bs.range_keys(0, u64::MAX),
                ss.range_keys(0, u64::MAX)
            );
            prop_assert_eq!(bs.contains(u64::MAX), ss.contains(u64::MAX));
            assert_snapshot_internally_consistent(&bs)?;
            assert_snapshot_internally_consistent(&ss)?;
        }
    }

    /// Full-domain batch ≡ scalar (extreme spreads, `u64::MAX`
    /// neighborhoods, huge ownership gaps).
    #[test]
    fn insert_batch_equals_scalar_inserts_full_domain(
        initial in prop::collection::vec(any::<u64>(), 0..32),
        batches in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 0..24), 1..8),
    ) {
        let init = sorted_unique(initial);
        let batched = ShardedWritable::new(init.clone(), 3, aggressive_cfg());
        let scalar = ShardedWritable::new(init, 3, aggressive_cfg());
        for batch in &batches {
            let got = batched.insert_batch(batch);
            let want: Vec<bool> = batch.iter().map(|&k| scalar.insert(k)).collect();
            prop_assert_eq!(got, want);
        }
        let bs = batched.snapshot();
        let ss = scalar.snapshot();
        prop_assert_eq!(bs.len(), ss.len());
        prop_assert_eq!(bs.range_keys(0, u64::MAX), ss.range_keys(0, u64::MAX));
        prop_assert_eq!(bs.contains(u64::MAX), ss.contains(u64::MAX));
    }

    /// Explicit rebalance calls interleaved with ops never change
    /// semantics, and the topology stays within its configured budget.
    #[test]
    fn explicit_rebalance_is_semantically_invisible(
        initial in prop::collection::vec(0u64..100_000, 0..80),
        ops in prop::collection::vec((any::<u8>(), 0u64..100_000, 0u64..100_000), 1..80),
    ) {
        let init = sorted_unique(initial);
        let cfg = aggressive_cfg();
        let sw = ShardedWritable::new(init.clone(), 4, cfg.clone());
        let mut oracle: BTreeSet<u64> = init.iter().copied().collect();
        for chunk in ops.chunks(16) {
            apply_ops(&sw, &mut oracle, chunk)?;
            sw.rebalance();
            prop_assert!(sw.shard_count() <= cfg.rebalance.max_shards);
        }
        assert_oracle_equivalence(&sw, &oracle)?;
    }
}

// ---- range_keys boundary semantics: live vs snapshot vs oracle ----

/// One window checked on the live structure AND a snapshot against the
/// oracle, including the degenerate shapes: `lo == hi` and `lo > hi`
/// are empty (the bound is `[lo, hi)`, hi-exclusive), never a panic
/// and never a wrapped-around scan.
fn assert_window(
    sw: &ShardedWritable,
    snap: &ShardedSnapshot,
    oracle: &BTreeSet<u64>,
    lo: u64,
    hi: u64,
) -> Result<(), TestCaseError> {
    let want: Vec<u64> = if lo < hi {
        oracle.range(lo..hi).copied().collect()
    } else {
        Vec::new()
    };
    prop_assert_eq!(sw.range_keys(lo, hi), want.clone(), "live [{}, {})", lo, hi);
    prop_assert_eq!(snap.range_keys(lo, hi), want, "snap [{}, {})", lo, hi);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary (unnormalized!) windows over full-domain keysets:
    /// empty windows, inverted windows, windows clamped at the domain
    /// extremes, windows straddling every shard boundary. Live and
    /// snapshot scans must agree with the oracle bit for bit.
    #[test]
    fn range_keys_windows_match_the_oracle(
        initial in prop::collection::vec(any::<u64>(), 0..48),
        windows in prop::collection::vec((any::<u64>(), any::<u64>()), 1..24),
    ) {
        let init = sorted_unique(initial);
        for shards in [1usize, 3, 5] {
            let sw = ShardedWritable::new(init.clone(), shards, aggressive_cfg());
            let oracle: BTreeSet<u64> = init.iter().copied().collect();
            let snap = sw.snapshot();
            for &(a, b) in &windows {
                // As given (possibly inverted), normalized, degenerate,
                // and pinned to the domain extremes.
                assert_window(&sw, &snap, &oracle, a, b)?;
                assert_window(&sw, &snap, &oracle, a.min(b), a.max(b))?;
                assert_window(&sw, &snap, &oracle, a, a)?;
                assert_window(&sw, &snap, &oracle, 0, a)?;
                assert_window(&sw, &snap, &oracle, a, u64::MAX)?;
            }
        }
    }
}

/// Windows pinned to the *actual* ownership bounds of a multi-shard
/// topology, with the bound keys themselves present (inserted more than
/// once — duplicate inserts must not change scan semantics). A bound
/// key belongs to the shard above it; a window ending exactly at a
/// bound must not leak it, a window starting at one must yield it.
#[test]
fn range_keys_straddling_live_shard_boundaries() {
    let init: Vec<u64> = (0..120u64).map(|i| i * 9).collect();
    let sw = ShardedWritable::new(init.clone(), 5, aggressive_cfg());
    let mut oracle: BTreeSet<u64> = init.iter().copied().collect();
    let bounds = sw.bounds();
    assert!(!bounds.is_empty(), "need a multi-shard topology");
    // Make every boundary key present, twice (the duplicate is a no-op).
    for &b in &bounds {
        let newly = oracle.insert(b);
        assert_eq!(sw.insert(b), newly, "bound {b}");
        assert!(!sw.insert(b), "duplicate bound insert must be a no-op");
    }
    let snap = sw.snapshot();
    for &b in &bounds {
        for (lo, hi) in [
            (b, b),                                       // empty at the boundary
            (b.saturating_sub(1), b),                     // ends at the bound: excludes it
            (b, b.saturating_add(1)),                     // starts at the bound: includes it
            (b.saturating_sub(20), b.saturating_add(20)), // straddles the shard seam
            (b.saturating_add(1), b.saturating_sub(1)),   // inverted: empty
        ] {
            assert_window(&sw, &snap, &oracle, lo, hi).unwrap();
        }
        let starts_at = snap.range_keys(b, b.saturating_add(1));
        assert_eq!(starts_at, vec![b], "bound {b} must open its own window");
        assert!(
            !snap.range_keys(b.saturating_sub(1), b).contains(&b),
            "hi must stay exclusive at the shard seam"
        );
    }
}

/// The top of the domain: `hi == u64::MAX` is still exclusive, so
/// `u64::MAX` itself is reachable only via `contains`/`len` — a scan
/// can never return it. The suite's equivalence helper relies on this;
/// pin it explicitly.
#[test]
fn range_keys_at_the_top_of_the_domain() {
    let init = vec![0u64, 1, 1 << 40, u64::MAX - 1, u64::MAX];
    let sw = ShardedWritable::new(init.clone(), 3, aggressive_cfg());
    let oracle: BTreeSet<u64> = init.iter().copied().collect();
    let snap = sw.snapshot();
    for (lo, hi) in [
        (0, u64::MAX),            // everything except MAX itself
        (u64::MAX - 1, u64::MAX), // exactly one key
        (u64::MAX, u64::MAX),     // empty: lo == hi at the top
        (u64::MAX, 0),            // inverted at the extremes
        (u64::MAX - 2, u64::MAX),
    ] {
        assert_window(&sw, &snap, &oracle, lo, hi).unwrap();
    }
    assert!(sw.contains(u64::MAX), "MAX is present, just not scannable");
    assert_eq!(
        sw.range_keys(0, u64::MAX).len(),
        sw.len() - 1,
        "a full scan misses exactly the MAX key"
    );
}

// ---- Deterministic rebalance-trigger and edge-keyset coverage ----

/// The acceptance-criteria run: one structure driven through at least
/// one load-triggered split AND at least one shard merge, equivalent to
/// the oracle at every stage, with snapshot bookkeeping intact.
#[test]
fn equivalence_through_a_split_and_a_merge() {
    // Phase 1 — many cold shards over sparse data (3 keys each, so an
    // adjacent pair fits the merge budget): the first rebalance merges
    // neighbors.
    let init: Vec<u64> = (0..24u64).map(|i| i * 1000).collect();
    let sw = ShardedWritable::new(init.clone(), 8, aggressive_cfg());
    let mut oracle: BTreeSet<u64> = init.iter().copied().collect();
    assert_eq!(sw.shard_count(), 8);
    sw.rebalance();
    assert!(sw.shard_merges() >= 1, "cold topology must merge");
    assert_oracle_equivalence(&sw, &oracle).unwrap();

    // Phase 2 — heavy inserts: load-triggered splits.
    for k in 0..300u64 {
        let key = k * 137 % 40_000;
        assert_eq!(sw.insert(key), oracle.insert(key), "insert {key}");
    }
    assert!(sw.splits() >= 1, "insert load must split");
    assert_oracle_equivalence(&sw, &oracle).unwrap();

    // The topology actually changed and stayed paired with its router.
    assert_eq!(
        sw.generation(),
        (sw.splits() + sw.shard_merges()) as u64,
        "every rebalance action published exactly one topology"
    );
}

/// One oversized batch must drive the topology through splits (the
/// post-batch rebalance loops until stable) and still agree with the
/// oracle key for key — the batched path's per-shard bucketing and the
/// rebalancer compose.
#[test]
fn one_big_batch_drives_splits_and_matches_the_oracle() {
    let init: Vec<u64> = (0..16u64).map(|i| i * 100).collect();
    let sw = ShardedWritable::new(init.clone(), 2, aggressive_cfg());
    let mut oracle: BTreeSet<u64> = init.iter().copied().collect();
    let batch: Vec<u64> = (0..500u64).map(|i| (i * 7) % 1600).collect();
    let flags = sw.insert_batch(&batch);
    let want: Vec<bool> = batch.iter().map(|&k| oracle.insert(k)).collect();
    assert_eq!(flags, want);
    assert!(sw.splits() >= 1, "an oversized batch must split");
    assert_oracle_equivalence(&sw, &oracle).unwrap();
}

#[test]
fn empty_initial_keyset() {
    let sw = ShardedWritable::new(Vec::<u64>::new(), 4, aggressive_cfg());
    let mut oracle = BTreeSet::new();
    assert!(sw.is_empty());
    assert_oracle_equivalence(&sw, &oracle).unwrap();
    for k in [5u64, 0, u64::MAX, 5, 1 << 40] {
        assert_eq!(sw.insert(k), oracle.insert(k));
    }
    assert_oracle_equivalence(&sw, &oracle).unwrap();
}

#[test]
fn single_key_and_all_duplicate_inserts() {
    let sw = ShardedWritable::new(vec![7u64], 3, aggressive_cfg());
    let mut oracle = BTreeSet::from([7u64]);
    for _ in 0..100 {
        assert!(!sw.insert(7), "duplicate of the single key");
    }
    assert_eq!(sw.len(), 1);
    assert_eq!(sw.splits(), 0, "duplicates must not build up load");
    assert_oracle_equivalence(&sw, &oracle).unwrap();
    assert!(sw.insert(8) && oracle.insert(8));
    assert_oracle_equivalence(&sw, &oracle).unwrap();
}

#[test]
fn max_key_saturated_keyset() {
    let init = vec![0u64, 1, u64::MAX - 2, u64::MAX - 1, u64::MAX];
    let sw = ShardedWritable::new(init.clone(), 5, aggressive_cfg());
    let mut oracle: BTreeSet<u64> = init.into_iter().collect();
    assert_oracle_equivalence(&sw, &oracle).unwrap();
    for k in (0..60u64).map(|i| u64::MAX - i) {
        assert_eq!(sw.insert(k), oracle.insert(k), "insert {k}");
    }
    assert_oracle_equivalence(&sw, &oracle).unwrap();
    let snap = sw.snapshot();
    assert_eq!(snap.range_keys(u64::MAX - 5, u64::MAX).len(), 5);
}

/// Snapshots taken before topology changes keep serving their frozen
/// state while the live structure moves on.
#[test]
fn old_snapshots_survive_rebalances_frozen() {
    let init: Vec<u64> = (0..64u64).map(|i| i * 4).collect();
    let sw = ShardedWritable::new(init, 2, aggressive_cfg());
    let before = sw.snapshot();
    for k in 0..200u64 {
        sw.insert(k * 4 + 1);
    }
    assert!(sw.splits() >= 1);
    assert_eq!(before.len(), 64, "frozen");
    assert!(!before.contains(1));
    assert_snapshot_internally_consistent(&before).unwrap();
    let after = sw.snapshot();
    assert_eq!(after.len(), 264);
    assert_snapshot_internally_consistent(&after).unwrap();
}
