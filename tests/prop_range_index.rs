//! Property-based tests: range-index correctness over arbitrary key
//! multisets and query points.

use learned_indexes::btree::{
    BTreeIndex, FastTree, InterpBTree, LookupTable, PagedIndex, RangeIndex,
};
use learned_indexes::rmi::{learned_sort, Rmi, RmiConfig, SearchStrategy, TopModel};
use proptest::prelude::*;

fn sorted_unique(keys: Vec<u64>) -> Vec<u64> {
    let mut k = keys;
    k.sort_unstable();
    k.dedup();
    k
}

fn oracle(data: &[u64], q: u64) -> usize {
    data.partition_point(|&k| k < q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_oracle(
        keys in prop::collection::vec(any::<u64>(), 0..300),
        queries in prop::collection::vec(any::<u64>(), 1..50),
        page in 2usize..64,
    ) {
        let data = sorted_unique(keys);
        let idx = BTreeIndex::new(data.clone(), page);
        for q in queries {
            prop_assert_eq!(idx.lower_bound(q), oracle(&data, q));
        }
    }

    #[test]
    fn fast_tree_matches_oracle(
        keys in prop::collection::vec(any::<u64>(), 0..300),
        queries in prop::collection::vec(any::<u64>(), 1..50),
    ) {
        let data = sorted_unique(keys);
        let idx = FastTree::new(data.clone());
        for q in queries {
            prop_assert_eq!(idx.lower_bound(q), oracle(&data, q));
        }
    }

    #[test]
    fn lookup_table_matches_oracle(
        keys in prop::collection::vec(any::<u64>(), 0..500),
        queries in prop::collection::vec(any::<u64>(), 1..50),
    ) {
        let data = sorted_unique(keys);
        let idx = LookupTable::new(data.clone());
        for q in queries {
            prop_assert_eq!(idx.lower_bound(q), oracle(&data, q));
        }
    }

    #[test]
    fn interp_btree_matches_oracle(
        keys in prop::collection::vec(any::<u64>(), 0..300),
        queries in prop::collection::vec(any::<u64>(), 1..50),
        budget in 64usize..4096,
    ) {
        let data = sorted_unique(keys);
        let idx = InterpBTree::with_budget(data.clone(), budget);
        for q in queries {
            prop_assert_eq!(idx.lower_bound(q), oracle(&data, q));
        }
    }

    #[test]
    fn rmi_matches_oracle_for_all_strategies(
        keys in prop::collection::vec(any::<u64>(), 0..400),
        queries in prop::collection::vec(any::<u64>(), 1..40),
        leaves in 1usize..64,
        strategy_idx in 0usize..4,
    ) {
        let data = sorted_unique(keys);
        let cfg = RmiConfig::two_stage(TopModel::Linear, leaves)
            .with_search(SearchStrategy::ALL[strategy_idx]);
        let rmi = Rmi::build(data.clone(), &cfg);
        // Both arbitrary probes and exact stored keys.
        for q in queries.iter().copied().chain(data.iter().copied()) {
            prop_assert_eq!(rmi.lower_bound(q), oracle(&data, q));
        }
    }

    #[test]
    fn hybrid_rmi_matches_oracle(
        keys in prop::collection::vec(any::<u64>(), 0..300),
        queries in prop::collection::vec(any::<u64>(), 1..40),
        threshold in 0u32..16,
    ) {
        let data = sorted_unique(keys);
        let cfg = RmiConfig::two_stage(TopModel::Linear, 8).with_hybrid(threshold);
        let rmi = Rmi::build(data.clone(), &cfg);
        for q in queries {
            prop_assert_eq!(rmi.lower_bound(q), oracle(&data, q));
        }
    }

    #[test]
    fn paged_index_generic_matches_specialized(
        keys in prop::collection::vec(any::<u64>(), 0..300),
        queries in prop::collection::vec(any::<u64>(), 1..30),
        page in 2usize..32,
    ) {
        let data = sorted_unique(keys);
        let paged = PagedIndex::new(data.clone(), page);
        let btree = BTreeIndex::new(data.clone(), page);
        for q in queries {
            prop_assert_eq!(paged.lower_bound(&q), btree.lower_bound(q));
        }
    }

    #[test]
    fn learned_sort_is_a_sorting_function(
        keys in prop::collection::vec(any::<u64>(), 0..2000),
    ) {
        use learned_indexes::rmi::sort::SortModel;
        let sorted = learned_sort(&keys, SortModel::Linear);
        let mut expect = keys.clone();
        expect.sort_unstable();
        prop_assert_eq!(sorted, expect);
    }

    #[test]
    fn rmi_error_envelope_contains_stored_keys(
        keys in prop::collection::vec(any::<u64>(), 2..400),
        leaves in 1usize..32,
    ) {
        let data = sorted_unique(keys);
        prop_assume!(data.len() >= 2);
        let rmi = Rmi::build(data.clone(), &RmiConfig::two_stage(TopModel::Linear, leaves));
        for (i, &k) in data.iter().enumerate() {
            let p = rmi.predict(k);
            prop_assert!(p.lo <= i && i < p.hi.max(p.lo + 1),
                "key {} at {} outside {}..{}", k, i, p.lo, p.hi);
        }
    }
}
