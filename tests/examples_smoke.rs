//! Smoke tests over the `examples/` directory.
//!
//! Each example's body lives in a `pub fn run(n: usize)` precisely so it
//! can be included here (via `#[path]`) and executed at a tiny key count
//! on every `cargo test` — examples cannot silently rot. The examples'
//! own `main` functions run the same code at full scale.

#[allow(dead_code)]
#[path = "../examples/quickstart.rs"]
mod quickstart;

#[allow(dead_code)]
#[path = "../examples/learned_hashmap.rs"]
mod learned_hashmap;

#[allow(dead_code)]
#[path = "../examples/phishing_filter.rs"]
mod phishing_filter;

#[allow(dead_code)]
#[path = "../examples/weblog_index.rs"]
mod weblog_index;

#[allow(dead_code)]
#[path = "../examples/index_synthesis.rs"]
mod index_synthesis;

#[allow(dead_code)]
#[path = "../examples/warm_restart.rs"]
mod warm_restart;

#[allow(dead_code)]
#[path = "../examples/crash_recovery.rs"]
mod crash_recovery;

#[allow(dead_code)]
#[path = "../examples/live_stats.rs"]
mod live_stats;

#[test]
fn quickstart_smoke() {
    quickstart::run(3_000);
}

#[test]
fn learned_hashmap_smoke() {
    learned_hashmap::run(5_000);
}

#[test]
fn phishing_filter_smoke() {
    phishing_filter::run(1_500);
}

#[test]
fn weblog_index_smoke() {
    weblog_index::run(3_000);
}

#[test]
fn index_synthesis_smoke() {
    index_synthesis::run(2_000);
}

#[test]
fn warm_restart_smoke() {
    warm_restart::run(3_000);
}

#[test]
fn crash_recovery_smoke() {
    crash_recovery::run(2_000);
}

#[test]
fn live_stats_smoke() {
    live_stats::run(4_000);
}
