//! Property suite: persistence round trips. For arbitrary keysets and
//! pending-insert streams, `save → drop → load` must yield a structure
//! observationally identical to the original (oracle equivalence for
//! `contains`/`rank`/`range_keys` and `lower_bound`), with the load
//! provably *not* retraining any model (`train_count` is flat) and the
//! read tier serving its keys zero-copy from the mapped snapshot.
//! Corrupt files are rejected with an error — never a panic, never a
//! silently wrong structure.

use std::collections::BTreeSet;

use learned_indexes::rmi::train_count;
use learned_indexes::serve::{
    PersistError, RangeIndex, RebalanceConfig, RmiShardBuilder, ShardedIndex, ShardedWritable,
    ShardedWritableConfig,
};
use proptest::prelude::*;

fn tmp_path(tag: &str) -> std::path::PathBuf {
    // One file per (process, thread): property cases run sequentially
    // within a test thread, so reuse is safe and cleanup is local.
    std::env::temp_dir().join(format!(
        "li-prop-persist-{}-{:?}-{tag}.lidx",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Remove the snapshot file when the case ends, pass or fail.
struct Cleanup(std::path::PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn sorted_unique(mut keys: Vec<u64>) -> Vec<u64> {
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// A write-path configuration with a merge threshold high enough that
/// the pending stream below stays buffered — the round trip must carry
/// live delta state, not only trained bases.
fn cfg_with_pending_room() -> ShardedWritableConfig {
    ShardedWritableConfig {
        merge_threshold: 64,
        leaf_fraction: 1.0 / 8.0,
        check_interval: 32,
        rebalance: RebalanceConfig {
            max_shard_len: 256,
            merge_max_len: 64,
            max_mean_err: None,
            max_shards: 12,
        },
        ..ShardedWritableConfig::default()
    }
}

/// A tiered write-path configuration: small buffers seal quickly, the
/// run-stack bound is roomy enough that streams below leave sealed runs
/// *pending* at save time, and rebalancing is quiet (nothing may fold
/// the tiers behind the test's back).
fn tiered_cfg() -> ShardedWritableConfig {
    ShardedWritableConfig {
        merge_threshold: 16,
        leaf_fraction: 1.0 / 8.0,
        check_interval: 0,
        max_runs: 4,
        rebalance: RebalanceConfig {
            max_shard_len: 4096,
            merge_max_len: 64,
            max_mean_err: None,
            max_shards: 12,
        },
        ..ShardedWritableConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Read tier: build → save → drop → load ≡ oracle, zero training,
    /// mapped zero-copy backing.
    #[test]
    fn sharded_index_round_trip_is_oracle_equivalent(
        keys in prop::collection::vec(any::<u64>(), 1..400),
        shards in 1usize..6,
    ) {
        let path = tmp_path("si");
        let _guard = Cleanup(path.clone());
        let data = sorted_unique(keys);
        let original = ShardedIndex::build(data.clone(), shards, &RmiShardBuilder::new());
        original.save(&path).map_err(|e| TestCaseError::fail(e.to_string()))?;
        drop(original);

        let before = train_count();
        let loaded = ShardedIndex::load(&path).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(train_count(), before, "load must not train");

        // Zero-copy witness: every shard shares the mapped region.
        prop_assert!(loaded.key_store().is_mapped());
        for s in 0..loaded.shard_count() {
            prop_assert!(loaded.shard(s).key_store().ptr_eq(loaded.key_store()));
        }

        // Oracle equivalence around every key and the domain extremes.
        let mut probes: Vec<u64> = vec![0, 1, u64::MAX - 1, u64::MAX];
        probes.extend(data.iter().flat_map(|&k| [k.saturating_sub(1), k, k.saturating_add(1)]));
        for q in probes {
            prop_assert_eq!(
                loaded.lower_bound(q),
                data.partition_point(|&k| k < q),
                "q={}", q
            );
        }
    }

    /// Write tier: build → insert (some pending) → save → drop → load ≡
    /// oracle, zero training; pending deltas survive; the loaded
    /// structure keeps accepting writes.
    #[test]
    fn sharded_writable_round_trip_is_oracle_equivalent(
        initial in prop::collection::vec(any::<u64>(), 0..200),
        pending in prop::collection::vec(any::<u64>(), 0..48),
        post in prop::collection::vec(any::<u64>(), 0..32),
        shards in 1usize..5,
    ) {
        let path = tmp_path("sw");
        let _guard = Cleanup(path.clone());
        let init = sorted_unique(initial);
        let sw = ShardedWritable::new(init.clone(), shards, cfg_with_pending_room());
        let mut oracle: BTreeSet<u64> = init.iter().copied().collect();
        for &k in &pending {
            prop_assert_eq!(sw.insert(k), oracle.insert(k));
        }
        sw.save(&path).map_err(|e| TestCaseError::fail(e.to_string()))?;
        drop(sw);

        let before = train_count();
        let loaded = ShardedWritable::load(&path).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(train_count(), before, "load must not train");

        prop_assert_eq!(loaded.len(), oracle.len());
        let mut want: Vec<u64> = oracle.iter().copied().collect();
        let max_present = want.last() == Some(&u64::MAX);
        if max_present {
            want.pop(); // range_keys is hi-exclusive
        }
        prop_assert_eq!(loaded.range_keys(0, u64::MAX), want);
        prop_assert_eq!(loaded.contains(u64::MAX), max_present);
        let snap = loaded.snapshot();
        for &k in oracle.iter() {
            prop_assert!(loaded.contains(k), "lost k={}", k);
            prop_assert_eq!(snap.rank(k), oracle.range(..k).count(), "rank k={}", k);
        }

        // Still live: post-load inserts behave exactly like the oracle.
        for &k in &post {
            prop_assert_eq!(loaded.insert(k), oracle.insert(k), "post-load insert {}", k);
        }
        prop_assert_eq!(loaded.len(), oracle.len());
    }

    /// Tiered write tier: whatever tier state the random stream leaves
    /// behind (pending buffers, sealed runs, freshly compacted bases —
    /// in any per-shard mixture), `save → drop → load` preserves it
    /// exactly: same key set, same run/sealed accounting, zero
    /// training, and the loaded structure keeps sealing on new writes.
    #[test]
    fn tiered_round_trip_preserves_arbitrary_tier_states(
        initial in prop::collection::vec(any::<u64>(), 0..200),
        stream in prop::collection::vec(any::<u64>(), 0..120),
        shards in 1usize..4,
    ) {
        let path = tmp_path("sw-tiered");
        let _guard = Cleanup(path.clone());
        let init = sorted_unique(initial);
        let sw = ShardedWritable::new(init.clone(), shards, tiered_cfg());
        let mut oracle: BTreeSet<u64> = init.iter().copied().collect();
        for &k in &stream {
            prop_assert_eq!(sw.insert(k), oracle.insert(k));
        }
        let (runs_before, sealed_before, pending_before) =
            (sw.run_count(), sw.sealed_keys(), sw.pending());
        sw.save(&path).map_err(|e| TestCaseError::fail(e.to_string()))?;
        drop(sw);

        let before = train_count();
        let loaded = ShardedWritable::load(&path).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(train_count(), before, "load must not train");

        // Tier-for-tier identical, not merely key-equivalent: sealed
        // runs come back as sealed runs, pending stays pending.
        prop_assert_eq!(loaded.run_count(), runs_before);
        prop_assert_eq!(loaded.sealed_keys(), sealed_before);
        prop_assert_eq!(loaded.pending(), pending_before);
        prop_assert_eq!(loaded.len(), oracle.len());
        for &k in oracle.iter() {
            prop_assert!(loaded.contains(k), "lost k={}", k);
        }

        // Still live and still tiered: post-load writes behave like the
        // oracle (and, with 64 fresh keys against a 16-key buffer, keep
        // sealing/compacting without breaking it).
        for k in 0..64u64 {
            let key = k.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            prop_assert_eq!(loaded.insert(key), oracle.insert(key), "post-load insert {}", key);
        }
        prop_assert_eq!(loaded.len(), oracle.len());
    }

    /// Corruption: flipping any single byte of a valid snapshot makes
    /// `load` return an error (checksums, magic, or structural checks)
    /// — it must never panic and never produce a structure silently.
    #[test]
    fn corrupting_any_byte_is_rejected_not_misloaded(
        flip_seed in any::<u64>(),
    ) {
        let path = tmp_path("corrupt");
        let _guard = Cleanup(path.clone());
        let data: Vec<u64> = (0..256u64).map(|i| i * 3).collect();
        let idx = ShardedIndex::build(data, 2, &RmiShardBuilder::new());
        idx.save(&path).map_err(|e| TestCaseError::fail(e.to_string()))?;

        let mut bytes = std::fs::read(&path).unwrap();
        let pos = (flip_seed as usize) % bytes.len();
        let bit = 1u8 << ((flip_seed >> 32) % 8);
        bytes[pos] ^= bit;
        std::fs::write(&path, &bytes).unwrap();

        match ShardedIndex::load(&path) {
            Err(_) => {} // rejected: good
            Ok(loaded) => {
                // The only survivable flips are inside the header's
                // zero padding (bytes 48..4096 are reserved); anywhere
                // else must have been caught by a checksum.
                prop_assert!(
                    (48..4096).contains(&pos),
                    "a flip at byte {} (outside the reserved padding) loaded successfully",
                    pos
                );
                // And even then the structure must answer correctly.
                prop_assert_eq!(loaded.lower_bound(300), 100);
            }
        }
    }
}

/// A snapshot with a guaranteed NON-empty run stack round-trips: the
/// sealed runs come back as sealed runs (not merged into the base, not
/// dropped), `train_count` stays flat across the load, and reads are
/// identical.
#[test]
fn nonempty_run_stacks_round_trip_identically() {
    let path = tmp_path("run-stack");
    let _guard = Cleanup(path.clone());
    // One shard, threshold 16, max_runs 4: 40 fresh odd keys → two
    // sealed runs + 8 pending, stack below the compaction bound.
    let init: Vec<u64> = (0..100u64).map(|i| i * 2).collect();
    let sw = ShardedWritable::new(init.clone(), 1, tiered_cfg());
    for k in 0..40u64 {
        assert!(sw.insert(k * 2 + 1));
    }
    assert_eq!(sw.run_count(), 2, "the setup must leave sealed runs");
    assert_eq!(sw.sealed_keys(), 32);
    assert_eq!(sw.pending(), 8);
    assert_eq!(sw.compactions(), 0);
    sw.save(&path).unwrap();

    let before = train_count();
    let loaded = ShardedWritable::load(&path).unwrap();
    assert_eq!(
        train_count(),
        before,
        "run mini-model refits are not training events"
    );
    assert_eq!(loaded.run_count(), 2);
    assert_eq!(loaded.sealed_keys(), 32);
    assert_eq!(loaded.pending(), 8);
    assert_eq!(loaded.len(), sw.len());
    assert_eq!(loaded.range_keys(0, u64::MAX), sw.range_keys(0, u64::MAX));
    for q in 0..=240u64 {
        assert_eq!(loaded.contains(q), sw.contains(q), "q={q}");
        assert_eq!(loaded.rank(q), sw.rank(q), "q={q}");
    }
}

/// Flipping a byte inside a saved run's key payload (which lives in
/// the manifest, at the tail of the file) must surface as a typed
/// [`PersistError`] — the manifest checksum catches it before any
/// structural check runs.
#[test]
fn corrupt_run_payload_is_rejected_with_a_typed_error() {
    let path = tmp_path("run-corrupt");
    let _guard = Cleanup(path.clone());
    let sw = ShardedWritable::new(
        (0..100u64).map(|i| i * 2).collect::<Vec<_>>(),
        1,
        tiered_cfg(),
    );
    for k in 0..40u64 {
        sw.insert(k * 2 + 1);
    }
    assert!(sw.run_count() >= 1, "the setup must leave sealed runs");
    sw.save(&path).unwrap();

    // The run stacks are the last per-shard manifest section, so the
    // file's tail bytes are run keys; corrupt one.
    let mut bytes = std::fs::read(&path).unwrap();
    let at = bytes.len() - 12;
    bytes[at] ^= 0x20;
    std::fs::write(&path, &bytes).unwrap();
    match ShardedWritable::load(&path) {
        Err(PersistError::Format(msg)) => {
            assert!(msg.contains("checksum"), "unexpected rejection: {msg}")
        }
        Err(e) => panic!("unexpected error variant: {e}"),
        Ok(_) => panic!("corrupt run payload must be rejected"),
    }
}

/// Loading garbage, a truncated file, or a missing file is an error —
/// and the error variants are the documented ones.
#[test]
fn malformed_files_yield_typed_errors() {
    let path = tmp_path("malformed");
    let _guard = Cleanup(path.clone());

    assert!(matches!(
        ShardedIndex::load(&path),
        Err(PersistError::Io(_))
    ));

    std::fs::write(&path, b"short").unwrap();
    assert!(matches!(
        ShardedIndex::load(&path),
        Err(PersistError::Format(_))
    ));

    let data: Vec<u64> = (0..128u64).collect();
    let idx = ShardedIndex::build(data, 2, &RmiShardBuilder::new());
    idx.save(&path).unwrap();
    // Kind confusion: a read-tier snapshot is not a write-tier one.
    assert!(matches!(
        ShardedWritable::load(&path),
        Err(PersistError::Format(_))
    ));
}

/// Mixed-backend topologies (what `Backend::Auto` produces) round-trip
/// **backend-for-backend**: every loaded shard rebuilds as the same
/// concrete type the original selected, with `train_count` flat and
/// answers oracle-equivalent. Also covers each uniform tree backend so
/// every shard tag (RMI=0, B-Tree=1, interp=2, FAST=3) round-trips.
#[test]
fn mixed_backend_topologies_round_trip_backend_for_backend() {
    use learned_indexes::data::Gauntlet;
    use learned_indexes::serve::Backend;

    // 3 dense near-linear shards (selection keeps RMI) + 1 stepped
    // shard (selection picks a tree family): a genuinely mixed
    // topology out of one Auto build.
    let mut keys: Vec<u64> = (0..90_000u64).map(|i| i * 3).collect();
    keys.extend(
        Gauntlet::Stepped
            .generate(30_000, 7)
            .into_iter()
            .map(|k| k + (1u64 << 40)),
    );
    let cases: Vec<(&str, Backend, Vec<u64>)> = vec![
        ("auto-mixed", Backend::Auto, keys),
        (
            "btree",
            Backend::BTree,
            (0..4_000u64).map(|i| i * 7).collect(),
        ),
        (
            "interp",
            Backend::Interp,
            (0..4_000u64).map(|i| i * 7).collect(),
        ),
        (
            "fast",
            Backend::Fast,
            (0..4_000u64).map(|i| i * 7).collect(),
        ),
    ];
    for (tag, backend, data) in cases {
        let path = tmp_path(&format!("mixed-{tag}"));
        let _guard = Cleanup(path.clone());
        let original = ShardedIndex::build(data.clone(), 4, &backend);
        let names: Vec<String> = (0..4).map(|s| original.shard(s).name()).collect();
        if tag == "auto-mixed" {
            let families: std::collections::BTreeSet<&str> =
                names.iter().map(|n| n.split('(').next().unwrap()).collect();
            assert!(
                families.len() >= 2,
                "the composite keyset must produce a mixed topology, got {names:?}"
            );
        }
        original.save(&path).unwrap();
        drop(original);

        let before = train_count();
        let loaded = ShardedIndex::load(&path).unwrap();
        assert_eq!(train_count(), before, "{tag}: load must not train");
        for (s, want) in names.iter().enumerate() {
            assert_eq!(
                &loaded.shard(s).name(),
                want,
                "{tag}: shard {s} came back as a different backend"
            );
        }
        for &q in data.iter().step_by(37) {
            assert_eq!(
                loaded.lower_bound(q),
                data.partition_point(|&k| k < q),
                "{tag}: q={q}"
            );
        }
    }
}

/// FNV-1a (64-bit), bit-identical to the snapshot format's checksum —
/// used below to re-seal a file after a *semantic* corruption, so the
/// load failure proves the typed validation path, not the checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A corrupted backend-tag byte — re-sealed with valid checksums so it
/// reaches the decoder — is rejected with a typed `Format` error
/// naming the tag, never a panic and never a silently wrong backend.
#[test]
fn corrupt_backend_tag_is_a_typed_format_error() {
    use learned_indexes::serve::Backend;

    let path = tmp_path("bad-tag");
    let _guard = Cleanup(path.clone());
    let n_keys = 256usize;
    let data: Vec<u64> = (0..n_keys as u64).collect();
    ShardedIndex::build(data, 2, &Backend::Fast)
        .save(&path)
        .unwrap();

    let mut bytes = std::fs::read(&path).unwrap();
    const HEADER_LEN: usize = 4096;
    let keys_end = HEADER_LEN + n_keys * 8;
    // Manifest layout: str "fast" (8-byte len + 4 bytes) · shard count
    // (8) · 3 offsets (24) · then shard 0's one-byte backend tag.
    let tag_pos = keys_end + 8 + 4 + 8 + 24;
    assert_eq!(bytes[tag_pos], 3, "expected the FAST tag where computed");
    bytes[tag_pos] = 9; // no such backend

    // Re-seal: manifest checksum (header bytes 40..48), then the
    // header checksum over bytes 0..56 (bytes 56..64).
    let manifest_sum = fnv1a(&bytes[keys_end..]);
    bytes[40..48].copy_from_slice(&manifest_sum.to_le_bytes());
    let header_sum = fnv1a(&bytes[0..56]);
    bytes[56..64].copy_from_slice(&header_sum.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();

    match ShardedIndex::load(&path) {
        Err(PersistError::Format(msg)) => {
            assert!(msg.contains("backend tag"), "unexpected rejection: {msg}")
        }
        Err(e) => panic!("expected a Format error, got {e}"),
        Ok(_) => panic!("a corrupt backend tag must not load"),
    }
}
