//! Property suite: the adaptive backend selector on the adversarial
//! gauntlet. Whatever backend mix `Backend::Auto` picks — per shard,
//! per distribution — the resulting structure must be observationally
//! identical to a flat sorted array / `BTreeSet` oracle: selection is
//! an optimization, never a semantics change. Runs every gauntlet
//! distribution (`li_data::gauntlet`) × shard counts {1, 4, 8}, plus
//! the degenerate keysets (empty, single, all-duplicate, `u64::MAX`).
//!
//! `PROPTEST_CASES` deepens the sweep (CI runs a 256-case pass).

use std::collections::BTreeSet;

use learned_indexes::data::Gauntlet;
use learned_indexes::serve::{
    Backend, RangeIndex, RebalanceConfig, ShardedIndex, ShardedWritable, ShardedWritableConfig,
};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 3] = [1, 4, 8];

fn oracle_lower_bound(data: &[u64], q: u64) -> usize {
    data.partition_point(|&k| k < q)
}

/// Probe keys that stress boundaries: every 7th key ± 1, the global
/// extremes, and shard-boundary neighborhoods.
fn probes(data: &[u64]) -> Vec<u64> {
    let mut qs = vec![0u64, 1, u64::MAX, u64::MAX - 1];
    for &k in data.iter().step_by(7) {
        qs.extend_from_slice(&[k.saturating_sub(1), k, k.saturating_add(1)]);
    }
    if let (Some(&first), Some(&last)) = (data.first(), data.last()) {
        qs.extend_from_slice(&[first, last, last.saturating_add(1)]);
    }
    qs
}

fn assert_index_matches_oracle(
    idx: &ShardedIndex,
    data: &[u64],
    ctx: &str,
) -> Result<(), TestCaseError> {
    for q in probes(data) {
        prop_assert_eq!(
            idx.lower_bound(q),
            oracle_lower_bound(data, q),
            "{} q={}",
            ctx,
            q
        );
    }
    Ok(())
}

/// A write-path config that exercises the selector: low thresholds so
/// inserts trigger merges, splits and (tiered) compactions — each of
/// which re-runs selection under `Backend::Auto`.
fn auto_write_config() -> ShardedWritableConfig {
    ShardedWritableConfig {
        merge_threshold: 32,
        leaf_fraction: 1.0 / 16.0,
        check_interval: 64,
        backend: Backend::Auto,
        rebalance: RebalanceConfig {
            max_shard_len: 4096,
            merge_max_len: 16,
            max_mean_err: None,
            max_shards: 12,
        },
        ..ShardedWritableConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Read tier: an auto-selected `ShardedIndex` over every gauntlet
    /// distribution answers `lower_bound` exactly like the flat sorted
    /// array, at every shard count.
    #[test]
    fn auto_sharded_index_matches_the_flat_oracle(
        seed in any::<u64>(),
        n in 1usize..3000,
    ) {
        for dist in Gauntlet::ALL {
            let data = dist.generate(n, seed);
            for shards in SHARD_COUNTS {
                let idx = ShardedIndex::build(data.clone(), shards, &Backend::Auto);
                assert_index_matches_oracle(
                    &idx,
                    &data,
                    &format!("{} n={n} shards={shards} seed={seed}", dist.name()),
                )?;
            }
        }
    }

    /// Write tier: a `Backend::Auto` `ShardedWritable` seeded from a
    /// gauntlet distribution and fed a fresh insert stream answers
    /// `contains`/`rank`/`len` exactly like a `BTreeSet`, at every
    /// shard count — across the merges/splits the stream provokes
    /// (each of which re-runs selection).
    #[test]
    fn auto_sharded_writable_matches_a_btreeset_oracle(
        seed in any::<u64>(),
        n in 1usize..600,
        inserts in prop::collection::vec(any::<u64>(), 0..150),
    ) {
        for dist in Gauntlet::ALL {
            // The write tier is a set: dedup the seed keyset.
            let mut data = dist.generate(n, seed);
            data.dedup();
            for shards in SHARD_COUNTS {
                let sw = ShardedWritable::new(data.clone(), shards, auto_write_config());
                let mut oracle: BTreeSet<u64> = data.iter().copied().collect();
                for &k in &inserts {
                    prop_assert_eq!(sw.insert(k), oracle.insert(k), "insert {}", k);
                }
                prop_assert_eq!(sw.len(), oracle.len());
                for q in probes(&data).into_iter().chain(inserts.iter().copied()) {
                    prop_assert_eq!(
                        sw.contains(q),
                        oracle.contains(&q),
                        "{} contains {} shards={} seed={}", dist.name(), q, shards, seed
                    );
                    prop_assert_eq!(
                        sw.rank(q),
                        oracle.range(..q).count(),
                        "{} rank {} shards={} seed={}", dist.name(), q, shards, seed
                    );
                }
            }
        }
    }
}

/// Degenerate keysets the selector must survive at every shard count:
/// empty, single key, all-duplicate, and `u64::MAX`-adjacent.
#[test]
fn auto_handles_degenerate_keysets() {
    let cases: Vec<(&str, Vec<u64>)> = vec![
        ("empty", vec![]),
        ("single", vec![42]),
        ("single-max", vec![u64::MAX]),
        ("all-duplicate", vec![7; 500]),
        ("max-adjacent", vec![0, 1, u64::MAX - 1, u64::MAX]),
        (
            "dup-run-and-max",
            (0..300u64)
                .map(|i| (i / 50) * 1000)
                .chain([u64::MAX])
                .collect(),
        ),
    ];
    for (name, data) in &cases {
        for shards in SHARD_COUNTS {
            let idx = ShardedIndex::build(data.clone(), shards, &Backend::Auto);
            for q in probes(data) {
                assert_eq!(
                    idx.lower_bound(q),
                    oracle_lower_bound(data, q),
                    "{name} shards={shards} q={q}"
                );
            }
        }
    }
}

/// The write tier's degenerate cases (unique keysets only — it is a
/// set): growth from empty through the selector's whole lifecycle.
#[test]
fn auto_writable_grows_from_degenerate_seeds() {
    for seed_keys in [vec![], vec![42], vec![0, u64::MAX]] {
        for shards in SHARD_COUNTS {
            let sw = ShardedWritable::new(seed_keys.clone(), shards, auto_write_config());
            let mut oracle: BTreeSet<u64> = seed_keys.iter().copied().collect();
            // A stream long enough to trip merges (threshold 32).
            for i in 0..200u64 {
                let k = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                assert_eq!(sw.insert(k), oracle.insert(k), "insert {k}");
            }
            assert_eq!(sw.len(), oracle.len());
            for &k in oracle.iter().step_by(3) {
                assert!(sw.contains(k), "lost {k} shards={shards}");
            }
            assert!(
                sw.backend_selections() > 0,
                "auto writable must have run selection at least once"
            );
        }
    }
}
