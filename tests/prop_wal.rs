//! Property suite: WAL crash injection. The durability contract under
//! test is exact-prefix semantics — after a crash that tears or
//! corrupts the log at *any* byte, recovery yields precisely the
//! prefix of appended records up to the damage (BTreeSet oracle
//! equivalence), never a gap, never a partial record, never a panic.
//! Recovery loads the snapshot without training a single model
//! (`train_count` flat) and is idempotent: recovering twice from the
//! same files produces the same state and the same report.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

use learned_indexes::rmi::train_count;
use learned_indexes::serve::wal::{self, Wal, WalOp};
use learned_indexes::serve::{
    RebalanceConfig, ShardedWritable, ShardedWritableConfig, WalSyncPolicy,
};
use proptest::prelude::*;

fn tmp_path(tag: &str) -> PathBuf {
    // One file per (process, thread): property cases run sequentially
    // within a test thread, so reuse is safe and cleanup is local.
    std::env::temp_dir().join(format!(
        "li-prop-wal-{}-{:?}-{tag}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Remove the scratch files when the case ends, pass or fail.
struct Cleanup(Vec<PathBuf>);
impl Drop for Cleanup {
    fn drop(&mut self) {
        for p in &self.0 {
            let _ = fs::remove_file(p);
        }
    }
}

/// One logged operation: the unit of atomicity in the record format
/// (a batch is one record — all of it survives a crash or none).
#[derive(Debug, Clone)]
enum Op {
    One(u64),
    Many(Vec<u64>),
}

impl Op {
    fn matches(&self, logged: &WalOp) -> bool {
        match (self, logged) {
            (Op::One(k), WalOp::Insert(l)) => k == l,
            (Op::Many(ks), WalOp::InsertBatch(ls)) => ks == ls,
            _ => false,
        }
    }
}

/// The vendored proptest shim has no `prop_oneof`/`prop_map`, so ops
/// are generated as raw `(selector, keys)` tuples and decoded here:
/// even selector → scalar insert of the first key, odd → whole-batch
/// insert (keys is always non-empty by the strategy's size range).
type RawOp = (u8, Vec<u64>);

fn decode_ops(raw: Vec<RawOp>) -> Vec<Op> {
    raw.into_iter()
        .map(|(sel, keys)| {
            if sel % 2 == 0 {
                Op::One(keys[0])
            } else {
                Op::Many(keys)
            }
        })
        .collect()
}

fn raw_ops(size: std::ops::Range<usize>) -> impl Strategy<Value = Vec<RawOp>> {
    prop::collection::vec(
        (any::<u8>(), prop::collection::vec(any::<u64>(), 1..8)),
        size,
    )
}

/// A configuration roomy enough that replaying any stream below stays
/// in the delta buffers: no merge fires, so a flat `train_count`
/// across recovery proves the snapshot load *and* the replay train
/// nothing. Rebalance checks are off for the same reason.
fn roomy_cfg() -> ShardedWritableConfig {
    ShardedWritableConfig {
        merge_threshold: 4096,
        leaf_fraction: 1.0 / 8.0,
        check_interval: 0,
        rebalance: RebalanceConfig {
            max_shard_len: usize::MAX,
            merge_max_len: 0,
            max_mean_err: None,
            max_shards: 8,
        },
        ..ShardedWritableConfig::default()
    }
}

/// Append `ops` to a fresh WAL at `path`, returning the byte offset of
/// each record's end — the crash-injection cut points.
fn write_log(path: &PathBuf, ops: &[Op]) -> Vec<u64> {
    let mut wal = Wal::create(path, WalSyncPolicy::PerRecord).expect("create wal");
    let mut ends = Vec::with_capacity(ops.len());
    for op in ops {
        match op {
            Op::One(k) => wal.append_insert(*k).expect("append"),
            Op::Many(ks) => wal.append_batch(ks).expect("append batch"),
        };
        ends.push(wal.position());
    }
    ends
}

/// Number of ops whose record ends at or before byte `cut`.
fn prefix_len(ends: &[u64], cut: u64) -> usize {
    ends.iter().take_while(|&&e| e <= cut).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scan-level exact-prefix semantics, exhaustively: truncate the
    /// log at EVERY byte offset (every record boundary and every
    /// mid-record position) — the scan must decode exactly the ops
    /// whose records fit in the prefix, report the torn remainder,
    /// and keep LSNs strictly increasing. Never a panic on any cut.
    #[test]
    fn truncation_at_every_byte_yields_the_exact_record_prefix(
        raw in raw_ops(1..12),
    ) {
        let ops = decode_ops(raw);
        let log = tmp_path("scan-log");
        let cut_copy = tmp_path("scan-cut");
        let _guard = Cleanup(vec![log.clone(), cut_copy.clone()]);
        let ends = write_log(&log, &ops);
        let full = fs::read(&log).map_err(|e| TestCaseError::fail(e.to_string()))?;

        for cut in 0..=full.len() as u64 {
            fs::write(&cut_copy, &full[..cut as usize])
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            let found = wal::scan(&cut_copy).map_err(|e| TestCaseError::fail(e.to_string()))?;
            let want = prefix_len(&ends, cut);
            prop_assert_eq!(found.records.len(), want, "cut={}", cut);
            for (op, rec) in ops.iter().zip(&found.records) {
                prop_assert!(op.matches(&rec.op), "cut={} lsn={}", cut, rec.lsn);
            }
            prop_assert!(
                found.records.windows(2).all(|w| w[0].lsn < w[1].lsn),
                "LSNs not strictly increasing at cut={}", cut
            );
            let valid_end = if want == 0 { 0 } else { ends[want - 1] };
            prop_assert_eq!(found.valid_len, valid_end, "cut={}", cut);
            prop_assert_eq!(found.torn_bytes(), cut - valid_end, "cut={}", cut);
        }
    }

    /// Scan-level corruption: flip one bit of any byte — the scan must
    /// stop at the record containing the flip (checksum refusal) and
    /// return exactly the ops before it. Records AFTER the corrupt one
    /// are never resurrected: a gap in the middle of the replayed
    /// prefix would reorder history.
    #[test]
    fn a_byte_flip_cuts_the_prefix_at_the_damaged_record(
        raw in raw_ops(1..12),
        pos_seed in any::<usize>(),
        bit in 0u8..8,
    ) {
        let ops = decode_ops(raw);
        let log = tmp_path("flip-log");
        let flip_copy = tmp_path("flip-cut");
        let _guard = Cleanup(vec![log.clone(), flip_copy.clone()]);
        let ends = write_log(&log, &ops);
        let mut bytes = fs::read(&log).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= 1 << bit;
        fs::write(&flip_copy, &bytes).map_err(|e| TestCaseError::fail(e.to_string()))?;

        let found = wal::scan(&flip_copy).map_err(|e| TestCaseError::fail(e.to_string()))?;
        // The flipped byte lives inside the first record whose end
        // offset exceeds `pos`; everything before it must survive
        // untouched, nothing at or past it may decode.
        let want = prefix_len(&ends, pos as u64);
        prop_assert_eq!(
            found.records.len(), want,
            "flip at byte {} bit {}", pos, bit
        );
        for (op, rec) in ops.iter().zip(&found.records) {
            prop_assert!(op.matches(&rec.op));
        }
    }

    /// End-to-end crash recovery against a BTreeSet oracle, at every
    /// record boundary and one mid-record cut per record: build →
    /// durable writes → save (checkpoint truncates the log) → more
    /// durable writes → crash (truncate the log copy at the cut) →
    /// recover. The recovered structure must equal snapshot state plus
    /// exactly the replayed record prefix; the report must account for
    /// every record and byte; the snapshot load and replay must not
    /// train a single model.
    #[test]
    fn recovery_replays_the_exact_durable_prefix(
        initial in prop::collection::vec(any::<u64>(), 1..100),
        raw_before in raw_ops(0..6),
        raw_after in raw_ops(1..10),
        shards in 1usize..4,
    ) {
        let before_save = decode_ops(raw_before);
        let after_save = decode_ops(raw_after);
        let snap = tmp_path("e2e-snap");
        let live_wal = tmp_path("e2e-wal");
        let crash_wal = tmp_path("e2e-crash");
        let _guard = Cleanup(vec![snap.clone(), live_wal.clone(), crash_wal.clone()]);

        let mut data: Vec<u64> = initial;
        data.sort_unstable();
        data.dedup();
        let sw = ShardedWritable::new(data.clone(), shards, roomy_cfg());
        sw.enable_wal(&live_wal, WalSyncPolicy::PerRecord)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;

        let mut oracle: BTreeSet<u64> = data.into_iter().collect();
        let apply = |sw: &ShardedWritable, oracle: &mut BTreeSet<u64>, op: &Op| match op {
            Op::One(k) => {
                sw.insert(*k);
                oracle.insert(*k);
            }
            Op::Many(ks) => {
                sw.insert_batch(ks);
                oracle.extend(ks.iter().copied());
            }
        };
        for op in &before_save {
            apply(&sw, &mut oracle, op);
        }
        sw.save(&snap).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let snapshot_lsn = sw.wal_last_lsn();

        // Phase B: acknowledged-durable writes the snapshot does NOT
        // cover — only the WAL stands between them and the crash.
        let mut ends = Vec::with_capacity(after_save.len());
        let mut prefix_oracles = Vec::with_capacity(after_save.len() + 1);
        prefix_oracles.push(oracle.clone());
        for op in &after_save {
            apply(&sw, &mut oracle, op);
            ends.push(fs::metadata(&live_wal)
                .map_err(|e| TestCaseError::fail(e.to_string()))?
                .len());
            prefix_oracles.push(oracle.clone());
        }
        drop(sw); // the crash: in-memory tiers gone, files remain

        let full = fs::read(&live_wal).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut cuts: Vec<u64> = vec![0];
        for (i, &e) in ends.iter().enumerate() {
            let start = if i == 0 { 0 } else { ends[i - 1] };
            if e > start + 1 {
                cuts.push(start + (e - start) / 2); // mid-record tear
            }
            cuts.push(e); // clean boundary
        }
        for cut in cuts {
            fs::write(&crash_wal, &full[..cut as usize])
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            let trains = train_count();
            let (rec, report) = ShardedWritable::recover_with_config(
                &snap, &crash_wal, WalSyncPolicy::PerRecord, roomy_cfg(),
            ).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(train_count(), trains, "recovery trained at cut={}", cut);

            let k = prefix_len(&ends, cut);
            let want = &prefix_oracles[k];
            prop_assert_eq!(rec.len(), want.len(), "cut={}", cut);
            for &key in want {
                prop_assert!(rec.contains(key), "lost key {} at cut={}", key, cut);
            }
            prop_assert!(report.snapshot_loaded);
            prop_assert_eq!(report.snapshot_lsn, snapshot_lsn);
            prop_assert_eq!(report.replayed, k, "cut={}", cut);
            prop_assert_eq!(report.skipped, 0, "checkpoint left covered records behind");
            let valid_end = if k == 0 { 0 } else { ends[k - 1] };
            prop_assert_eq!(report.truncated_bytes, cut - valid_end, "cut={}", cut);
            prop_assert_eq!(report.last_lsn, snapshot_lsn + k as u64, "cut={}", cut);
            prop_assert!(rec.wal_attached(), "recovery must re-arm the log");
        }
    }

    /// Recovery is idempotent: a recovery that itself "crashes" (its
    /// in-memory result is dropped) changes nothing on disk that a
    /// second recovery would miss — same keys, same report, and the
    /// second scan sees zero torn bytes (the first already truncated
    /// the tail).
    #[test]
    fn recovering_twice_from_the_same_files_is_identical(
        initial in prop::collection::vec(any::<u64>(), 1..60),
        raw in raw_ops(1..10),
        torn_tail in prop::collection::vec(any::<u8>(), 0..20),
    ) {
        let ops = decode_ops(raw);
        let snap = tmp_path("twice-snap");
        let wal_path = tmp_path("twice-wal");
        let _guard = Cleanup(vec![snap.clone(), wal_path.clone()]);

        let mut data: Vec<u64> = initial;
        data.sort_unstable();
        data.dedup();
        let sw = ShardedWritable::new(data, 2, roomy_cfg());
        sw.save(&snap).map_err(|e| TestCaseError::fail(e.to_string()))?;
        sw.enable_wal(&wal_path, WalSyncPolicy::EveryN(4))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        for op in &ops {
            match op {
                Op::One(k) => { sw.insert(*k); }
                Op::Many(ks) => { sw.insert_batch(ks); }
            }
        }
        sw.wal_sync().map_err(|e| TestCaseError::fail(e.to_string()))?;
        drop(sw);
        // Smear a torn tail onto the log: a crash mid-append.
        use std::io::Write;
        fs::OpenOptions::new()
            .append(true)
            .open(&wal_path)
            .and_then(|mut f| f.write_all(&torn_tail))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;

        let (first, report1) = ShardedWritable::recover_with_config(
            &snap, &wal_path, WalSyncPolicy::EveryN(4), roomy_cfg(),
        ).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let keys1 = first.range_keys(0, u64::MAX);
        drop(first); // recovery itself crashes before serving

        let (second, report2) = ShardedWritable::recover_with_config(
            &snap, &wal_path, WalSyncPolicy::EveryN(4), roomy_cfg(),
        ).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(second.range_keys(0, u64::MAX), keys1);
        prop_assert_eq!(report2.replayed, report1.replayed);
        prop_assert_eq!(report2.last_lsn, report1.last_lsn);
        prop_assert_eq!(
            report2.truncated_bytes, 0,
            "first recovery must have truncated the torn tail"
        );
    }
}
