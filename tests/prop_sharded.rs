//! Property suite: `ShardedIndex` must be observationally identical to
//! the flat sorted-array oracle — sharding is an implementation detail,
//! never a semantics change.
//!
//! Coverage matrix: {RMI, B-Tree, InterpBTree, FastTree} backends ×
//! shard counts {1, 3, 7} × arbitrary keysets, with fixed cases for the
//! empty, single-key, all-duplicate and `u64::MAX`-saturated keysets.
//! Duplicate-heavy multisets run against the FastTree backend (the one
//! whose per-shard `lower_bound` is exact on duplicates — the same
//! contract split `prop_batch_lookup` uses); every duplicate-admitting
//! backend is also held to internal batch ≡ scalar ≡ parallel
//! consistency on multisets (the RMI's contract is sorted unique input,
//! so it only appears in the unique-keyset properties).
//! Zero-copy sharding is part of the contract: every shard must be a
//! view of the caller's allocation (`ptr_eq`/`strong_count`).

use learned_indexes::serve::{
    BTreeShardBuilder, FastShardBuilder, InterpShardBuilder, RmiShardBuilder, ShardBuilder,
    ShardedIndex,
};
use learned_indexes::{KeyStore, RangeIndex};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 3] = [1, 3, 7];

fn sorted(mut keys: Vec<u64>) -> Vec<u64> {
    keys.sort_unstable();
    keys
}

fn sorted_unique(keys: Vec<u64>) -> Vec<u64> {
    let mut k = sorted(keys);
    k.dedup();
    k
}

/// Every backend the serving layer must support, with mid-range tuning.
fn all_builders() -> Vec<Box<dyn ShardBuilder>> {
    vec![
        Box::new(RmiShardBuilder::new().with_leaf_fraction(1.0 / 32.0)),
        Box::new(BTreeShardBuilder::new(16)),
        Box::new(InterpShardBuilder::new(512)),
        Box::new(FastShardBuilder),
    ]
}

/// Backends whose build contract admits duplicate keys (the RMI is
/// documented — and debug-asserted — as sorted *unique* input).
fn duplicate_safe_builders() -> Vec<Box<dyn ShardBuilder>> {
    vec![
        Box::new(BTreeShardBuilder::new(16)),
        Box::new(InterpShardBuilder::new(512)),
        Box::new(FastShardBuilder),
    ]
}

fn oracle(data: &[u64], q: u64) -> usize {
    data.partition_point(|&k| k < q)
}

fn upper_oracle(data: &[u64], q: u64) -> usize {
    data.partition_point(|&k| k <= q)
}

/// Probe set: generated queries plus domain extremes and the
/// neighborhood of every 7th stored key (shard-boundary keys included).
fn probes(data: &[u64], queries: &[u64]) -> Vec<u64> {
    let mut qs = queries.to_vec();
    qs.extend_from_slice(&[0, 1, u64::MAX - 1, u64::MAX]);
    for &k in data.iter().step_by(7) {
        qs.extend_from_slice(&[k.saturating_sub(1), k, k.saturating_add(1)]);
    }
    qs
}

/// Full oracle equivalence: scalar, upper bound, batch and parallel
/// batch all agree with the flat sorted array.
fn assert_oracle_equivalence(
    idx: &ShardedIndex,
    data: &[u64],
    queries: &[u64],
) -> Result<(), TestCaseError> {
    let qs = probes(data, queries);
    let mut batch = vec![usize::MAX; qs.len()];
    idx.lower_bound_batch(&qs, &mut batch);
    let mut par = vec![usize::MAX; qs.len()];
    idx.lower_bound_batch_parallel(&qs, &mut par, 3);
    for (i, &q) in qs.iter().enumerate() {
        let want = oracle(data, q);
        prop_assert_eq!(idx.lower_bound(q), want, "{} scalar q={}", idx.name(), q);
        prop_assert_eq!(batch[i], want, "{} batch q={}", idx.name(), q);
        prop_assert_eq!(par[i], want, "{} parallel q={}", idx.name(), q);
        prop_assert_eq!(
            idx.upper_bound(q),
            upper_oracle(data, q),
            "{} upper q={}",
            idx.name(),
            q
        );
    }
    Ok(())
}

/// Internal consistency (well-defined even for backends that are
/// inexact on duplicates): batch and parallel must reproduce scalar.
fn assert_batch_matches_scalar(idx: &ShardedIndex, queries: &[u64]) -> Result<(), TestCaseError> {
    let mut batch = vec![usize::MAX; queries.len()];
    idx.lower_bound_batch(queries, &mut batch);
    let mut par = vec![usize::MAX; queries.len()];
    idx.lower_bound_batch_parallel(queries, &mut par, 4);
    for (i, &q) in queries.iter().enumerate() {
        let want = idx.lower_bound(q);
        prop_assert_eq!(batch[i], want, "{} batch q={}", idx.name(), q);
        prop_assert_eq!(par[i], want, "{} parallel q={}", idx.name(), q);
    }
    Ok(())
}

/// Zero-copy witness: the index and every shard backend must view the
/// caller's allocation, and the handle count must account for them.
fn assert_zero_copy(idx: &ShardedIndex, store: &KeyStore) -> Result<(), TestCaseError> {
    prop_assert!(idx.key_store().ptr_eq(store), "{}", idx.name());
    for s in 0..idx.shard_count() {
        prop_assert!(
            idx.shard(s).key_store().ptr_eq(store),
            "{} shard {}",
            idx.name(),
            s
        );
    }
    // Caller handle + the ShardedIndex's own + at least one per shard.
    prop_assert!(
        store.strong_count() >= idx.shard_count() + 2,
        "{}: strong_count {} for {} shards",
        idx.name(),
        store.strong_count(),
        idx.shard_count()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unique keysets (empty and single-key included via the 0.. lower
    /// bound): every backend × every shard count ≡ the flat oracle.
    #[test]
    fn every_backend_matches_oracle_on_unique_keys(
        keys in prop::collection::vec(any::<u64>(), 0..400),
        queries in prop::collection::vec(any::<u64>(), 1..40),
    ) {
        let data = sorted_unique(keys);
        let store = KeyStore::new(data.clone());
        for builder in all_builders() {
            for shards in SHARD_COUNTS {
                let idx = ShardedIndex::build(store.clone(), shards, builder.as_ref());
                assert_zero_copy(&idx, &store)?;
                assert_oracle_equivalence(&idx, &data, &queries)?;
            }
        }
    }

    /// Duplicate-heavy multisets (tiny domain, long equal runs that
    /// straddle shard boundaries): the duplicate-exact backend must
    /// match the oracle at every shard count.
    #[test]
    fn duplicate_multisets_match_oracle_with_fast_backend(
        keys in prop::collection::vec(0u64..16, 0..300),
        queries in prop::collection::vec(any::<u64>(), 1..40),
    ) {
        let data = sorted(keys);
        let store = KeyStore::new(data.clone());
        for shards in SHARD_COUNTS {
            let idx = ShardedIndex::build(store.clone(), shards, &FastShardBuilder);
            assert_zero_copy(&idx, &store)?;
            assert_oracle_equivalence(&idx, &data, &queries)?;
        }
    }

    /// On multisets every backend must still be internally consistent:
    /// batch and parallel reproduce scalar position-for-position.
    #[test]
    fn every_backend_is_batch_consistent_on_multisets(
        keys in prop::collection::vec(0u64..64, 0..300),
        queries in prop::collection::vec(any::<u64>(), 1..40),
    ) {
        let data = sorted(keys);
        let store = KeyStore::new(data);
        for builder in duplicate_safe_builders() {
            for shards in SHARD_COUNTS {
                let idx = ShardedIndex::build(store.clone(), shards, builder.as_ref());
                assert_batch_matches_scalar(&idx, &queries)?;
            }
        }
    }

    /// Keysets saturated at the top of the domain: `u64::MAX` keys and
    /// probes must round-trip at every shard count.
    #[test]
    fn max_key_saturated_keysets(
        low in prop::collection::vec(any::<u64>(), 0..50),
        max_run in 1usize..20,
    ) {
        let mut data = sorted_unique(low);
        data.retain(|&k| k < u64::MAX);
        data.extend(std::iter::repeat_n(u64::MAX, max_run));
        let store = KeyStore::new(data.clone());
        for shards in SHARD_COUNTS {
            let idx = ShardedIndex::build(store.clone(), shards, &FastShardBuilder);
            assert_oracle_equivalence(&idx, &data, &[u64::MAX - 1, u64::MAX])?;
        }
    }
}

// ---- Fixed edge-case keysets, every backend × every shard count ----

#[test]
fn empty_keyset_every_backend() {
    for builder in all_builders() {
        for shards in SHARD_COUNTS {
            let idx = ShardedIndex::build(Vec::<u64>::new(), shards, builder.as_ref());
            for q in [0u64, 1, 42, u64::MAX] {
                assert_eq!(idx.lower_bound(q), 0, "{}", idx.name());
                assert_eq!(idx.upper_bound(q), 0, "{}", idx.name());
            }
            idx.lower_bound_batch(&[], &mut []);
            idx.lower_bound_batch_parallel(&[], &mut [], 4);
        }
    }
}

#[test]
fn single_key_keyset_every_backend() {
    for builder in all_builders() {
        for shards in SHARD_COUNTS {
            let idx = ShardedIndex::build(vec![9u64], shards, builder.as_ref());
            assert_eq!(
                idx.shard_count(),
                1,
                "{}: clamped to the key count",
                idx.name()
            );
            assert_eq!(idx.lower_bound(8), 0, "{}", idx.name());
            assert_eq!(idx.lower_bound(9), 0, "{}", idx.name());
            assert_eq!(idx.lower_bound(10), 1, "{}", idx.name());
            assert_eq!(idx.lookup(9), Some(0), "{}", idx.name());
            assert_eq!(idx.lookup(8), None, "{}", idx.name());
        }
    }
}

#[test]
fn all_duplicate_keyset_every_backend_is_batch_consistent() {
    // Baselines other than FastTree are documented as inexact on
    // duplicate runs (they return *a* bound, not the first occurrence);
    // what sharding must preserve is each backend's own answer.
    let data = vec![7u64; 100];
    let queries = [0u64, 6, 7, 8, u64::MAX];
    for builder in duplicate_safe_builders() {
        for shards in SHARD_COUNTS {
            let idx = ShardedIndex::build(data.clone(), shards, builder.as_ref());
            let mut batch = vec![usize::MAX; queries.len()];
            idx.lower_bound_batch(&queries, &mut batch);
            for (i, &q) in queries.iter().enumerate() {
                assert_eq!(batch[i], idx.lower_bound(q), "{} q={q}", idx.name());
            }
        }
    }
}

#[test]
fn all_duplicate_keyset_matches_oracle_with_fast_backend() {
    let data = vec![7u64; 100];
    for shards in SHARD_COUNTS {
        let idx = ShardedIndex::build(data.clone(), shards, &FastShardBuilder);
        assert_eq!(idx.lower_bound(6), 0);
        assert_eq!(idx.lower_bound(7), 0, "first occurrence across shards");
        assert_eq!(idx.lower_bound(8), 100);
        assert_eq!(idx.upper_bound(7), 100, "whole run skipped");
    }
}

#[test]
fn max_key_keyset_every_backend() {
    let data = vec![0u64, 5, u64::MAX - 1, u64::MAX];
    for builder in all_builders() {
        for shards in SHARD_COUNTS {
            let idx = ShardedIndex::build(data.clone(), shards, builder.as_ref());
            for q in [0u64, 1, 5, u64::MAX - 1, u64::MAX] {
                assert_eq!(
                    idx.lower_bound(q),
                    data.partition_point(|&k| k < q),
                    "{} shards={shards} q={q}",
                    idx.name()
                );
            }
        }
    }
}

/// The RangeIndex provided methods (lookup/range) compose with sharding.
#[test]
fn provided_trait_methods_work_through_sharding() {
    let data: Vec<u64> = (0..1000u64).map(|i| i * 4).collect();
    let idx = ShardedIndex::build(data.clone(), 7, &BTreeShardBuilder::new(32));
    assert_eq!(idx.lookup(400), Some(100));
    assert_eq!(idx.lookup(401), None);
    assert_eq!(idx.range(40, 80), 10..20);
    assert_eq!(idx.range(80, 40), 0..0);
    assert_eq!(idx.data(), &data[..]);
}
