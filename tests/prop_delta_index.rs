//! Property suite for `DeltaIndex` (Appendix D.1): `insert` +
//! `range_keys` + `rank` + `contains` must agree with a `BTreeSet`
//! oracle across random insert orders, merge thresholds and
//! duplicate-insert no-ops — before, during and after merge/retrain
//! cycles, and through snapshots.

use std::collections::BTreeSet;

use learned_indexes::rmi::{DeltaIndex, RmiConfig, TopModel};
use proptest::prelude::*;

fn cfg() -> RmiConfig {
    RmiConfig::two_stage(TopModel::Linear, 32)
}

fn sorted_unique(keys: Vec<u64>) -> Vec<u64> {
    let mut k = keys;
    k.sort_unstable();
    k.dedup();
    k
}

/// Probe points: around every 5th oracle key plus domain extremes.
fn probes(oracle: &BTreeSet<u64>) -> Vec<u64> {
    let mut qs = vec![0u64, 1, u64::MAX - 1, u64::MAX];
    for &k in oracle.iter().step_by(5) {
        qs.extend_from_slice(&[k.saturating_sub(1), k, k.saturating_add(1)]);
    }
    qs
}

fn assert_matches_oracle(
    idx: &DeltaIndex,
    oracle: &BTreeSet<u64>,
    ctx: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(idx.len(), oracle.len(), "{}: len", ctx);
    let qs = probes(oracle);
    for &q in &qs {
        prop_assert_eq!(
            idx.rank(q),
            oracle.range(..q).count(),
            "{}: rank({})",
            ctx,
            q
        );
        prop_assert_eq!(
            idx.contains(q),
            oracle.contains(&q),
            "{}: contains({})",
            ctx,
            q
        );
    }
    // Range scans at a few windows drawn from the probe set.
    for w in qs.windows(2) {
        let (lo, hi) = (w[0].min(w[1]), w[0].max(w[1]));
        let want: Vec<u64> = oracle.range(lo..hi).copied().collect();
        prop_assert_eq!(
            idx.range_keys(lo, hi),
            want,
            "{}: range [{}, {})",
            ctx,
            lo,
            hi
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary initial keyset + arbitrary insert stream (with natural
    /// duplicates) at arbitrary merge thresholds: the merged view must
    /// track the set oracle exactly, and duplicate inserts must be
    /// no-ops that never consume buffer space.
    #[test]
    fn delta_index_tracks_btreeset_oracle(
        initial in prop::collection::vec(any::<u64>(), 0..200),
        inserts in prop::collection::vec(any::<u64>(), 0..120),
        threshold in 1usize..64,
    ) {
        let initial = sorted_unique(initial);
        let mut oracle: BTreeSet<u64> = initial.iter().copied().collect();
        let mut idx = DeltaIndex::new(initial, cfg(), threshold);

        let mut unique_new = 0usize;
        for (step, &k) in inserts.iter().enumerate() {
            let fresh = oracle.insert(k);
            unique_new += usize::from(fresh);
            idx.insert(k);
            // Duplicate inserts must not occupy buffer slots.
            prop_assert!(idx.pending() < threshold.max(1));
            if step % 17 == 0 {
                assert_matches_oracle(&idx, &oracle, &format!("step {step}"))?;
            }
        }
        assert_matches_oracle(&idx, &oracle, "final")?;

        // Merge cadence is a pure function of the unique inserts.
        prop_assert_eq!(idx.merges(), unique_new / threshold, "merge count");

        // Re-inserting every key is a complete no-op.
        let merges_before = idx.merges();
        let len_before = idx.len();
        for &k in oracle.iter().take(50) {
            idx.insert(k);
        }
        prop_assert_eq!(idx.len(), len_before);
        prop_assert_eq!(idx.merges(), merges_before);
        assert_matches_oracle(&idx, &oracle, "after re-inserts")?;
    }

    /// Forced merges at arbitrary points never change the observable
    /// set, and snapshots taken mid-stream stay internally exact.
    #[test]
    fn forced_merges_and_snapshots_preserve_the_view(
        initial in prop::collection::vec(any::<u64>(), 1..150),
        inserts in prop::collection::vec(any::<u64>(), 1..60),
        threshold in 8usize..64,
    ) {
        let initial = sorted_unique(initial);
        let mut oracle: BTreeSet<u64> = initial.iter().copied().collect();
        let mut idx = DeltaIndex::new(initial, cfg(), threshold);

        let mid = inserts.len() / 2;
        for &k in &inserts[..mid] {
            oracle.insert(k);
            idx.insert(k);
        }
        let snap = idx.snapshot();
        let snap_oracle = oracle.clone();

        idx.merge();
        prop_assert_eq!(idx.pending(), 0);
        assert_matches_oracle(&idx, &oracle, "after forced merge")?;

        for &k in &inserts[mid..] {
            oracle.insert(k);
            idx.insert(k);
        }
        assert_matches_oracle(&idx, &oracle, "after second half")?;

        // The snapshot still answers from the pre-merge state.
        prop_assert_eq!(snap.len(), snap_oracle.len());
        for &q in &probes(&snap_oracle) {
            prop_assert_eq!(snap.rank(q), snap_oracle.range(..q).count(), "snap rank({})", q);
            prop_assert_eq!(snap.contains(q), snap_oracle.contains(&q), "snap contains({})", q);
        }
    }
}
