//! In-place chained hash map with learned hash functions (Appendix C).
//!
//! "One significant downside of separate chaining is that it requires
//! additional memory for the linked list. As an alternative, we
//! implemented a chained Hash-map, which uses a two pass algorithm: in
//! the first pass, the learned hash function is used to put items into
//! slots. If a slot is already taken, the item is skipped. Afterwards we
//! use a separate chaining approach for every skipped item except that
//! we use the remaining free slots with offsets as pointers for them.
//! As a result, the utilization can be 100% (recall, we do not consider
//! inserts) and the quality of the learned hash function can only make
//! an impact on the performance not the size: the fewer conflicts, the
//! fewer cache misses."
//!
//! [`InPlaceChained`] is read-only after its two-pass build: exactly as
//! many slots as records, every slot used, chains threaded through the
//! otherwise-free slots.

use crate::KeyHasher;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot<V> {
    key: u64,
    value: V,
    /// Next slot in this home-bucket's chain (offset into `slots`).
    next: u32,
    /// Whether this slot is the *home* of its chain (a direct hash
    /// target) — probes for keys whose home slot holds a foreign record
    /// must not walk that record's chain.
    is_home: bool,
    occupied: bool,
}

/// Read-only chained hash map at 100% utilization.
#[derive(Debug)]
pub struct InPlaceChained<V, H> {
    slots: Vec<Slot<V>>,
    hasher: H,
    skipped: usize,
}

impl<V: Clone + Default, H: KeyHasher> InPlaceChained<V, H> {
    /// Two-pass build over unique keys and their values.
    pub fn build(records: &[(u64, V)], hasher: H) -> Self {
        let n = records.len();
        let mut slots: Vec<Slot<V>> = (0..n)
            .map(|_| Slot {
                key: 0,
                value: V::default(),
                next: NIL,
                is_home: false,
                occupied: false,
            })
            .collect();

        // Pass 1: claim home slots.
        let mut skipped_idx: Vec<usize> = Vec::new();
        for (i, (key, value)) in records.iter().enumerate() {
            let s = hasher.slot(*key, n);
            if slots[s].occupied {
                skipped_idx.push(i);
            } else {
                slots[s] = Slot {
                    key: *key,
                    value: value.clone(),
                    next: NIL,
                    is_home: true,
                    occupied: true,
                };
            }
        }
        let skipped = skipped_idx.len();

        // Pass 2: place skipped records into remaining free slots and
        // chain them from their home slot (append at chain head for O(1)
        // linking: home -> new -> old chain).
        let mut free_cursor = 0usize;
        for i in skipped_idx {
            let (key, value) = &records[i];
            while free_cursor < n && slots[free_cursor].occupied {
                free_cursor += 1;
            }
            debug_assert!(free_cursor < n, "slots == records guarantees space");
            let home = hasher.slot(*key, n);
            let prev_next = slots[home].next;
            slots[free_cursor] = Slot {
                key: *key,
                value: value.clone(),
                next: prev_next,
                is_home: false,
                occupied: true,
            };
            slots[home].next = free_cursor as u32;
        }

        Self {
            slots,
            hasher,
            skipped,
        }
    }

    /// Look up a key: probe the home slot, then walk its chain.
    pub fn get(&self, key: u64) -> Option<&V> {
        if self.slots.is_empty() {
            return None;
        }
        let s = self.hasher.slot(key, self.slots.len());
        let home = &self.slots[s];
        if !home.occupied || !home.is_home {
            // Nothing hashed here: the record in this slot (if any) is a
            // chained foreigner and its chain belongs to another home.
            return None;
        }
        if home.key == key {
            return Some(&home.value);
        }
        let mut cur = home.next;
        while cur != NIL {
            let e = &self.slots[cur as usize];
            if e.key == key {
                return Some(&e.value);
            }
            cur = e.next;
        }
        None
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Records displaced in pass 1 — each adds ≥1 probe to its lookups.
    /// "The quality of the learned hash function can only make an impact
    /// on the performance not the size."
    pub fn conflicts(&self) -> usize {
        self.skipped
    }

    /// Utilization is 100% by construction.
    pub fn utilization(&self) -> f64 {
        if self.slots.is_empty() {
            0.0
        } else {
            1.0
        }
    }

    /// Probes a lookup of `key` performs (1 = direct hit).
    pub fn probe_length(&self, key: u64) -> usize {
        if self.slots.is_empty() {
            return 0;
        }
        let s = self.hasher.slot(key, self.slots.len());
        let home = &self.slots[s];
        if !home.occupied || !home.is_home || home.key == key {
            return 1;
        }
        let mut n = 1usize;
        let mut cur = home.next;
        while cur != NIL {
            n += 1;
            let e = &self.slots[cur as usize];
            if e.key == key {
                return n;
            }
            cur = e.next;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learned::CdfHasher;
    use crate::murmur::MurmurHasher;

    fn records(n: u64) -> Vec<(u64, u64)> {
        (0..n).map(|k| (k * 7 + 1, k)).collect()
    }

    #[test]
    fn build_and_get_all() {
        let recs = records(2000);
        let m = InPlaceChained::build(&recs, MurmurHasher::new(3));
        assert_eq!(m.len(), 2000);
        assert_eq!(m.utilization(), 1.0);
        for (k, v) in &recs {
            assert_eq!(m.get(*k), Some(v), "key {k}");
        }
    }

    #[test]
    fn missing_keys_return_none() {
        let recs = records(500);
        let m = InPlaceChained::build(&recs, MurmurHasher::new(3));
        for k in 0..500u64 {
            // keys are 7k+1, so 7k+2 is always missing.
            assert_eq!(m.get(k * 7 + 2), None);
        }
    }

    #[test]
    fn learned_hash_reduces_probe_length() {
        // Appendix C's point: same size, fewer conflicts → shorter probes.
        let keys = li_data::maps::maps_longitudes(20_000, 9);
        let recs: Vec<(u64, u64)> = keys.keys().iter().map(|&k| (k, k ^ 1)).collect();
        let learned = InPlaceChained::build(&recs, CdfHasher::train(keys.keys(), 256));
        let random = InPlaceChained::build(&recs, MurmurHasher::new(5));
        let avg = |m: &dyn Fn(u64) -> usize| {
            recs.iter().map(|&(k, _)| m(k)).sum::<usize>() as f64 / recs.len() as f64
        };
        let avg_learned = avg(&|k| learned.probe_length(k));
        let avg_random = avg(&|k| random.probe_length(k));
        assert!(
            avg_learned < avg_random,
            "learned {avg_learned} vs random {avg_random}"
        );
        // Both still answer everything.
        for (k, v) in recs.iter().step_by(97) {
            assert_eq!(learned.get(*k), Some(v));
            assert_eq!(random.get(*k), Some(v));
        }
    }

    #[test]
    fn empty_build() {
        let m: InPlaceChained<u64, MurmurHasher> = InPlaceChained::build(&[], MurmurHasher::new(1));
        assert!(m.is_empty());
        assert_eq!(m.get(5), None);
    }

    #[test]
    fn conflicts_counts_pass1_skips() {
        // Identity-ish hash on dense keys: zero conflicts.
        struct Id;
        impl KeyHasher for Id {
            fn slot(&self, key: u64, m: usize) -> usize {
                key as usize % m
            }
            fn name(&self) -> &'static str {
                "id"
            }
        }
        let recs: Vec<(u64, u64)> = (0..100u64).map(|k| (k, k)).collect();
        let m = InPlaceChained::build(&recs, Id);
        assert_eq!(m.conflicts(), 0);
        for (k, v) in &recs {
            assert_eq!(m.get(*k), Some(v));
            assert_eq!(m.probe_length(*k), 1);
        }
    }
}
