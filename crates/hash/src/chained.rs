//! Separate-chaining hash map with in-array records (Appendix B).
//!
//! "We evaluated the potential of learned hash functions using a
//! separate chaining Hash-map; records are stored directly within an
//! array and only in the case of a conflict is the record attached to
//! the linked-list. That is without a conflict there is at most one
//! cache miss." Slots hold the full record (the paper's 20-byte
//! key/payload/meta record plus a 32-bit next-pointer = a "24Byte
//! slot"); overflow records live in a side arena addressed by index, so
//! there are no pointers to chase across allocations.
//!
//! The map is generic over the hash function ([`crate::KeyHasher`]) —
//! learned vs murmur is a one-argument change — and over the payload.

use crate::KeyHasher;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot<V> {
    key: u64,
    value: V,
    occupied: bool,
    next: u32, // index into overflow arena
}

impl<V> Slot<V> {
    /// The paper's slot size accounting: 20-byte record + 4-byte next.
    const LOGICAL_BYTES: usize = 24;
}

/// Separate-chaining hash map: records in the slot array, conflicts in
/// an overflow arena.
#[derive(Debug)]
pub struct ChainedHashMap<V, H> {
    slots: Vec<Slot<V>>,
    overflow: Vec<Slot<V>>,
    hasher: H,
    len: usize,
}

/// Occupancy statistics (drives Figure 11's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainedStats {
    /// Total records stored.
    pub len: usize,
    /// Primary slots.
    pub slots: usize,
    /// Primary slots left empty.
    pub empty_slots: usize,
    /// Records that overflowed into the chain arena.
    pub overflow: usize,
    /// Logical bytes of wasted primary-slot space (the paper's "empty
    /// slots GB" column): `empty_slots × 24`.
    pub empty_bytes: usize,
    /// Total logical bytes: primary array + overflow arena.
    pub total_bytes: usize,
}

impl<V: Clone + Default, H: KeyHasher> ChainedHashMap<V, H> {
    /// Create with `slots` primary slots (the paper sweeps 75%–125% of
    /// the record count) and a hash function.
    pub fn new(slots: usize, hasher: H) -> Self {
        assert!(slots > 0);
        Self {
            slots: (0..slots)
                .map(|_| Slot {
                    key: 0,
                    value: V::default(),
                    occupied: false,
                    next: NIL,
                })
                .collect(),
            overflow: Vec::new(),
            hasher,
            len: 0,
        }
    }

    /// Insert or update; returns the previous value when updating.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        let s = self.hasher.slot(key, self.slots.len());
        if !self.slots[s].occupied {
            self.slots[s].key = key;
            self.slots[s].value = value;
            self.slots[s].occupied = true;
            self.len += 1;
            return None;
        }
        if self.slots[s].key == key {
            return Some(std::mem::replace(&mut self.slots[s].value, value));
        }
        // Walk the chain.
        let mut cur = self.slots[s].next;
        let mut last_in_primary = true;
        let mut last_idx = s;
        while cur != NIL {
            if self.overflow[cur as usize].key == key {
                return Some(std::mem::replace(
                    &mut self.overflow[cur as usize].value,
                    value,
                ));
            }
            last_in_primary = false;
            last_idx = cur as usize;
            cur = self.overflow[cur as usize].next;
        }
        // Append to the overflow arena and link.
        let idx = self.overflow.len() as u32;
        self.overflow.push(Slot {
            key,
            value,
            occupied: true,
            next: NIL,
        });
        if last_in_primary {
            self.slots[last_idx].next = idx;
        } else {
            self.overflow[last_idx].next = idx;
        }
        self.len += 1;
        None
    }

    /// Look up a key.
    pub fn get(&self, key: u64) -> Option<&V> {
        let s = self.hasher.slot(key, self.slots.len());
        let slot = &self.slots[s];
        if !slot.occupied {
            return None;
        }
        if slot.key == key {
            return Some(&slot.value);
        }
        let mut cur = slot.next;
        while cur != NIL {
            let o = &self.overflow[cur as usize];
            if o.key == key {
                return Some(&o.value);
            }
            cur = o.next;
        }
        None
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Chain length a lookup of `key` would traverse (1 = direct hit
    /// slot; conflicts add cache misses).
    pub fn probe_length(&self, key: u64) -> usize {
        let s = self.hasher.slot(key, self.slots.len());
        let slot = &self.slots[s];
        if !slot.occupied {
            return 1;
        }
        if slot.key == key {
            return 1;
        }
        let mut n = 1;
        let mut cur = slot.next;
        while cur != NIL {
            n += 1;
            let o = &self.overflow[cur as usize];
            if o.key == key {
                return n;
            }
            cur = o.next;
        }
        n
    }

    /// Occupancy statistics (Figure 11).
    pub fn stats(&self) -> ChainedStats {
        let empty = self.slots.iter().filter(|s| !s.occupied).count();
        ChainedStats {
            len: self.len,
            slots: self.slots.len(),
            empty_slots: empty,
            overflow: self.overflow.len(),
            empty_bytes: empty * Slot::<V>::LOGICAL_BYTES,
            total_bytes: (self.slots.len() + self.overflow.len()) * Slot::<V>::LOGICAL_BYTES,
        }
    }

    /// The hash function's own memory (learned models aren't free).
    pub fn hasher_bytes(&self) -> usize {
        self.hasher.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::murmur::MurmurHasher;

    fn map(slots: usize) -> ChainedHashMap<u64, MurmurHasher> {
        ChainedHashMap::new(slots, MurmurHasher::new(42))
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut m = map(64);
        for k in 0..200u64 {
            assert_eq!(m.insert(k, k * 10), None);
        }
        assert_eq!(m.len(), 200);
        for k in 0..200u64 {
            assert_eq!(m.get(k), Some(&(k * 10)));
        }
        assert_eq!(m.get(1000), None);
    }

    #[test]
    fn update_returns_old_value() {
        let mut m = map(16);
        m.insert(7, 1);
        assert_eq!(m.insert(7, 2), Some(1));
        assert_eq!(m.get(7), Some(&2));
        assert_eq!(m.len(), 1);
        // Update of a chained (overflow) record too.
        for k in 0..100u64 {
            m.insert(k, k);
        }
        let before = m.len();
        for k in 0..100u64 {
            assert_eq!(m.insert(k, k + 1), Some(if k == 7 { 7 } else { k }));
        }
        assert_eq!(m.len(), before);
    }

    #[test]
    fn heavy_overflow_still_correct() {
        // 1000 records into 10 slots: ~100-long chains.
        let mut m = map(10);
        for k in 0..1000u64 {
            m.insert(k, k ^ 0xFF);
        }
        for k in 0..1000u64 {
            assert_eq!(m.get(k), Some(&(k ^ 0xFF)));
        }
        let s = m.stats();
        assert_eq!(s.len, 1000);
        assert!(s.overflow >= 990);
    }

    #[test]
    fn behaves_like_std_hashmap() {
        use std::collections::HashMap;
        let mut ours = map(128);
        let mut std_map = HashMap::new();
        let mut state = 12345u64;
        for _ in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = state % 500;
            let val = state >> 32;
            assert_eq!(ours.insert(key, val), std_map.insert(key, val), "key {key}");
        }
        for key in 0..500u64 {
            assert_eq!(ours.get(key), std_map.get(&key), "key {key}");
        }
        assert_eq!(ours.len(), std_map.len());
    }

    #[test]
    fn stats_account_empty_and_overflow() {
        let mut m = map(100);
        for k in 0..50u64 {
            m.insert(k, k);
        }
        let s = m.stats();
        assert_eq!(s.len, 50);
        assert_eq!(s.slots, 100);
        assert_eq!(s.empty_slots + (50 - s.overflow), 100);
        assert_eq!(s.empty_bytes, s.empty_slots * 24);
        assert_eq!(s.total_bytes, (100 + s.overflow) * 24);
    }

    #[test]
    fn probe_length_is_one_without_conflicts() {
        let mut m = map(1024);
        m.insert(5, 5);
        assert_eq!(m.probe_length(5), 1);
    }
}
