//! MurmurHash3 — the paper's randomized-hash baseline.
//!
//! §4.2 uses "a simple MurmurHash3-like hash-function" as the control
//! against learned hash functions. For 8-byte integer keys the relevant
//! piece is the 64-bit finalizer (`fmix64`), which is itself a complete,
//! well-mixed hash for one word; for byte strings we implement the
//! MurmurHash3 x64/128 core loop and return its low 64 bits.

use crate::KeyHasher;

/// The MurmurHash3 64-bit finalizer: full avalanche on one word.
#[inline(always)]
pub fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    k ^= k >> 33;
    k = k.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    k ^= k >> 33;
    k
}

/// MurmurHash3 x64/128 over bytes, low 64 bits, with a seed.
pub fn murmur3_x64(data: &[u8], seed: u64) -> u64 {
    const C1: u64 = 0x87C3_7B91_1142_53D5;
    const C2: u64 = 0x4CF5_AD43_2745_937F;
    let mut h1 = seed;
    let mut h2 = seed;

    let mut chunks = data.chunks_exact(16);
    for chunk in &mut chunks {
        let mut k1 = u64::from_le_bytes(chunk[0..8].try_into().expect("8 bytes"));
        let mut k2 = u64::from_le_bytes(chunk[8..16].try_into().expect("8 bytes"));
        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 = (h1 ^ k1)
            .rotate_left(27)
            .wrapping_add(h2)
            .wrapping_mul(5)
            .wrapping_add(0x52DC_E729);
        k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        h2 = (h2 ^ k2)
            .rotate_left(31)
            .wrapping_add(h1)
            .wrapping_mul(5)
            .wrapping_add(0x3849_5AB5);
    }

    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut k1 = 0u64;
        let mut k2 = 0u64;
        for (i, &b) in tail.iter().enumerate() {
            if i < 8 {
                k1 |= (b as u64) << (8 * i);
            } else {
                k2 |= (b as u64) << (8 * (i - 8));
            }
        }
        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 ^= k1;
        k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        h2 ^= k2;
    }

    h1 ^= data.len() as u64;
    h2 ^= data.len() as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1.wrapping_add(h2)
}

/// Seeded murmur-style hasher for `u64` keys.
#[derive(Debug, Clone, Copy)]
pub struct MurmurHasher {
    seed: u64,
}

impl MurmurHasher {
    /// Hasher with an explicit seed (distinct seeds → independent
    /// functions, as needed by Bloom filters and cuckoo hashing).
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Raw 64-bit hash of a key.
    #[inline(always)]
    pub fn hash_u64(&self, key: u64) -> u64 {
        fmix64(key ^ self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

impl KeyHasher for MurmurHasher {
    #[inline]
    fn slot(&self, key: u64, m: usize) -> usize {
        debug_assert!(m > 0);
        // Multiply-shift range reduction: unbiased enough and faster than
        // `%` for non-power-of-2 m.
        (((self.hash_u64(key) as u128) * (m as u128)) >> 64) as usize
    }

    fn name(&self) -> &'static str {
        "murmur"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmix64_known_properties() {
        assert_eq!(fmix64(0), 0); // fixed point of the finalizer
        assert_ne!(fmix64(1), 1);
        // Avalanche: flipping one input bit flips ~half the output bits.
        let a = fmix64(0x1234_5678_9ABC_DEF0);
        let b = fmix64(0x1234_5678_9ABC_DEF1);
        let flipped = (a ^ b).count_ones();
        assert!((20..=44).contains(&flipped), "{flipped} bits flipped");
    }

    #[test]
    fn murmur3_is_deterministic_and_seed_sensitive() {
        let h1 = murmur3_x64(b"hello world", 0);
        let h2 = murmur3_x64(b"hello world", 0);
        let h3 = murmur3_x64(b"hello world", 1);
        let h4 = murmur3_x64(b"hello worle", 0);
        assert_eq!(h1, h2);
        assert_ne!(h1, h3);
        assert_ne!(h1, h4);
    }

    #[test]
    fn murmur3_handles_all_tail_lengths() {
        let data: Vec<u8> = (0..64u8).collect();
        let mut seen = std::collections::BTreeSet::new();
        for len in 0..=40 {
            seen.insert(murmur3_x64(&data[..len], 7));
        }
        assert_eq!(seen.len(), 41, "each length must hash distinctly");
    }

    #[test]
    fn slots_are_in_range_and_spread() {
        let h = MurmurHasher::new(3);
        let m = 1000;
        let mut hits = vec![0u32; m];
        for key in 0..100_000u64 {
            let s = h.slot(key, m);
            assert!(s < m);
            hits[s] += 1;
        }
        // Uniformity: every slot within 3x of the mean (100).
        assert!(hits.iter().all(|&c| (30..=300).contains(&c)));
    }

    #[test]
    fn expected_conflict_rate_matches_birthday_math() {
        // §4: "for a hash-function which uniformly randomizes the keys
        // … in expectation around 33%" (1/e ≈ 36.8% of keys collide when
        // slots == keys; occupied ≈ 63.2%).
        let h = MurmurHasher::new(9);
        let n = 100_000usize;
        let mut occupied = vec![false; n];
        let mut conflicts = 0usize;
        for key in 0..n as u64 {
            let s = h.slot(fmix64(key), n); // decorrelate input
            if occupied[s] {
                conflicts += 1;
            } else {
                occupied[s] = true;
            }
        }
        let rate = conflicts as f64 / n as f64;
        assert!((0.34..0.40).contains(&rate), "conflict rate {rate}");
    }
}
