//! Conflict-rate measurement (Figure 8).
//!
//! §4.2 compares "the number of conflicts for a table with the same
//! number of slots as records": a key *conflicts* when it hashes to a
//! slot another key already claimed. A uniform random hash at load
//! factor 1 loses `1 − (1 − e⁻¹) ≈ 36.8%` of keys to conflicts (the
//! paper quotes ≈33–35% empirically); a learned hash that matches the
//! CDF drives this toward zero.

use crate::KeyHasher;

/// Conflict statistics for one hash function over one key set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConflictStats {
    /// Number of keys hashed.
    pub keys: usize,
    /// Table slots.
    pub slots: usize,
    /// Keys that landed on an already-claimed slot.
    pub conflicts: usize,
    /// Distinct slots claimed.
    pub occupied: usize,
}

impl ConflictStats {
    /// Fraction of keys that conflicted — the Figure-8 "% Conflicts".
    pub fn conflict_rate(&self) -> f64 {
        if self.keys == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.keys as f64
        }
    }

    /// Fraction of slots left empty.
    pub fn empty_rate(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            (self.slots - self.occupied) as f64 / self.slots as f64
        }
    }

    /// Reduction of conflicts versus a baseline (Figure 8's last
    /// column): `1 − ours/baseline`.
    pub fn reduction_vs(&self, baseline: &ConflictStats) -> f64 {
        if baseline.conflicts == 0 {
            0.0
        } else {
            1.0 - self.conflicts as f64 / baseline.conflicts as f64
        }
    }
}

/// Hash every key into `slots` slots and count conflicts.
pub fn conflict_stats(keys: &[u64], hasher: &dyn KeyHasher, slots: usize) -> ConflictStats {
    assert!(slots > 0);
    let mut claimed = vec![false; slots];
    let mut conflicts = 0usize;
    let mut occupied = 0usize;
    for &k in keys {
        let s = hasher.slot(k, slots);
        if claimed[s] {
            conflicts += 1;
        } else {
            claimed[s] = true;
            occupied += 1;
        }
    }
    ConflictStats {
        keys: keys.len(),
        slots,
        conflicts,
        occupied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::murmur::MurmurHasher;

    #[test]
    fn stats_add_up() {
        let keys: Vec<u64> = (0..10_000).collect();
        let s = conflict_stats(&keys, &MurmurHasher::new(1), 10_000);
        assert_eq!(s.conflicts + s.occupied, s.keys);
        assert!(s.conflict_rate() > 0.0);
        assert!(s.empty_rate() > 0.0);
    }

    #[test]
    fn random_hash_at_load_one_loses_about_a_third() {
        let keys: Vec<u64> = (0..200_000).collect();
        let s = conflict_stats(&keys, &MurmurHasher::new(2), keys.len());
        // 1/e ≈ 0.368.
        assert!(
            (0.35..0.39).contains(&s.conflict_rate()),
            "{}",
            s.conflict_rate()
        );
    }

    #[test]
    fn reduction_is_one_minus_ratio() {
        let base = ConflictStats {
            keys: 100,
            slots: 100,
            conflicts: 40,
            occupied: 60,
        };
        let ours = ConflictStats {
            conflicts: 10,
            occupied: 90,
            ..base
        };
        assert!((ours.reduction_vs(&base) - 0.75).abs() < 1e-12);
        assert_eq!(
            ours.reduction_vs(&ConflictStats {
                conflicts: 0,
                ..base
            }),
            0.0
        );
    }

    #[test]
    fn perfect_hash_has_zero_conflicts() {
        struct Identity;
        impl KeyHasher for Identity {
            fn slot(&self, key: u64, m: usize) -> usize {
                key as usize % m
            }
            fn name(&self) -> &'static str {
                "identity"
            }
        }
        let keys: Vec<u64> = (0..1000).collect();
        let s = conflict_stats(&keys, &Identity, 1000);
        assert_eq!(s.conflicts, 0);
        assert_eq!(s.empty_rate(), 0.0);
    }
}
