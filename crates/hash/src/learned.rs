//! The Hash-Model Index (§4.1): a learned CDF as a hash function.
//!
//! "Surprisingly, learning the CDF of the key distribution is one
//! potential way to learn a better hash function … we can scale the CDF
//! by the targeted size M of the Hash-map and use h(K) = F(K) · M, with
//! key K as our hash-function. If the model F perfectly learned the
//! empirical CDF of the keys, no conflicts would exist."
//!
//! §4.2 fixes the model: "we used the 2-stage RMI models … with 100k
//! models on the 2nd stage and without any hidden layers" — i.e. a
//! linear top model over linear leaves. [`CdfHasher`] wraps exactly that
//! RMI; its `slot` maps the predicted position `p ∈ [0, N)` to
//! `⌊p·M/N⌋`.

use crate::KeyHasher;
use li_core::{Rmi, RmiConfig, TopModel};
use li_index::{KeyStore, RangeIndex};

/// A learned hash function backed by a 2-stage RMI over the key CDF.
#[derive(Debug)]
pub struct CdfHasher {
    rmi: Rmi,
    n: usize,
}

impl CdfHasher {
    /// Train over the key set the hash table will hold (sorted unique
    /// keys; shared via [`KeyStore`] — pass a store clone for zero-copy
    /// training). `leaves` is the second-stage size; the paper uses 100k
    /// at 200M keys — scale proportionally (about `n/2000`).
    pub fn train(keys: impl Into<KeyStore>, leaves: usize) -> Self {
        let keys: KeyStore = keys.into();
        let n = keys.len();
        let cfg = RmiConfig::two_stage(TopModel::Linear, leaves.max(1));
        let rmi = Rmi::build(keys, &cfg);
        Self { rmi, n }
    }

    /// The paper's §4.2 default second-stage sizing: one leaf per ~2000
    /// keys (100k leaves at 200M keys), clamped to at least 64.
    pub fn train_default(keys: &[u64]) -> Self {
        Self::train(keys, (keys.len() / 2000).max(64))
    }

    /// Access to the underlying model's stats.
    pub fn rmi(&self) -> &Rmi {
        &self.rmi
    }
}

impl KeyHasher for CdfHasher {
    #[inline]
    fn slot(&self, key: u64, m: usize) -> usize {
        debug_assert!(m > 0);
        if self.n == 0 {
            return 0;
        }
        // Model prediction = position estimate in [0, n); rescale to M
        // slots. predict() is the pure model cascade (no search).
        let pos = self.rmi.predict(key).pos;
        let slot = (pos as u128 * m as u128 / self.n as u128) as usize;
        slot.min(m - 1)
    }

    fn size_bytes(&self) -> usize {
        self.rmi.size_bytes()
    }

    fn name(&self) -> &'static str {
        "learned-cdf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use li_data::keyset::sequential_keys;

    #[test]
    fn perfect_cdf_means_zero_conflicts() {
        // §4's motivating example: dense sequential keys hash perfectly.
        let keys = sequential_keys(10_000, 1_000_000, 1);
        let h = CdfHasher::train(keys.keys(), 64);
        let m = keys.len();
        let mut seen = vec![false; m];
        let mut conflicts = 0usize;
        for &k in keys.keys() {
            let s = h.slot(k, m);
            if seen[s] {
                conflicts += 1;
            } else {
                seen[s] = true;
            }
        }
        assert_eq!(conflicts, 0, "linear keys must be conflict-free");
    }

    #[test]
    fn slots_are_always_in_range() {
        let keys = li_data::lognormal::lognormal_keys(5000, 3);
        let h = CdfHasher::train_default(keys.keys());
        for &k in keys.keys() {
            assert!(h.slot(k, 100) < 100);
        }
        // Also for keys far outside the trained domain.
        for k in [0u64, u64::MAX, u64::MAX / 2] {
            assert!(h.slot(k, 100) < 100);
        }
    }

    #[test]
    fn beats_random_hashing_on_learnable_distributions() {
        // Figure 8's claim, in miniature: the learned hash function must
        // produce fewer conflicts than murmur on a smooth distribution.
        use crate::murmur::MurmurHasher;
        let keys = li_data::maps::maps_longitudes(40_000, 5);
        let learned = CdfHasher::train(keys.keys(), keys.len() / 100);
        let random = MurmurHasher::new(7);
        let m = keys.len();
        let count_conflicts = |h: &dyn KeyHasher| {
            let mut seen = vec![false; m];
            let mut c = 0usize;
            for &k in keys.keys() {
                let s = h.slot(k, m);
                if seen[s] {
                    c += 1;
                } else {
                    seen[s] = true;
                }
            }
            c
        };
        let lc = count_conflicts(&learned);
        let rc = count_conflicts(&random);
        assert!(
            (lc as f64) < (rc as f64) * 0.8,
            "learned {lc} vs random {rc}"
        );
    }

    #[test]
    fn size_reflects_leaf_count() {
        let keys = sequential_keys(10_000, 0, 3);
        let small = CdfHasher::train(keys.keys(), 64);
        let large = CdfHasher::train(keys.keys(), 4096);
        assert!(large.size_bytes() > small.size_bytes());
    }
}
