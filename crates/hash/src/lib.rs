//! # li-hash — learned point indexes (§4 of the paper)
//!
//! "Conceptually Hash-maps use a hash-function to deterministically map
//! keys to positions inside an array … machine learned models might
//! provide an alternative to reduce the number of conflicts" (§4). This
//! crate implements both sides of that comparison:
//!
//! * [`MurmurHasher`] — the baseline: "a simple MurmurHash3-like
//!   hash-function" (the 64-bit finalizer, plus full MurmurHash3 x64
//!   for byte strings).
//! * [`CdfHasher`] — the hash-model index of §4.1: "we can scale the CDF
//!   by the targeted size M of the Hash-map and use h(K) = F(K) · M",
//!   with F realized by a 2-stage RMI (the paper's §4.2 config: 100k
//!   linear leaf models, no hidden layers).
//! * [`ChainedHashMap`] — the Appendix-B separate-chaining architecture:
//!   "records are stored directly within an array and only in the case
//!   of a conflict is the record attached to the linked-list", i.e. at
//!   most one cache miss without conflicts.
//! * [`CuckooHashMap`] — the Appendix-C baseline: bucketized two-choice
//!   cuckoo hashing (4-slot buckets, random-walk eviction), in both a
//!   lean and a "commercial-grade" (corner-case-checked, slower)
//!   configuration.
//! * [`InPlaceChained`] — Appendix C's "in-place chained Hash-map with
//!   learned hash functions": a two-pass build that reaches 100%
//!   utilization with no extra linked-list memory.
//! * [`conflicts`] — the Figure-8 conflict metric.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chained;
pub mod conflicts;
pub mod cuckoo;
pub mod inplace;
pub mod learned;
pub mod murmur;

pub use chained::{ChainedHashMap, ChainedStats};
pub use conflicts::{conflict_stats, ConflictStats};
pub use cuckoo::CuckooHashMap;
pub use inplace::InPlaceChained;
pub use learned::CdfHasher;
pub use murmur::{murmur3_x64, MurmurHasher};

/// A hash function mapping a `u64` key into `[0, m)` slots.
///
/// Implementations are either pseudo-random ([`MurmurHasher`]) or
/// CDF-learned ([`CdfHasher`]); everything downstream (chained map,
/// conflict metrics) is generic over this trait — "the hash-function is
/// orthogonal to the actual Hash-map architecture" (§4.1).
pub trait KeyHasher: Send + Sync {
    /// Slot for `key` in a table of `m` slots. Must be `< m` for `m > 0`.
    fn slot(&self, key: u64, m: usize) -> usize;

    /// In-memory size of the hasher state (0 for seeded murmur; model
    /// size for learned hashers).
    fn size_bytes(&self) -> usize {
        0
    }

    /// Display name.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_objects_work() {
        let hashers: Vec<Box<dyn KeyHasher>> = vec![Box::new(MurmurHasher::new(1))];
        for h in &hashers {
            for key in [0u64, 1, u64::MAX] {
                assert!(h.slot(key, 97) < 97);
            }
        }
    }
}
