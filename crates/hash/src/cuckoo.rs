//! Bucketized cuckoo hashing (Appendix C baselines).
//!
//! The paper compares learned point indexes against "an AVX optimized
//! Cuckoo Hash-map from \[7\]" (the Stanford DAWN index-baselines repo)
//! and "a commercially used Cuckoo Hash-map". Both are two-choice,
//! bucketized designs: each key has two candidate buckets of
//! [`BUCKET_SLOTS`] slots; inserts displace ("kick") a random victim to
//! its alternate bucket when both buckets are full. This achieves very
//! high utilization (Table 1 reports 99%) at the cost of up to two
//! probe locations per lookup.
//!
//! The *commercial* configuration models the corner-case handling the
//! paper blames for its 2× slowdown: per-bucket version counters
//! validated around every read (a seqlock, as concurrent-safe tables
//! use) and a stash for insertion failures.

use crate::murmur::fmix64;

/// Slots per bucket (the common 4-way association).
pub const BUCKET_SLOTS: usize = 4;

/// Max displacement steps before declaring the table full.
const MAX_KICKS: usize = 500;

#[derive(Debug, Clone, Copy)]
struct Entry<V> {
    key: u64,
    value: V,
    occupied: bool,
}

/// A two-choice, 4-way bucketized cuckoo hash map.
#[derive(Debug)]
pub struct CuckooHashMap<V> {
    buckets: Vec<[Entry<V>; BUCKET_SLOTS]>,
    /// Version counters (commercial mode only).
    versions: Vec<u32>,
    /// Insertion-failure stash (commercial mode only).
    stash: Vec<(u64, V)>,
    n_buckets: usize,
    len: usize,
    commercial: bool,
    seed: u64,
    kick_state: u64,
}

impl<V: Copy + Default> CuckooHashMap<V> {
    /// Lean (AVX-style) configuration with capacity for `capacity` keys.
    pub fn new(capacity: usize) -> Self {
        Self::with_mode(capacity, false)
    }

    /// Commercial-grade configuration: version-validated reads + stash.
    pub fn new_commercial(capacity: usize) -> Self {
        Self::with_mode(capacity, true)
    }

    fn with_mode(capacity: usize, commercial: bool) -> Self {
        let n_buckets = capacity.div_ceil(BUCKET_SLOTS).max(2);
        Self {
            buckets: (0..n_buckets)
                .map(|_| {
                    [Entry {
                        key: 0,
                        value: V::default(),
                        occupied: false,
                    }; BUCKET_SLOTS]
                })
                .collect(),
            versions: if commercial {
                vec![0; n_buckets]
            } else {
                Vec::new()
            },
            stash: Vec::new(),
            n_buckets,
            len: 0,
            commercial,
            seed: 0xC0C0,
            kick_state: 0x9E3779B97F4A7C15,
        }
    }

    #[inline]
    fn bucket1(&self, key: u64) -> usize {
        (fmix64(key ^ self.seed) % self.n_buckets as u64) as usize
    }

    #[inline]
    fn bucket2(&self, key: u64) -> usize {
        // Derived from the key's fingerprint so it is computable from
        // either bucket (standard partial-key cuckoo displacement).
        (fmix64(key.rotate_left(32) ^ !self.seed) % self.n_buckets as u64) as usize
    }

    /// Insert; returns `false` when the table cannot place the key
    /// (lean mode) — commercial mode stashes instead and keeps going.
    pub fn try_insert(&mut self, key: u64, value: V) -> bool {
        if self.update_in_place(key, value) {
            return true;
        }
        let (b1, b2) = (self.bucket1(key), self.bucket2(key));
        if self.place_in(b1, key, value) || self.place_in(b2, key, value) {
            self.len += 1;
            return true;
        }
        // Displacement loop.
        let mut cur_key = key;
        let mut cur_val = value;
        let mut bucket = if self.kick_rand().is_multiple_of(2) {
            b1
        } else {
            b2
        };
        for _ in 0..MAX_KICKS {
            let victim_slot = (self.kick_rand() as usize) % BUCKET_SLOTS;
            // Swap with the victim.
            let e = &mut self.buckets[bucket][victim_slot];
            std::mem::swap(&mut cur_key, &mut e.key);
            std::mem::swap(&mut cur_val, &mut e.value);
            e.occupied = true;
            if self.commercial {
                self.versions[bucket] = self.versions[bucket].wrapping_add(1);
            }
            // Re-place the evicted key in its alternate bucket.
            let (v1, v2) = (self.bucket1(cur_key), self.bucket2(cur_key));
            let alt = if bucket == v1 { v2 } else { v1 };
            if self.place_in(alt, cur_key, cur_val) {
                self.len += 1;
                return true;
            }
            bucket = alt;
        }
        if self.commercial {
            self.stash.push((cur_key, cur_val));
            self.len += 1;
            return true;
        }
        // Lean mode: undo is skipped (the displaced chain stays valid;
        // only the final homeless key is rejected).
        false
    }

    fn update_in_place(&mut self, key: u64, value: V) -> bool {
        for b in [self.bucket1(key), self.bucket2(key)] {
            for e in self.buckets[b].iter_mut() {
                if e.occupied && e.key == key {
                    e.value = value;
                    return true;
                }
            }
        }
        if self.commercial {
            for s in self.stash.iter_mut() {
                if s.0 == key {
                    s.1 = value;
                    return true;
                }
            }
        }
        false
    }

    fn place_in(&mut self, bucket: usize, key: u64, value: V) -> bool {
        for e in self.buckets[bucket].iter_mut() {
            if !e.occupied {
                *e = Entry {
                    key,
                    value,
                    occupied: true,
                };
                if self.commercial {
                    self.versions[bucket] = self.versions[bucket].wrapping_add(1);
                }
                return true;
            }
        }
        false
    }

    /// Look up a key (checks both buckets; commercial mode validates
    /// bucket versions and scans the stash, modeling its extra cost).
    pub fn get(&self, key: u64) -> Option<V> {
        for b in [self.bucket1(key), self.bucket2(key)] {
            if self.commercial {
                // Seqlock-style validated read.
                loop {
                    let v_before = self.versions[b];
                    let mut found = None;
                    for e in &self.buckets[b] {
                        if e.occupied && e.key == key {
                            found = Some(e.value);
                        }
                    }
                    let v_after = self.versions[b];
                    if v_before == v_after {
                        if found.is_some() {
                            return found;
                        }
                        break;
                    }
                    std::hint::spin_loop();
                }
            } else {
                for e in &self.buckets[b] {
                    if e.occupied && e.key == key {
                        return Some(e.value);
                    }
                }
            }
        }
        if self.commercial {
            return self.stash.iter().find(|s| s.0 == key).map(|s| s.1);
        }
        None
    }

    /// Stored key count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fraction of slots in use — Table 1's "Utilization".
    pub fn utilization(&self) -> f64 {
        self.len as f64 / (self.n_buckets * BUCKET_SLOTS) as f64
    }

    fn kick_rand(&mut self) -> u64 {
        // xorshift for victim selection: cheap, deterministic.
        let mut x = self.kick_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.kick_state = x;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut m: CuckooHashMap<u64> = CuckooHashMap::new(1000);
        for k in 0..800u64 {
            assert!(m.try_insert(k, k * 3), "insert {k}");
        }
        for k in 0..800u64 {
            assert_eq!(m.get(k), Some(k * 3));
        }
        assert_eq!(m.get(9999), None);
    }

    #[test]
    fn update_does_not_grow() {
        let mut m: CuckooHashMap<u32> = CuckooHashMap::new(100);
        assert!(m.try_insert(5, 1));
        assert!(m.try_insert(5, 2));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(5), Some(2));
    }

    #[test]
    fn reaches_high_utilization() {
        // Table 1 reports 99% for the AVX cuckoo; 4-way two-choice
        // should comfortably exceed 95%.
        let cap = 8192;
        let mut m: CuckooHashMap<u64> = CuckooHashMap::new(cap);
        let mut inserted = 0usize;
        for k in 0..cap as u64 {
            if m.try_insert(fmix64(k), k) {
                inserted += 1;
            } else {
                break;
            }
        }
        let util = inserted as f64 / cap as f64;
        assert!(util > 0.95, "utilization {util}");
    }

    #[test]
    fn commercial_mode_stashes_instead_of_failing() {
        let cap = 256;
        let mut m: CuckooHashMap<u64> = CuckooHashMap::new_commercial(cap);
        for k in 0..cap as u64 + 32 {
            assert!(m.try_insert(fmix64(k), k), "commercial must not fail");
        }
        for k in 0..cap as u64 + 32 {
            assert_eq!(m.get(fmix64(k)), Some(k), "key {k}");
        }
        // Over-full: utilization above 1 is possible via the stash.
        assert!(m.len() == cap + 32);
    }

    #[test]
    fn behaves_like_std_hashmap() {
        use std::collections::HashMap;
        let mut ours: CuckooHashMap<u64> = CuckooHashMap::new(4096);
        let mut std_map: HashMap<u64, u64> = HashMap::new();
        let mut state = 7u64;
        for _ in 0..3000 {
            state = fmix64(state);
            let key = state % 1500;
            let val = state >> 16;
            if ours.try_insert(key, val) {
                std_map.insert(key, val);
            }
        }
        for key in 0..1500u64 {
            assert_eq!(ours.get(key), std_map.get(&key).copied(), "key {key}");
        }
    }
}
