//! # li-btree — baseline read-optimized index structures
//!
//! Every range-index baseline the paper compares learned indexes against,
//! implemented from scratch:
//!
//! * [`BTreeIndex`] — the §3.7.1 main baseline: "a production quality
//!   B-Tree implementation which is similar to the stx::btree but with
//!   further cache-line optimization, dense pages (i.e., fill factor of
//!   100%)". Ours is a static CSS-tree-style layout: flat per-level key
//!   arrays, offsets instead of pointers, configurable page size.
//! * [`FastTree`] — the FAST [Kim et al., SIGMOD 2010] stand-in: an
//!   implicit branch-free binary tree padded to a power of two
//!   (reproducing FAST's power-of-2 memory blow-up noted in Figure 5).
//! * [`LookupTable`] — the Figure-5 "Lookup Table w/ AVX search": a
//!   3-stage 64-way hierarchical table with branch-free compare-count
//!   scans.
//! * [`InterpBTree`] — the Figure-5 "fixed-size B-Tree & interpolation
//!   search" baseline: index size fixed to a byte budget, interpolation
//!   search inside nodes.
//!
//! The [`RangeIndex`] trait (defined in `li-index` and re-exported here
//! for backward compatibility) is the common interface all of them — and
//! the learned indexes in `li-core` — implement, split into a *predict*
//! phase (narrow to a candidate region; for a B-Tree this is the
//! traversal to the page) and a *search* phase (find the key within the
//! region), so the benchmark harness can report the paper's "Model (ns)"
//! column. Every structure is built over a shared [`KeyStore`], so many
//! indexes can sit on one key allocation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btree;
pub mod fast;
pub mod interp;
pub mod lookup_table;
pub mod paged;
pub mod search;

pub use btree::BTreeIndex;
pub use fast::FastTree;
pub use interp::InterpBTree;
pub use lookup_table::LookupTable;
pub use paged::PagedIndex;

// Re-exported from the foundation crate for backward compatibility:
// downstream code that wrote `li_btree::RangeIndex` keeps compiling.
pub use li_index::{KeyStore, Prediction, RangeIndex};

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn provided_methods_agree_with_semantics() {
        let data: Vec<u64> = vec![10, 20, 30, 40];
        let idx = BTreeIndex::new(data, 2);
        assert_eq!(idx.lookup(20), Some(1));
        assert_eq!(idx.lookup(25), None);
        assert_eq!(idx.upper_bound(20), 2);
        assert_eq!(idx.upper_bound(25), 2);
        assert_eq!(idx.range(15, 35), 1..3);
        assert_eq!(idx.range(35, 15), 0..0);
        assert_eq!(idx.range(0, 100), 0..4);
    }

    #[test]
    fn indexes_share_one_key_store() {
        let store = KeyStore::new((0..1000u64).map(|i| i * 2).collect());
        let btree = BTreeIndex::new(store.clone(), 64);
        let fast = FastTree::new(store.clone());
        let lut = LookupTable::new(store.clone());
        let interp = InterpBTree::with_budget(store.clone(), 1024);
        for idx in [
            &btree as &dyn RangeIndex,
            &fast as &dyn RangeIndex,
            &lut as &dyn RangeIndex,
            &interp as &dyn RangeIndex,
        ] {
            assert!(idx.key_store().ptr_eq(&store), "{}", idx.name());
        }
    }
}
