//! # li-btree — baseline read-optimized index structures
//!
//! Every range-index baseline the paper compares learned indexes against,
//! implemented from scratch:
//!
//! * [`BTreeIndex`] — the §3.7.1 main baseline: "a production quality
//!   B-Tree implementation which is similar to the stx::btree but with
//!   further cache-line optimization, dense pages (i.e., fill factor of
//!   100%)". Ours is a static CSS-tree-style layout: flat per-level key
//!   arrays, offsets instead of pointers, configurable page size.
//! * [`FastTree`] — the FAST [Kim et al., SIGMOD 2010] stand-in: an
//!   implicit branch-free binary tree padded to a power of two
//!   (reproducing FAST's power-of-2 memory blow-up noted in Figure 5).
//! * [`LookupTable`] — the Figure-5 "Lookup Table w/ AVX search": a
//!   3-stage 64-way hierarchical table with branch-free compare-count
//!   scans.
//! * [`InterpBTree`] — the Figure-5 "fixed-size B-Tree & interpolation
//!   search" baseline: index size fixed to a byte budget, interpolation
//!   search inside nodes.
//!
//! The [`RangeIndex`] trait is the common interface all of them — and the
//! learned indexes in `li-core` — implement, split into a *predict* phase
//! (narrow to a candidate region; for a B-Tree this is the traversal to
//! the page) and a *search* phase (find the key within the region), so
//! the benchmark harness can report the paper's "Model (ns)" column.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btree;
pub mod fast;
pub mod interp;
pub mod lookup_table;
pub mod paged;
pub mod search;

pub use btree::BTreeIndex;
pub use fast::FastTree;
pub use interp::InterpBTree;
pub use lookup_table::LookupTable;
pub use paged::PagedIndex;

/// A candidate region produced by an index's predict phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// The position estimate (for a B-Tree: start of the page; for a
    /// learned index: the model output).
    pub pos: usize,
    /// Inclusive lower bound of the region guaranteed to contain the
    /// lower-bound position of the key.
    pub lo: usize,
    /// Exclusive upper bound of that region.
    pub hi: usize,
}

/// A read-only range index over a sorted `u64` key array.
///
/// Semantics follow §3.4 of the paper: `lower_bound(q)` returns the
/// position of the first stored key `>= q` (i.e. `data.len()` when every
/// key is smaller), exactly like `slice::partition_point(|k| k < q)` on
/// the underlying sorted array.
pub trait RangeIndex: Send + Sync {
    /// The sorted key array the index was built over.
    fn data(&self) -> &[u64];

    /// Predict phase: narrow the key to a candidate region. The paper's
    /// "Model (ns)" column times exactly this.
    fn predict(&self, key: u64) -> Prediction;

    /// Full lookup: position of the first key `>= key`.
    fn lower_bound(&self, key: u64) -> usize;

    /// Position of the first key `> key`.
    fn upper_bound(&self, key: u64) -> usize {
        let lb = self.lower_bound(key);
        let data = self.data();
        // Keys are unique, so at most one equal key to skip.
        if lb < data.len() && data[lb] == key {
            lb + 1
        } else {
            lb
        }
    }

    /// Position of `key` if present.
    fn lookup(&self, key: u64) -> Option<usize> {
        let lb = self.lower_bound(key);
        let data = self.data();
        (lb < data.len() && data[lb] == key).then_some(lb)
    }

    /// All positions whose keys fall in `[lo, hi)` — the range scan the
    /// sorted layout exists to serve (§2.2).
    fn range(&self, lo: u64, hi: u64) -> std::ops::Range<usize> {
        if hi <= lo {
            return 0..0;
        }
        let start = self.lower_bound(lo);
        let end = self.lower_bound(hi);
        start..end
    }

    /// Index overhead in bytes, **excluding** the data array itself (the
    /// paper's "Size (MB)" column counts only the index).
    fn size_bytes(&self) -> usize;

    /// Human-readable name including configuration, e.g.
    /// `"btree(page=128)"`.
    fn name(&self) -> String;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn provided_methods_agree_with_semantics() {
        let data: Vec<u64> = vec![10, 20, 30, 40];
        let idx = BTreeIndex::new(data, 2);
        assert_eq!(idx.lookup(20), Some(1));
        assert_eq!(idx.lookup(25), None);
        assert_eq!(idx.upper_bound(20), 2);
        assert_eq!(idx.upper_bound(25), 2);
        assert_eq!(idx.range(15, 35), 1..3);
        assert_eq!(idx.range(35, 15), 0..0);
        assert_eq!(idx.range(0, 100), 0..4);
    }
}
