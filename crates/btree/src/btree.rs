//! The read-optimized static B-Tree baseline of §3.7.1.
//!
//! The paper's baseline is "a production quality B-Tree implementation
//! which is similar to the stx::btree but with further cache-line
//! optimization, dense pages (i.e., fill factor of 100%), and very
//! competitive performance". For a read-only sorted array the
//! state-of-the-art layout is a CSS-tree: all separator keys of one level
//! stored in a single flat array, children addressed by offset arithmetic
//! instead of pointers. That is what we build here:
//!
//! * the data array is logically split into pages of `page_size` keys
//!   (the paper's page size "indicates the number of keys per page");
//! * level 0 of the index holds the first key of every page ("it is
//!   common not to index every single key … rather only the key of every
//!   n-th record, i.e., the first key of a page", §2);
//! * each higher level holds the first key of every `page_size`-chunk of
//!   the level below, until a level fits in one node.
//!
//! Lookup descends the levels with one in-node binary search each — the
//! paper's "model" phase — and finishes with a binary search inside the
//! data page — the "last mile". 100% fill, no pointers, no padding.

use crate::search::lower_bound;
use crate::{KeyStore, Prediction, RangeIndex};

/// Static dense-page B-Tree over a sorted `u64` array.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    data: KeyStore,
    /// Separator levels, bottom (largest) last. `levels[0]` is the root
    /// level (≤ `page_size` keys); each key is the first key of a chunk
    /// of the level below (or of a data page, for the last level).
    levels: Vec<Vec<u64>>,
    page_size: usize,
}

impl BTreeIndex {
    /// Build over `data` (must be sorted ascending; checked in debug
    /// builds) with `page_size` keys per page. Accepts anything
    /// convertible to a [`KeyStore`] — pass a `KeyStore` clone to share
    /// the key array with other indexes at zero copy.
    pub fn new(data: impl Into<KeyStore>, page_size: usize) -> Self {
        let data: KeyStore = data.into();
        assert!(page_size >= 2, "page size must be at least 2");
        debug_assert!(data.windows(2).all(|w| w[0] <= w[1]), "data must be sorted");

        // Bottom-up: leaf separator level = first key of each data page.
        let mut levels: Vec<Vec<u64>> = Vec::new();
        if data.len() > page_size {
            let mut level: Vec<u64> = data.iter().step_by(page_size).copied().collect();
            while level.len() > page_size {
                let upper: Vec<u64> = level.iter().step_by(page_size).copied().collect();
                levels.push(level);
                level = upper;
            }
            levels.push(level);
            levels.reverse(); // root first
        }
        Self {
            data,
            levels,
            page_size,
        }
    }

    /// Keys per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of index levels (tree height minus the data level).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Descend the separator levels to the data-page index containing
    /// the key. This is the B-Tree's "model execution" (§2: a B-Tree
    /// "maps a key to a position with a min-error of 0 and a max-error
    /// of the page-size").
    #[inline]
    fn find_page(&self, key: u64) -> usize {
        // `child` = index of the current node within its level.
        let mut child = 0usize;
        for level in &self.levels {
            let start = child * self.page_size;
            let end = (start + self.page_size).min(level.len());
            // Position of the last separator strictly < key within this
            // node (first separator is a lower fence). Routing on `<`
            // rather than `<=` keeps duplicate runs that span page
            // boundaries correct: a run of `key`s starting in an earlier
            // page must not be skipped by an equal separator here — if
            // the routed page holds only smaller keys, the answer is its
            // end, which is exactly where the run starts.
            let in_node = level[start..end].partition_point(|&k| k < key);
            child = start + in_node.saturating_sub(1);
        }
        child
    }
}

impl RangeIndex for BTreeIndex {
    fn key_store(&self) -> &KeyStore {
        &self.data
    }

    #[inline]
    fn predict(&self, key: u64) -> Prediction {
        if self.levels.is_empty() {
            return Prediction {
                pos: 0,
                lo: 0,
                hi: self.data.len(),
            };
        }
        let page = self.find_page(key);
        let lo = page * self.page_size;
        let hi = (lo + self.page_size).min(self.data.len());
        Prediction { pos: lo, lo, hi }
    }

    #[inline]
    fn lower_bound(&self, key: u64) -> usize {
        let p = self.predict(key);
        // If every key in the page is smaller, the answer is the start of
        // the next page, which `lower_bound` returns as `p.hi` — correct
        // because the next page's first key is >= key (separator
        // property under strict-< routing), and when it is == key it is
        // the first occurrence of a duplicate run.
        lower_bound(&self.data, key, p.lo, p.hi)
    }

    /// Phase-split batched lookup: descend the separator levels for
    /// *every* query first, then run all page-local binary searches.
    /// The traversal loop touches only the (small, cache-resident)
    /// separator arrays while the search loop touches the (large) data
    /// array, so the data-page cache misses of different queries are
    /// independent and the hardware can overlap them.
    fn lower_bound_batch(&self, queries: &[u64], out: &mut [usize]) {
        assert_eq!(
            queries.len(),
            out.len(),
            "lower_bound_batch: queries and out must have equal length"
        );
        // Phase 1: predict (separator traversal) for all queries.
        let preds: Vec<Prediction> = queries.iter().map(|&q| self.predict(q)).collect();
        // Phase 2: resolve all page-local searches.
        for ((o, &q), p) in out.iter_mut().zip(queries).zip(&preds) {
            *o = lower_bound(&self.data, q, p.lo, p.hi);
        }
    }

    fn size_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.len() * std::mem::size_of::<u64>())
            .sum()
    }

    fn name(&self) -> String {
        format!("btree(page={})", self.page_size)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(data: &[u64], key: u64) -> usize {
        data.partition_point(|&k| k < key)
    }

    fn check_against_oracle(data: Vec<u64>, page_size: usize) {
        let idx = BTreeIndex::new(data.clone(), page_size);
        let mut queries = vec![0u64, u64::MAX];
        for &k in &data {
            queries.extend_from_slice(&[k.saturating_sub(1), k, k.saturating_add(1)]);
        }
        for q in queries {
            assert_eq!(
                idx.lower_bound(q),
                oracle(&data, q),
                "page={page_size} q={q}"
            );
        }
    }

    #[test]
    fn matches_oracle_across_page_sizes() {
        let data: Vec<u64> = (0..2000u64).map(|i| i * 7 + 3).collect();
        for page in [2, 3, 16, 32, 128, 512, 4096] {
            check_against_oracle(data.clone(), page);
        }
    }

    #[test]
    fn tiny_and_empty_inputs() {
        check_against_oracle(vec![], 16);
        check_against_oracle(vec![42], 16);
        check_against_oracle(vec![1, 2], 2);
    }

    #[test]
    fn multi_level_height_grows_logarithmically() {
        let data: Vec<u64> = (0..100_000u64).collect();
        let idx = BTreeIndex::new(data, 10);
        // 100k keys / page 10 → 10k separators → 1k → 100 → 10: 4 levels.
        assert_eq!(idx.height(), 4);
    }

    #[test]
    fn size_counts_only_separators() {
        let data: Vec<u64> = (0..10_000u64).collect();
        let idx = BTreeIndex::new(data, 100);
        // level0: 100 separators, root: 1 chunk of them → one level of
        // 100 within node budget → exactly 100 u64 = 800 bytes.
        assert_eq!(idx.size_bytes(), 100 * 8);
        // Bigger pages → smaller index (the paper's size column).
        let big = BTreeIndex::new((0..10_000u64).collect::<Vec<_>>(), 500);
        assert!(big.size_bytes() < idx.size_bytes());
    }

    #[test]
    fn predict_region_always_contains_answer() {
        let data: Vec<u64> = (0..5000u64).map(|i| i * 11).collect();
        let idx = BTreeIndex::new(data.clone(), 64);
        for q in (0..60_000u64).step_by(37) {
            let p = idx.predict(q);
            let ans = oracle(&data, q);
            assert!(
                (p.lo..=p.hi).contains(&ans),
                "q={q} ans={ans} region {}..{}",
                p.lo,
                p.hi
            );
        }
    }

    #[test]
    fn data_smaller_than_one_page_has_no_index() {
        let idx = BTreeIndex::new((0..50u64).collect::<Vec<_>>(), 128);
        assert_eq!(idx.size_bytes(), 0);
        assert_eq!(idx.height(), 0);
        assert_eq!(idx.lower_bound(25), 25);
    }

    #[test]
    fn batched_lookup_matches_scalar() {
        let data: Vec<u64> = (0..3000u64).map(|i| i * 5 + 1).collect();
        for page in [2usize, 16, 128] {
            let idx = BTreeIndex::new(data.clone(), page);
            let queries: Vec<u64> = (0..4000u64).map(|i| i * 4).collect();
            let mut out = vec![0usize; queries.len()];
            idx.lower_bound_batch(&queries, &mut out);
            for (&q, &got) in queries.iter().zip(&out) {
                assert_eq!(got, idx.lower_bound(q), "page={page} q={q}");
            }
        }
    }

    #[test]
    fn shares_key_store_without_copying() {
        let store = KeyStore::new((0..100u64).collect());
        let a = BTreeIndex::new(store.clone(), 16);
        let b = BTreeIndex::new(store.clone(), 32);
        assert!(a.key_store().ptr_eq(b.key_store()));
        assert!(a.key_store().ptr_eq(&store));
    }

    #[test]
    fn range_scan_is_correct() {
        let data: Vec<u64> = (0..1000u64).map(|i| i * 2).collect();
        let idx = BTreeIndex::new(data, 32);
        assert_eq!(idx.range(10, 20), 5..10);
        assert_eq!(idx.range(11, 13), 6..7); // only key 12
    }

    /// Duplicate runs spanning page boundaries: lower_bound must return
    /// the run's *first* occurrence even when a later page's separator
    /// equals the key (regression: `<=` routing skipped to that page).
    #[test]
    fn duplicate_runs_resolve_to_first_occurrence() {
        // Runs of 7 equal keys over small pages so runs straddle pages
        // at every alignment, across multiple tree heights.
        let data: Vec<u64> = (0..700u64).map(|i| (i / 7) * 3).collect();
        for page in [2usize, 3, 4, 8, 16] {
            check_against_oracle(data.clone(), page);
        }
        // All-equal input: every separator is the key.
        check_against_oracle(vec![42; 257], 4);
    }
}
