//! Generic paged separator index — the B-Tree baseline for any `Ord`
//! key type (used for the Figure-6 string comparison).
//!
//! [`crate::BTreeIndex`] is specialized (and size-accounted) for `u64`;
//! string experiments need the same "index the first key of every page"
//! structure over `String`. `PagedIndex<T>` keeps one separator level
//! per `page_size` chunk, searched with binary search per node, exactly
//! like the CSS-tree layout — but generic, with caller-visible byte
//! accounting for variable-length keys.

use crate::KeyStore;
use std::ops::Range;

/// A static multi-level paged index over a sorted slice of `T`.
#[derive(Debug, Clone)]
pub struct PagedIndex<T> {
    data: KeyStore<T>,
    /// Separator levels, root level first; each entry is (first key of
    /// chunk) paired implicitly by position.
    levels: Vec<Vec<T>>,
    page_size: usize,
}

impl<T: Ord + Clone> PagedIndex<T> {
    /// Build over sorted `data` (shared via a generic [`KeyStore`]) with
    /// `page_size` keys per page.
    pub fn new(data: impl Into<KeyStore<T>>, page_size: usize) -> Self {
        let data: KeyStore<T> = data.into();
        assert!(page_size >= 2);
        debug_assert!(data.windows(2).all(|w| w[0] <= w[1]));
        let mut levels: Vec<Vec<T>> = Vec::new();
        if data.len() > page_size {
            let mut level: Vec<T> = data.iter().step_by(page_size).cloned().collect();
            while level.len() > page_size {
                let upper: Vec<T> = level.iter().step_by(page_size).cloned().collect();
                levels.push(level);
                level = upper;
            }
            levels.push(level);
            levels.reverse();
        }
        Self {
            data,
            levels,
            page_size,
        }
    }

    /// The underlying sorted data.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// The shared key store the index was built over.
    pub fn key_store(&self) -> &KeyStore<T> {
        &self.data
    }

    /// Keys per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Descend to the candidate page for `key`; returns the data range
    /// of that page (the "model" phase of a B-Tree lookup).
    pub fn predict(&self, key: &T) -> Range<usize> {
        if self.levels.is_empty() {
            return 0..self.data.len();
        }
        let mut child = 0usize;
        for level in &self.levels {
            let start = child * self.page_size;
            let end = (start + self.page_size).min(level.len());
            let in_node = level[start..end].partition_point(|k| k <= key);
            child = start + in_node.saturating_sub(1);
        }
        let lo = child * self.page_size;
        let hi = (lo + self.page_size).min(self.data.len());
        lo..hi
    }

    /// Position of the first element `>= key`.
    pub fn lower_bound(&self, key: &T) -> usize {
        let page = self.predict(key);
        page.start + self.data[page.clone()].partition_point(|k| k < key)
    }

    /// Position of `key` if present.
    pub fn lookup(&self, key: &T) -> Option<usize> {
        let p = self.lower_bound(key);
        (p < self.data.len() && &self.data[p] == key).then_some(p)
    }

    /// Separator count across all levels (size = this × per-key bytes).
    pub fn separator_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Index bytes given a per-key size function (strings vary).
    pub fn size_bytes_with(&self, key_bytes: impl Fn(&T) -> usize) -> usize {
        self.levels
            .iter()
            .flat_map(|l| l.iter())
            .map(key_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_oracle_for_strings() {
        let mut data: Vec<String> = (0..2000).map(|i| format!("k{:06}", i * 3)).collect();
        data.sort_unstable();
        let idx = PagedIndex::new(data.clone(), 32);
        for i in 0..2100 {
            let q = format!("k{:06}", i * 3 + 1);
            assert_eq!(
                idx.lower_bound(&q),
                data.partition_point(|s| s < &q),
                "q={q}"
            );
        }
        for s in data.iter().step_by(17) {
            assert_eq!(idx.lookup(s), data.binary_search(s).ok());
        }
    }

    #[test]
    fn matches_u64_btree_semantics() {
        let data: Vec<u64> = (0..5000u64).map(|i| i * 7).collect();
        let paged = PagedIndex::new(data.clone(), 64);
        let btree = crate::BTreeIndex::new(data.clone(), 64);
        use crate::RangeIndex;
        for q in (0..36_000u64).step_by(11) {
            assert_eq!(paged.lower_bound(&q), btree.lower_bound(q), "q={q}");
        }
    }

    #[test]
    fn size_accounting_for_strings() {
        let data: Vec<String> = (0..1000).map(|i| format!("{i:08}")).collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let idx = PagedIndex::new(sorted, 100);
        // 10 separators of 8 bytes each (+ higher levels none).
        assert_eq!(idx.separator_count(), 10);
        assert_eq!(idx.size_bytes_with(|s| s.len()), 80);
    }

    #[test]
    fn small_data_has_no_levels() {
        let idx = PagedIndex::new(vec![1u64, 2, 3], 16);
        assert_eq!(idx.separator_count(), 0);
        assert_eq!(idx.lower_bound(&2), 1);
    }
}
