//! FAST-like branch-free implicit search tree.
//!
//! FAST [Kim et al., SIGMOD 2010] lays a binary search tree out in
//! hierarchically blocked implicit form and traverses it without data-
//! dependent branches, using SIMD compares. The paper uses it as a
//! baseline (Figure 5) and notes two properties we reproduce:
//!
//! 1. *branch-free traversal*: our descent is a fixed-length loop whose
//!    only data dependence is an arithmetic select (compiles to cmov/
//!    setcc, no mispredictions) — "they can only transform control
//!    dependencies to memory dependencies" (§2.1 fn. 3);
//! 2. *power-of-2 memory blow-up*: "FAST always requires to allocate
//!    memory in the power of 2 … which can lead to significantly larger
//!    indexes" — Figure 5 shows 1024MB vs 16.3MB for the lookup table.
//!    We pad the tree to `2^h − 1` slots and count the padding.
//!
//! The layout is an Eytzinger (BFS-order) complete tree. Because the
//! tree is complete, the sorted *rank* can be reconstructed during the
//! descent from known subtree sizes — no per-node rank storage needed.

use crate::{KeyStore, Prediction, RangeIndex};

/// Branch-free implicit complete binary search tree over sorted keys.
#[derive(Debug, Clone)]
pub struct FastTree {
    data: KeyStore,
    /// Eytzinger-ordered complete tree of `2^height − 1` slots; absent
    /// slots are padded with `u64::MAX`.
    tree: Vec<u64>,
    height: u32,
}

impl FastTree {
    /// Build over `data` (sorted ascending; shared via [`KeyStore`]).
    pub fn new(data: impl Into<KeyStore>) -> Self {
        let data: KeyStore = data.into();
        debug_assert!(data.windows(2).all(|w| w[0] <= w[1]));
        let n = data.len();
        // Smallest complete tree with at least n slots.
        let height = (usize::BITS - n.leading_zeros()).max(1);
        let slots = (1usize << height) - 1;
        let mut tree = vec![u64::MAX; slots];
        // In-order fill of the Eytzinger layout = sorted order.
        fn fill(tree: &mut [u64], data: &[u64], node: usize, next: &mut usize) {
            if node >= tree.len() {
                return;
            }
            fill(tree, data, 2 * node + 1, next);
            if *next < data.len() {
                tree[node] = data[*next];
                *next += 1;
            }
            fill(tree, data, 2 * node + 2, next);
        }
        let mut next = 0usize;
        fill(&mut tree, &data, 0, &mut next);
        Self { data, tree, height }
    }

    /// Branch-free descent returning the rank of the first key `>= key`.
    #[inline]
    fn rank(&self, key: u64) -> usize {
        let mut node = 0usize;
        let mut rank = 0usize;
        // At depth d the subtree below each child has 2^(height-d-1) − 1
        // nodes; going right skips the left subtree plus the node itself.
        let mut skip = 1usize << (self.height - 1); // left subtree + self
        for _ in 0..self.height {
            // Padded slots hold u64::MAX which never compares < key for
            // real keys, so padding never sends us right past real data.
            let go_right = usize::from(self.tree[node] < key);
            rank += go_right * skip;
            node = 2 * node + 1 + go_right;
            skip /= 2;
        }
        rank.min(self.data.len())
    }
}

impl RangeIndex for FastTree {
    fn key_store(&self) -> &KeyStore {
        &self.data
    }

    #[inline]
    fn predict(&self, key: u64) -> Prediction {
        // FAST resolves to the exact position; predict == search.
        let pos = self.rank(key);
        Prediction {
            pos,
            lo: pos,
            hi: pos,
        }
    }

    #[inline]
    fn lower_bound(&self, key: u64) -> usize {
        self.rank(key)
    }

    fn size_bytes(&self) -> usize {
        // The padded tree is the index; the blow-up is intentional.
        self.tree.len() * std::mem::size_of::<u64>()
    }

    fn name(&self) -> String {
        "fast".to_string()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(data: &[u64], key: u64) -> usize {
        data.partition_point(|&k| k < key)
    }

    fn check(data: Vec<u64>) {
        let idx = FastTree::new(data.clone());
        let mut queries = vec![0u64, 1, u64::MAX];
        for &k in &data {
            queries.extend_from_slice(&[k.saturating_sub(1), k, k.saturating_add(1)]);
        }
        for q in queries {
            assert_eq!(idx.lower_bound(q), oracle(&data, q), "{data:?} q={q}");
        }
    }

    #[test]
    fn matches_oracle_at_many_sizes() {
        for n in [0usize, 1, 2, 3, 7, 8, 9, 100, 1023, 1024, 1025] {
            check((0..n as u64).map(|i| i * 5 + 2).collect());
        }
    }

    #[test]
    fn power_of_two_padding_blows_up_size() {
        // 1025 keys pad to 2047 slots: almost 2× the raw keys — the
        // Figure-5 phenomenon.
        let idx = FastTree::new((0..1025u64).collect::<Vec<_>>());
        assert_eq!(idx.size_bytes(), 2047 * 8);
        let exact = FastTree::new((0..1023u64).collect::<Vec<_>>());
        assert_eq!(exact.size_bytes(), 1023 * 8);
    }

    #[test]
    fn max_key_queries_are_correct() {
        // u64::MAX as a query must not be confused by MAX padding.
        let data = vec![1u64, 2, 3];
        let idx = FastTree::new(data.clone());
        assert_eq!(idx.lower_bound(u64::MAX), 3);
        assert_eq!(idx.lookup(u64::MAX), None);
    }

    #[test]
    fn max_key_as_data_still_found() {
        let data = vec![1u64, u64::MAX];
        let idx = FastTree::new(data);
        assert_eq!(idx.lookup(u64::MAX), Some(1));
        assert_eq!(idx.lookup(1), Some(0));
    }

    #[test]
    fn lognormal_style_keys_roundtrip() {
        // Clustered keys exercise deep right/left descents.
        let mut data: Vec<u64> = (0..2000u64).map(|i| i * i * 31 % 1_000_003).collect();
        data.sort_unstable();
        data.dedup();
        check(data);
    }
}
