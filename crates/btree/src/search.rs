//! Last-mile search primitives over sorted slices.
//!
//! §3.4 of the paper discusses search strategies once an index (learned
//! or traditional) has narrowed a key to a region. These are the shared
//! building blocks: plain and branchless binary search, exponential
//! search from a position hint, and interpolation search. The
//! *model-biased* variants that exploit a learned prediction live in
//! `li-core::search`; they are built on these.

/// Position of the first element `>= key` in `data[lo..hi]`, returned as
/// an absolute index. Plain binary search (the paper's note \[8\]: "binary
/// search … usually the fastest strategy … for small payloads").
#[inline]
pub fn lower_bound(data: &[u64], key: u64, lo: usize, hi: usize) -> usize {
    debug_assert!(lo <= hi && hi <= data.len());
    lo + data[lo..hi].partition_point(|&k| k < key)
}

/// Branchless binary search over the whole slice: the comparison feeds an
/// arithmetic select instead of a branch, trading mispredictions for a
/// fixed instruction stream (the technique behind "AVX search" baselines;
/// reference \[14\] of the paper).
#[inline]
pub fn branchless_lower_bound(data: &[u64], key: u64) -> usize {
    let mut base = 0usize;
    let mut len = data.len();
    while len > 1 {
        let half = len / 2;
        // cmov-style: advance base iff the probe key is < key.
        base += usize::from(data[base + half - 1] < key) * half;
        len -= half;
    }
    base + usize::from(len == 1 && data.get(base).is_some_and(|&k| k < key))
}

/// Exponential (galloping) search outward from `hint`, then binary search
/// in the located bracket. §3.4: *"another possibility is to use
/// exponential search techniques. Assuming a normal distributed error,
/// those techniques on average should work as good as alternative search
/// strategies while not requiring to store any min- and max-errors."*
pub fn exponential_search(data: &[u64], key: u64, hint: usize) -> usize {
    let n = data.len();
    if n == 0 {
        return 0;
    }
    let hint = hint.min(n - 1);
    if data[hint] < key {
        // Gallop right: bracket (hint + step/2, hint + step].
        let mut step = 1usize;
        let mut prev = hint;
        loop {
            let next = hint.saturating_add(step);
            if next >= n {
                return lower_bound(data, key, prev + 1, n);
            }
            if data[next] >= key {
                return lower_bound(data, key, prev + 1, next + 1);
            }
            prev = next;
            step <<= 1;
        }
    } else {
        // Gallop left.
        let mut step = 1usize;
        let mut prev = hint;
        loop {
            if step > hint {
                return lower_bound(data, key, 0, prev);
            }
            let next = hint - step;
            if data[next] < key {
                return lower_bound(data, key, next + 1, prev);
            }
            prev = next;
            step <<= 1;
        }
    }
}

/// Interpolation search for the first element `>= key` in
/// `data[lo..hi]`. Falls back to binary search when the interpolation
/// stops making progress (skewed regions), so worst case stays
/// O(log n). Used by [`crate::InterpBTree`] (Figure 5's baseline from
/// reference \[1\]).
pub fn interpolation_search(data: &[u64], key: u64, mut lo: usize, mut hi: usize) -> usize {
    debug_assert!(lo <= hi && hi <= data.len());
    // Invariant: answer is in [lo, hi]; data[lo-1] < key <= data[hi].
    let mut iterations = 0usize;
    while hi > lo {
        let first = data[lo];
        let last = data[hi - 1];
        if key <= first {
            return lo;
        }
        if key > last {
            return hi;
        }
        if first == last {
            // All keys equal in this window and key is within them.
            return lo;
        }
        // Interpolation converges in O(log log n) probes on near-uniform
        // windows but only linearly on skewed ones; hand off to binary
        // search after a few probes so the worst case stays O(log n)
        // with a small constant (introspective search).
        iterations += 1;
        if iterations > 4 {
            return lower_bound(data, key, lo, hi);
        }
        // Estimated position of key by linear interpolation.
        let span = (last - first) as f64;
        let frac = (key - first) as f64 / span;
        let guess = lo + ((hi - 1 - lo) as f64 * frac) as usize;
        let guess = guess.clamp(lo, hi - 1);
        if data[guess] < key {
            lo = guess + 1;
        } else {
            hi = guess;
            // data[guess] >= key, but elements before guess may also be.
            // Loop continues narrowing; hi now points at a valid >= key.
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(data: &[u64], key: u64) -> usize {
        data.partition_point(|&k| k < key)
    }

    fn datasets() -> Vec<Vec<u64>> {
        vec![
            vec![],
            vec![5],
            vec![1, 3, 5, 7, 9, 11],
            (0..1000u64).map(|i| i * 3).collect(),
            // Skewed: quadratic growth breaks naive interpolation.
            (0..500u64).map(|i| i * i).collect(),
            // Duplicate-free but highly clustered.
            (0..300u64)
                .map(|i| if i < 290 { i } else { i * 1000 })
                .collect(),
        ]
    }

    fn queries(data: &[u64]) -> Vec<u64> {
        let mut qs = vec![0, 1, u64::MAX, u64::MAX - 1];
        for &k in data {
            qs.extend_from_slice(&[k.saturating_sub(1), k, k + 1]);
        }
        qs
    }

    #[test]
    fn lower_bound_matches_oracle() {
        for data in datasets() {
            for q in queries(&data) {
                assert_eq!(lower_bound(&data, q, 0, data.len()), oracle(&data, q));
            }
        }
    }

    #[test]
    fn branchless_matches_oracle() {
        for data in datasets() {
            for q in queries(&data) {
                assert_eq!(
                    branchless_lower_bound(&data, q),
                    oracle(&data, q),
                    "{data:?} q={q}"
                );
            }
        }
    }

    #[test]
    fn exponential_matches_oracle_from_any_hint() {
        for data in datasets() {
            if data.is_empty() {
                assert_eq!(exponential_search(&data, 7, 0), 0);
                continue;
            }
            for q in queries(&data) {
                for hint in [0, data.len() / 2, data.len() - 1, data.len() + 100] {
                    assert_eq!(
                        exponential_search(&data, q, hint),
                        oracle(&data, q),
                        "{data:?} q={q} hint={hint}"
                    );
                }
            }
        }
    }

    #[test]
    fn interpolation_matches_oracle() {
        for data in datasets() {
            for q in queries(&data) {
                assert_eq!(
                    interpolation_search(&data, q, 0, data.len()),
                    oracle(&data, q),
                    "{data:?} q={q}"
                );
            }
        }
    }

    #[test]
    fn interpolation_subrange_respects_bounds() {
        let data: Vec<u64> = (0..100).map(|i| i * 2).collect();
        // Search only within [10, 50).
        assert_eq!(interpolation_search(&data, 40, 10, 50), 20);
        assert_eq!(interpolation_search(&data, 0, 10, 50), 10);
        assert_eq!(interpolation_search(&data, 1000, 10, 50), 50);
    }

    #[test]
    fn exponential_is_cheap_near_hint() {
        // Sanity rather than perf: correct when the hint is exact.
        let data: Vec<u64> = (0..10_000u64).collect();
        for q in [0u64, 5000, 9999] {
            assert_eq!(exponential_search(&data, q, q as usize), q as usize);
        }
    }
}
