//! Fixed-size B-Tree with interpolation search (Figure 5 baseline).
//!
//! §3.7.1: *"as proposed in a recent blog post \[1\] we created a
//! fixed-height B-Tree with interpolation search. The B-Tree height is
//! set, so that the total size of the tree is 1.5MB, similar to our
//! learned model."* (Reference \[1\] is the "database architects" blog's
//! reply to the learned-index paper.)
//!
//! Given a byte budget, we choose the page size so that the separator
//! array fits the budget, producing a two-level structure (one separator
//! array over large data pages). Both the separator array and the final
//! page are searched with interpolation search — the whole point of the
//! baseline is that interpolation exploits the data distribution much
//! like a linear model does, one step at a time.

use crate::search::interpolation_search;
use crate::{KeyStore, Prediction, RangeIndex};

/// Fixed-budget B-Tree using interpolation search inside nodes.
#[derive(Debug, Clone)]
pub struct InterpBTree {
    data: KeyStore,
    /// First key of every page.
    separators: Vec<u64>,
    page_size: usize,
}

impl InterpBTree {
    /// Build over `data` (sorted ascending; shared via [`KeyStore`]) so
    /// that the index occupies at most `budget_bytes`.
    pub fn with_budget(data: impl Into<KeyStore>, budget_bytes: usize) -> Self {
        let data: KeyStore = data.into();
        let n = data.len();
        let max_separators = (budget_bytes / std::mem::size_of::<u64>()).max(1);
        // page_size = ceil(n / max_separators), at least 2.
        let page_size = n.div_ceil(max_separators).max(2);
        Self::with_page_size(data, page_size)
    }

    /// Build with an explicit page size.
    pub fn with_page_size(data: impl Into<KeyStore>, page_size: usize) -> Self {
        let data: KeyStore = data.into();
        assert!(page_size >= 2);
        debug_assert!(data.windows(2).all(|w| w[0] <= w[1]));
        let separators = data.iter().step_by(page_size).copied().collect();
        Self {
            data,
            separators,
            page_size,
        }
    }

    /// Keys per data page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }
}

impl RangeIndex for InterpBTree {
    fn key_store(&self) -> &KeyStore {
        &self.data
    }

    #[inline]
    fn predict(&self, key: u64) -> Prediction {
        if self.separators.is_empty() {
            return Prediction {
                pos: 0,
                lo: 0,
                hi: self.data.len(),
            };
        }
        // Interpolation search over the separators: first separator
        // >= key, minus one, names the page — i.e. route on the last
        // separator strictly < key, so a duplicate run spanning a page
        // boundary resolves to its first occurrence (the page-local
        // search returns the page end when every key is smaller, which
        // is where such a run starts).
        let idx = interpolation_search(&self.separators, key, 0, self.separators.len());
        let page = idx.saturating_sub(1);
        let lo = page * self.page_size;
        let hi = (lo + self.page_size).min(self.data.len());
        Prediction { pos: lo, lo, hi }
    }

    #[inline]
    fn lower_bound(&self, key: u64) -> usize {
        let p = self.predict(key);
        interpolation_search(&self.data, key, p.lo, p.hi)
    }

    fn size_bytes(&self) -> usize {
        self.separators.len() * std::mem::size_of::<u64>()
    }

    fn name(&self) -> String {
        format!("interp-btree(page={})", self.page_size)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(data: &[u64], key: u64) -> usize {
        data.partition_point(|&k| k < key)
    }

    fn check(data: Vec<u64>, budget: usize) {
        let idx = InterpBTree::with_budget(data.clone(), budget);
        let mut queries = vec![0u64, 1, u64::MAX];
        for &k in data.iter().step_by(13) {
            queries.extend_from_slice(&[k.saturating_sub(1), k, k.saturating_add(1)]);
        }
        for q in queries {
            assert_eq!(idx.lower_bound(q), oracle(&data, q), "q={q}");
        }
    }

    #[test]
    fn matches_oracle_on_uniform_keys() {
        check((0..10_000u64).map(|i| i * 17).collect(), 1024);
    }

    #[test]
    fn matches_oracle_on_skewed_keys() {
        // Quadratic growth — the adversarial case for interpolation.
        let mut data: Vec<u64> = (0..5000u64).map(|i| i * i).collect();
        data.dedup();
        check(data, 2048);
    }

    #[test]
    fn budget_is_respected() {
        let data: Vec<u64> = (0..100_000u64).collect();
        for budget in [512usize, 4096, 65_536] {
            let idx = InterpBTree::with_budget(data.clone(), budget);
            assert!(
                idx.size_bytes() <= budget,
                "budget {budget} size {}",
                idx.size_bytes()
            );
        }
    }

    #[test]
    fn tiny_inputs() {
        check(vec![], 64);
        check(vec![7], 64);
        check(vec![7, 9], 64);
    }

    /// Duplicate runs spanning page boundaries must resolve to the
    /// run's first occurrence (regression: routing on the first
    /// separator > key landed past earlier occurrences).
    #[test]
    fn duplicate_runs_resolve_to_first_occurrence() {
        let data: Vec<u64> = (0..700u64).map(|i| (i / 7) * 3).collect();
        for page in [2usize, 3, 8, 32] {
            let idx = InterpBTree::with_page_size(data.clone(), page);
            for &k in data.iter().step_by(5) {
                for q in [k.saturating_sub(1), k, k + 1] {
                    assert_eq!(idx.lower_bound(q), oracle(&data, q), "page={page} q={q}");
                }
            }
        }
        let all_equal = vec![42u64; 257];
        let idx = InterpBTree::with_page_size(all_equal.clone(), 4);
        assert_eq!(idx.lower_bound(42), 0);
        assert_eq!(idx.lower_bound(41), 0);
        assert_eq!(idx.lower_bound(43), 257);
    }

    #[test]
    fn uses_larger_pages_for_smaller_budgets() {
        let data: Vec<u64> = (0..100_000u64).collect();
        let small = InterpBTree::with_budget(data.clone(), 1024);
        let large = InterpBTree::with_budget(data, 64 * 1024);
        assert!(small.page_size() > large.page_size());
    }
}
