//! Hierarchical lookup table with branch-free scans (Figure 5 baseline).
//!
//! §3.7.1: *"We included a comparison against a 3-stage lookup table,
//! which is constructed by taking every 64th key and putting it into an
//! array including padding to make it a multiple of 64. Then we repeat
//! that process one more time over the array without padding, creating
//! two arrays in total. To lookup a key, we use binary search on the top
//! table followed by an AVX optimized branch-free scan for the second
//! table and the data itself."*
//!
//! Our branch-free scan counts `key > probe` over a fixed 64-slot window
//! with no early exit — the scalar form of an AVX compare+popcount; the
//! compiler autovectorizes the loop.

use crate::{KeyStore, Prediction, RangeIndex};

const FANOUT: usize = 64;

/// 3-stage 64-way lookup table over a sorted `u64` array.
#[derive(Debug, Clone)]
pub struct LookupTable {
    data: KeyStore,
    /// Stage 2: every 64th key of `data`, padded to a multiple of 64
    /// with `u64::MAX`.
    mid: Vec<u64>,
    /// Stage 1 (top): every 64th key of `mid`, no padding.
    top: Vec<u64>,
}

impl LookupTable {
    /// Build over `data` (sorted ascending; shared via [`KeyStore`]).
    pub fn new(data: impl Into<KeyStore>) -> Self {
        let data: KeyStore = data.into();
        debug_assert!(data.windows(2).all(|w| w[0] <= w[1]));
        let mut mid: Vec<u64> = data.iter().step_by(FANOUT).copied().collect();
        // "including padding to make it a multiple of 64"
        while !mid.len().is_multiple_of(FANOUT) {
            mid.push(u64::MAX);
        }
        let top: Vec<u64> = mid.iter().step_by(FANOUT).copied().collect();
        Self { data, mid, top }
    }

    /// Branch-free count of elements `< key` in a ≤64-wide window.
    /// Fixed trip count, no early exit: autovectorizes to the compare +
    /// mask + popcount pattern of the paper's AVX scan.
    #[inline]
    fn scan_window(window: &[u64], key: u64) -> usize {
        let mut count = 0usize;
        for &k in window {
            count += usize::from(k < key);
        }
        count
    }

    /// Index of the mid-table slot whose page contains the key.
    #[inline]
    fn find_mid_slot(&self, key: u64) -> usize {
        // Binary search on the top table: last top entry <= key names the
        // 64-wide mid window.
        let t = self.top.partition_point(|&k| k <= key);
        let window_idx = t.saturating_sub(1);
        let start = window_idx * FANOUT;
        let end = (start + FANOUT).min(self.mid.len());
        // Branch-free scan within the mid window: last entry <= key.
        let in_window = Self::scan_window(&self.mid[start..end], key.saturating_add(1));
        start + in_window.saturating_sub(1)
    }
}

impl RangeIndex for LookupTable {
    fn key_store(&self) -> &KeyStore {
        &self.data
    }

    #[inline]
    fn predict(&self, key: u64) -> Prediction {
        if self.data.len() <= FANOUT {
            return Prediction {
                pos: 0,
                lo: 0,
                hi: self.data.len(),
            };
        }
        let slot = self.find_mid_slot(key);
        let lo = slot * FANOUT;
        let hi = (lo + FANOUT).min(self.data.len());
        Prediction { pos: lo, lo, hi }
    }

    #[inline]
    fn lower_bound(&self, key: u64) -> usize {
        let p = self.predict(key);
        // Final branch-free scan over the data window. Counting keys < key
        // inside [lo, hi) gives the global lower bound because the next
        // window's first key is > key by the separator property.
        p.lo + Self::scan_window(&self.data[p.lo..p.hi], key)
    }

    fn size_bytes(&self) -> usize {
        (self.mid.len() + self.top.len()) * std::mem::size_of::<u64>()
    }

    fn name(&self) -> String {
        "lookup-table(64x64)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(data: &[u64], key: u64) -> usize {
        data.partition_point(|&k| k < key)
    }

    fn check(data: Vec<u64>) {
        let idx = LookupTable::new(data.clone());
        let mut queries = vec![0u64, 1, u64::MAX];
        for &k in data.iter().step_by(7) {
            queries.extend_from_slice(&[k.saturating_sub(1), k, k.saturating_add(1)]);
        }
        for q in queries {
            assert_eq!(
                idx.lower_bound(q),
                oracle(&data, q),
                "n={} q={q}",
                data.len()
            );
        }
    }

    #[test]
    fn matches_oracle_at_boundary_sizes() {
        for n in [0usize, 1, 63, 64, 65, 4095, 4096, 4097, 10_000] {
            check((0..n as u64).map(|i| i * 3 + 1).collect());
        }
    }

    #[test]
    fn mid_table_is_padded_to_64() {
        let idx = LookupTable::new((0..1000u64).collect::<Vec<_>>());
        assert_eq!(idx.mid.len() % FANOUT, 0);
    }

    #[test]
    fn size_is_roughly_data_over_64() {
        let n = 1 << 20;
        let idx = LookupTable::new((0..n as u64).collect::<Vec<_>>());
        let expected_mid = n / FANOUT;
        // top adds another /64.
        let bytes = idx.size_bytes();
        assert!(bytes >= expected_mid * 8);
        assert!(bytes < expected_mid * 8 * 2);
    }

    #[test]
    fn scan_window_counts_strictly_less() {
        assert_eq!(LookupTable::scan_window(&[1, 2, 3, 4], 3), 2);
        assert_eq!(LookupTable::scan_window(&[], 3), 0);
        assert_eq!(LookupTable::scan_window(&[u64::MAX], u64::MAX), 0);
    }

    #[test]
    fn clustered_keys_roundtrip() {
        let mut data: Vec<u64> = (0..5000u64).map(|i| (i / 10) * 1000 + i % 3).collect();
        data.sort_unstable();
        data.dedup();
        check(data);
    }
}
