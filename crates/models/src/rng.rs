//! Deterministic pseudo-random number generation for model training.
//!
//! Weight initialization and minibatch shuffling must be reproducible from
//! a seed so that every experiment in the workspace is bit-stable. We use
//! SplitMix64 (Steele, Lea & Flood 2014): a tiny, statistically solid
//! generator whose whole state is one `u64`.

/// SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Distinct seeds give independent
    /// streams for all practical purposes.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `usize` in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal via the Box–Muller transform.
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(SplitMix64::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(42);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = SplitMix64::new(1);
        let n = 50_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.normal();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
