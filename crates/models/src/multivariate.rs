//! Multivariate linear regression with automatic feature engineering.
//!
//! §3.7.1 ("Learned indexes without overhead"): *"We used simple automatic
//! feature engineering for the top model by automatically creating and
//! selecting features in the form of key, log(key), key², etc.
//! Multivariate linear regression is an interesting alternative to NN as
//! it is particularly well suited to fit nonlinear patterns with only a
//! few operations."*
//!
//! The model is `y = w · φ(x) + b` where `φ` expands a scalar key into a
//! small feature vector. Features are computed on the **raw** key
//! (shifted by the key minimum so `log`/`sqrt` are defined and `x²` does
//! not cancel catastrophically) and then min-max normalized **per
//! column**, which keeps the normal equations well conditioned across
//! 2⁶⁴-scale key magnitudes without distorting feature shape. Fitting
//! solves the ridge-damped normal equations `(ΦᵀΦ + λI) w = Φᵀy` with
//! the Gaussian-elimination solver from [`crate::linalg`]. Feature
//! *selection* keeps the subset that minimizes holdout RMSE, mirroring
//! the paper's "creating and selecting" phrasing.
//!
//! The same struct also serves vector-valued inputs (string keys, §3.5):
//! use [`MultivariateLinear::fit_vectors`] with raw feature vectors.

use crate::linalg::{solve, Matrix, SingularMatrix};
use crate::Model;

/// A scalar-key feature expansion: which derived features to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureMap {
    /// Include the shifted key itself.
    pub key: bool,
    /// Include `ln(1 + shifted key)`.
    pub log: bool,
    /// Include `(shifted key)²`.
    pub square: bool,
    /// Include `√(shifted key)`.
    pub sqrt: bool,
}

impl FeatureMap {
    /// The full feature set used by the Figure-5 learned index.
    pub const FULL: Self = Self {
        key: true,
        log: true,
        square: true,
        sqrt: true,
    };

    /// Only the raw key: degenerates to simple linear regression.
    pub const LINEAR: Self = Self {
        key: true,
        log: false,
        square: false,
        sqrt: false,
    };

    /// Number of features produced.
    pub fn arity(&self) -> usize {
        self.key as usize + self.log as usize + self.square as usize + self.sqrt as usize
    }

    /// Expand a shifted (≥ 0) key into the feature buffer.
    #[inline]
    fn expand_into(&self, xs: f64, out: &mut [f64]) {
        let xs = xs.max(0.0);
        let mut i = 0;
        if self.key {
            out[i] = xs;
            i += 1;
        }
        if self.log {
            out[i] = xs.ln_1p();
            i += 1;
        }
        if self.square {
            out[i] = xs * xs;
            i += 1;
        }
        if self.sqrt {
            out[i] = xs.sqrt();
            i += 1;
        }
        debug_assert_eq!(i, self.arity());
    }

    /// All 15 non-empty feature subsets, for selection.
    pub fn all_subsets() -> Vec<FeatureMap> {
        let mut out = Vec::with_capacity(15);
        for bits in 1u8..16 {
            out.push(FeatureMap {
                key: bits & 1 != 0,
                log: bits & 2 != 0,
                square: bits & 4 != 0,
                sqrt: bits & 8 != 0,
            });
        }
        out
    }
}

const MAX_FEATURES: usize = 4;

/// Multivariate linear regression over engineered (or raw) features.
#[derive(Debug, Clone)]
pub struct MultivariateLinear {
    features: FeatureMap,
    /// One weight per active feature (already folded with the per-column
    /// normalization scale).
    weights: Vec<f64>,
    bias: f64,
    /// Keys are shifted by this before feature expansion.
    x_shift: f64,
    /// Per-feature-column normalization: `(min, 1/(max-min))`.
    col_norm: Vec<(f64, f64)>,
    /// True when fitted over raw vectors (string keys): no expansion.
    vector_mode: bool,
}

impl MultivariateLinear {
    /// Fit `y = w·φ(x) + b` over `(key, position)` pairs.
    ///
    /// Falls back to fewer features if the system is singular (e.g. a
    /// constant key column), and to a constant model as a last resort.
    pub fn fit(features: FeatureMap, xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len());
        let x_shift = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let x_shift = if x_shift.is_finite() { x_shift } else { 0.0 };
        match Self::try_fit(features, xs, ys, x_shift) {
            Ok(m) => m,
            Err(SingularMatrix) => Self::try_fit(FeatureMap::LINEAR, xs, ys, x_shift)
                .unwrap_or_else(|_| {
                    let mean = if ys.is_empty() {
                        0.0
                    } else {
                        ys.iter().sum::<f64>() / ys.len() as f64
                    };
                    Self {
                        features: FeatureMap::LINEAR,
                        weights: vec![0.0],
                        bias: mean,
                        x_shift,
                        col_norm: vec![(0.0, 1.0)],
                        vector_mode: false,
                    }
                }),
        }
    }

    /// Fit over a sorted key slice where `y` is the index.
    pub fn fit_keys(features: FeatureMap, keys: &[f64]) -> Self {
        let ys: Vec<f64> = (0..keys.len()).map(|i| i as f64).collect();
        Self::fit(features, keys, &ys)
    }

    /// Fit with automatic feature **selection**: tries every non-empty
    /// feature subset and keeps the one with the lowest RMSE on a
    /// deterministic 1-in-8 holdout.
    pub fn fit_select(xs: &[f64], ys: &[f64]) -> Self {
        let mut best: Option<(f64, Self)> = None;
        for fm in FeatureMap::all_subsets() {
            let m = Self::fit(fm, xs, ys);
            let rmse = holdout_rmse(&m, xs, ys);
            if best.as_ref().is_none_or(|(b, _)| rmse < *b) {
                best = Some((rmse, m));
            }
        }
        best.expect("at least one subset").1
    }

    /// Fit over raw feature vectors (e.g. tokenized string keys, §3.5).
    /// All vectors must share a length `d`; the model computes
    /// `y = w·x + b` with `d` weights.
    pub fn fit_vectors(vectors: &[Vec<f64>], ys: &[f64]) -> Self {
        assert_eq!(vectors.len(), ys.len());
        let d = vectors.first().map_or(0, Vec::len);
        let coeffs = ridge_solve_rows(vectors.iter().map(|v| v.as_slice()), ys, d)
            .unwrap_or_else(|_| vec![0.0; d + 1]);
        let (w, b) = coeffs.split_at(d);
        Self {
            features: FeatureMap::LINEAR,
            weights: w.to_vec(),
            bias: b[0],
            x_shift: 0.0,
            col_norm: vec![(0.0, 1.0); d],
            vector_mode: true,
        }
    }

    /// Predict from a raw feature vector (vector mode).
    #[inline]
    pub fn predict_vector(&self, v: &[f64]) -> f64 {
        debug_assert!(self.vector_mode);
        let mut acc = self.bias;
        for (w, x) in self.weights.iter().zip(v) {
            acc += w * x;
        }
        acc
    }

    /// The active feature map (scalar mode).
    pub fn features(&self) -> FeatureMap {
        self.features
    }

    fn try_fit(
        features: FeatureMap,
        xs: &[f64],
        ys: &[f64],
        x_shift: f64,
    ) -> Result<Self, SingularMatrix> {
        if xs.is_empty() {
            return Err(SingularMatrix);
        }
        let d = features.arity();

        // Pass 1: per-column min/max of the raw features.
        let mut buf = [0.0f64; MAX_FEATURES];
        let mut col_min = [f64::INFINITY; MAX_FEATURES];
        let mut col_max = [f64::NEG_INFINITY; MAX_FEATURES];
        for &x in xs {
            features.expand_into(x - x_shift, &mut buf[..d]);
            for c in 0..d {
                col_min[c] = col_min[c].min(buf[c]);
                col_max[c] = col_max[c].max(buf[c]);
            }
        }
        let col_norm: Vec<(f64, f64)> = (0..d)
            .map(|c| {
                if col_max[c] > col_min[c] && col_min[c].is_finite() {
                    (col_min[c], 1.0 / (col_max[c] - col_min[c]))
                } else {
                    (0.0, 0.0) // dead column: contributes nothing
                }
            })
            .collect();

        // Pass 2: normalized rows into the normal equations.
        let rows: Vec<[f64; MAX_FEATURES]> = xs
            .iter()
            .map(|&x| {
                features.expand_into(x - x_shift, &mut buf[..d]);
                let mut row = [0.0f64; MAX_FEATURES];
                for c in 0..d {
                    row[c] = (buf[c] - col_norm[c].0) * col_norm[c].1;
                }
                row
            })
            .collect();
        let coeffs = ridge_solve_rows(rows.iter().map(|r| &r[..d]), ys, d)?;
        let (w, b) = coeffs.split_at(d);
        Ok(Self {
            features,
            weights: w.to_vec(),
            bias: b[0],
            x_shift,
            col_norm,
            vector_mode: false,
        })
    }
}

/// Solve the ridge-damped normal equations for rows of features plus an
/// implicit bias column. Returns `d + 1` coefficients (bias last).
fn ridge_solve_rows<'a>(
    rows: impl Iterator<Item = &'a [f64]>,
    ys: &[f64],
    d: usize,
) -> Result<Vec<f64>, SingularMatrix> {
    let dim = d + 1; // + bias
    let mut xtx = Matrix::zeros(dim, dim);
    let mut xty = vec![0.0; dim];
    let mut n = 0usize;
    for (row, &y) in rows.zip(ys) {
        debug_assert_eq!(row.len(), d);
        for i in 0..d {
            for j in i..d {
                xtx[(i, j)] += row[i] * row[j];
            }
            xtx[(i, d)] += row[i]; // bias column
            xty[i] += row[i] * y;
        }
        xtx[(d, d)] += 1.0;
        xty[d] += y;
        n += 1;
    }
    if n == 0 {
        return Err(SingularMatrix);
    }
    // Symmetrize and damp: a vanishing ridge keeps exactly-collinear
    // features from producing a singular solve while being far below
    // fit-precision at position scale.
    let lambda = 1e-10 * n as f64;
    for i in 0..dim {
        for j in 0..i {
            xtx[(i, j)] = xtx[(j, i)];
        }
        xtx[(i, i)] += lambda;
    }
    solve(xtx, xty)
}

fn holdout_rmse(m: &MultivariateLinear, xs: &[f64], ys: &[f64]) -> f64 {
    let mut se = 0.0;
    let mut n = 0usize;
    for (i, (&x, &y)) in xs.iter().zip(ys).enumerate() {
        if i % 8 == 7 {
            let e = m.predict(x) - y;
            se += e * e;
            n += 1;
        }
    }
    if n == 0 {
        f64::INFINITY
    } else {
        (se / n as f64).sqrt()
    }
}

impl Model for MultivariateLinear {
    #[inline]
    fn predict(&self, x: f64) -> f64 {
        if self.vector_mode {
            // Scalar predict over a vector-mode model treats the scalar
            // as a 1-vector; only sensible when d == 1.
            return self.bias + self.weights.first().copied().unwrap_or(0.0) * x;
        }
        let d = self.weights.len();
        let mut buf = [0.0f64; MAX_FEATURES];
        self.features.expand_into(x - self.x_shift, &mut buf[..d]);
        let mut acc = self.bias;
        for ((&w, &(min, scale)), &b) in self.weights.iter().zip(&self.col_norm).zip(&buf[..d]) {
            acc += w * ((b - min) * scale);
        }
        acc
    }

    fn size_bytes(&self) -> usize {
        // weights + per-column norm pairs + shift + bias.
        (self.weights.len() + 2 * self.col_norm.len() + 2) * std::mem::size_of::<f64>()
    }

    fn op_count(&self) -> usize {
        // shift (1) + ~2 ops per derived feature + normalize (2/col) +
        // dot product (2/col) + bias add.
        1 + 2 * self.weights.len() + 4 * self.weights.len() + 1
    }

    fn is_monotonic(&self) -> bool {
        // All features used here are monotone non-decreasing in x and the
        // per-column scales are non-negative, so non-negative weights
        // guarantee monotonicity. (Sufficient, not necessary.)
        !self.vector_mode && self.weights.iter().all(|&w| w >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rmse_keys(m: &MultivariateLinear, keys: &[f64]) -> f64 {
        let se: f64 = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (m.predict(k) - i as f64).powi(2))
            .sum();
        (se / keys.len() as f64).sqrt()
    }

    #[test]
    fn exact_on_affine_data() {
        let keys: Vec<f64> = (0..500).map(|i| 10.0 + 3.0 * i as f64).collect();
        let m = MultivariateLinear::fit_keys(FeatureMap::LINEAR, &keys);
        for (i, &k) in keys.iter().enumerate() {
            assert!((m.predict(k) - i as f64).abs() < 1e-4, "at {i}");
        }
    }

    #[test]
    fn log_feature_fits_exponential_keys() {
        // keys = e^(i/100): positions are exactly linear in ln(key), so a
        // model with a log feature fits far better than a pure line.
        let keys: Vec<f64> = (0..1000).map(|i| (i as f64 / 100.0).exp()).collect();
        let lin = MultivariateLinear::fit_keys(FeatureMap::LINEAR, &keys);
        let full = MultivariateLinear::fit_keys(FeatureMap::FULL, &keys);
        assert!(
            rmse_keys(&full, &keys) < rmse_keys(&lin, &keys) * 0.5,
            "full {} vs lin {}",
            rmse_keys(&full, &keys),
            rmse_keys(&lin, &keys)
        );
    }

    #[test]
    fn log_feature_is_near_exact_on_pure_exponential() {
        // position = 50·ln(key) exactly (keys start at 1 so the shift is
        // ~0 and ln_1p(key−1) ≈ ln(key)); the log column alone fits this.
        let keys: Vec<f64> = (0..2000).map(|i| (i as f64 / 50.0).exp()).collect();
        let m = MultivariateLinear::fit_keys(
            FeatureMap {
                key: false,
                log: true,
                square: false,
                sqrt: false,
            },
            &keys,
        );
        let r = rmse_keys(&m, &keys);
        assert!(r < 2.0, "rmse {r}");
    }

    #[test]
    fn feature_selection_picks_low_error_subset() {
        let keys: Vec<f64> = (0..2000).map(|i| ((i as f64) / 50.0).exp()).collect();
        let ys: Vec<f64> = (0..2000).map(|i| i as f64).collect();
        let sel = MultivariateLinear::fit_select(&keys, &ys);
        let r = rmse_keys(&sel, &keys);
        // Pure linear RMSE on this data is > 400; selection must find the
        // log column and get near-exact.
        assert!(r < 20.0, "rmse {r}");
    }

    #[test]
    fn constant_keys_fall_back_gracefully() {
        let keys = vec![5.0; 100];
        let m = MultivariateLinear::fit_keys(FeatureMap::FULL, &keys);
        // Mean position is 49.5.
        assert!((m.predict(5.0) - 49.5).abs() < 1.0);
    }

    #[test]
    fn empty_input_predicts_zero() {
        let m = MultivariateLinear::fit(FeatureMap::FULL, &[], &[]);
        assert_eq!(m.predict(1.0), 0.0);
    }

    #[test]
    fn huge_key_magnitudes_stay_stable() {
        // Keys near 2^63 with spacing above the f64 ulp (2048 at 9e18).
        let base = 9.0e18;
        let keys: Vec<f64> = (0..10_000).map(|i| base + (i * 4096) as f64).collect();
        let m = MultivariateLinear::fit_keys(FeatureMap::FULL, &keys);
        let r = rmse_keys(&m, &keys);
        assert!(r < 1.0, "rmse {r}");
    }

    #[test]
    fn vector_mode_fits_plane() {
        // y = 2a + 3b + 1
        let vectors: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
            .collect();
        let ys: Vec<f64> = vectors
            .iter()
            .map(|v| 2.0 * v[0] + 3.0 * v[1] + 1.0)
            .collect();
        let m = MultivariateLinear::fit_vectors(&vectors, &ys);
        for (v, &y) in vectors.iter().zip(&ys) {
            assert!((m.predict_vector(v) - y).abs() < 1e-4);
        }
    }

    #[test]
    fn all_subsets_enumerates_15() {
        let subsets = FeatureMap::all_subsets();
        assert_eq!(subsets.len(), 15);
        assert!(subsets.iter().all(|f| f.arity() > 0));
    }

    #[test]
    fn size_and_ops_reflect_arity() {
        let keys: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let lin = MultivariateLinear::fit_keys(FeatureMap::LINEAR, &keys);
        let full = MultivariateLinear::fit_keys(FeatureMap::FULL, &keys);
        assert!(full.size_bytes() > lin.size_bytes());
        assert!(full.op_count() > lin.op_count());
    }

    #[test]
    fn monotonic_when_all_weights_nonnegative() {
        let keys: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let m = MultivariateLinear::fit_keys(FeatureMap::LINEAR, &keys);
        assert!(m.is_monotonic());
    }
}
