//! Empirical CDF utilities and the paper's theoretical error analysis.
//!
//! §2.2's key observation: "a model that predicts the position given a
//! key inside a sorted array effectively approximates the cumulative
//! distribution function", `p = F(key) · N`. Appendix A then derives the
//! scaling law for a constant-size model:
//!
//! ```text
//! E[(F(x) − F̂_N(x))²] = F(x)(1 − F(x)) / N
//! ```
//!
//! so the standard deviation of the *position* error `N·(F − F̂_N)` is
//! `√(N · F(1−F))` — O(√N) — while a constant-size B-Tree's residual
//! region grows linearly in N. These functions power the `appendix-a`
//! experiment and give learned indexes their theoretical footing (the
//! DKW inequality bounds the worst case, not just the variance).

/// The empirical cumulative distribution function of a sorted key set.
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    keys: Vec<f64>,
}

impl EmpiricalCdf {
    /// Build from keys (sorted internally; NaNs are rejected).
    pub fn new(mut keys: Vec<f64>) -> Self {
        assert!(
            keys.iter().all(|k| !k.is_nan()),
            "NaN keys are not orderable"
        );
        keys.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Self { keys }
    }

    /// Build from a slice already sorted ascending (checked in debug).
    pub fn from_sorted(keys: Vec<f64>) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        Self { keys }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the sample set is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// `F̂(x)` = fraction of samples ≤ x.
    pub fn eval(&self, x: f64) -> f64 {
        if self.keys.is_empty() {
            return 0.0;
        }
        self.rank(x) as f64 / self.keys.len() as f64
    }

    /// Number of samples ≤ x (the position a CDF model predicts, §2.2).
    pub fn rank(&self, x: f64) -> usize {
        self.keys.partition_point(|&k| k <= x)
    }

    /// Largest absolute deviation `sup |F̂(x) − F(x)|` against a reference
    /// CDF, evaluated at the sample points (where the sup is attained for
    /// monotone F).
    pub fn ks_distance(&self, f: impl Fn(f64) -> f64) -> f64 {
        let n = self.keys.len() as f64;
        let mut worst = 0.0f64;
        for (i, &k) in self.keys.iter().enumerate() {
            let fx = f(k);
            // Both the left and right limits of the empirical step.
            worst = worst.max((fx - i as f64 / n).abs());
            worst = worst.max((fx - (i + 1) as f64 / n).abs());
        }
        worst
    }
}

/// Dvoretzky–Kiefer–Wolfowitz bound: with probability ≥ 1 − δ,
/// `sup |F̂_N − F| ≤ ε` where `ε = sqrt(ln(2/δ) / (2N))`.
pub fn dkw_epsilon(n: usize, delta: f64) -> f64 {
    assert!(n > 0, "DKW needs at least one sample");
    assert!((0.0..1.0).contains(&delta) && delta > 0.0);
    ((2.0 / delta).ln() / (2.0 * n as f64)).sqrt()
}

/// Appendix A, Eq. (3): expected squared CDF error at a point with true
/// CDF value `f`, for `n` i.i.d. samples.
pub fn expected_sq_cdf_error(f: f64, n: usize) -> f64 {
    assert!((0.0..=1.0).contains(&f));
    f * (1.0 - f) / n as f64
}

/// Standard deviation of the *position* error `n·(F − F̂_n)` at CDF value
/// `f`: `sqrt(n · f(1−f))`. This is the paper's O(√N) scaling result.
pub fn position_error_std(f: f64, n: usize) -> f64 {
    (n as f64 * f * (1.0 - f)).sqrt()
}

/// Average position-error standard deviation over the whole key space:
/// `√n · ∫₀¹ √(f(1−f)) df = √n · π/8`.
pub fn mean_position_error_std(n: usize) -> f64 {
    (n as f64).sqrt() * std::f64::consts::PI / 8.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn eval_matches_rank() {
        let cdf = EmpiricalCdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.eval(0.0), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.5), 0.5);
        assert_eq!(cdf.eval(100.0), 1.0);
        assert_eq!(cdf.rank(2.5), 2);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let cdf = EmpiricalCdf::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(cdf.rank(1.5), 1);
    }

    #[test]
    fn empty_cdf_is_zero() {
        let cdf = EmpiricalCdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.eval(5.0), 0.0);
    }

    #[test]
    fn dkw_shrinks_with_n() {
        assert!(dkw_epsilon(10_000, 0.05) < dkw_epsilon(100, 0.05));
        // Known value: n = 1000, δ = 0.05 → ε ≈ 0.0430.
        assert!((dkw_epsilon(1000, 0.05) - 0.04295).abs() < 1e-4);
    }

    #[test]
    fn uniform_sample_respects_dkw() {
        // With δ = 0.001 a violation is a once-in-a-thousand event; with
        // a fixed seed this is deterministic.
        let mut rng = SplitMix64::new(99);
        let n = 20_000;
        let keys: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let cdf = EmpiricalCdf::new(keys);
        let ks = cdf.ks_distance(|x| x.clamp(0.0, 1.0));
        assert!(ks <= dkw_epsilon(n, 0.001), "ks {ks}");
    }

    #[test]
    fn position_error_scales_as_sqrt_n() {
        // Appendix A: quadrupling N should double the position error.
        let e1 = position_error_std(0.5, 1_000_000);
        let e4 = position_error_std(0.5, 4_000_000);
        assert!((e4 / e1 - 2.0).abs() < 1e-9);
        // At the median of 100M keys the std is 5000: a constant-size
        // model's "natural" last-mile error budget.
        assert!((position_error_std(0.5, 100_000_000) - 5000.0).abs() < 1.0);
    }

    #[test]
    fn mean_position_error_matches_monte_carlo() {
        // Empirically: draw uniform samples, fit the *true* CDF, and
        // check the average |position error| is within a small factor of
        // the analytic √n·π/8 (mean abs error vs std differ by a
        // constant ≈ √(2/π), so allow slack).
        let n = 10_000;
        let mut rng = SplitMix64::new(5);
        let mut keys: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        keys.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let mut sum_abs = 0.0;
        for (i, &k) in keys.iter().enumerate() {
            let predicted = k * n as f64; // true-CDF model
            sum_abs += (predicted - i as f64).abs();
        }
        let mean_abs = sum_abs / n as f64;
        let analytic = mean_position_error_std(n);
        let ratio = mean_abs / analytic;
        assert!((0.5..1.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn expected_sq_error_is_symmetric_and_peaks_at_half() {
        assert_eq!(expected_sq_cdf_error(0.0, 100), 0.0);
        assert_eq!(expected_sq_cdf_error(1.0, 100), 0.0);
        assert!(expected_sq_cdf_error(0.5, 100) > expected_sq_cdf_error(0.3, 100));
        assert!((expected_sq_cdf_error(0.3, 100) - expected_sq_cdf_error(0.7, 100)).abs() < 1e-15);
    }
}
