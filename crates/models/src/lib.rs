//! # li-models — the model substrate for learned index structures
//!
//! This crate implements, from scratch, every machine-learning model the
//! paper "The Case for Learned Index Structures" (Kraska et al., SIGMOD
//! 2018) uses to build learned indexes:
//!
//! * [`LinearModel`] — single-feature least-squares regression, trained in
//!   one pass over sorted data (closed form, §3.6 of the paper). This is
//!   the work-horse leaf model of the Recursive Model Index.
//! * [`MultivariateLinear`] — multivariate linear regression over an
//!   engineered feature vector (`key`, `log key`, `key²`, `√key`), solved
//!   via the normal equations (§3.7.1 "automatic feature engineering").
//! * [`Mlp`] — a small fully-connected network with zero to two hidden
//!   ReLU layers and a layer width of up to 32 neurons (§3.3). A
//!   zero-hidden-layer MLP is exactly linear regression, which we assert
//!   in tests.
//! * [`GruClassifier`] — a character-level GRU with an embedding layer
//!   and a sigmoid output, the classifier behind the learned Bloom filter
//!   (§5.2: "a 16-dimensional GRU with a 32-dimensional embedding").
//! * [`NgramLogReg`] — a hashed character-n-gram logistic regression; a
//!   cheap classifier alternative used by tests and low-budget runs.
//!
//! The paper trains complex models with TensorFlow but **never executes
//! TensorFlow at inference** — its Learning Index Framework extracts the
//! weights into flat generated code (§3.1). The structs in this crate are
//! that extracted form: plain arrays of `f64` weights with straight-line
//! `predict` functions, so simple models execute in tens of nanoseconds.
//!
//! [`cdf`] holds the theory side: the empirical CDF, the
//! Dvoretzky–Kiefer–Wolfowitz bound, and the Appendix-A expected-error
//! analysis (`E[(F(x) − F̂_N(x))²] = F(x)(1 − F(x))/N`, hence O(√N)
//! position error for a constant-size model).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod gru;
pub mod isotonic;
pub mod linalg;
pub mod linear;
pub mod mlp;
pub mod multivariate;
pub mod ngram;
pub mod quant;
pub mod rng;
pub mod vecmlp;

pub use cdf::EmpiricalCdf;
pub use gru::{GruClassifier, GruConfig};
pub use isotonic::IsotonicModel;
pub use linalg::Matrix;
pub use linear::LinearModel;
pub use mlp::{Mlp, MlpConfig};
pub use multivariate::{FeatureMap, MultivariateLinear};
pub use ngram::NgramLogReg;
pub use quant::{Codebook, QuantizedLinear};
pub use vecmlp::VecMlp;

/// A trained regression model mapping a scalar key to a scalar position.
///
/// All range-index models in this workspace implement this trait; the
/// Recursive Model Index composes them into stages. Predictions are raw
/// (possibly out of `[0, N)` range); callers clamp.
pub trait Model: Send + Sync {
    /// Predict the position estimate for `x` (unclamped).
    fn predict(&self, x: f64) -> f64;

    /// Approximate in-memory size of the model parameters in bytes.
    fn size_bytes(&self) -> usize;

    /// Number of arithmetic operations (mul+add) per prediction — the
    /// paper's §2.1 "precision gain per operation" budget currency.
    fn op_count(&self) -> usize;

    /// Whether the model is monotonically non-decreasing over the train
    /// domain. Monotonic models extend their min/max error guarantees to
    /// lookup keys that are not in the stored set (§3.4).
    fn is_monotonic(&self) -> bool {
        false
    }
}

/// A binary probabilistic classifier scoring byte strings into `[0, 1]`.
///
/// Used by the learned Bloom filter (§5.1.1): the score is interpreted as
/// the probability that the input is a key of the indexed set.
pub trait Classifier: Send + Sync {
    /// Probability estimate that `input` belongs to the key set.
    fn score(&self, input: &[u8]) -> f64;

    /// Approximate in-memory size of the model parameters in bytes.
    fn size_bytes(&self) -> usize;
}

/// Clamp a raw model prediction into a valid position in `[0, n)`.
#[inline(always)]
pub fn clamp_position(pred: f64, n: usize) -> usize {
    if pred.is_nan() || pred <= 0.0 {
        // NaN or <= 0 both land at position 0.
        0
    } else {
        let p = pred as usize;
        if p >= n {
            n.saturating_sub(1)
        } else {
            p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_position_bounds() {
        assert_eq!(clamp_position(-3.0, 10), 0);
        assert_eq!(clamp_position(f64::NAN, 10), 0);
        assert_eq!(clamp_position(0.0, 10), 0);
        assert_eq!(clamp_position(4.2, 10), 4);
        assert_eq!(clamp_position(9.99, 10), 9);
        assert_eq!(clamp_position(1e18, 10), 9);
        assert_eq!(clamp_position(5.0, 0), 0);
    }
}
