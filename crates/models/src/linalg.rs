//! Minimal dense linear algebra: just enough to solve the normal
//! equations for multivariate regression and to drive MLP/GRU layers.
//!
//! The matrices involved are tiny (the largest is `d × d` for `d ≤ 8`
//! features, or `32 × 32` weight blocks), so a straightforward row-major
//! `Vec<f64>` with Gaussian elimination is both simple and fast. No
//! external linear-algebra crate is needed.

/// A row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zeros `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a closure evaluated at every `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow a row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow a row as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–vector product `self · v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (w, x) in row.iter().zip(v) {
                acc += w * x;
            }
            *o = acc;
        }
        out
    }

    /// Matrix–vector product accumulated into an existing buffer:
    /// `out[r] += self.row(r) · v`. Avoids per-call allocation in the
    /// hot training loops of the MLP and GRU.
    pub fn matvec_add_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.rows, "output dimension mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (w, x) in row.iter().zip(v) {
                acc += w * x;
            }
            *o += acc;
        }
    }

    /// Transposed matrix–vector product `selfᵀ · v` accumulated into
    /// `out` (length `cols`). Used for backpropagation.
    pub fn t_matvec_add_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.rows, "t_matvec dimension mismatch");
        assert_eq!(out.len(), self.cols, "output dimension mismatch");
        for (r, &g) in v.iter().enumerate() {
            let row = self.row(r);
            for (o, w) in out.iter_mut().zip(row) {
                *o += w * g;
            }
        }
    }

    /// Rank-1 update `self += alpha · u vᵀ`. Used for gradient
    /// accumulation (`dW += delta · inputᵀ`).
    pub fn rank1_add(&mut self, alpha: f64, u: &[f64], v: &[f64]) {
        assert_eq!(u.len(), self.rows);
        assert_eq!(v.len(), self.cols);
        for (r, &ur) in u.iter().enumerate() {
            let s = alpha * ur;
            let row = self.row_mut(r);
            for (w, x) in row.iter_mut().zip(v) {
                *w += s * x;
            }
        }
    }

    /// Raw parameter slice (for optimizers that treat weights as a flat
    /// vector).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw parameter slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Error returned when a linear system has no (stable) solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrix;

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("matrix is singular or numerically rank-deficient")
    }
}

impl std::error::Error for SingularMatrix {}

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
///
/// `a` is consumed (it is overwritten by the elimination). Suitable for
/// the small, well-conditioned systems produced by the normal equations
/// with ridge damping; returns [`SingularMatrix`] when a pivot is
/// (numerically) zero.
pub fn solve(mut a: Matrix, mut b: Vec<f64>) -> Result<Vec<f64>, SingularMatrix> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "solve requires a square matrix");
    assert_eq!(b.len(), n, "rhs length must match matrix order");

    for col in 0..n {
        // Partial pivoting: bring the largest |value| in this column to
        // the diagonal for numerical stability.
        let mut pivot_row = col;
        let mut pivot_val = a[(col, col)].abs();
        for r in col + 1..n {
            let v = a[(r, col)].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-12 {
            return Err(SingularMatrix);
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = a[(col, c)];
                a[(col, c)] = a[(pivot_row, c)];
                a[(pivot_row, c)] = tmp;
            }
            b.swap(col, pivot_row);
        }

        let inv_pivot = 1.0 / a[(col, col)];
        for r in col + 1..n {
            let factor = a[(r, col)] * inv_pivot;
            if factor == 0.0 {
                continue;
            }
            a[(r, col)] = 0.0;
            for c in col + 1..n {
                let v = a[(col, c)];
                a[(r, c)] -= factor * v;
            }
            b[r] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = b[r];
        for c in r + 1..n {
            acc -= a[(r, c)] * x[c];
        }
        x[r] = acc / a[(r, r)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y} (tol {tol})");
        }
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let x = solve(Matrix::identity(4), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_close(&x, &[1.0, 2.0, 3.0, 4.0], 1e-12);
    }

    #[test]
    fn solves_known_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 3.0;
        let x = solve(a, vec![5.0, 10.0]).unwrap();
        assert_close(&x, &[1.0, 3.0], 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // Leading zero forces a row swap.
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 0.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 0.0;
        let x = solve(a, vec![2.0, 3.0]).unwrap();
        assert_close(&x, &[3.0, 2.0], 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 4.0; // linearly dependent rows
        assert_eq!(solve(a, vec![1.0, 2.0]), Err(SingularMatrix));
    }

    #[test]
    fn random_system_roundtrip() {
        // Build A and x, compute b = A x, then recover x.
        let mut rng = crate::rng::SplitMix64::new(11);
        for _ in 0..50 {
            let n = 1 + rng.below(6);
            let a = Matrix::from_fn(n, n, |_, _| rng.range_f64(-1.0, 1.0));
            // Diagonal dominance guarantees solvability.
            let a = {
                let mut m = a;
                for i in 0..n {
                    m[(i, i)] += n as f64;
                }
                m
            };
            let x_true: Vec<f64> = (0..n).map(|_| rng.range_f64(-5.0, 5.0)).collect();
            let b = a.matvec(&x_true);
            let x = solve(a, b).unwrap();
            assert_close(&x, &x_true, 1e-9);
        }
    }

    #[test]
    fn matvec_and_transpose_agree() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![1.0, 5.0, 9.0]);
        let mut out = vec![0.0; 2];
        m.t_matvec_add_into(&[1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, vec![6.0, 9.0]); // column sums
    }

    #[test]
    fn rank1_add_matches_outer_product() {
        let mut m = Matrix::zeros(2, 3);
        m.rank1_add(2.0, &[1.0, 3.0], &[4.0, 5.0, 6.0]);
        assert_eq!(m.row(0), &[8.0, 10.0, 12.0]);
        assert_eq!(m.row(1), &[24.0, 30.0, 36.0]);
    }
}
