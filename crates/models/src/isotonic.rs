//! Isotonic (monotone) calibration for CDF models.
//!
//! §3.4: "While this technique guarantees to find all existing keys, for
//! non-existing keys it might return the wrong upper or lower bound if
//! the RMI model is not monotonic. To overcome this problem, one option
//! is to force our RMI model to be monotonic, as has been studied in
//! machine learning [41, 71]."
//!
//! This module implements the classic tool for that: **isotonic
//! regression** via the Pool-Adjacent-Violators Algorithm (PAVA). Given
//! `(x, y)` pairs sorted by `x`, it finds the monotone non-decreasing
//! step function minimizing squared error, in O(n). A learned index can
//! calibrate any model's outputs through [`IsotonicModel`] to obtain a
//! provably monotone predictor, extending the min/max-error guarantee to
//! keys that are not in the stored set.

use crate::Model;

/// A monotone non-decreasing piecewise-constant regression function.
#[derive(Debug, Clone)]
pub struct IsotonicModel {
    /// Breakpoints (x positions), ascending.
    xs: Vec<f64>,
    /// Fitted level for each breakpoint (non-decreasing).
    ys: Vec<f64>,
}

impl IsotonicModel {
    /// Fit by PAVA over `(x, y)` pairs that are already sorted by `x`.
    ///
    /// # Panics
    /// Debug-asserts the x ordering.
    pub fn fit_sorted(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len());
        debug_assert!(xs.windows(2).all(|w| w[0] <= w[1]), "x must be sorted");
        // Pool-adjacent-violators: maintain a stack of blocks with
        // (mean, weight); merge while the means decrease.
        let mut mean: Vec<f64> = Vec::with_capacity(ys.len());
        let mut weight: Vec<f64> = Vec::with_capacity(ys.len());
        let mut end_idx: Vec<usize> = Vec::with_capacity(ys.len());
        for (i, &y) in ys.iter().enumerate() {
            mean.push(y);
            weight.push(1.0);
            end_idx.push(i);
            while mean.len() > 1 && mean[mean.len() - 2] > mean[mean.len() - 1] {
                let (m2, w2) = (
                    mean.pop().expect("nonempty"),
                    weight.pop().expect("nonempty"),
                );
                let e2 = end_idx.pop().expect("nonempty");
                let last = mean.len() - 1;
                let merged_w = weight[last] + w2;
                mean[last] = (mean[last] * weight[last] + m2 * w2) / merged_w;
                weight[last] = merged_w;
                end_idx[last] = e2;
            }
        }
        // Expand blocks back to per-point levels, then compress to
        // breakpoints (one entry per block).
        let mut out_x = Vec::with_capacity(mean.len());
        let mut out_y = Vec::with_capacity(mean.len());
        let mut start = 0usize;
        for (b, &end) in end_idx.iter().enumerate() {
            out_x.push(xs[start]);
            out_y.push(mean[b]);
            start = end + 1;
        }
        Self {
            xs: out_x,
            ys: out_y,
        }
    }

    /// Fit a monotone calibration of an arbitrary model over sorted keys
    /// with positions as targets: the composed predictor
    /// `x ↦ iso(model(x))`-style correction is realized directly as
    /// `x ↦ level(x)` since keys are the x axis.
    pub fn calibrate(model: &dyn Model, keys: &[f64]) -> Self {
        let preds: Vec<f64> = keys.iter().map(|&k| model.predict(k)).collect();
        Self::fit_sorted(keys, &preds)
    }

    /// Number of constant pieces.
    pub fn pieces(&self) -> usize {
        self.xs.len()
    }
}

impl Model for IsotonicModel {
    fn predict(&self, x: f64) -> f64 {
        if self.xs.is_empty() {
            return 0.0;
        }
        // Level of the last breakpoint <= x (clamped to the first).
        let idx = self.xs.partition_point(|&b| b <= x);
        self.ys[idx.saturating_sub(1)]
    }

    fn size_bytes(&self) -> usize {
        self.xs.len() * 2 * std::mem::size_of::<f64>()
    }

    fn op_count(&self) -> usize {
        // Binary search over pieces.
        2 * (usize::BITS - self.xs.len().leading_zeros()) as usize
    }

    fn is_monotonic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearModel;

    #[test]
    fn already_monotone_data_is_preserved() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..10).map(|i| (i * 2) as f64).collect();
        let iso = IsotonicModel::fit_sorted(&xs, &ys);
        for (&x, &y) in xs.iter().zip(&ys) {
            assert_eq!(iso.predict(x), y);
        }
        assert_eq!(iso.pieces(), 10);
    }

    #[test]
    fn violations_are_pooled_to_block_means() {
        // y = [1, 3, 2] → blocks [1], [2.5, 2.5].
        let iso = IsotonicModel::fit_sorted(&[0.0, 1.0, 2.0], &[1.0, 3.0, 2.0]);
        assert_eq!(iso.predict(0.0), 1.0);
        assert_eq!(iso.predict(1.0), 2.5);
        assert_eq!(iso.predict(2.0), 2.5);
        assert_eq!(iso.pieces(), 2);
    }

    #[test]
    fn decreasing_input_collapses_to_global_mean() {
        let ys = [5.0, 4.0, 3.0, 2.0, 1.0];
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let iso = IsotonicModel::fit_sorted(&xs, &ys);
        assert_eq!(iso.pieces(), 1);
        assert_eq!(iso.predict(2.0), 3.0);
    }

    #[test]
    fn output_is_always_monotone() {
        // Noisy zig-zag input; check the fitted function never decreases.
        let xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..200)
            .map(|i| i as f64 + if i % 3 == 0 { 15.0 } else { -10.0 })
            .collect();
        let iso = IsotonicModel::fit_sorted(&xs, &ys);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..400 {
            let v = iso.predict(i as f64 / 2.0);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
        assert!(iso.is_monotonic());
    }

    #[test]
    fn calibrating_a_nonmonotone_model_makes_it_monotone() {
        // A negative-slope linear model is anti-monotone; its calibration
        // over sorted keys must come out monotone.
        let bad = LinearModel::new(-2.0, 100.0);
        assert!(!bad.is_monotonic());
        let keys: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let iso = IsotonicModel::calibrate(&bad, &keys);
        assert!(iso.is_monotonic());
        // The best monotone fit of a decreasing line is its mean.
        assert_eq!(iso.pieces(), 1);
    }

    #[test]
    fn queries_outside_domain_clamp_to_edge_levels() {
        let iso = IsotonicModel::fit_sorted(&[10.0, 20.0], &[1.0, 2.0]);
        assert_eq!(iso.predict(0.0), 1.0);
        assert_eq!(iso.predict(100.0), 2.0);
    }

    #[test]
    fn empty_fit_predicts_zero() {
        let iso = IsotonicModel::fit_sorted(&[], &[]);
        assert_eq!(iso.predict(5.0), 0.0);
    }
}
