//! Small fully-connected neural networks with ReLU activations.
//!
//! The paper restricts itself to "simple neural nets with zero to two
//! fully-connected hidden layers and ReLU activation functions and a
//! layer width of up to 32 neurons" (§3.3). This module implements
//! exactly that family:
//!
//! * inputs and targets are min-max normalized to `[0, 1]` so one set of
//!   hyper-parameters works across key magnitudes;
//! * a **zero-hidden-layer network is linear regression** and is fitted
//!   in closed form (one pass, per §3.6) rather than by gradient descent;
//! * one- and two-hidden-layer networks are trained with minibatch Adam
//!   on mean-squared error. Training samples at most
//!   [`MlpConfig::max_train_points`] points — the paper notes top models
//!   "converge often even before a single scan over the entire
//!   randomized data".
//!
//! Inference is straight-line code over flat `f64` arrays (the "LIF
//! extracted weights" form): no graph interpreter, no allocation.

use crate::linalg::Matrix;
use crate::linear::LinearModel;
use crate::rng::SplitMix64;
use crate::Model;

/// Hyper-parameters for [`Mlp::fit_keys`].
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Number of hidden layers (0, 1 or 2). Zero means closed-form
    /// linear regression.
    pub hidden_layers: usize,
    /// Width of each hidden layer (the paper sweeps 4..=32).
    pub width: usize,
    /// Training epochs over the (sampled) training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Minibatch size.
    pub batch_size: usize,
    /// Upper bound on training points; larger inputs are uniformly
    /// subsampled (deterministically).
    pub max_train_points: usize,
    /// RNG seed for init + shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden_layers: 2,
            width: 16,
            epochs: 60,
            learning_rate: 0.01,
            batch_size: 64,
            max_train_points: 10_000,
            seed: 0x5EED,
        }
    }
}

impl MlpConfig {
    /// Convenience constructor matching the paper's grid axes.
    pub fn new(hidden_layers: usize, width: usize) -> Self {
        Self {
            hidden_layers,
            width,
            ..Self::default()
        }
    }
}

/// One dense layer `out = W·in + b` with optional ReLU.
#[derive(Debug, Clone)]
struct Dense {
    w: Matrix,
    b: Vec<f64>,
    relu: bool,
}

impl Dense {
    fn forward_into(&self, input: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.b);
        self.w.matvec_add_into(input, out);
        if self.relu {
            for v in out.iter_mut() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
        }
    }
}

/// A trained feed-forward network mapping a scalar key to a position.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    /// Closed-form path when `hidden_layers == 0`.
    linear: Option<LinearModel>,
    x_min: f64,
    x_scale: f64,
    y_scale: f64, // de-normalization: predict * y_scale
    monotonic: bool,
}

impl Mlp {
    /// Fit over a sorted key slice where the target of `keys[i]` is `i`.
    pub fn fit_keys(cfg: &MlpConfig, keys: &[f64]) -> Self {
        let ys: Vec<f64> = (0..keys.len()).map(|i| i as f64).collect();
        Self::fit(cfg, keys, &ys)
    }

    /// Fit over arbitrary `(x, y)` pairs.
    pub fn fit(cfg: &MlpConfig, xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len());
        assert!(cfg.hidden_layers <= 2, "paper caps at two hidden layers");
        assert!(
            cfg.hidden_layers == 0 || cfg.width <= 32,
            "paper caps layer width at 32 (and forward() relies on it)"
        );

        let (x_min, x_scale) = min_max_scale(xs);
        let y_max = ys.iter().cloned().fold(0.0f64, f64::max).max(1.0);

        if cfg.hidden_layers == 0 || xs.len() < 4 {
            // A 0-hidden-layer NN *is* linear regression (§3.3); solve it
            // exactly instead of iterating.
            let lin = LinearModel::fit(xs.iter().zip(ys).map(|(&x, &y)| (x, y)));
            let monotonic = lin.is_monotonic();
            return Self {
                layers: Vec::new(),
                linear: Some(lin),
                x_min,
                x_scale,
                y_scale: 1.0,
                monotonic,
            };
        }

        // Subsample deterministically if needed (stride sampling keeps
        // the empirical CDF shape).
        let stride = (xs.len() / cfg.max_train_points).max(1);
        let train: Vec<(f64, f64)> = xs
            .iter()
            .zip(ys)
            .step_by(stride)
            .map(|(&x, &y)| ((x - x_min) * x_scale, y / y_max))
            .collect();

        let mut rng = SplitMix64::new(cfg.seed);
        let mut layers = build_layers(cfg, &mut rng);
        train_adam(&mut layers, &train, cfg, &mut rng);

        let mut model = Self {
            layers,
            linear: None,
            x_min,
            x_scale,
            y_scale: y_max,
            monotonic: false,
        };
        model.monotonic = model.check_monotonic();
        model
    }

    /// Forward pass on a normalized input. Allocation-free: activations
    /// live in stack arrays (layer width is capped at 32, §3.3), which
    /// is what makes compiled inference tens of nanoseconds — the whole
    /// point of LIF code generation (§3.1).
    #[inline]
    fn forward(&self, xn: f64) -> f64 {
        const MAX_WIDTH: usize = 32;
        let mut a = [0.0f64; MAX_WIDTH];
        let mut b = [0.0f64; MAX_WIDTH];
        a[0] = xn;
        let mut a_len = 1usize;
        for layer in &self.layers {
            let out_len = layer.b.len();
            debug_assert!(out_len <= MAX_WIDTH);
            for (r, out) in b[..out_len].iter_mut().enumerate() {
                let row = &layer.w.row(r)[..a_len];
                let input = &a[..a_len];
                // Four independent accumulators break the FP add
                // dependency chain; the dot product then runs at
                // throughput rather than latency.
                let mut acc = [layer.b[r], 0.0, 0.0, 0.0];
                let mut c = 0usize;
                while c + 4 <= a_len {
                    acc[0] += row[c] * input[c];
                    acc[1] += row[c + 1] * input[c + 1];
                    acc[2] += row[c + 2] * input[c + 2];
                    acc[3] += row[c + 3] * input[c + 3];
                    c += 4;
                }
                while c < a_len {
                    acc[0] += row[c] * input[c];
                    c += 1;
                }
                let acc = (acc[0] + acc[1]) + (acc[2] + acc[3]);
                *out = if layer.relu && acc < 0.0 { 0.0 } else { acc };
            }
            std::mem::swap(&mut a, &mut b);
            a_len = out_len;
        }
        a[0]
    }

    /// Sampled monotonicity check over the training domain: evaluates
    /// the network on a fine grid and verifies non-decreasing output.
    /// (Sampled, hence a heuristic — exactly why §3.4 pairs learned
    /// indexes with search-area auto-widening.)
    fn check_monotonic(&self) -> bool {
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=512 {
            let v = self.forward(i as f64 / 512.0);
            if v < prev - 1e-9 {
                return false;
            }
            prev = v;
        }
        true
    }

    /// Number of hidden layers.
    pub fn hidden_layers(&self) -> usize {
        self.layers.len().saturating_sub(1)
    }
}

fn min_max_scale(xs: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &x in xs {
        min = min.min(x);
        max = max.max(x);
    }
    if !min.is_finite() || max <= min {
        (0.0, 1.0)
    } else {
        (min, 1.0 / (max - min))
    }
}

fn build_layers(cfg: &MlpConfig, rng: &mut SplitMix64) -> Vec<Dense> {
    let mut dims = vec![1usize];
    for _ in 0..cfg.hidden_layers {
        dims.push(cfg.width);
    }
    dims.push(1);

    let mut layers = Vec::with_capacity(dims.len() - 1);
    for i in 0..dims.len() - 1 {
        let (fan_in, fan_out) = (dims[i], dims[i + 1]);
        // He initialization for ReLU layers.
        let std = (2.0 / fan_in as f64).sqrt();
        let w = Matrix::from_fn(fan_out, fan_in, |_, _| rng.normal() * std);
        layers.push(Dense {
            w,
            b: vec![0.0; fan_out],
            relu: i + 1 < dims.len() - 1,
        });
    }
    layers
}

/// Adam state for one tensor, flat over its parameters.
struct AdamState {
    m: Vec<f64>,
    v: Vec<f64>,
}

impl AdamState {
    fn new(len: usize) -> Self {
        Self {
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }

    fn step(&mut self, params: &mut [f64], grads: &[f64], lr: f64, t: usize) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        for ((p, g), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            *m = B1 * *m + (1.0 - B1) * g;
            *v = B2 * *v + (1.0 - B2) * g * g;
            let mhat = *m / bc1;
            let vhat = *v / bc2;
            *p -= lr * mhat / (vhat.sqrt() + EPS);
        }
    }
}

fn train_adam(layers: &mut [Dense], train: &[(f64, f64)], cfg: &MlpConfig, rng: &mut SplitMix64) {
    let n_layers = layers.len();
    let mut w_states: Vec<AdamState> = layers
        .iter()
        .map(|l| AdamState::new(l.w.as_slice().len()))
        .collect();
    let mut b_states: Vec<AdamState> = layers.iter().map(|l| AdamState::new(l.b.len())).collect();

    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut t = 0usize;

    // Reusable buffers for activations and gradients.
    let mut acts: Vec<Vec<f64>> = vec![Vec::new(); n_layers + 1];
    let mut w_grads: Vec<Vec<f64>> = layers
        .iter()
        .map(|l| vec![0.0; l.w.as_slice().len()])
        .collect();
    let mut b_grads: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();

    for _epoch in 0..cfg.epochs {
        rng.shuffle(&mut order);
        for chunk in order.chunks(cfg.batch_size) {
            for g in w_grads.iter_mut().chain(b_grads.iter_mut()) {
                g.iter_mut().for_each(|v| *v = 0.0);
            }
            for &idx in chunk {
                let (x, y) = train[idx];
                // Forward, storing post-activation values per layer.
                acts[0].clear();
                acts[0].push(x);
                for (li, layer) in layers.iter().enumerate() {
                    let (before, after) = acts.split_at_mut(li + 1);
                    layer.forward_into(&before[li], &mut after[0]);
                }
                let pred = acts[n_layers][0];

                // Backward. d(MSE)/d(pred) = 2 (pred − y).
                let mut delta = vec![2.0 * (pred - y)];
                for li in (0..n_layers).rev() {
                    // ReLU derivative gates delta by the *output* of the
                    // layer (post-activation > 0).
                    if layers[li].relu {
                        for (d, &a) in delta.iter_mut().zip(&acts[li + 1]) {
                            if a <= 0.0 {
                                *d = 0.0;
                            }
                        }
                    }
                    // Accumulate gradients: dW = delta ⊗ input, db = delta.
                    let input = &acts[li];
                    {
                        let gw = &mut w_grads[li];
                        let cols = input.len();
                        for (r, &d) in delta.iter().enumerate() {
                            let row = &mut gw[r * cols..(r + 1) * cols];
                            for (g, &a) in row.iter_mut().zip(input) {
                                *g += d * a;
                            }
                        }
                        for (g, &d) in b_grads[li].iter_mut().zip(&delta) {
                            *g += d;
                        }
                    }
                    // Propagate delta to the previous layer.
                    if li > 0 {
                        let mut prev = vec![0.0; input.len()];
                        layers[li].w.t_matvec_add_into(&delta, &mut prev);
                        delta = prev;
                    }
                }
            }

            // Apply Adam with batch-mean gradients.
            t += 1;
            let inv = 1.0 / chunk.len() as f64;
            for li in 0..n_layers {
                for g in w_grads[li].iter_mut() {
                    *g *= inv;
                }
                for g in b_grads[li].iter_mut() {
                    *g *= inv;
                }
                w_states[li].step(
                    layers[li].w.as_mut_slice(),
                    &w_grads[li],
                    cfg.learning_rate,
                    t,
                );
                b_states[li].step(&mut layers[li].b, &b_grads[li], cfg.learning_rate, t);
            }
        }
    }
}

impl Model for Mlp {
    #[inline]
    fn predict(&self, x: f64) -> f64 {
        if let Some(lin) = &self.linear {
            return lin.predict(x);
        }
        let xn = (x - self.x_min) * self.x_scale;
        self.forward(xn) * self.y_scale
    }

    fn size_bytes(&self) -> usize {
        if self.linear.is_some() {
            return 2 * std::mem::size_of::<f64>();
        }
        self.layers
            .iter()
            .map(|l| (l.w.as_slice().len() + l.b.len()) * std::mem::size_of::<f64>())
            .sum::<usize>()
            + 3 * std::mem::size_of::<f64>()
    }

    fn op_count(&self) -> usize {
        if self.linear.is_some() {
            return 2;
        }
        self.layers
            .iter()
            .map(|l| 2 * l.w.as_slice().len() + l.b.len())
            .sum()
    }

    fn is_monotonic(&self) -> bool {
        self.monotonic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rmse(m: &Mlp, keys: &[f64]) -> f64 {
        let se: f64 = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (m.predict(k) - i as f64).powi(2))
            .sum();
        (se / keys.len() as f64).sqrt()
    }

    #[test]
    fn zero_hidden_layers_is_exact_linear_regression() {
        let keys: Vec<f64> = (0..1000).map(|i| 100.0 + 2.0 * i as f64).collect();
        let mlp = Mlp::fit_keys(&MlpConfig::new(0, 0), &keys);
        let lin = LinearModel::fit_keys(&keys);
        for &k in keys.iter().step_by(97) {
            assert!((mlp.predict(k) - lin.predict(k)).abs() < 1e-9);
        }
        assert_eq!(mlp.op_count(), 2);
    }

    #[test]
    fn one_hidden_layer_learns_nonlinear_cdf() {
        // Quadratic key growth: position ∝ sqrt(key); a line fits poorly.
        let keys: Vec<f64> = (0..2000).map(|i| (i * i) as f64).collect();
        let cfg = MlpConfig {
            hidden_layers: 1,
            width: 8,
            epochs: 80,
            ..Default::default()
        };
        let mlp = Mlp::fit_keys(&cfg, &keys);
        let lin = Mlp::fit_keys(&MlpConfig::new(0, 0), &keys);
        assert!(
            rmse(&mlp, &keys) < rmse(&lin, &keys) * 0.6,
            "mlp {} vs lin {}",
            rmse(&mlp, &keys),
            rmse(&lin, &keys)
        );
    }

    #[test]
    fn two_hidden_layers_at_width_16_trains() {
        let keys: Vec<f64> = (0..1500)
            .map(|i| (i as f64 / 150.0).exp() * 1000.0)
            .collect();
        let cfg = MlpConfig {
            hidden_layers: 2,
            width: 16,
            epochs: 60,
            ..Default::default()
        };
        let mlp = Mlp::fit_keys(&cfg, &keys);
        // Must be a usable CDF approximation: RMSE well under N/5.
        assert!(rmse(&mlp, &keys) < 250.0, "rmse {}", rmse(&mlp, &keys));
        assert_eq!(mlp.hidden_layers(), 2);
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let keys: Vec<f64> = (0..500).map(|i| (i * 3) as f64).collect();
        let cfg = MlpConfig {
            hidden_layers: 1,
            width: 4,
            epochs: 5,
            ..Default::default()
        };
        let a = Mlp::fit_keys(&cfg, &keys);
        let b = Mlp::fit_keys(&cfg, &keys);
        for &k in keys.iter().step_by(31) {
            assert_eq!(a.predict(k), b.predict(k));
        }
    }

    #[test]
    fn tiny_inputs_fall_back_to_linear() {
        let keys = vec![1.0, 2.0, 3.0];
        let m = Mlp::fit_keys(&MlpConfig::new(2, 16), &keys);
        assert_eq!(m.hidden_layers(), 0);
        assert!((m.predict(2.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn size_scales_with_width() {
        let keys: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let cfg8 = MlpConfig {
            hidden_layers: 1,
            width: 8,
            epochs: 1,
            ..Default::default()
        };
        let cfg32 = MlpConfig {
            hidden_layers: 1,
            width: 32,
            epochs: 1,
            ..Default::default()
        };
        let m8 = Mlp::fit_keys(&cfg8, &keys);
        let m32 = Mlp::fit_keys(&cfg32, &keys);
        assert!(m32.size_bytes() > m8.size_bytes());
        assert!(m32.op_count() > m8.op_count());
    }

    #[test]
    fn monotonic_flag_detects_monotonic_fit() {
        // On clean monotone data a converged model should usually be
        // monotone; only assert the flag is consistent with sampling.
        let keys: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let m = Mlp::fit_keys(&MlpConfig::new(0, 0), &keys);
        assert!(m.is_monotonic());
    }
}
