//! Single-feature linear regression — the work-horse leaf model.
//!
//! The paper (§3.6) observes that "a closed form solution exists for
//! linear multi-variate models … and they can be trained in a single pass
//! over the sorted data", and §3.7.1 finds that "for the second stage,
//! simple, linear models had the best performance". This module is that
//! model: `predict(x) = slope · x + intercept`, fitted by ordinary least
//! squares with mean-shifted accumulators for numerical stability (keys
//! can be as large as 2⁶⁴, so naive Σx² overflows the mantissa).

use crate::Model;

/// `y = slope · x + intercept`, fitted by least squares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearModel {
    slope: f64,
    intercept: f64,
}

impl LinearModel {
    /// A model with explicit coefficients.
    pub fn new(slope: f64, intercept: f64) -> Self {
        Self { slope, intercept }
    }

    /// The identity-ish degenerate model mapping everything to `0`.
    pub fn constant(value: f64) -> Self {
        Self {
            slope: 0.0,
            intercept: value,
        }
    }

    /// Fit by OLS over `(x, y)` pairs produced by the iterator.
    ///
    /// One pass, O(1) memory. For zero points the model predicts 0; for
    /// one point, a constant; for degenerate x-variance (all x equal),
    /// the mean of y.
    pub fn fit(pairs: impl Iterator<Item = (f64, f64)>) -> Self {
        // Welford-style mean-shifted accumulation: numerically stable for
        // huge key magnitudes.
        let mut n = 0.0f64;
        let mut mean_x = 0.0f64;
        let mut mean_y = 0.0f64;
        let mut cov_xy = 0.0f64; // Σ (x - mean_x)(y - mean_y)
        let mut var_x = 0.0f64; // Σ (x - mean_x)²
        for (x, y) in pairs {
            n += 1.0;
            let dx = x - mean_x;
            mean_x += dx / n;
            mean_y += (y - mean_y) / n;
            cov_xy += dx * (y - mean_y);
            var_x += dx * (x - mean_x);
        }
        if n == 0.0 {
            return Self::constant(0.0);
        }
        if var_x <= 0.0 || !var_x.is_finite() {
            return Self::constant(mean_y);
        }
        let slope = cov_xy / var_x;
        let intercept = mean_y - slope * mean_x;
        if !slope.is_finite() || !intercept.is_finite() {
            return Self::constant(mean_y);
        }
        Self { slope, intercept }
    }

    /// Fit over a sorted key slice where `y` is the index: the exact
    /// "model of the CDF scaled by N" (§2.2) used by RMI stages.
    pub fn fit_keys(keys: &[f64]) -> Self {
        Self::fit(keys.iter().enumerate().map(|(i, &k)| (k, i as f64)))
    }

    /// Slope coefficient.
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// Intercept coefficient.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

impl Model for LinearModel {
    #[inline(always)]
    fn predict(&self, x: f64) -> f64 {
        // One multiply-add: the paper's headline "simple linear model …
        // a single multiplication and addition" (§2).
        self.slope * x + self.intercept
    }

    fn size_bytes(&self) -> usize {
        2 * std::mem::size_of::<f64>()
    }

    fn op_count(&self) -> usize {
        2
    }

    fn is_monotonic(&self) -> bool {
        self.slope >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_on_affine_data() {
        // The paper's §2 example: keys 1M..2M stored at positions 0..1M —
        // a single linear model predicts perfectly.
        let keys: Vec<f64> = (0..1000).map(|i| 1_000_000.0 + i as f64).collect();
        let m = LinearModel::fit_keys(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert!((m.predict(k) - i as f64).abs() < 1e-6);
        }
        assert!(m.is_monotonic());
    }

    #[test]
    fn empty_and_single_point() {
        let m = LinearModel::fit(std::iter::empty());
        assert_eq!(m.predict(123.0), 0.0);
        let m = LinearModel::fit([(5.0, 7.0)].into_iter());
        assert_eq!(m.predict(0.0), 7.0);
        assert_eq!(m.predict(100.0), 7.0);
    }

    #[test]
    fn degenerate_x_gives_mean_of_y() {
        let m = LinearModel::fit([(2.0, 1.0), (2.0, 3.0), (2.0, 5.0)].into_iter());
        assert!((m.predict(2.0) - 3.0).abs() < 1e-12);
        assert_eq!(m.slope(), 0.0);
    }

    #[test]
    fn huge_key_magnitudes_stay_stable() {
        // Keys near 2^63 with spacing above the f64 ulp (2048 at 9e18);
        // naive Σx² accumulation would still lose all precision here.
        let base = 9.0e18;
        let keys: Vec<f64> = (0..10_000).map(|i| base + (i * 4096) as f64).collect();
        let m = LinearModel::fit_keys(&keys);
        let mut worst = 0.0f64;
        for (i, &k) in keys.iter().enumerate() {
            worst = worst.max((m.predict(k) - i as f64).abs());
        }
        assert!(worst < 1.0, "worst abs error {worst}");
    }

    #[test]
    fn least_squares_beats_endpoint_interpolation_on_noisy_data() {
        // y = 2x + noise; OLS slope should approach 2.
        let mut rng = crate::rng::SplitMix64::new(5);
        let pairs: Vec<(f64, f64)> = (0..5000)
            .map(|i| (i as f64, 2.0 * i as f64 + rng.normal() * 10.0))
            .collect();
        let m = LinearModel::fit(pairs.iter().copied());
        assert!((m.slope() - 2.0).abs() < 0.01, "slope {}", m.slope());
    }

    #[test]
    fn negative_slope_is_not_monotonic() {
        let m = LinearModel::fit([(0.0, 10.0), (10.0, 0.0)].into_iter());
        assert!(!m.is_monotonic());
    }

    #[test]
    fn model_trait_metadata() {
        let m = LinearModel::new(1.0, 0.0);
        assert_eq!(m.size_bytes(), 16);
        assert_eq!(m.op_count(), 2);
    }
}
