//! Quantized model parameters (§3.7.1's compression discussion).
//!
//! "Neural nets can be compressed by using 4- or 8-bit integers instead
//! of 32- or 64-bit floating point values to represent the model
//! parameters (a process referred to as quantization). This level of
//! compression can unlock additional gains for learned indexes."
//!
//! [`QuantizedLinear`] stores a linear leaf model's parameters as `u8`
//! with an affine (scale, zero-point) codebook — 2 bytes of payload
//! instead of 16 — plus shared per-stage codebook constants. Prediction
//! dequantizes on the fly (two extra multiply-adds). The quantization
//! error is bounded and folded into the leaf's error envelope, so the
//! index remains exact; the ablation bench measures the size/latency
//! trade-off.

use crate::linear::LinearModel;
use crate::Model;

/// Affine u8 codebook for one coefficient range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Codebook {
    /// Dequantized value = `zero + step * code`.
    pub zero: f64,
    /// Quantization step.
    pub step: f64,
}

impl Codebook {
    /// Codebook covering `[lo, hi]` with 256 levels.
    pub fn covering(lo: f64, hi: f64) -> Self {
        let (lo, hi) = if hi > lo { (lo, hi) } else { (lo, lo + 1.0) };
        Self {
            zero: lo,
            step: (hi - lo) / 255.0,
        }
    }

    /// Quantize a value to the nearest code.
    #[inline]
    pub fn encode(&self, v: f64) -> u8 {
        (((v - self.zero) / self.step).round().clamp(0.0, 255.0)) as u8
    }

    /// Dequantize a code.
    #[inline]
    pub fn decode(&self, code: u8) -> f64 {
        self.zero + self.step * code as f64
    }

    /// Worst-case absolute dequantization error (half a step, plus the
    /// clamp overflow when the value was outside the covered range —
    /// callers must construct covering codebooks to keep it at step/2).
    pub fn max_error(&self) -> f64 {
        self.step / 2.0
    }
}

/// A linear model with 8-bit quantized slope and intercept.
///
/// The codebooks are intended to be shared across a whole RMI stage
/// (they are per-*stage* constants, not per-leaf), which is what makes
/// the 2-bytes-per-leaf accounting real.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizedLinear {
    slope_code: u8,
    intercept_code: u8,
    slope_book: Codebook,
    intercept_book: Codebook,
}

impl QuantizedLinear {
    /// Quantize a trained [`LinearModel`] with the given stage codebooks.
    pub fn quantize(m: &LinearModel, slope_book: Codebook, intercept_book: Codebook) -> Self {
        Self {
            slope_code: slope_book.encode(m.slope()),
            intercept_code: intercept_book.encode(m.intercept()),
            slope_book,
            intercept_book,
        }
    }

    /// Build stage codebooks covering a set of leaf models.
    pub fn stage_codebooks(models: &[LinearModel]) -> (Codebook, Codebook) {
        let mut s_lo = f64::INFINITY;
        let mut s_hi = f64::NEG_INFINITY;
        let mut i_lo = f64::INFINITY;
        let mut i_hi = f64::NEG_INFINITY;
        for m in models {
            s_lo = s_lo.min(m.slope());
            s_hi = s_hi.max(m.slope());
            i_lo = i_lo.min(m.intercept());
            i_hi = i_hi.max(m.intercept());
        }
        if models.is_empty() {
            return (Codebook::covering(0.0, 1.0), Codebook::covering(0.0, 1.0));
        }
        (
            Codebook::covering(s_lo, s_hi),
            Codebook::covering(i_lo, i_hi),
        )
    }

    /// The dequantized model (for error analysis).
    pub fn dequantized(&self) -> LinearModel {
        LinearModel::new(
            self.slope_book.decode(self.slope_code),
            self.intercept_book.decode(self.intercept_code),
        )
    }

    /// Bound on `|quantized.predict(x) − original.predict(x)|` over
    /// `|x| ≤ x_max`: slope error × x_max + intercept error.
    pub fn prediction_error_bound(&self, x_max: f64) -> f64 {
        self.slope_book.max_error() * x_max.abs() + self.intercept_book.max_error()
    }

    /// Payload bytes per leaf (codebooks amortize across the stage).
    pub const PAYLOAD_BYTES: usize = 2;
}

impl Model for QuantizedLinear {
    #[inline]
    fn predict(&self, x: f64) -> f64 {
        // Dequantize inline: (zero_s + step_s·c_s)·x + zero_i + step_i·c_i.
        let slope = self.slope_book.zero + self.slope_book.step * self.slope_code as f64;
        let intercept =
            self.intercept_book.zero + self.intercept_book.step * self.intercept_code as f64;
        slope * x + intercept
    }

    fn size_bytes(&self) -> usize {
        Self::PAYLOAD_BYTES
    }

    fn op_count(&self) -> usize {
        6
    }

    fn is_monotonic(&self) -> bool {
        self.slope_book.decode(self.slope_code) >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codebook_roundtrip_within_half_step() {
        let book = Codebook::covering(-10.0, 10.0);
        for i in 0..100 {
            let v = -10.0 + 0.2 * i as f64;
            let err = (book.decode(book.encode(v)) - v).abs();
            assert!(err <= book.max_error() + 1e-12, "v={v} err={err}");
        }
    }

    #[test]
    fn degenerate_range_does_not_divide_by_zero() {
        let book = Codebook::covering(5.0, 5.0);
        assert_eq!(book.decode(book.encode(5.0)), 5.0);
    }

    #[test]
    fn quantized_prediction_close_to_original() {
        let keys: Vec<f64> = (0..1000).map(|i| i as f64 * 3.0).collect();
        let m = LinearModel::fit_keys(&keys);
        let (sb, ib) = QuantizedLinear::stage_codebooks(&[m]);
        let q = QuantizedLinear::quantize(&m, sb, ib);
        let bound = q.prediction_error_bound(3000.0);
        for &k in keys.iter().step_by(37) {
            let err = (q.predict(k) - m.predict(k)).abs();
            assert!(err <= bound + 1e-9, "err {err} bound {bound}");
        }
    }

    #[test]
    fn stage_codebooks_cover_all_models() {
        let models: Vec<LinearModel> = (0..50)
            .map(|i| LinearModel::new(i as f64 * 0.1, -(i as f64) * 5.0))
            .collect();
        let (sb, ib) = QuantizedLinear::stage_codebooks(&models);
        for m in &models {
            let q = QuantizedLinear::quantize(m, sb, ib);
            let d = q.dequantized();
            assert!((d.slope() - m.slope()).abs() <= sb.max_error() + 1e-12);
            assert!((d.intercept() - m.intercept()).abs() <= ib.max_error() + 1e-12);
        }
    }

    #[test]
    fn payload_is_two_bytes() {
        let m = LinearModel::new(1.0, 2.0);
        let (sb, ib) = QuantizedLinear::stage_codebooks(&[m]);
        let q = QuantizedLinear::quantize(&m, sb, ib);
        assert_eq!(Model::size_bytes(&q), 2);
        // 8x smaller than the f32 deployment leaf, 8x8 vs f64 storage.
        assert!(Model::size_bytes(&q) < m.size_bytes());
    }

    #[test]
    fn monotonicity_survives_quantization_for_positive_slopes() {
        let m = LinearModel::new(2.0, 0.0);
        let (sb, ib) = QuantizedLinear::stage_codebooks(&[m, LinearModel::new(10.0, 1.0)]);
        let q = QuantizedLinear::quantize(&m, sb, ib);
        assert!(q.is_monotonic());
    }
}
