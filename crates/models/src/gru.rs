//! Character-level GRU classifier for existence indexes.
//!
//! §5.2 of the paper trains "a character-level RNN (GRU, in particular)"
//! to predict whether a URL belongs to the blacklisted key set, e.g.
//! "a 16-dimensional GRU with a 32-dimensional embedding for each
//! character". This module is that model, implemented from scratch:
//!
//! * byte-level embedding table (vocabulary = 128 ASCII slots; bytes
//!   ≥ 128 share the last slot),
//! * a single GRU layer unrolled over the (truncated) input,
//! * a sigmoid read-out from the final hidden state,
//! * training by truncated-input BPTT with Adam on binary cross-entropy.
//!
//! The trained network is used by `li-bloom`'s learned Bloom filter as
//! the probabilistic classifier `f(x) ∈ [0, 1]` of §5.1.1.

use crate::linalg::Matrix;
use crate::rng::SplitMix64;
use crate::Classifier;

const VOCAB: usize = 128;

/// Hyper-parameters for [`GruClassifier::train`].
#[derive(Debug, Clone)]
pub struct GruConfig {
    /// Hidden-state width `W` (the paper sweeps 16/32/128).
    pub width: usize,
    /// Character embedding dimension `E` (paper: 32).
    pub embed: usize,
    /// Inputs are truncated to this many bytes (§3.5's fixed `N`).
    pub max_len: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Minibatch size.
    pub batch_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GruConfig {
    fn default() -> Self {
        Self {
            width: 16,
            embed: 32,
            max_len: 32,
            epochs: 10,
            learning_rate: 0.01,
            batch_size: 32,
            seed: 0xB100,
        }
    }
}

/// Parameters of one gate: `W·x + U·h + b`.
#[derive(Debug, Clone)]
struct Gate {
    w: Matrix, // width × embed
    u: Matrix, // width × width
    b: Vec<f64>,
}

impl Gate {
    fn new(width: usize, embed: usize, rng: &mut SplitMix64) -> Self {
        let sw = (1.0 / embed as f64).sqrt();
        let su = (1.0 / width as f64).sqrt();
        Self {
            w: Matrix::from_fn(width, embed, |_, _| rng.normal() * sw),
            u: Matrix::from_fn(width, width, |_, _| rng.normal() * su),
            b: vec![0.0; width],
        }
    }

    /// `out = W·x + U·h + b` (no activation).
    fn pre_activation(&self, x: &[f64], h: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.b);
        self.w.matvec_add_into(x, out);
        self.u.matvec_add_into(h, out);
    }

    fn zero_like(&self) -> GateGrad {
        GateGrad {
            w: Matrix::zeros(self.w.rows(), self.w.cols()),
            u: Matrix::zeros(self.u.rows(), self.u.cols()),
            b: vec![0.0; self.b.len()],
        }
    }
}

struct GateGrad {
    w: Matrix,
    u: Matrix,
    b: Vec<f64>,
}

/// A trained character-level GRU with sigmoid output.
#[derive(Debug, Clone)]
pub struct GruClassifier {
    embed: Matrix, // VOCAB × E
    update: Gate,  // z
    reset: Gate,   // r
    cand: Gate,    // h̃
    out_w: Vec<f64>,
    out_b: f64,
    max_len: usize,
    width: usize,
}

#[inline(always)]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Per-timestep forward state retained for BPTT.
struct StepState {
    ch: usize,
    z: Vec<f64>,
    r: Vec<f64>,
    c: Vec<f64>,
    h_prev: Vec<f64>,
}

impl GruClassifier {
    /// Train on positive (key) and negative (non-key) byte strings.
    pub fn train(cfg: &GruConfig, positives: &[&[u8]], negatives: &[&[u8]]) -> Self {
        let mut rng = SplitMix64::new(cfg.seed);
        let mut model = Self {
            embed: Matrix::from_fn(VOCAB, cfg.embed, |_, _| rng.normal() * 0.1),
            update: Gate::new(cfg.width, cfg.embed, &mut rng),
            reset: Gate::new(cfg.width, cfg.embed, &mut rng),
            cand: Gate::new(cfg.width, cfg.embed, &mut rng),
            out_w: (0..cfg.width).map(|_| rng.normal() * 0.1).collect(),
            out_b: 0.0,
            max_len: cfg.max_len,
            width: cfg.width,
        };

        let mut examples: Vec<(&[u8], f64)> = positives
            .iter()
            .map(|&s| (s, 1.0))
            .chain(negatives.iter().map(|&s| (s, 0.0)))
            .collect();

        let mut opt = Optimizer::new(&model);
        let mut t = 0usize;
        for _ in 0..cfg.epochs {
            rng.shuffle(&mut examples);
            for chunk in examples.chunks(cfg.batch_size) {
                let mut grads = Grads::zeros(&model);
                for &(s, y) in chunk {
                    model.backprop_one(s, y, &mut grads);
                }
                t += 1;
                let scale = 1.0 / chunk.len() as f64;
                grads.scale(scale);
                opt.apply(&mut model, &grads, cfg.learning_rate, t);
            }
        }
        model
    }

    /// Run the GRU over (truncated) input; returns final hidden state and
    /// the per-step state needed for backprop (when `trace` is true).
    fn run(&self, input: &[u8], trace: bool) -> (Vec<f64>, Vec<StepState>) {
        let mut h = vec![0.0; self.width];
        let mut steps = Vec::new();
        let mut z = Vec::new();
        let mut r = Vec::new();
        let mut a_c = Vec::new();
        let mut rh = vec![0.0; self.width];
        for &byte in input.iter().take(self.max_len) {
            let ch = (byte as usize).min(VOCAB - 1);
            let x = self.embed.row(ch);

            self.update.pre_activation(x, &h, &mut z);
            z.iter_mut().for_each(|v| *v = sigmoid(*v));
            self.reset.pre_activation(x, &h, &mut r);
            r.iter_mut().for_each(|v| *v = sigmoid(*v));
            for i in 0..self.width {
                rh[i] = r[i] * h[i];
            }
            self.cand.pre_activation(x, &rh, &mut a_c);
            a_c.iter_mut().for_each(|v| *v = v.tanh());

            let h_prev = if trace { h.clone() } else { Vec::new() };
            for i in 0..self.width {
                h[i] = (1.0 - z[i]) * h[i] + z[i] * a_c[i];
            }
            if trace {
                steps.push(StepState {
                    ch,
                    z: z.clone(),
                    r: r.clone(),
                    c: a_c.clone(),
                    h_prev,
                });
            }
        }
        (h, steps)
    }

    /// Accumulate gradients for one `(input, label)` example.
    fn backprop_one(&self, input: &[u8], y: f64, g: &mut Grads) {
        let (h_final, steps) = self.run(input, true);
        let logit: f64 = self
            .out_w
            .iter()
            .zip(&h_final)
            .map(|(w, h)| w * h)
            .sum::<f64>()
            + self.out_b;
        let p = sigmoid(logit);
        let dlogit = p - y; // d(BCE)/d(logit)

        for (gw, h) in g.out_w.iter_mut().zip(&h_final) {
            *gw += dlogit * h;
        }
        g.out_b += dlogit;

        let mut dh: Vec<f64> = self.out_w.iter().map(|w| w * dlogit).collect();

        let w = self.width;
        for step in steps.iter().rev() {
            let x = self.embed.row(step.ch);
            // h = (1-z) h_prev + z c
            let mut da_z = vec![0.0; w];
            let mut da_c = vec![0.0; w];
            let mut dh_prev = vec![0.0; w];
            for i in 0..w {
                let dz = dh[i] * (step.c[i] - step.h_prev[i]);
                da_z[i] = dz * step.z[i] * (1.0 - step.z[i]);
                let dc = dh[i] * step.z[i];
                da_c[i] = dc * (1.0 - step.c[i] * step.c[i]);
                dh_prev[i] = dh[i] * (1.0 - step.z[i]);
            }

            // Candidate gate: a_c = Wc x + Uc (r∘h_prev) + bc
            let rh: Vec<f64> = (0..w).map(|i| step.r[i] * step.h_prev[i]).collect();
            g.cand.w.rank1_add(1.0, &da_c, x);
            g.cand.u.rank1_add(1.0, &da_c, &rh);
            for (gb, d) in g.cand.b.iter_mut().zip(&da_c) {
                *gb += d;
            }
            let mut d_rh = vec![0.0; w];
            self.cand.u.t_matvec_add_into(&da_c, &mut d_rh);
            let mut da_r = vec![0.0; w];
            for i in 0..w {
                da_r[i] = d_rh[i] * step.h_prev[i] * step.r[i] * (1.0 - step.r[i]);
                dh_prev[i] += d_rh[i] * step.r[i];
            }

            // Update & reset gates.
            g.update.w.rank1_add(1.0, &da_z, x);
            g.update.u.rank1_add(1.0, &da_z, &step.h_prev);
            g.reset.w.rank1_add(1.0, &da_r, x);
            g.reset.u.rank1_add(1.0, &da_r, &step.h_prev);
            for i in 0..w {
                g.update.b[i] += da_z[i];
                g.reset.b[i] += da_r[i];
            }
            self.update.u.t_matvec_add_into(&da_z, &mut dh_prev);
            self.reset.u.t_matvec_add_into(&da_r, &mut dh_prev);

            // Embedding gradient: dx = Wzᵀ da_z + Wrᵀ da_r + Wcᵀ da_c.
            let mut dx = vec![0.0; self.embed.cols()];
            self.update.w.t_matvec_add_into(&da_z, &mut dx);
            self.reset.w.t_matvec_add_into(&da_r, &mut dx);
            self.cand.w.t_matvec_add_into(&da_c, &mut dx);
            let erow = g.embed.row_mut(step.ch);
            for (e, d) in erow.iter_mut().zip(&dx) {
                *e += d;
            }

            dh = dh_prev;
        }
    }

    /// Deployment size assuming 32-bit floats, which is how the paper
    /// accounts model memory (e.g. "W=16, E=32 … 0.0259MB"). Our structs
    /// store `f64` for training; a production LIF code-generator would
    /// emit `f32` (or quantized) weights.
    pub fn size_bytes_f32(&self) -> usize {
        self.param_count() * std::mem::size_of::<f32>()
    }

    fn param_count(&self) -> usize {
        let gate = |g: &Gate| g.w.as_slice().len() + g.u.as_slice().len() + g.b.len();
        self.embed.as_slice().len()
            + gate(&self.update)
            + gate(&self.reset)
            + gate(&self.cand)
            + self.out_w.len()
            + 1
    }
}

impl Classifier for GruClassifier {
    fn score(&self, input: &[u8]) -> f64 {
        let (h, _) = self.run(input, false);
        let logit: f64 = self.out_w.iter().zip(&h).map(|(w, v)| w * v).sum::<f64>() + self.out_b;
        sigmoid(logit)
    }

    fn size_bytes(&self) -> usize {
        self.param_count() * std::mem::size_of::<f64>()
    }
}

/// Flat gradient accumulator matching the model layout.
struct Grads {
    embed: Matrix,
    update: GateGrad,
    reset: GateGrad,
    cand: GateGrad,
    out_w: Vec<f64>,
    out_b: f64,
}

impl Grads {
    fn zeros(m: &GruClassifier) -> Self {
        Self {
            embed: Matrix::zeros(m.embed.rows(), m.embed.cols()),
            update: m.update.zero_like(),
            reset: m.reset.zero_like(),
            cand: m.cand.zero_like(),
            out_w: vec![0.0; m.out_w.len()],
            out_b: 0.0,
        }
    }

    fn scale(&mut self, s: f64) {
        for v in self.embed.as_mut_slice() {
            *v *= s;
        }
        for g in [&mut self.update, &mut self.reset, &mut self.cand] {
            for v in g.w.as_mut_slice() {
                *v *= s;
            }
            for v in g.u.as_mut_slice() {
                *v *= s;
            }
            for v in &mut g.b {
                *v *= s;
            }
        }
        for v in &mut self.out_w {
            *v *= s;
        }
        self.out_b *= s;
    }
}

/// Adam over every tensor in the model. Tensors are updated in a fixed
/// order so training is deterministic.
struct Optimizer {
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Optimizer {
    fn new(model: &GruClassifier) -> Self {
        let n = model.param_count();
        Self {
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    fn apply(&mut self, model: &mut GruClassifier, g: &Grads, lr: f64, t: usize) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        let mut i = 0usize;
        let mut upd = |p: &mut f64, grad: f64, m: &mut [f64], v: &mut [f64]| {
            m[i] = B1 * m[i] + (1.0 - B1) * grad;
            v[i] = B2 * v[i] + (1.0 - B2) * grad * grad;
            *p -= lr * (m[i] / bc1) / ((v[i] / bc2).sqrt() + EPS);
            i += 1;
        };
        let (m, v) = (&mut self.m, &mut self.v);
        for (p, &grad) in model
            .embed
            .as_mut_slice()
            .iter_mut()
            .zip(g.embed.as_slice())
        {
            upd(p, grad, m, v);
        }
        for (gate, gg) in [
            (&mut model.update, &g.update),
            (&mut model.reset, &g.reset),
            (&mut model.cand, &g.cand),
        ] {
            for (p, &grad) in gate.w.as_mut_slice().iter_mut().zip(gg.w.as_slice()) {
                upd(p, grad, m, v);
            }
            for (p, &grad) in gate.u.as_mut_slice().iter_mut().zip(gg.u.as_slice()) {
                upd(p, grad, m, v);
            }
            for (p, &grad) in gate.b.iter_mut().zip(&gg.b) {
                upd(p, grad, m, v);
            }
        }
        for (p, &grad) in model.out_w.iter_mut().zip(&g.out_w) {
            upd(p, grad, m, v);
        }
        upd(&mut model.out_b, g.out_b, m, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> GruConfig {
        GruConfig {
            width: 8,
            embed: 8,
            max_len: 16,
            epochs: 30,
            learning_rate: 0.02,
            batch_size: 16,
            seed: 1,
        }
    }

    #[test]
    fn separates_trivially_different_classes() {
        // Positives start with 'a', negatives with 'z'.
        let pos: Vec<Vec<u8>> = (0..60).map(|i| format!("aaa{i}").into_bytes()).collect();
        let neg: Vec<Vec<u8>> = (0..60).map(|i| format!("zzz{i}").into_bytes()).collect();
        let pos_refs: Vec<&[u8]> = pos.iter().map(|v| v.as_slice()).collect();
        let neg_refs: Vec<&[u8]> = neg.iter().map(|v| v.as_slice()).collect();
        let m = GruClassifier::train(&tiny_cfg(), &pos_refs, &neg_refs);
        let mut correct = 0;
        for p in &pos_refs {
            if m.score(p) > 0.5 {
                correct += 1;
            }
        }
        for n in &neg_refs {
            if m.score(n) < 0.5 {
                correct += 1;
            }
        }
        let acc = correct as f64 / 120.0;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn scores_are_probabilities() {
        let pos: Vec<&[u8]> = vec![b"abc", b"abd"];
        let neg: Vec<&[u8]> = vec![b"xyz", b"xyw"];
        let cfg = GruConfig {
            epochs: 2,
            ..tiny_cfg()
        };
        let m = GruClassifier::train(&cfg, &pos, &neg);
        for s in [b"abc".as_slice(), b"hello world this is long", b""] {
            let p = m.score(s);
            assert!((0.0..=1.0).contains(&p), "score {p}");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let pos: Vec<&[u8]> = vec![b"aa", b"ab"];
        let neg: Vec<&[u8]> = vec![b"zz", b"zy"];
        let cfg = GruConfig {
            epochs: 3,
            ..tiny_cfg()
        };
        let a = GruClassifier::train(&cfg, &pos, &neg);
        let b = GruClassifier::train(&cfg, &pos, &neg);
        assert_eq!(a.score(b"aa"), b.score(b"aa"));
        assert_eq!(a.score(b"qq"), b.score(b"qq"));
    }

    #[test]
    fn long_inputs_are_truncated_not_rejected() {
        let pos: Vec<&[u8]> = vec![b"a"];
        let neg: Vec<&[u8]> = vec![b"z"];
        let cfg = GruConfig {
            epochs: 1,
            max_len: 4,
            ..tiny_cfg()
        };
        let m = GruClassifier::train(&cfg, &pos, &neg);
        let long = vec![b'a'; 10_000];
        let _ = m.score(&long); // must not panic and must be fast
    }

    #[test]
    fn high_bytes_share_last_vocab_slot() {
        let pos: Vec<&[u8]> = vec![b"a"];
        let neg: Vec<&[u8]> = vec![b"z"];
        let cfg = GruConfig {
            epochs: 1,
            ..tiny_cfg()
        };
        let m = GruClassifier::train(&cfg, &pos, &neg);
        assert_eq!(m.score(&[200u8, 201]), m.score(&[255u8, 130]));
    }

    #[test]
    fn f32_size_matches_paper_order_of_magnitude() {
        // Paper: W=16, E=32 model is 0.0259MB ≈ 26KB in float32.
        let pos: Vec<&[u8]> = vec![b"a"];
        let neg: Vec<&[u8]> = vec![b"z"];
        let cfg = GruConfig {
            width: 16,
            embed: 32,
            epochs: 1,
            ..tiny_cfg()
        };
        let m = GruClassifier::train(&cfg, &pos, &neg);
        let kb = m.size_bytes_f32() as f64 / 1024.0;
        assert!((10.0..60.0).contains(&kb), "size {kb} KB");
    }
}
