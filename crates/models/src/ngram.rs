//! Hashed character-n-gram logistic regression.
//!
//! A cheap alternative classifier for the learned Bloom filter. The paper
//! itself uses a GRU (§5.2), but also notes "there is no reason that our
//! model needs to use the same features as the Bloom filter" and that
//! model choice trades accuracy against memory (Figure 10 shows three
//! model sizes). This model is the small end of that trade-off: it hashes
//! every 1-, 2- and 3-gram of the input into a fixed-size weight table
//! and trains a logistic regression with SGD. It trains in milliseconds,
//! which makes it the default for tests and low-budget experiments.

use crate::rng::SplitMix64;
use crate::Classifier;

/// Logistic regression over hashed character n-grams (n = 1, 2, 3).
#[derive(Debug, Clone)]
pub struct NgramLogReg {
    weights: Vec<f64>,
    bias: f64,
    mask: usize,
}

#[inline(always)]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// FNV-1a over a short byte window; cheap and good enough for feature
/// hashing.
#[inline(always)]
fn fnv1a(bytes: &[u8], salt: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ salt;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl NgramLogReg {
    /// Train with `epochs` passes of SGD. `table_bits` sets the weight
    /// table to `2^table_bits` entries (the model size knob).
    pub fn train(
        table_bits: u32,
        epochs: usize,
        learning_rate: f64,
        positives: &[&[u8]],
        negatives: &[&[u8]],
        seed: u64,
    ) -> Self {
        let size = 1usize << table_bits;
        let mut model = Self {
            weights: vec![0.0; size],
            bias: 0.0,
            mask: size - 1,
        };
        let mut examples: Vec<(&[u8], f64)> = positives
            .iter()
            .map(|&s| (s, 1.0))
            .chain(negatives.iter().map(|&s| (s, 0.0)))
            .collect();
        let mut rng = SplitMix64::new(seed);
        let mut feats = Vec::new();
        let l2 = 1e-6;
        for _ in 0..epochs {
            rng.shuffle(&mut examples);
            for &(s, y) in &examples {
                model.features_into(s, &mut feats);
                let p = model.score_features(&feats);
                let g = p - y; // d(BCE)/d(logit)
                model.bias -= learning_rate * g;
                let per_feat = learning_rate * g;
                for &f in &feats {
                    let w = &mut model.weights[f];
                    *w -= per_feat + learning_rate * l2 * *w;
                }
            }
        }
        model
    }

    /// Hash all 1/2/3-grams of `s` into feature indices.
    fn features_into(&self, s: &[u8], out: &mut Vec<usize>) {
        out.clear();
        for n in 1..=3usize {
            if s.len() < n {
                break;
            }
            let salt = n as u64;
            for window in s.windows(n) {
                out.push((fnv1a(window, salt) as usize) & self.mask);
            }
        }
    }

    fn score_features(&self, feats: &[usize]) -> f64 {
        let mut logit = self.bias;
        for &f in feats {
            logit += self.weights[f];
        }
        sigmoid(logit)
    }
}

impl Classifier for NgramLogReg {
    fn score(&self, input: &[u8]) -> f64 {
        let mut feats = Vec::with_capacity(input.len() * 3);
        self.features_into(input, &mut feats);
        self.score_features(&feats)
    }

    fn size_bytes(&self) -> usize {
        self.weights.len() * std::mem::size_of::<f64>() + std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_prefix_rule() {
        let pos: Vec<Vec<u8>> = (0..200)
            .map(|i| format!("evil-{i}.com").into_bytes())
            .collect();
        let neg: Vec<Vec<u8>> = (0..200)
            .map(|i| format!("good-{i}.org").into_bytes())
            .collect();
        let p: Vec<&[u8]> = pos.iter().map(|v| v.as_slice()).collect();
        let n: Vec<&[u8]> = neg.iter().map(|v| v.as_slice()).collect();
        let m = NgramLogReg::train(12, 8, 0.1, &p, &n, 7);
        let acc = p.iter().filter(|s| m.score(s) > 0.5).count()
            + n.iter().filter(|s| m.score(s) < 0.5).count();
        assert!(acc as f64 / 400.0 > 0.95, "acc {}", acc as f64 / 400.0);
    }

    #[test]
    fn generalizes_to_unseen_examples() {
        let pos: Vec<Vec<u8>> = (0..300)
            .map(|i| format!("phish{i}.evil").into_bytes())
            .collect();
        let neg: Vec<Vec<u8>> = (0..300)
            .map(|i| format!("site{i}.good").into_bytes())
            .collect();
        let p: Vec<&[u8]> = pos.iter().take(200).map(|v| v.as_slice()).collect();
        let n: Vec<&[u8]> = neg.iter().take(200).map(|v| v.as_slice()).collect();
        let m = NgramLogReg::train(13, 10, 0.1, &p, &n, 3);
        // Held-out tail.
        let mut correct = 0;
        for s in pos.iter().skip(200) {
            if m.score(s) > 0.5 {
                correct += 1;
            }
        }
        for s in neg.iter().skip(200) {
            if m.score(s) < 0.5 {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / 200.0 > 0.9,
            "holdout acc {}",
            correct as f64 / 200.0
        );
    }

    #[test]
    fn empty_input_scores_without_panic() {
        let m = NgramLogReg::train(8, 1, 0.1, &[b"a".as_slice()], &[b"b".as_slice()], 1);
        let s = m.score(b"");
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn table_bits_control_size() {
        let m8 = NgramLogReg::train(8, 1, 0.1, &[b"a".as_slice()], &[b"b".as_slice()], 1);
        let m12 = NgramLogReg::train(12, 1, 0.1, &[b"a".as_slice()], &[b"b".as_slice()], 1);
        assert_eq!(m8.size_bytes(), 256 * 8 + 8);
        assert!(m12.size_bytes() > m8.size_bytes());
    }
}
