//! Vector-input MLP for string keys.
//!
//! §3.5: *"we consider an n-length string to be a feature vector
//! x ∈ ℝⁿ … we learn a hierarchy of relatively small feed-forward neural
//! networks. The one difference is that the input is not a single real
//! value x but a vector x. Linear models w·x+b scale the number of
//! multiplications and additions linearly with the input length N.
//! Feed-forward neural networks with even a single hidden layer of width
//! h will scale O(hN) multiplications and additions."*
//!
//! [`VecMlp`] is the [`crate::Mlp`] generalized to a `d`-dimensional
//! input: per-column min-max input normalization, 0–2 hidden ReLU
//! layers, Adam on MSE. A zero-hidden-layer `VecMlp` is multivariate
//! linear regression and is solved in closed form via
//! [`crate::MultivariateLinear::fit_vectors`].

use crate::linalg::Matrix;
use crate::mlp::MlpConfig;
use crate::multivariate::MultivariateLinear;
use crate::rng::SplitMix64;

/// One dense layer `out = W·in + b` with optional ReLU.
#[derive(Debug, Clone)]
struct Dense {
    w: Matrix,
    b: Vec<f64>,
    relu: bool,
}

impl Dense {
    fn forward_into(&self, input: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.b);
        self.w.matvec_add_into(input, out);
        if self.relu {
            for v in out.iter_mut() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
        }
    }
}

/// A feed-forward network mapping a feature vector to a position.
#[derive(Debug, Clone)]
pub struct VecMlp {
    layers: Vec<Dense>,
    /// Closed-form path when `hidden_layers == 0`.
    linear: Option<MultivariateLinear>,
    /// Per-input-column normalization `(min, 1/(max-min))`.
    col_norm: Vec<(f64, f64)>,
    y_scale: f64,
    input_dim: usize,
}

impl VecMlp {
    /// Fit over `(vector, y)` pairs. All vectors must share a dimension.
    pub fn fit(cfg: &MlpConfig, vectors: &[Vec<f64>], ys: &[f64]) -> Self {
        assert_eq!(vectors.len(), ys.len());
        assert!(cfg.hidden_layers <= 2, "paper caps at two hidden layers");
        let d = vectors.first().map_or(0, Vec::len);

        if cfg.hidden_layers == 0 || vectors.len() < 4 {
            let lin = MultivariateLinear::fit_vectors(vectors, ys);
            return Self {
                layers: Vec::new(),
                linear: Some(lin),
                col_norm: vec![(0.0, 1.0); d],
                y_scale: 1.0,
                input_dim: d,
            };
        }

        // Per-column normalization.
        let mut col_min = vec![f64::INFINITY; d];
        let mut col_max = vec![f64::NEG_INFINITY; d];
        for v in vectors {
            for c in 0..d {
                col_min[c] = col_min[c].min(v[c]);
                col_max[c] = col_max[c].max(v[c]);
            }
        }
        let col_norm: Vec<(f64, f64)> = (0..d)
            .map(|c| {
                if col_max[c] > col_min[c] {
                    (col_min[c], 1.0 / (col_max[c] - col_min[c]))
                } else {
                    (col_min[c], 0.0)
                }
            })
            .collect();
        let y_max = ys.iter().cloned().fold(0.0f64, f64::max).max(1.0);

        let stride = (vectors.len() / cfg.max_train_points).max(1);
        let train: Vec<(Vec<f64>, f64)> = vectors
            .iter()
            .zip(ys)
            .step_by(stride)
            .map(|(v, &y)| {
                let xn: Vec<f64> = (0..d)
                    .map(|c| (v[c] - col_norm[c].0) * col_norm[c].1)
                    .collect();
                (xn, y / y_max)
            })
            .collect();

        let mut rng = SplitMix64::new(cfg.seed);
        let mut layers = build_layers(d, cfg, &mut rng);
        train_adam(&mut layers, &train, cfg, &mut rng);

        Self {
            layers,
            linear: None,
            col_norm,
            y_scale: y_max,
            input_dim: d,
        }
    }

    /// Predict from a raw feature vector.
    pub fn predict_vector(&self, v: &[f64]) -> f64 {
        if let Some(lin) = &self.linear {
            return lin.predict_vector(v);
        }
        debug_assert_eq!(v.len(), self.input_dim);
        let mut a: Vec<f64> = v
            .iter()
            .zip(&self.col_norm)
            .map(|(&x, &(min, scale))| (x - min) * scale)
            .collect();
        let mut b = Vec::new();
        for layer in &self.layers {
            layer.forward_into(&a, &mut b);
            std::mem::swap(&mut a, &mut b);
        }
        a[0] * self.y_scale
    }

    /// Input dimension the model was trained on.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Parameter memory in bytes.
    pub fn size_bytes(&self) -> usize {
        if let Some(lin) = &self.linear {
            return crate::Model::size_bytes(lin);
        }
        self.layers
            .iter()
            .map(|l| (l.w.as_slice().len() + l.b.len()) * std::mem::size_of::<f64>())
            .sum::<usize>()
            + self.col_norm.len() * 2 * std::mem::size_of::<f64>()
    }

    /// Multiply-add count per prediction (the §3.5 `O(hN)` scaling).
    pub fn op_count(&self) -> usize {
        if let Some(lin) = &self.linear {
            return crate::Model::op_count(lin);
        }
        2 * self.input_dim
            + self
                .layers
                .iter()
                .map(|l| 2 * l.w.as_slice().len() + l.b.len())
                .sum::<usize>()
    }
}

fn build_layers(input_dim: usize, cfg: &MlpConfig, rng: &mut SplitMix64) -> Vec<Dense> {
    let mut dims = vec![input_dim];
    for _ in 0..cfg.hidden_layers {
        dims.push(cfg.width);
    }
    dims.push(1);
    let mut layers = Vec::with_capacity(dims.len() - 1);
    for i in 0..dims.len() - 1 {
        let (fan_in, fan_out) = (dims[i], dims[i + 1]);
        let std = (2.0 / fan_in as f64).sqrt();
        layers.push(Dense {
            w: Matrix::from_fn(fan_out, fan_in, |_, _| rng.normal() * std),
            b: vec![0.0; fan_out],
            relu: i + 1 < dims.len() - 1,
        });
    }
    layers
}

fn train_adam(
    layers: &mut [Dense],
    train: &[(Vec<f64>, f64)],
    cfg: &MlpConfig,
    rng: &mut SplitMix64,
) {
    let n_layers = layers.len();
    let mut m_w: Vec<Vec<f64>> = layers
        .iter()
        .map(|l| vec![0.0; l.w.as_slice().len()])
        .collect();
    let mut v_w: Vec<Vec<f64>> = m_w.clone();
    let mut m_b: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
    let mut v_b: Vec<Vec<f64>> = m_b.clone();

    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut t = 0usize;
    let mut acts: Vec<Vec<f64>> = vec![Vec::new(); n_layers + 1];
    let mut gw: Vec<Vec<f64>> = layers
        .iter()
        .map(|l| vec![0.0; l.w.as_slice().len()])
        .collect();
    let mut gb: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();

    const B1: f64 = 0.9;
    const B2: f64 = 0.999;
    const EPS: f64 = 1e-8;

    for _ in 0..cfg.epochs {
        rng.shuffle(&mut order);
        for chunk in order.chunks(cfg.batch_size) {
            for g in gw.iter_mut().chain(gb.iter_mut()) {
                g.iter_mut().for_each(|x| *x = 0.0);
            }
            for &idx in chunk {
                let (x, y) = &train[idx];
                acts[0].clear();
                acts[0].extend_from_slice(x);
                for (li, layer) in layers.iter().enumerate() {
                    let (before, after) = acts.split_at_mut(li + 1);
                    layer.forward_into(&before[li], &mut after[0]);
                }
                let pred = acts[n_layers][0];
                let mut delta = vec![2.0 * (pred - y)];
                for li in (0..n_layers).rev() {
                    if layers[li].relu {
                        for (d, &a) in delta.iter_mut().zip(&acts[li + 1]) {
                            if a <= 0.0 {
                                *d = 0.0;
                            }
                        }
                    }
                    let input = &acts[li];
                    let cols = input.len();
                    for (r, &dv) in delta.iter().enumerate() {
                        let row = &mut gw[li][r * cols..(r + 1) * cols];
                        for (g, &a) in row.iter_mut().zip(input) {
                            *g += dv * a;
                        }
                    }
                    for (g, &dv) in gb[li].iter_mut().zip(&delta) {
                        *g += dv;
                    }
                    if li > 0 {
                        let mut prev = vec![0.0; cols];
                        layers[li].w.t_matvec_add_into(&delta, &mut prev);
                        delta = prev;
                    }
                }
            }
            t += 1;
            let inv = 1.0 / chunk.len() as f64;
            let bc1 = 1.0 - B1.powi(t as i32);
            let bc2 = 1.0 - B2.powi(t as i32);
            for li in 0..n_layers {
                for (i, p) in layers[li].w.as_mut_slice().iter_mut().enumerate() {
                    let g = gw[li][i] * inv;
                    m_w[li][i] = B1 * m_w[li][i] + (1.0 - B1) * g;
                    v_w[li][i] = B2 * v_w[li][i] + (1.0 - B2) * g * g;
                    *p -=
                        cfg.learning_rate * (m_w[li][i] / bc1) / ((v_w[li][i] / bc2).sqrt() + EPS);
                }
                for (i, p) in layers[li].b.iter_mut().enumerate() {
                    let g = gb[li][i] * inv;
                    m_b[li][i] = B1 * m_b[li][i] + (1.0 - B1) * g;
                    v_b[li][i] = B2 * v_b[li][i] + (1.0 - B2) * g * g;
                    *p -=
                        cfg.learning_rate * (m_b[li][i] / bc1) / ((v_b[li][i] / bc2).sqrt() + EPS);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_hidden_is_closed_form_multivariate() {
        let vectors: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 20) as f64, (i / 20) as f64])
            .collect();
        let ys: Vec<f64> = vectors.iter().map(|v| 3.0 * v[0] + 7.0 * v[1]).collect();
        let m = VecMlp::fit(&MlpConfig::new(0, 0), &vectors, &ys);
        for (v, &y) in vectors.iter().zip(&ys) {
            assert!((m.predict_vector(v) - y).abs() < 1e-4);
        }
    }

    #[test]
    fn one_hidden_layer_learns_nonlinear_function() {
        // y = max(a, b): not linear in (a, b); needs the hidden layer.
        let mut rng = SplitMix64::new(2);
        let vectors: Vec<Vec<f64>> = (0..800)
            .map(|_| vec![rng.next_f64() * 10.0, rng.next_f64() * 10.0])
            .collect();
        let ys: Vec<f64> = vectors.iter().map(|v| v[0].max(v[1])).collect();
        let cfg = MlpConfig {
            hidden_layers: 1,
            width: 16,
            epochs: 120,
            ..Default::default()
        };
        let nn = VecMlp::fit(&cfg, &vectors, &ys);
        let lin = VecMlp::fit(&MlpConfig::new(0, 0), &vectors, &ys);
        let rmse = |m: &VecMlp| {
            let se: f64 = vectors
                .iter()
                .zip(&ys)
                .map(|(v, &y)| (m.predict_vector(v) - y).powi(2))
                .sum();
            (se / ys.len() as f64).sqrt()
        };
        assert!(
            rmse(&nn) < rmse(&lin) * 0.7,
            "nn {} lin {}",
            rmse(&nn),
            rmse(&lin)
        );
    }

    #[test]
    fn op_count_scales_with_input_length() {
        let mk = |d: usize| {
            let vectors: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64; d]).collect();
            let ys: Vec<f64> = (0..50).map(|i| i as f64).collect();
            let cfg = MlpConfig {
                hidden_layers: 1,
                width: 8,
                epochs: 1,
                ..Default::default()
            };
            VecMlp::fit(&cfg, &vectors, &ys)
        };
        // §3.5: O(hN) multiplications — doubling N roughly doubles ops.
        let ops8 = mk(8).op_count();
        let ops16 = mk(16).op_count();
        assert!(ops16 > ops8 + ops8 / 2, "{ops8} vs {ops16}");
    }

    #[test]
    fn deterministic_training() {
        let vectors: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, (i * 2) as f64]).collect();
        let ys: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let cfg = MlpConfig {
            hidden_layers: 1,
            width: 4,
            epochs: 3,
            ..Default::default()
        };
        let a = VecMlp::fit(&cfg, &vectors, &ys);
        let b = VecMlp::fit(&cfg, &vectors, &ys);
        assert_eq!(
            a.predict_vector(&[5.0, 10.0]),
            b.predict_vector(&[5.0, 10.0])
        );
    }

    #[test]
    fn constant_column_is_ignored_via_zero_scale() {
        let vectors: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 42.0]).collect();
        let ys: Vec<f64> = (0..100).map(|i| i as f64 * 2.0).collect();
        let cfg = MlpConfig {
            hidden_layers: 1,
            width: 8,
            epochs: 100,
            ..Default::default()
        };
        let m = VecMlp::fit(&cfg, &vectors, &ys);
        let rmse = {
            let se: f64 = vectors
                .iter()
                .zip(&ys)
                .map(|(v, &y)| (m.predict_vector(v) - y).powi(2))
                .sum();
            (se / ys.len() as f64).sqrt()
        };
        assert!(rmse < 20.0, "rmse {rmse}");
    }
}
