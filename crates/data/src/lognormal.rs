//! The paper's synthetic Lognormal dataset.
//!
//! §3.7.1: *"to test how the index works on heavy-tail distributions, we
//! generated a synthetic dataset of 190M unique values sampled from a
//! log-normal distribution with μ = 0 and σ = 2. The values are scaled up
//! to be integers up to 1B."*
//!
//! We reproduce this exactly (at configurable `n`): draw `exp(σ·Z)` with
//! `Z ~ N(0,1)`, scale so the distribution support maps into `[0, 1B)`
//! (σ=2 puts ~99.9% of mass below e^{6.2} ≈ 490, so the paper's "up to
//! 1B" corresponds to a linear scale factor; we clamp the rare extreme
//! tail), truncate to integers and deduplicate, oversampling until `n`
//! unique keys exist.

use crate::keyset::KeySet;
use li_models::rng::SplitMix64;

/// Maximum key value ("integers up to 1B").
const MAX_KEY: u64 = 1_000_000_000;

/// Generate `n` unique sorted lognormal keys (μ = 0, σ = 2, max 1B).
///
/// The scale factor is chosen proportional to `n` (median ≈ n/20) so the
/// integer-truncated distribution keeps the paper's density regime at
/// any size: at 190M keys in [0, 1B) the bulk of the distribution sits
/// at occupancy near 1 — the dense head is runs of consecutive integers
/// while the heavy tail is sparse. That head/tail contrast is what makes
/// the dataset "highly non-linear" yet partially learnable for hashing
/// (Figure 8's 26.7% conflict reduction).
pub fn lognormal_keys(n: usize, seed: u64) -> KeySet {
    let scale = (n as f64 / 20.0).max(500.0);
    lognormal_keys_with(n, 0.0, 2.0, scale, seed)
}

/// Fully parameterized lognormal key generator.
pub fn lognormal_keys_with(n: usize, mu: f64, sigma: f64, scale: f64, seed: u64) -> KeySet {
    assert!(n > 0);
    let mut rng = SplitMix64::new(seed);
    let mut keys: Vec<u64> = Vec::with_capacity(n * 2);
    // Oversample: heavy tails + dedup mean some draws collide.
    loop {
        let missing = n - keys.len();
        for _ in 0..missing * 2 + 64 {
            let z = rng.normal();
            let v = (mu + sigma * z).exp() * scale;
            let k = if v >= MAX_KEY as f64 {
                MAX_KEY - 1
            } else {
                v as u64
            };
            keys.push(k);
        }
        keys.sort_unstable();
        keys.dedup();
        if keys.len() >= n {
            break;
        }
    }
    // Truncating would bias toward small keys (they are denser); take an
    // even stride of exactly n instead so the distribution shape is kept.
    if keys.len() > n {
        let len = keys.len();
        let keys: Vec<u64> = (0..n).map(|i| keys[i * len / n]).collect();
        return KeySet::from_sorted(keys);
    }
    KeySet::from_sorted(keys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_exact_count_sorted_unique() {
        let ks = lognormal_keys(5000, 9);
        assert_eq!(ks.len(), 5000);
        assert!(ks.keys().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn keys_stay_below_one_billion() {
        let ks = lognormal_keys(20_000, 4);
        assert!(*ks.keys().last().unwrap() < MAX_KEY);
    }

    #[test]
    fn distribution_is_heavy_tailed() {
        // For lognormal(0, 2) the mean is e² ≈ 7.4× the median — the
        // generated keys must show that strong right skew.
        let ks = lognormal_keys(50_000, 11);
        let keys = ks.keys();
        let median = keys[keys.len() / 2] as f64;
        let mean = keys.iter().map(|&k| k as f64).sum::<f64>() / keys.len() as f64;
        // Raw lognormal(0,2) has mean/median = e² ≈ 7.4; integer
        // truncation + dedup of the dense head compress that, but the
        // skew must remain pronounced.
        assert!(
            mean / median > 2.0,
            "mean {mean} median {median}: not heavy-tailed"
        );
    }

    #[test]
    fn custom_sigma_reduces_skew() {
        let heavy = lognormal_keys_with(20_000, 0.0, 2.0, 2.0e6, 5);
        let light = lognormal_keys_with(20_000, 0.0, 0.25, 2.0e6, 5);
        let skew = |ks: &KeySet| {
            let keys = ks.keys();
            let median = keys[keys.len() / 2] as f64;
            let mean = keys.iter().map(|&k| k as f64).sum::<f64>() / keys.len() as f64;
            mean / median
        };
        assert!(skew(&heavy) > skew(&light) * 1.5);
    }
}
