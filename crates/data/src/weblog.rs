//! The Weblogs dataset: timestamps of requests to a university web site.
//!
//! §3.7.1: *"The Weblogs dataset contains 200M log entries for every
//! request to a major university web-site over several years. We use the
//! unique request timestamps as the index keys. This dataset is almost a
//! worst-case scenario for the learned index as it contains very complex
//! time patterns caused by class schedules, weekends, holidays,
//! lunch-breaks, department events, semester breaks, etc., which are
//! notoriously hard to learn."*
//!
//! The real logs are private; we substitute an inhomogeneous Poisson
//! process whose rate λ(t) carries exactly those components:
//!
//! * **diurnal** cycle (daytime peak, lunch dip, nighttime trough),
//! * **weekly** cycle (weekend collapse),
//! * **academic calendar** (semester breaks cut traffic by ~75%),
//! * **traffic growth** (the site's volume quadruples across the logged
//!   span, giving the CDF a globally convex trend),
//! * **events** (random short bursts at 10–40× base rate — near-vertical
//!   CDF steps).
//!
//! Two scale decisions keep the *density regime* of the real data at any
//! key count (they determine whether learned models can reach sub-slot
//! accuracy, which is what Figures 4/8/11 measure):
//!
//! 1. the logged **span grows with n** (≈7k keys/day, clamped to
//!    [2 weeks, 4 years]) so a few thousand keys cover minutes-to-hours
//!    of roughly constant rate, as 200M keys over 4 years do — not whole
//!    days of drift;
//! 2. timestamps are quantized to a clock of ~8n **ticks** over the
//!    span, so bursty hours drive their ticks toward saturation
//!    (near-consecutive runs) while quiet nights stay sparse, like a
//!    real finite-resolution log.
//!
//! Sampling is by inverse transform over a binned cumulative rate
//! function: O(n log bins), exact enough to preserve the multi-scale
//! structure.

use crate::keyset::KeySet;
use li_models::rng::SplitMix64;

const MICROS_PER_SEC: u64 = 1_000_000;
const SECS_PER_DAY: u64 = 86_400;
const KEYS_PER_DAY: u64 = 7_000;
const MIN_DAYS: u64 = 14;
const MAX_DAYS: u64 = 4 * 365;
const BIN_SECS: u64 = 900; // 15-minute bins resolve the diurnal shape

/// Relative request rate at second-of-day `s` (diurnal pattern).
fn diurnal(s: f64) -> f64 {
    let hour = s / 3600.0;
    let day_peak = (-(hour - 14.0) * (hour - 14.0) / 18.0).exp();
    let morning = (-(hour - 10.0) * (hour - 10.0) / 8.0).exp();
    let lunch_dip = 1.0 - 0.45 * (-(hour - 12.5) * (hour - 12.5) / 0.5).exp();
    (0.05 + 0.9 * day_peak + 0.6 * morning) * lunch_dip
}

/// Relative rate for day-of-week `d` (0 = Monday).
fn weekly(d: u64) -> f64 {
    match d {
        0..=4 => 1.0,
        5 => 0.35,
        _ => 0.25,
    }
}

/// Relative rate for day-of-year: semesters vs breaks vs holidays.
fn academic(day_of_year: u64) -> f64 {
    match day_of_year {
        0..=19 => 0.25,   // winter break
        135..=240 => 0.3, // summer break
        328..=331 => 0.4, // late-November holiday dip
        _ => 1.0,
    }
}

/// The simulated span in days for `n` keys.
pub fn span_days(n: usize) -> u64 {
    (n as u64 / KEYS_PER_DAY).clamp(MIN_DAYS, MAX_DAYS)
}

/// Generate `n` unique sorted request timestamps (microseconds since an
/// arbitrary epoch, tick-quantized).
pub fn weblog_timestamps(n: usize, seed: u64) -> KeySet {
    assert!(n > 0);
    let mut rng = SplitMix64::new(seed);
    let days = span_days(n);
    let bins = (days * SECS_PER_DAY / BIN_SECS) as usize;

    // Event bursts: ~1 per 5 weeks plus a floor, 1-4 hours, 10-40x rate.
    let n_events = (days / 35 + 4) as usize;
    let mut events: Vec<(u64, u64, f64)> = (0..n_events)
        .map(|_| {
            let start = rng.next_u64() % (days * SECS_PER_DAY);
            let len = 3600 + rng.next_u64() % (3 * 3600);
            let boost = 10.0 + 30.0 * rng.next_f64();
            (start, start + len, boost)
        })
        .collect();
    events.sort_unstable_by_key(|e| e.0);

    // Binned cumulative rate function Λ.
    let span_secs = (days * SECS_PER_DAY) as f64;
    let mut cum = Vec::with_capacity(bins);
    let mut total = 0.0f64;
    for b in 0..bins {
        let sec = b as u64 * BIN_SECS + BIN_SECS / 2;
        let day = sec / SECS_PER_DAY;
        let mut rate = diurnal((sec % SECS_PER_DAY) as f64)
            * weekly(day % 7)
            * academic(day % 365)
            * (2.0 * sec as f64 / span_secs).exp2(); // 4x growth over the span
        for &(a, e, boost) in &events {
            if sec >= a && sec < e {
                rate *= boost;
            }
        }
        total += rate * BIN_SECS as f64;
        cum.push(total);
    }

    // Inverse-transform sampling at tick resolution.
    let span_micros = days * SECS_PER_DAY * MICROS_PER_SEC;
    let tick = (span_micros / (8 * n as u64)).max(1);
    let mut keys: Vec<u64> = Vec::with_capacity(n + n / 8);
    while keys.len() < n {
        let missing = n - keys.len();
        for _ in 0..missing + missing / 8 + 8 {
            let u = rng.next_f64() * total;
            let bin = cum.partition_point(|&c| c < u);
            let bin = bin.min(bins - 1);
            let t0 = bin as u64 * BIN_SECS * MICROS_PER_SEC;
            let within = (rng.next_f64() * (BIN_SECS * MICROS_PER_SEC) as f64) as u64;
            keys.push((t0 + within) / tick * tick);
        }
        keys.sort_unstable();
        keys.dedup();
    }
    if keys.len() > n {
        let len = keys.len();
        let keys: Vec<u64> = (0..n).map(|i| keys[i * len / n]).collect();
        return KeySet::from_sorted(keys);
    }
    KeySet::from_sorted(keys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_exact_count_sorted_unique() {
        let ks = weblog_timestamps(10_000, 5);
        assert_eq!(ks.len(), 10_000);
        assert!(ks.keys().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn span_scales_with_key_count() {
        assert_eq!(span_days(10_000), MIN_DAYS);
        assert_eq!(span_days(7_000 * 100), 100);
        assert_eq!(span_days(200_000_000), MAX_DAYS);
    }

    #[test]
    fn weekday_traffic_dominates_weekends() {
        let ks = weblog_timestamps(40_000, 2);
        let mut weekday = 0usize;
        let mut weekend = 0usize;
        for &t in ks.keys() {
            let day = t / MICROS_PER_SEC / SECS_PER_DAY;
            if day % 7 >= 5 {
                weekend += 1;
            } else {
                weekday += 1;
            }
        }
        let per_weekday = weekday as f64 / 5.0;
        let per_weekend = weekend as f64 / 2.0;
        assert!(
            per_weekday > 2.0 * per_weekend,
            "{per_weekday} vs {per_weekend}"
        );
    }

    #[test]
    fn nights_are_quiet() {
        let ks = weblog_timestamps(40_000, 2);
        let mut night = 0usize; // 2am-4am
        let mut afternoon = 0usize; // 1pm-3pm
        for &t in ks.keys() {
            let hour = (t / MICROS_PER_SEC % SECS_PER_DAY) / 3600;
            match hour {
                2..=3 => night += 1,
                13..=14 => afternoon += 1,
                _ => {}
            }
        }
        assert!(afternoon > night * 4, "afternoon {afternoon} night {night}");
    }

    #[test]
    fn traffic_grows_over_the_span() {
        // Event bursts land at random positions and can locally swamp
        // the growth trend on a short span, so aggregate several seeds
        // and compare halves.
        let span = span_days(40_000) * SECS_PER_DAY * MICROS_PER_SEC;
        let mut first_half = 0usize;
        let mut second_half = 0usize;
        for seed in [3, 4, 5, 6] {
            let ks = weblog_timestamps(40_000, seed);
            first_half += ks.keys().iter().filter(|&&t| t < span / 2).count();
            second_half += ks.keys().iter().filter(|&&t| t >= span / 2).count();
        }
        assert!(
            second_half as f64 > first_half as f64 * 1.3,
            "{first_half} vs {second_half}"
        );
    }

    #[test]
    fn cdf_is_hard_for_a_single_linear_model() {
        // The defining property: relative RMSE of one line over the CDF
        // is large (paper: "almost a worst-case scenario").
        use li_models::{LinearModel, Model};
        let ks = weblog_timestamps(20_000, 7);
        let keys = ks.keys_f64();
        let m = LinearModel::fit_keys(&keys);
        let se: f64 = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (m.predict(k) - i as f64).powi(2))
            .sum();
        let rmse = (se / keys.len() as f64).sqrt();
        assert!(rmse > 0.025 * keys.len() as f64, "rmse {rmse}");
    }

    #[test]
    fn busy_periods_form_tick_runs() {
        // The finite-clock property that makes learned hashing viable:
        // a meaningful share of adjacent keys are exactly one tick apart.
        let n = 50_000;
        let ks = weblog_timestamps(n, 9);
        let span = span_days(n) * SECS_PER_DAY * MICROS_PER_SEC;
        let tick = (span / (8 * n as u64)).max(1);
        let runs = ks.keys().windows(2).filter(|w| w[1] - w[0] == tick).count();
        let frac = runs as f64 / (n - 1) as f64;
        assert!(frac > 0.15, "tick-run fraction {frac}");
    }
}
