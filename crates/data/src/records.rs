//! Record layouts used by the paper's experiments.
//!
//! Appendix B: *"our records … consist of a 64bit key, 64bit payload,
//! and a 32bit meta-data field for delete flags, version nb, etc. (so a
//! record has a fixed length of 20 Bytes)"*. The range-index experiments
//! (§3.7.1) instead use "64-bit keys and 64-bit payload/value".

/// The Appendix-B/C 20-byte record: key + payload + metadata.
///
/// `repr(C)` keeps the declared field order; the paper counts it as 20
/// logical bytes (alignment padding is an implementation detail the
/// paper's chained slot layout also pays — it adds a 32-bit next-pointer
/// to make a "24Byte slot").
#[repr(C)]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Record20 {
    /// 64-bit key.
    pub key: u64,
    /// 64-bit payload ("value").
    pub payload: u64,
    /// 32-bit metadata: delete flags, version number, etc.
    pub meta: u32,
}

impl Record20 {
    /// Logical record size the paper reports (ignoring padding).
    pub const LOGICAL_BYTES: usize = 20;

    /// Build a record whose payload/meta derive from the key (the
    /// experiments never read them; they only need realistic size).
    pub fn from_key(key: u64) -> Self {
        Self {
            key,
            payload: key.rotate_left(17) ^ 0xDEAD_BEEF_CAFE_F00D,
            meta: (key >> 32) as u32 ^ 0x5A5A_5A5A,
        }
    }
}

/// A `<key, payload>` pair for the §3.7.1 range-index experiments.
#[repr(C)]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyValue {
    /// 64-bit key.
    pub key: u64,
    /// 64-bit payload (e.g. a record pointer for a secondary index).
    pub value: u64,
}

impl KeyValue {
    /// Size the paper accounts per entry.
    pub const LOGICAL_BYTES: usize = 16;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_sizes_match_paper() {
        assert_eq!(Record20::LOGICAL_BYTES, 20);
        assert_eq!(KeyValue::LOGICAL_BYTES, 16);
        // Physical sizes: u64+u64+u32 pads to 24; that padding is exactly
        // the paper's chained-slot next-pointer budget.
        assert_eq!(std::mem::size_of::<Record20>(), 24);
        assert_eq!(std::mem::size_of::<KeyValue>(), 16);
    }

    #[test]
    fn from_key_is_deterministic_and_distinct() {
        let a = Record20::from_key(1);
        let b = Record20::from_key(1);
        let c = Record20::from_key(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
