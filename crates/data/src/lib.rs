//! # li-data — datasets for the learned-index reproduction
//!
//! The paper evaluates on two proprietary datasets (university web-server
//! logs; a Google web-index document-id set), one public dataset (OSM
//! Maps longitudes), one synthetic dataset (Lognormal), and Google's
//! transparency-report phishing URLs. This crate generates faithful
//! stand-ins for all of them, deterministically from a seed:
//!
//! * [`lognormal::lognormal_keys`] — **exact** reproduction of the
//!   paper's synthetic set: values sampled from Lognormal(μ=0, σ=2),
//!   scaled to integers up to 1B, deduplicated (§3.7.1).
//! * [`maps::maps_longitudes`] — longitudes of world features as a
//!   mixture of population-center clusters over a uniform background:
//!   "relatively linear and has fewer irregularities" (§3.7.1).
//! * [`weblog::weblog_timestamps`] — timestamps from an inhomogeneous
//!   Poisson process with diurnal/weekly/academic-calendar rate and
//!   bursty events: "very complex time patterns … notoriously hard to
//!   learn" (§3.7.1).
//! * [`strings::doc_ids`] — structured document-id strings standing in
//!   for the web-index dataset (§3.7.2).
//! * [`strings::UrlGenerator`] — phishing-style vs. benign URLs standing
//!   in for the transparency-report data (§5.2).
//!
//! [`KeySet`] wraps a sorted deduplicated key array together with query
//! workload sampling (existing and missing keys), and [`records`] holds
//! the 20-byte record layout used by the hash-map experiments
//! (Appendices B/C).
//!
//! Beyond the paper, [`gauntlet`] generates the SOSD-style adversarial
//! distributions (books/osm/fb-like, stepped, heavy-duplicate) that
//! drive `li-serve`'s adaptive backend selection gauntlet. Every
//! generator in this crate — including those — is a pure function of
//! an explicit `u64` seed; there is no ambient RNG state anywhere
//! (regression-pinned in `gauntlet::tests`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gauntlet;
pub mod keyset;
pub mod lognormal;
pub mod maps;
pub mod records;
pub mod strings;
pub mod weblog;

pub use gauntlet::Gauntlet;
pub use keyset::KeySet;
pub use li_models::rng::SplitMix64;
pub use records::Record20;

/// The three integer datasets of §3.7.1, by name. Handy for harness
/// loops that sweep "Map Data / Web Data / Log-Normal Data" like the
/// paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// OSM-longitude-like mixture ("Map Data").
    Maps,
    /// Web-server-log-like timestamps ("Web Data").
    Weblogs,
    /// Lognormal(0, 2) scaled to integers ("Log-Normal Data").
    Lognormal,
}

impl Dataset {
    /// All three datasets in the paper's column order.
    pub const ALL: [Dataset; 3] = [Dataset::Maps, Dataset::Weblogs, Dataset::Lognormal];

    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Maps => "Map Data",
            Dataset::Weblogs => "Web Data",
            Dataset::Lognormal => "Log-Normal Data",
        }
    }

    /// Generate `n` unique sorted keys with the given seed.
    pub fn generate(&self, n: usize, seed: u64) -> KeySet {
        match self {
            Dataset::Maps => maps::maps_longitudes(n, seed),
            Dataset::Weblogs => weblog::weblog_timestamps(n, seed),
            Dataset::Lognormal => lognormal::lognormal_keys(n, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_requested_size() {
        for ds in Dataset::ALL {
            let ks = ds.generate(10_000, 42);
            assert_eq!(ks.len(), 10_000, "{}", ds.name());
            assert!(ks.keys().windows(2).all(|w| w[0] < w[1]), "{}", ds.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for ds in Dataset::ALL {
            let a = ds.generate(1000, 7);
            let b = ds.generate(1000, 7);
            assert_eq!(a.keys(), b.keys());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::Lognormal.generate(1000, 1);
        let b = Dataset::Lognormal.generate(1000, 2);
        assert_ne!(a.keys(), b.keys());
    }
}
