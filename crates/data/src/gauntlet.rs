//! SOSD-style adversarial key distributions for the backend-selection
//! gauntlet.
//!
//! "SOSD: A Benchmark for Learned Indexes" (PAPERS.md) showed that the
//! real-world datasets which break naive learned indexes share a few
//! structural signatures: heavy-tailed gap distributions (`books`),
//! hierarchically clustered IDs with huge empty spans (`osm`), dense
//! regions poisoned by extreme outliers (`fb`), and CDFs that are
//! staircases rather than curves. This module generates deterministic
//! stand-ins for each signature, plus a duplicate-heavy multiset (the
//! one shape [`crate::KeySet`] cannot carry, since it deduplicates):
//!
//! * [`books_like`] — Pareto-distributed gaps: long dense runs broken
//!   by occasionally enormous jumps, like cumulative sales ranks.
//! * [`osm_like`] — clustered cell IDs: a few thousand clusters of
//!   wildly varying width and population over a mostly empty 2⁴⁸
//!   domain.
//! * [`fb_like`] — a dense near-uniform ID block with a sprinkle of
//!   extreme outliers that wreck any global (or coarse per-leaf)
//!   linear fit.
//! * [`stepped`] — a pure staircase: long arithmetic runs separated by
//!   huge constant jumps, the worst case for interpolation between
//!   run boundaries.
//! * [`heavy_dup`] — a sorted **multiset**: few distinct values, each
//!   repeated with power-law multiplicity (returned as a raw sorted
//!   `Vec<u64>`, duplicates preserved).
//!
//! Every generator takes `(n, seed)` and is a pure function of both —
//! no ambient RNG state anywhere (the regression tests in this module
//! pin fingerprints so a determinism regression fails loudly). All
//! keys stay below 2⁵³ so `f64` model training is lossless.

use crate::keyset::KeySet;
use li_models::rng::SplitMix64;

/// Keys stay strictly below this bound (2⁵², well under `f64`'s 2⁵³
/// integer-exactness limit, with headroom for probe queries above the
/// last key).
pub const KEY_CEILING: u64 = 1 << 52;

/// Cumulative Pareto(α≈0.85) gaps: most adjacent keys are 1–4 apart,
/// but the heavy tail regularly produces gaps thousands of times the
/// median — the `books` signature (popularity counts). Unique, sorted.
pub fn books_like(n: usize, seed: u64) -> KeySet {
    assert!(n > 0);
    let mut rng = SplitMix64::new(seed ^ 0xB00C_5EED);
    let alpha_inv = 1.0 / 0.85;
    let mut keys = Vec::with_capacity(n);
    let mut cur = 0u64;
    for _ in 0..n {
        // Inverse-CDF Pareto sample, clamped so the running sum stays
        // far below the ceiling even at huge n.
        let u = (1.0 - rng.next_f64()).max(1e-12);
        let gap = u.powf(-alpha_inv).min(1e7) as u64 + 1;
        cur = (cur + gap).min(KEY_CEILING - 1);
        keys.push(cur);
    }
    // The clamp can only saturate at absurd n; dedup defends anyway.
    keys.dedup();
    top_up_unique(keys, n, &mut rng)
}

/// Clustered cell IDs over a mostly empty domain: `≈ n/1024 + 3`
/// cluster centers spread over `[0, 2⁴⁸)`, each holding a
/// power-law-sized population inside a log-uniform width — some
/// clusters are dense arithmetic runs, others sparse sprays. The `osm`
/// signature. Unique, sorted.
pub fn osm_like(n: usize, seed: u64) -> KeySet {
    assert!(n > 0);
    let mut rng = SplitMix64::new(seed ^ 0x05A1_CE11);
    let clusters = (n / 1024 + 3).min(4096);
    let domain = 1u64 << 48;
    let mut keys: Vec<u64> = Vec::with_capacity(n * 2);
    while keys.len() < n {
        for _ in 0..clusters {
            let center = rng.next_u64() % domain;
            // Width log-uniform over [2^4, 2^28).
            let width = 1u64 << (4 + rng.below(24) as u32);
            // Population power-law: a few clusters hold most keys.
            let pop = ((n as f64 / clusters as f64)
                * (1.0 - rng.next_f64()).max(1e-9).powf(-0.5).min(16.0))
            .ceil() as usize;
            for _ in 0..pop.max(1) {
                keys.push((center + rng.next_u64() % width) % domain);
            }
            if keys.len() >= n * 2 {
                break;
            }
        }
        keys.sort_unstable();
        keys.dedup();
    }
    keys.sort_unstable();
    keys.dedup();
    thin_to_exact(keys, n)
}

/// A dense near-uniform ID block (97% of keys in `[0, 8n)`) poisoned
/// by extreme outliers (3% spread over the full `[0, 2⁵⁰)` domain) —
/// the `fb` signature, which collapses any fit that must span the
/// outliers. Unique, sorted.
pub fn fb_like(n: usize, seed: u64) -> KeySet {
    assert!(n > 0);
    let mut rng = SplitMix64::new(seed ^ 0xFB1D_FB1D);
    let dense_span = (8 * n as u64).max(16);
    let outlier_span = 1u64 << 50;
    let mut keys: Vec<u64> = Vec::with_capacity(n * 2);
    while keys.len() < n {
        let missing = n - keys.len();
        for _ in 0..missing + missing / 4 + 8 {
            if rng.next_f64() < 0.03 {
                keys.push(rng.next_u64() % outlier_span);
            } else {
                keys.push(rng.next_u64() % dense_span);
            }
        }
        keys.sort_unstable();
        keys.dedup();
    }
    thin_to_exact(keys, n)
}

/// A pure staircase: `≈ √n` arithmetic runs (stride 1–4) separated by
/// jumps of ~2³⁵ with jitter. The CDF is a flight of steps — between
/// run boundaries a linear model's error is the full run length.
/// Unique, sorted.
pub fn stepped(n: usize, seed: u64) -> KeySet {
    assert!(n > 0);
    let mut rng = SplitMix64::new(seed ^ 0x57E9_57E9);
    let runs = ((n as f64).sqrt().ceil() as usize).clamp(1, n);
    let run_len = n.div_ceil(runs);
    let mut keys = Vec::with_capacity(n);
    let mut cur = rng.next_u64() % (1 << 30);
    while keys.len() < n {
        let stride = 1 + rng.below(4) as u64;
        let len = run_len.min(n - keys.len());
        for _ in 0..len {
            keys.push(cur);
            cur += stride;
        }
        // Huge jump to the next step, jittered so steps never collide.
        cur += (1u64 << 35) + rng.next_u64() % (1 << 34);
    }
    KeySet::from_sorted(keys)
}

/// A sorted **multiset**: `max(n/16, 1)` distinct values, each
/// repeated with power-law multiplicity until `n` keys exist. The only
/// gauntlet shape with duplicates — callers get the raw sorted vector
/// because [`KeySet`] would deduplicate it.
pub fn heavy_dup(n: usize, seed: u64) -> Vec<u64> {
    assert!(n > 0);
    let mut rng = SplitMix64::new(seed ^ 0xD0_D0D0);
    let distinct = (n / 16).max(1);
    let values = crate::keyset::uniform_keys(distinct, KEY_CEILING, seed ^ 0xD1_D1D1);
    let mut keys = Vec::with_capacity(n);
    'fill: loop {
        for &v in values.keys() {
            // Power-law run length: most values appear a few times,
            // a handful appear hundreds of times.
            let reps = ((1.0 - rng.next_f64()).max(1e-9).powf(-0.7).min(512.0)).ceil() as usize;
            for _ in 0..reps {
                keys.push(v);
                if keys.len() == n {
                    break 'fill;
                }
            }
        }
    }
    keys.sort_unstable();
    keys
}

/// Pad a sorted-unique key vector up to exactly `n` keys by appending
/// fresh keys above the current maximum (used when dedup undershot).
fn top_up_unique(mut keys: Vec<u64>, n: usize, rng: &mut SplitMix64) -> KeySet {
    while keys.len() < n {
        let last = keys.last().copied().unwrap_or(0);
        keys.push((last + 1 + rng.below(7) as u64).min(KEY_CEILING - 1));
        keys.dedup();
    }
    KeySet::from_sorted(keys)
}

/// Evenly thin a sorted-unique key vector down to exactly `n` keys
/// (the maps.rs idiom: preserves the distribution's shape).
fn thin_to_exact(keys: Vec<u64>, n: usize) -> KeySet {
    if keys.len() == n {
        return KeySet::from_sorted(keys);
    }
    let len = keys.len();
    let thinned: Vec<u64> = (0..n).map(|i| keys[i * len / n]).collect();
    KeySet::from_sorted(thinned)
}

/// The gauntlet distributions, by name — the selector's adversarial
/// coverage matrix, mirrored by `repro gauntlet` and
/// `tests/prop_gauntlet.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauntlet {
    /// Pareto-gap cumulative keys (`books` signature).
    BooksLike,
    /// Clustered cell IDs over an empty domain (`osm` signature).
    OsmLike,
    /// Dense block + extreme outliers (`fb` signature).
    FbLike,
    /// Staircase CDF of arithmetic runs and huge jumps.
    Stepped,
    /// Duplicate-heavy sorted multiset.
    HeavyDup,
}

impl Gauntlet {
    /// Every gauntlet distribution, in display order.
    pub const ALL: [Gauntlet; 5] = [
        Gauntlet::BooksLike,
        Gauntlet::OsmLike,
        Gauntlet::FbLike,
        Gauntlet::Stepped,
        Gauntlet::HeavyDup,
    ];

    /// Display name (SOSD-style lowercase).
    pub fn name(&self) -> &'static str {
        match self {
            Gauntlet::BooksLike => "books-like",
            Gauntlet::OsmLike => "osm-like",
            Gauntlet::FbLike => "fb-like",
            Gauntlet::Stepped => "stepped",
            Gauntlet::HeavyDup => "heavy-dup",
        }
    }

    /// Whether the distribution is a multiset (contains duplicates).
    pub fn is_multiset(&self) -> bool {
        matches!(self, Gauntlet::HeavyDup)
    }

    /// Generate exactly `n` sorted keys with the given seed. Every
    /// distribution except [`Gauntlet::HeavyDup`] is duplicate-free.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<u64> {
        match self {
            Gauntlet::BooksLike => books_like(n, seed).keys().to_vec(),
            Gauntlet::OsmLike => osm_like(n, seed).keys().to_vec(),
            Gauntlet::FbLike => fb_like(n, seed).keys().to_vec(),
            Gauntlet::Stepped => stepped(n, seed).keys().to_vec(),
            Gauntlet::HeavyDup => heavy_dup(n, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_distribution_generates_exact_sorted_keys() {
        for g in Gauntlet::ALL {
            for n in [1usize, 2, 17, 1000, 20_000] {
                let keys = g.generate(n, 42);
                assert_eq!(keys.len(), n, "{} n={n}", g.name());
                assert!(
                    keys.windows(2).all(|w| w[0] <= w[1]),
                    "{} n={n}: unsorted",
                    g.name()
                );
                if !g.is_multiset() {
                    assert!(
                        keys.windows(2).all(|w| w[0] < w[1]),
                        "{} n={n}: duplicates in a unique distribution",
                        g.name()
                    );
                }
                assert!(
                    keys.iter().all(|&k| k < KEY_CEILING),
                    "{} n={n}: key above the f64-safe ceiling",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn heavy_dup_really_is_a_multiset() {
        let keys = heavy_dup(10_000, 3);
        let distinct: std::collections::BTreeSet<u64> = keys.iter().copied().collect();
        assert!(
            distinct.len() * 2 < keys.len(),
            "only {} distinct of {}",
            distinct.len(),
            keys.len()
        );
        // And it contains at least one long duplicate run.
        let longest = keys
            .chunk_by(|a, b| a == b)
            .map(<[u64]>::len)
            .max()
            .unwrap();
        assert!(longest >= 16, "longest duplicate run {longest}");
    }

    #[test]
    fn stepped_has_staircase_structure() {
        let keys = stepped(10_000, 5).keys().to_vec();
        let big_jumps = keys.windows(2).filter(|w| w[1] - w[0] > (1 << 34)).count();
        let small_steps = keys.windows(2).filter(|w| w[1] - w[0] <= 4).count();
        assert!(big_jumps >= 50, "only {big_jumps} jumps");
        assert!(small_steps > keys.len() * 9 / 10, "{small_steps} steps");
    }

    #[test]
    fn fb_like_mixes_dense_block_and_outliers() {
        let n = 20_000;
        let keys = fb_like(n, 9).keys().to_vec();
        let dense = keys.iter().filter(|&&k| k < 8 * n as u64).count();
        let out = keys.len() - dense;
        assert!(dense > n * 8 / 10, "dense {dense}");
        assert!(out > n / 100, "outliers {out}");
        assert!(*keys.last().unwrap() > 1 << 40, "no extreme outlier");
    }

    #[test]
    fn books_like_gaps_are_heavy_tailed() {
        let keys = books_like(20_000, 11).keys().to_vec();
        let gaps: Vec<u64> = keys.windows(2).map(|w| w[1] - w[0]).collect();
        let small = gaps.iter().filter(|&&g| g <= 4).count();
        let huge = gaps.iter().filter(|&&g| g > 1000).count();
        assert!(small > gaps.len() / 2, "small {small}");
        assert!(huge > 10, "huge {huge}");
    }

    #[test]
    fn osm_like_is_clustered_over_an_empty_domain() {
        let keys = osm_like(20_000, 13).keys().to_vec();
        // Span is huge relative to the key count (mostly empty domain)…
        let span = keys.last().unwrap() - keys.first().unwrap();
        assert!(span > 1 << 40, "span {span}");
        // …but a large share of adjacent gaps are tiny (clustering).
        let tight = keys.windows(2).filter(|w| w[1] - w[0] < (1 << 20)).count();
        assert!(tight > keys.len() / 2, "tight {tight}");
    }

    /// Regression pin: every generator is a pure function of `(n,
    /// seed)` — two calls agree element-for-element, different seeds
    /// differ, and a fingerprint of the canonical `(n=4096, seed=42)`
    /// row is pinned so any drift in the generation algorithm (or a
    /// sneaky ambient-RNG regression) fails this test rather than
    /// silently changing every EXPERIMENTS.md gauntlet row.
    #[test]
    fn generation_is_deterministic_and_pinned() {
        fn fingerprint(keys: &[u64]) -> u64 {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &k in keys {
                h ^= k;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h
        }
        for g in Gauntlet::ALL {
            let a = g.generate(4096, 42);
            let b = g.generate(4096, 42);
            assert_eq!(a, b, "{}: same (n, seed) must agree", g.name());
            let c = g.generate(4096, 43);
            assert_ne!(a, c, "{}: different seeds must differ", g.name());
        }
        let pins: Vec<(&str, u64)> = Gauntlet::ALL
            .iter()
            .map(|g| (g.name(), fingerprint(&g.generate(4096, 42))))
            .collect();
        let expect = [
            ("books-like", 0x591c_4a3a_88d2_dd59u64),
            ("osm-like", 0x6d1c_1b33_d0c4_8480),
            ("fb-like", 0x4980_e34f_0016_d02f),
            ("stepped", 0x05fd_25db_2011_7d25),
            ("heavy-dup", 0xfabc_2871_7cf8_3fd8),
        ];
        // The pinned values are asserted one by one so a failure names
        // the drifted distribution.
        for ((name, got), (pin_name, pin)) in pins.iter().zip(expect.iter()) {
            assert_eq!(name, pin_name);
            assert_eq!(
                got, pin,
                "{name}: fingerprint drifted (got {got:#x}, pinned {pin:#x})"
            );
        }
    }
}
