//! Sorted, deduplicated key sets and query-workload sampling.

use li_models::rng::SplitMix64;

/// A sorted array of unique `u64` keys — the "in-memory dense array
/// sorted by key" that §2 of the paper assumes — plus workload helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeySet {
    keys: Vec<u64>,
}

impl KeySet {
    /// Build from arbitrary keys: sorts and deduplicates.
    pub fn from_unsorted(mut keys: Vec<u64>) -> Self {
        keys.sort_unstable();
        keys.dedup();
        Self { keys }
    }

    /// Build from keys already sorted strictly ascending.
    ///
    /// # Panics
    /// In debug builds, panics if the invariant is violated.
    pub fn from_sorted(keys: Vec<u64>) -> Self {
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "keys must be strictly sorted"
        );
        Self { keys }
    }

    /// The sorted unique keys.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Keys converted to `f64` (model training input). Conversion is
    /// lossy above 2⁵³; all generators in this crate stay below that.
    pub fn keys_f64(&self) -> Vec<f64> {
        self.keys.iter().map(|&k| k as f64).collect()
    }

    /// Position of the first key `>= q` (the `lower_bound` oracle that
    /// every range index in the workspace must agree with).
    pub fn lower_bound(&self, q: u64) -> usize {
        self.keys.partition_point(|&k| k < q)
    }

    /// Position of the first key `> q`.
    pub fn upper_bound(&self, q: u64) -> usize {
        self.keys.partition_point(|&k| k <= q)
    }

    /// Sample `n` existing keys uniformly (with replacement) — the
    /// paper's lookup workload ("look-up time for a randomly selected
    /// key", §2.3).
    pub fn sample_existing(&self, n: usize, seed: u64) -> Vec<u64> {
        assert!(!self.keys.is_empty());
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| self.keys[rng.below(self.keys.len())])
            .collect()
    }

    /// Sample `n` keys *not* in the set, drawn uniformly from the key
    /// domain (used for non-existing-key lookups and Bloom negatives).
    pub fn sample_missing(&self, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        let lo = self.keys.first().copied().unwrap_or(0);
        let hi = self.keys.last().copied().unwrap_or(u64::MAX);
        let span = hi.saturating_sub(lo).max(1);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let q = lo.wrapping_add(rng.next_u64() % span);
            if self.keys.binary_search(&q).is_err() {
                out.push(q);
            }
        }
        out
    }

    /// Take an evenly strided subsample of `m` keys (used to train on
    /// huge sets without a full pass).
    pub fn stride_sample(&self, m: usize) -> Vec<u64> {
        if m == 0 || self.keys.is_empty() {
            return Vec::new();
        }
        let stride = (self.keys.len() / m).max(1);
        self.keys.iter().step_by(stride).copied().collect()
    }
}

/// Generate `n` unique sorted keys uniform over `[0, max)`.
pub fn uniform_keys(n: usize, max: u64, seed: u64) -> KeySet {
    let mut rng = SplitMix64::new(seed);
    let mut keys = Vec::with_capacity(n + n / 8);
    while keys.len() < n {
        let need = n - keys.len();
        for _ in 0..need + need / 8 + 8 {
            keys.push(rng.next_u64() % max);
        }
        keys.sort_unstable();
        keys.dedup();
    }
    keys.truncate(n);
    KeySet::from_sorted(keys)
}

/// Generate `n` sequential keys `start, start+step, …` (the paper's §2
/// "keys 1 to 100M" best case).
pub fn sequential_keys(n: usize, start: u64, step: u64) -> KeySet {
    assert!(step > 0);
    KeySet::from_sorted((0..n as u64).map(|i| start + i * step).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let ks = KeySet::from_unsorted(vec![5, 1, 5, 3, 1]);
        assert_eq!(ks.keys(), &[1, 3, 5]);
    }

    #[test]
    fn bounds_match_std_partition_point() {
        let ks = KeySet::from_sorted(vec![10, 20, 30]);
        assert_eq!(ks.lower_bound(5), 0);
        assert_eq!(ks.lower_bound(10), 0);
        assert_eq!(ks.lower_bound(11), 1);
        assert_eq!(ks.lower_bound(35), 3);
        assert_eq!(ks.upper_bound(10), 1);
        assert_eq!(ks.upper_bound(9), 0);
        assert_eq!(ks.upper_bound(30), 3);
    }

    #[test]
    fn sample_existing_only_returns_members() {
        let ks = uniform_keys(500, 1 << 32, 3);
        for q in ks.sample_existing(200, 9) {
            assert!(ks.keys().binary_search(&q).is_ok());
        }
    }

    #[test]
    fn sample_missing_never_returns_members() {
        let ks = uniform_keys(500, 1 << 20, 3);
        for q in ks.sample_missing(200, 9) {
            assert!(ks.keys().binary_search(&q).is_err());
        }
    }

    #[test]
    fn uniform_keys_are_unique_and_bounded() {
        let ks = uniform_keys(10_000, 1 << 24, 1);
        assert_eq!(ks.len(), 10_000);
        assert!(ks.keys().windows(2).all(|w| w[0] < w[1]));
        assert!(*ks.keys().last().unwrap() < (1 << 24));
    }

    #[test]
    fn sequential_keys_are_affine() {
        let ks = sequential_keys(100, 1_000_000, 7);
        assert_eq!(ks.keys()[0], 1_000_000);
        assert_eq!(ks.keys()[99], 1_000_000 + 99 * 7);
    }

    #[test]
    fn stride_sample_is_sorted_subset() {
        let ks = sequential_keys(1000, 0, 1);
        let s = ks.stride_sample(100);
        assert!(s.len() >= 100);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }
}
