//! String datasets: document IDs (§3.7.2) and URLs (§5.2).
//!
//! * [`doc_ids`] stands in for "10M non-continuous document-ids of a
//!   large web index used as part of a real product at Google": we emit
//!   structured base-32 IDs with a skewed shard prefix, so the sorted
//!   order has learnable coarse structure but noisy fine structure —
//!   the regime where the paper finds string models expensive relative
//!   to their accuracy.
//! * [`UrlGenerator`] stands in for the Google-transparency-report
//!   phishing blacklist plus its negative set ("a mixture of random
//!   (valid) URLs and whitelisted URLs that could be mistaken for
//!   phishing pages"). Phishing URLs carry distinctive signals (IP
//!   hosts, deceptive subdomain stuffing, typosquatted brands, urgency
//!   tokens) that a character model can learn, which is precisely what
//!   the learned Bloom filter exploits.

use li_models::rng::SplitMix64;

const BASE32: &[u8; 32] = b"abcdefghijklmnopqrstuvwxyz234567";

/// Generate `n` unique document-id strings, sorted lexicographically.
///
/// Shape: `d<shard>-<payload>` where the 2-char shard prefix is Zipf-ish
/// skewed (some shards hold far more documents) and the payload is 12
/// base-32 chars.
pub fn doc_ids(n: usize, seed: u64) -> Vec<String> {
    let mut rng = SplitMix64::new(seed);
    let mut out: Vec<String> = Vec::with_capacity(n + n / 8);
    while out.len() < n {
        let missing = n - out.len();
        for _ in 0..missing + missing / 8 + 8 {
            // Zipf-skewed shard in [0, 32): shard k with weight ~ 1/(k+1).
            let shard = {
                let u = rng.next_f64();
                // Inverse of the harmonic CDF, done by linear scan (32 buckets).
                let h32: f64 = (1..=32).map(|k| 1.0 / k as f64).sum();
                let mut acc = 0.0;
                let mut chosen = 31;
                for k in 0..32 {
                    acc += 1.0 / (k + 1) as f64 / h32;
                    if u < acc {
                        chosen = k;
                        break;
                    }
                }
                chosen
            };
            let mut s = String::with_capacity(16);
            s.push('d');
            s.push(BASE32[shard] as char);
            s.push('-');
            for _ in 0..12 {
                s.push(BASE32[(rng.next_u64() % 32) as usize] as char);
            }
            out.push(s);
        }
        out.sort_unstable();
        out.dedup();
    }
    out.truncate(n);
    out
}

/// Generates phishing-style (key) and benign (non-key) URLs.
#[derive(Debug, Clone)]
pub struct UrlGenerator {
    rng: SplitMix64,
}

const BRANDS: &[&str] = &[
    "paypal",
    "amazon",
    "google",
    "apple",
    "microsoft",
    "netflix",
    "chase",
    "wellsfargo",
    "dropbox",
    "facebook",
    "instagram",
    "linkedin",
];
const BENIGN_WORDS: &[&str] = &[
    "news", "blog", "shop", "garden", "recipe", "travel", "music", "photo", "forum", "wiki",
    "sport", "health", "cloud", "home", "book", "movie", "game", "art", "code", "data",
];
const URGENCY: &[&str] = &[
    "verify", "secure", "account", "login", "update", "confirm", "alert", "suspend", "billing",
    "signin",
];
const TLDS_BENIGN: &[&str] = &["com", "org", "net", "edu", "io", "gov"];
const TLDS_SHADY: &[&str] = &["tk", "ml", "ga", "xyz", "top", "click", "info"];

impl UrlGenerator {
    /// New generator with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
        }
    }

    fn pick<'a>(&mut self, list: &'a [&'a str]) -> &'a str {
        list[self.rng.below(list.len())]
    }

    fn rand_token(&mut self, len: usize) -> String {
        (0..len)
            .map(|_| BASE32[(self.rng.next_u64() % 32) as usize] as char)
            .collect()
    }

    /// One phishing-style URL (a *key* of the blacklist).
    pub fn phishing_url(&mut self) -> String {
        match self.rng.below(4) {
            // Raw-IP host with urgency path.
            0 => format!(
                "http://{}.{}.{}.{}/{}/{}{}",
                self.rng.below(256),
                self.rng.below(256),
                self.rng.below(256),
                self.rng.below(256),
                self.pick(URGENCY),
                self.pick(BRANDS),
                self.rand_token(4),
            ),
            // Brand-stuffed subdomain on a shady TLD.
            1 => format!(
                "http://{}.{}-{}.{}{}.{}/{}",
                self.pick(BRANDS),
                self.pick(URGENCY),
                self.pick(URGENCY),
                self.rand_token(6),
                self.rng.below(100),
                self.pick(TLDS_SHADY),
                self.rand_token(8),
            ),
            // Typosquat: brand with a duplicated/swapped letter.
            2 => {
                let brand = self.pick(BRANDS);
                let mut b: Vec<u8> = brand.bytes().collect();
                let i = self.rng.below(b.len());
                b.insert(i, b[i]);
                format!(
                    "https://{}.{}/{}-{}",
                    String::from_utf8(b).expect("ascii"),
                    self.pick(TLDS_SHADY),
                    self.pick(URGENCY),
                    self.rand_token(6),
                )
            }
            // Long deceptive query-string redirect.
            _ => format!(
                "http://{}{}.{}/redir?u={}{}&tok={}",
                self.pick(URGENCY),
                self.rng.below(1000),
                self.pick(TLDS_SHADY),
                self.pick(BRANDS),
                self.pick(TLDS_BENIGN),
                self.rand_token(16),
            ),
        }
    }

    /// One random valid URL (a *non-key*).
    pub fn benign_url(&mut self) -> String {
        format!(
            "https://{}{}{}.{}/{}/{}",
            self.pick(BENIGN_WORDS),
            self.pick(BENIGN_WORDS),
            self.rng.below(100),
            self.pick(TLDS_BENIGN),
            self.pick(BENIGN_WORDS),
            self.rand_token(5),
        )
    }

    /// A whitelisted URL "that could be mistaken for phishing": benign
    /// but mentioning a brand or an urgency word (the paper's hard
    /// negatives).
    pub fn whitelisted_lookalike(&mut self) -> String {
        format!(
            "https://{}.{}/{}/{}-{}",
            self.pick(BRANDS),
            self.pick(TLDS_BENIGN),
            self.pick(URGENCY),
            self.pick(BENIGN_WORDS),
            self.rand_token(4),
        )
    }

    /// Generate the full experimental split of §5.2: `n_keys` unique
    /// phishing URLs and `n_neg` negatives (a `mix` fraction of random
    /// valid URLs, the rest whitelisted lookalikes), deduplicated and
    /// disjoint from the keys.
    pub fn dataset(&mut self, n_keys: usize, n_neg: usize, mix: f64) -> (Vec<String>, Vec<String>) {
        let mut keys = Vec::with_capacity(n_keys);
        let mut seen = std::collections::BTreeSet::new();
        while keys.len() < n_keys {
            let u = self.phishing_url();
            if seen.insert(u.clone()) {
                keys.push(u);
            }
        }
        let mut negatives = Vec::with_capacity(n_neg);
        while negatives.len() < n_neg {
            let u = if self.rng.next_f64() < mix {
                self.benign_url()
            } else {
                self.whitelisted_lookalike()
            };
            if !seen.contains(&u) && seen.insert(u.clone()) {
                negatives.push(u);
            }
        }
        (keys, negatives)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_ids_are_unique_sorted_fixed_shape() {
        let ids = doc_ids(5000, 1);
        assert_eq!(ids.len(), 5000);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert!(ids.iter().all(|s| s.len() == 15 && s.starts_with('d')));
    }

    #[test]
    fn doc_id_shards_are_skewed() {
        let ids = doc_ids(20_000, 2);
        let mut counts = [0usize; 32];
        for id in &ids {
            let shard = BASE32.iter().position(|&b| b == id.as_bytes()[1]).unwrap();
            counts[shard] += 1;
        }
        // Hottest shard should dominate the coldest by a wide margin.
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max > &(min * 4), "max {max} min {min}");
    }

    #[test]
    fn url_dataset_is_disjoint_and_sized() {
        let mut g = UrlGenerator::new(3);
        let (keys, negs) = g.dataset(2000, 3000, 0.5);
        assert_eq!(keys.len(), 2000);
        assert_eq!(negs.len(), 3000);
        let key_set: std::collections::BTreeSet<_> = keys.iter().collect();
        assert!(negs.iter().all(|n| !key_set.contains(n)));
    }

    #[test]
    fn classes_are_learnable() {
        // The whole point of the generator: a cheap classifier must be
        // able to separate keys from non-keys far better than chance.
        use li_models::{Classifier, NgramLogReg};
        let mut g = UrlGenerator::new(9);
        let (keys, negs) = g.dataset(600, 600, 0.5);
        let train_p: Vec<&[u8]> = keys[..400].iter().map(|s| s.as_bytes()).collect();
        let train_n: Vec<&[u8]> = negs[..400].iter().map(|s| s.as_bytes()).collect();
        let m = NgramLogReg::train(13, 6, 0.1, &train_p, &train_n, 4);
        let mut correct = 0usize;
        for s in &keys[400..] {
            if m.score(s.as_bytes()) > 0.5 {
                correct += 1;
            }
        }
        for s in &negs[400..] {
            if m.score(s.as_bytes()) < 0.5 {
                correct += 1;
            }
        }
        let acc = correct as f64 / 400.0;
        assert!(acc > 0.85, "holdout accuracy {acc}");
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = UrlGenerator::new(5);
        let mut b = UrlGenerator::new(5);
        for _ in 0..50 {
            assert_eq!(a.phishing_url(), b.phishing_url());
            assert_eq!(a.benign_url(), b.benign_url());
        }
    }
}
