//! The Maps dataset: longitudes of world map features.
//!
//! §3.7.1: *"For the maps dataset we indexed the longitude of ≈ 200M
//! user-maintained features (e.g., roads, museums, coffee shops) across
//! the world. Unsurprisingly, the longitude of locations is relatively
//! linear and has fewer irregularities than the Weblogs dataset."*
//!
//! The real dataset is OpenStreetMap; we substitute a mixture model that
//! reproduces its two defining properties:
//!
//! 1. **Clustered density** — feature longitudes pile up around
//!    populated bands (Europe, India, East Asia, the Americas) over a
//!    uniform background, giving a mostly smooth, near-piecewise-linear
//!    CDF (the easiest of the three datasets, exactly as in the paper).
//! 2. **Finite resolution** — OSM coordinates are fixed-point (1e-7°),
//!    and 200M deduplicated features saturate the grid inside dense
//!    regions, producing long near-arithmetic runs of consecutive
//!    values. This is what lets a learned CDF hash function approach
//!    *sub-slot* accuracy there (Figure 8's 77.5% conflict reduction).
//!    We keep the effect at any scale by quantizing to a grid of `2n`
//!    cells, matching the real data's dense-region occupancy rather
//!    than its absolute resolution.
//!
//! Keys are grid-cell indices in `[0, 2n)`, ascending west→east.

use crate::keyset::KeySet;
use li_models::rng::SplitMix64;

/// Population-weighted longitude clusters `(center°, std°, weight)`.
const CLUSTERS: &[(f64, f64, f64)] = &[
    (-100.0, 18.0, 0.08), // North America central/east
    (-75.0, 10.0, 0.07),  // US east coast / South America west
    (-47.0, 12.0, 0.05),  // Brazil
    (2.0, 12.0, 0.14),    // Western Europe / West Africa
    (28.0, 13.0, 0.09),   // Eastern Europe / Middle East
    (77.0, 10.0, 0.15),   // India
    (105.0, 11.0, 0.09),  // Southeast Asia
    (117.0, 9.0, 0.12),   // Eastern China
    (139.0, 6.0, 0.05),   // Japan
];
const BACKGROUND_WEIGHT: f64 = 0.16; // uniform over the full range

/// Generate `n` unique sorted map-feature longitude keys.
pub fn maps_longitudes(n: usize, seed: u64) -> KeySet {
    // 1.5 grid cells per key: populated bands saturate into long
    // consecutive runs (OSM's dense-region regime), the background
    // stays sparse.
    maps_longitudes_with_grid(n, 3 * n as u64 / 2, seed)
}

/// Generator with an explicit grid (number of representable longitude
/// cells). Larger grids → sparser occupancy → fewer arithmetic runs.
pub fn maps_longitudes_with_grid(n: usize, grid: u64, seed: u64) -> KeySet {
    assert!(n > 0);
    assert!(grid >= n as u64, "grid must have room for n unique keys");
    let mut rng = SplitMix64::new(seed);
    let total_cluster_weight: f64 = CLUSTERS.iter().map(|c| c.2).sum();
    let cell = 360.0 / grid as f64;
    let mut keys: Vec<u64> = Vec::with_capacity(n * 2);
    loop {
        let missing = n - keys.len();
        for _ in 0..missing * 2 + 64 {
            let lon = loop {
                let u = rng.next_f64() * (total_cluster_weight + BACKGROUND_WEIGHT);
                let lon = if u < BACKGROUND_WEIGHT {
                    rng.range_f64(-180.0, 180.0)
                } else {
                    let mut pick = u - BACKGROUND_WEIGHT;
                    let mut chosen = CLUSTERS[CLUSTERS.len() - 1];
                    for &c in CLUSTERS {
                        if pick < c.2 {
                            chosen = c;
                            break;
                        }
                        pick -= c.2;
                    }
                    chosen.0 + rng.normal() * chosen.1
                };
                if (-180.0..180.0).contains(&lon) {
                    break lon;
                }
            };
            keys.push(((lon + 180.0) / cell) as u64);
        }
        keys.sort_unstable();
        keys.dedup();
        if keys.len() >= n {
            break;
        }
    }
    if keys.len() > n {
        let len = keys.len();
        let keys: Vec<u64> = (0..n).map(|i| keys[i * len / n]).collect();
        return KeySet::from_sorted(keys);
    }
    KeySet::from_sorted(keys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_exact_count_in_range() {
        let n = 10_000;
        let ks = maps_longitudes(n, 3);
        assert_eq!(ks.len(), n);
        assert!(*ks.keys().last().unwrap() < 3 * n as u64 / 2);
    }

    #[test]
    fn clusters_make_populated_bands_denser() {
        // Density around India (lon 77°) should be far higher than over
        // the mid-Pacific (lon -150°).
        let n = 50_000;
        let grid = 3 * n as u64 / 2;
        let ks = maps_longitudes(n, 8);
        let count_in = |lo_deg: f64, hi_deg: f64| {
            let lo = ((lo_deg + 180.0) / 360.0 * grid as f64) as u64;
            let hi = ((hi_deg + 180.0) / 360.0 * grid as f64) as u64;
            ks.upper_bound(hi) - ks.lower_bound(lo)
        };
        let india = count_in(70.0, 84.0);
        let pacific = count_in(-157.0, -143.0);
        assert!(india > pacific * 4, "india {india} pacific {pacific}");
    }

    #[test]
    fn dense_regions_form_arithmetic_runs() {
        // The finite-resolution property: a good share of adjacent key
        // pairs must be exactly consecutive grid cells.
        let ks = maps_longitudes(50_000, 8);
        let consecutive = ks.keys().windows(2).filter(|w| w[1] - w[0] == 1).count();
        let frac = consecutive as f64 / (ks.len() - 1) as f64;
        assert!(frac > 0.3, "consecutive fraction {frac}");
    }

    #[test]
    fn cdf_is_smoother_than_lognormal() {
        // "Relatively linear … fewer irregularities": a straight-line fit
        // must explain the maps CDF far better than the heavy-tailed
        // lognormal CDF (which the paper calls "highly non-linear").
        use li_models::{LinearModel, Model};
        let n = 20_000;
        let maps = maps_longitudes(n, 1);
        let logn = crate::lognormal::lognormal_keys(n, 1);
        let rel_rmse = |ks: &KeySet| {
            let keys = ks.keys_f64();
            let m = LinearModel::fit_keys(&keys);
            let se: f64 = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| (m.predict(k) - i as f64).powi(2))
                .sum();
            (se / keys.len() as f64).sqrt() / keys.len() as f64
        };
        assert!(
            rel_rmse(&maps) < rel_rmse(&logn) * 0.7,
            "maps {} vs lognormal {}",
            rel_rmse(&maps),
            rel_rmse(&logn)
        );
    }

    #[test]
    fn custom_grid_controls_density() {
        let n = 5000;
        let dense = maps_longitudes_with_grid(n, n as u64 + n as u64 / 2, 2);
        let sparse = maps_longitudes_with_grid(n, 1_000_000, 2);
        let runs = |ks: &KeySet| ks.keys().windows(2).filter(|w| w[1] - w[0] == 1).count();
        assert!(runs(&dense) > runs(&sparse) * 2);
    }
}
