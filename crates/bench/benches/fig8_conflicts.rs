//! Criterion bench for Figure 8: learned vs murmur hash execution time
//! (the conflict *rates* are measured by `repro fig8`; here we time the
//! hash functions themselves — the paper's "execution time … around
//! 25-40ns" claim).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use li_data::Dataset;
use li_hash::{CdfHasher, KeyHasher, MurmurHasher};
use std::time::Duration;

const N: usize = 500_000;

fn bench_fig8(c: &mut Criterion) {
    let keyset = Dataset::Maps.generate(N, 42);
    let keys = keyset.keys();
    let queries = keyset.sample_existing(4096, 3);

    let learned = CdfHasher::train(keys, N / 2000);
    let murmur = MurmurHasher::new(7);

    let mut group = c.benchmark_group("fig8/hash-execution");
    group.measurement_time(Duration::from_millis(700));
    group.warm_up_time(Duration::from_millis(200));
    group.sample_size(20);

    {
        let queries = queries.clone();
        let mut qi = 0usize;
        group.bench_function("learned-cdf", move |b| {
            b.iter_batched(
                || {
                    qi = (qi + 1) & 4095;
                    queries[qi]
                },
                |q| learned.slot(q, N),
                BatchSize::SmallInput,
            )
        });
    }
    {
        let queries = queries.clone();
        let mut qi = 0usize;
        group.bench_function("murmur", move |b| {
            b.iter_batched(
                || {
                    qi = (qi + 1) & 4095;
                    queries[qi]
                },
                |q| murmur.slot(q, N),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
