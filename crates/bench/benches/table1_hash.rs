//! Criterion bench for Table 1: cuckoo and in-place chained hash-map
//! lookup latency at high utilization on Lognormal keys.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use li_data::{Dataset, Record20};
use li_hash::{CdfHasher, CuckooHashMap, InPlaceChained};
use std::time::Duration;

const N: usize = 300_000;

fn bench_table1(c: &mut Criterion) {
    let keyset = Dataset::Lognormal.generate(N, 42);
    let keys = keyset.keys();
    let queries = keyset.sample_existing(4096, 11);

    let mut cuckoo32: CuckooHashMap<u32> = CuckooHashMap::new(N + N / 64);
    let mut cuckoo_rec: CuckooHashMap<Record20> = CuckooHashMap::new(N + N / 64);
    let mut commercial: CuckooHashMap<Record20> = CuckooHashMap::new_commercial(N + N / 16);
    for &k in keys {
        let _ = cuckoo32.try_insert(k, k as u32);
        let _ = cuckoo_rec.try_insert(k, Record20::from_key(k));
        let _ = commercial.try_insert(k, Record20::from_key(k));
    }
    let records: Vec<(u64, Record20)> = keys.iter().map(|&k| (k, Record20::from_key(k))).collect();
    let inplace = InPlaceChained::build(&records, CdfHasher::train(keys, N / 2000));

    let mut group = c.benchmark_group("table1/get");
    group.measurement_time(Duration::from_millis(700));
    group.warm_up_time(Duration::from_millis(200));
    group.sample_size(20);

    macro_rules! bench_map {
        ($name:literal, $get:expr) => {{
            let queries = queries.clone();
            let mut qi = 0usize;
            let get = $get;
            group.bench_function($name, move |b| {
                b.iter_batched(
                    || {
                        qi = (qi + 1) & 4095;
                        queries[qi]
                    },
                    |q| get(q),
                    BatchSize::SmallInput,
                )
            });
        }};
    }

    bench_map!("cuckoo-32bit", move |q: u64| cuckoo32
        .get(q)
        .map(|v| v as u64)
        .unwrap_or(0));
    bench_map!("cuckoo-record", move |q: u64| cuckoo_rec
        .get(q)
        .map(|r| r.payload)
        .unwrap_or(0));
    bench_map!("commercial-cuckoo", move |q: u64| commercial
        .get(q)
        .map(|r| r.payload)
        .unwrap_or(0));
    bench_map!("inplace-learned", move |q: u64| inplace
        .get(q)
        .map(|r| r.payload)
        .unwrap_or(0));

    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
