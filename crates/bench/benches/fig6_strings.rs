//! Criterion bench for Figure 6: string-key lookups.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use li_btree::PagedIndex;
use li_core::string_rmi::{StringRmi, StringRmiConfig, StringTopModel};
use li_core::SearchStrategy;
use std::time::Duration;

const N: usize = 100_000;

fn bench_fig6(c: &mut Criterion) {
    let data = li_data::strings::doc_ids(N, 42);
    let mut rng = li_data::SplitMix64::new(9);
    let queries: Vec<String> = (0..4096)
        .map(|_| data[rng.below(data.len())].clone())
        .collect();

    let mut group = c.benchmark_group("fig6/doc-ids");
    group.measurement_time(Duration::from_millis(800));
    group.warm_up_time(Duration::from_millis(200));
    group.sample_size(20);

    {
        let idx = PagedIndex::new(data.clone(), 128);
        let queries = queries.clone();
        let mut qi = 0usize;
        group.bench_function("btree-page128", move |b| {
            b.iter_batched(
                || {
                    qi = (qi + 1) & 4095;
                    queries[qi].clone()
                },
                |q| idx.lower_bound(&q),
                BatchSize::SmallInput,
            )
        });
    }
    for (name, top, search) in [
        (
            "rmi-linear",
            StringTopModel::Linear,
            SearchStrategy::ModelBiasedBinary,
        ),
        (
            "rmi-1hidden",
            StringTopModel::Mlp {
                hidden: 1,
                width: 16,
            },
            SearchStrategy::ModelBiasedBinary,
        ),
        (
            "rmi-1hidden-QS",
            StringTopModel::Mlp {
                hidden: 1,
                width: 16,
            },
            SearchStrategy::BiasedQuaternary,
        ),
    ] {
        let idx = StringRmi::build(
            data.clone(),
            &StringRmiConfig {
                top,
                leaves: N / 100,
                search,
                ..Default::default()
            },
        );
        let queries = queries.clone();
        let mut qi = 0usize;
        group.bench_function(name, move |b| {
            b.iter_batched(
                || {
                    qi = (qi + 1) & 4095;
                    queries[qi].clone()
                },
                |q| idx.lower_bound(&q),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
