//! Ablation benches beyond the paper's tables: the design choices
//! DESIGN.md calls out.
//!
//! * `search-strategies` — §3.4's four strategies on the same RMI.
//! * `stage-count` — 1-stage vs 2-stage vs 3-stage RMIs.
//! * `learned-sort` — §7's CDF sort vs `sort_unstable`.
//! * `delta-insert` — Appendix D.1 insert cost vs merge threshold.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use li_core::sort::SortModel;
use li_core::{learned_sort, DeltaIndex, RangeIndex, Rmi, RmiConfig, SearchStrategy, TopModel};
use li_data::Dataset;
use std::time::Duration;

const N: usize = 300_000;

fn bench_search_strategies(c: &mut Criterion) {
    let keyset = Dataset::Lognormal.generate(N, 42);
    let data = keyset.keys().to_vec();
    let queries = keyset.sample_existing(4096, 3);

    let mut group = c.benchmark_group("ablation/search-strategies");
    group.measurement_time(Duration::from_millis(600));
    group.warm_up_time(Duration::from_millis(150));
    group.sample_size(15);

    for strategy in SearchStrategy::ALL {
        let rmi = Rmi::build(
            data.clone(),
            &RmiConfig::two_stage(TopModel::Linear, N / 2000).with_search(strategy),
        );
        let queries = queries.clone();
        let mut qi = 0usize;
        group.bench_function(strategy.name(), move |b| {
            b.iter_batched(
                || {
                    qi = (qi + 1) & 4095;
                    queries[qi]
                },
                |q| rmi.lower_bound(q),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_stage_count(c: &mut Criterion) {
    let keyset = Dataset::Weblogs.generate(N, 42);
    let data = keyset.keys().to_vec();
    let queries = keyset.sample_existing(4096, 5);

    let mut group = c.benchmark_group("ablation/stage-count");
    group.measurement_time(Duration::from_millis(600));
    group.warm_up_time(Duration::from_millis(150));
    group.sample_size(15);

    let configs: Vec<(&str, Vec<usize>)> = vec![
        ("1-stage", vec![1]),
        ("2-stage", vec![N / 2000]),
        ("3-stage", vec![64, N / 2000]),
    ];
    for (name, stages) in configs {
        let cfg = RmiConfig {
            top: TopModel::Linear,
            stages,
            ..Default::default()
        };
        let rmi = Rmi::build(data.clone(), &cfg);
        let queries = queries.clone();
        let mut qi = 0usize;
        group.bench_function(name, move |b| {
            b.iter_batched(
                || {
                    qi = (qi + 1) & 4095;
                    queries[qi]
                },
                |q| rmi.lower_bound(q),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_learned_sort(c: &mut Criterion) {
    let mut rng = li_data::SplitMix64::new(42);
    let keys: Vec<u64> = (0..N).map(|_| rng.next_u64() % 1_000_000_000).collect();

    let mut group = c.benchmark_group("ablation/sort");
    group.measurement_time(Duration::from_millis(1500));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(10);

    {
        let keys = keys.clone();
        group.bench_function("learned-sort", move |b| {
            b.iter_batched(
                || keys.clone(),
                |k| learned_sort(&k, SortModel::Linear),
                BatchSize::LargeInput,
            )
        });
    }
    {
        let keys = keys.clone();
        group.bench_function("sort-unstable", move |b| {
            b.iter_batched(
                || keys.clone(),
                |mut k| {
                    k.sort_unstable();
                    k
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_delta_insert(c: &mut Criterion) {
    let keyset = Dataset::Lognormal.generate(100_000, 42);

    let mut group = c.benchmark_group("ablation/delta-insert");
    group.measurement_time(Duration::from_millis(800));
    group.warm_up_time(Duration::from_millis(150));
    group.sample_size(10);

    for threshold in [1_000usize, 10_000] {
        let base = keyset.keys().to_vec();
        group.bench_function(format!("merge-threshold-{threshold}"), move |b| {
            b.iter_batched(
                || {
                    DeltaIndex::new(
                        base.clone(),
                        RmiConfig::two_stage(TopModel::Linear, 256),
                        threshold,
                    )
                },
                |mut idx| {
                    let last = 2_000_000_000u64;
                    for i in 0..2_000u64 {
                        idx.insert(last + i);
                    }
                    idx.len()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_search_strategies,
    bench_stage_count,
    bench_learned_sort,
    bench_delta_insert
);
criterion_main!(benches);
