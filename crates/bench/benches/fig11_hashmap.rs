//! Criterion bench for Figure 11: chained hash map lookups with the
//! learned vs random hash function (20-byte records).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use li_data::{Dataset, Record20};
use li_hash::{CdfHasher, ChainedHashMap, MurmurHasher};
use std::time::Duration;

const N: usize = 300_000;

fn bench_fig11(c: &mut Criterion) {
    let keyset = Dataset::Maps.generate(N, 42);
    let keys = keyset.keys();
    let queries = keyset.sample_existing(4096, 5);

    let mut learned_map: ChainedHashMap<Record20, _> =
        ChainedHashMap::new(N, CdfHasher::train(keys, N / 2000));
    let mut murmur_map: ChainedHashMap<Record20, _> = ChainedHashMap::new(N, MurmurHasher::new(1));
    for &k in keys {
        learned_map.insert(k, Record20::from_key(k));
        murmur_map.insert(k, Record20::from_key(k));
    }

    let mut group = c.benchmark_group("fig11/chained-get");
    group.measurement_time(Duration::from_millis(700));
    group.warm_up_time(Duration::from_millis(200));
    group.sample_size(20);

    {
        let queries = queries.clone();
        let mut qi = 0usize;
        group.bench_function("model-hash", move |b| {
            b.iter_batched(
                || {
                    qi = (qi + 1) & 4095;
                    queries[qi]
                },
                |q| learned_map.get(q).map(|r| r.payload).unwrap_or(0),
                BatchSize::SmallInput,
            )
        });
    }
    {
        let queries = queries.clone();
        let mut qi = 0usize;
        group.bench_function("random-hash", move |b| {
            b.iter_batched(
                || {
                    qi = (qi + 1) & 4095;
                    queries[qi]
                },
                |q| murmur_map.get(q).map(|r| r.payload).unwrap_or(0),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
