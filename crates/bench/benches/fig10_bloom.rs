//! Criterion bench for Figure 10: existence-check latency of the
//! standard vs learned Bloom filter (memory results come from
//! `repro fig10`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use li_bloom::{BloomFilter, LearnedBloom};
use li_data::strings::UrlGenerator;
use li_models::NgramLogReg;
use std::time::Duration;

fn bench_fig10(c: &mut Criterion) {
    let n = 20_000;
    let mut gen = UrlGenerator::new(42);
    let (keys, negs) = gen.dataset(n, n, 0.5);
    let kb: Vec<&[u8]> = keys.iter().map(|s| s.as_bytes()).collect();
    let vb: Vec<&[u8]> = negs.iter().map(|s| s.as_bytes()).collect();

    let mut standard = BloomFilter::new(n, 0.01);
    for k in &kb {
        standard.insert(k);
    }
    let clf = NgramLogReg::train(13, 6, 0.1, &kb, &vb, 3);
    let learned = LearnedBloom::build(clf, &kb, &vb, 0.01, None);

    let probes: Vec<&str> = keys
        .iter()
        .zip(&negs)
        .flat_map(|(k, n)| [k.as_str(), n.as_str()])
        .take(4096)
        .collect();

    let mut group = c.benchmark_group("fig10/contains");
    group.measurement_time(Duration::from_millis(700));
    group.warm_up_time(Duration::from_millis(200));
    group.sample_size(20);

    {
        let probes = probes.clone();
        let mut qi = 0usize;
        group.bench_function("standard-bloom", move |b| {
            b.iter_batched(
                || {
                    qi = (qi + 1) % probes.len();
                    probes[qi]
                },
                |q| standard.contains(q.as_bytes()),
                BatchSize::SmallInput,
            )
        });
    }
    {
        let probes = probes.clone();
        let mut qi = 0usize;
        group.bench_function("learned-bloom", move |b| {
            b.iter_batched(
                || {
                    qi = (qi + 1) % probes.len();
                    probes[qi]
                },
                |q| learned.contains(q.as_bytes()),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
