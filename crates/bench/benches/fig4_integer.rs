//! Criterion bench for Figure 4: learned index vs B-Tree lookups on the
//! three integer datasets.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use li_bench::fig4::{rmi_config_for, scaled_leaves, LEAF_FRACTIONS, PAGE_SIZES};
use li_core::{RangeIndex, Rmi};
use li_data::Dataset;
use std::time::Duration;

const N: usize = 500_000;

fn bench_fig4(c: &mut Criterion) {
    for ds in Dataset::ALL {
        let keyset = ds.generate(N, 42);
        let queries = keyset.sample_existing(4096, 7);

        let mut group = c.benchmark_group(format!("fig4/{}", ds.name().replace(' ', "-")));
        group.measurement_time(Duration::from_millis(800));
        group.warm_up_time(Duration::from_millis(200));
        group.sample_size(20);

        for page in [PAGE_SIZES[0], PAGE_SIZES[2], PAGE_SIZES[4]] {
            let idx = li_btree::BTreeIndex::new(keyset.keys().to_vec(), page);
            let mut qi = 0usize;
            let queries = queries.clone();
            group.bench_function(format!("btree-page{page}"), move |b| {
                b.iter_batched(
                    || {
                        qi = (qi + 1) & 4095;
                        queries[qi]
                    },
                    |q| idx.lower_bound(q),
                    BatchSize::SmallInput,
                )
            });
        }
        for (label, fraction) in [LEAF_FRACTIONS[0], LEAF_FRACTIONS[3]] {
            let leaves = scaled_leaves(fraction, N);
            let idx = Rmi::build(keyset.keys().to_vec(), &rmi_config_for(ds, leaves));
            let mut qi = 0usize;
            let queries = queries.clone();
            group.bench_function(format!("rmi-{label}-equiv"), move |b| {
                b.iter_batched(
                    || {
                        qi = (qi + 1) & 4095;
                        queries[qi]
                    },
                    |q| idx.lower_bound(q),
                    BatchSize::SmallInput,
                )
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
