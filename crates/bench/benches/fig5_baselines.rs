//! Criterion bench for Figure 5: alternative baselines on Lognormal.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use li_core::{RangeIndex, Rmi, RmiConfig, TopModel};
use li_data::Dataset;
use li_models::FeatureMap;
use std::time::Duration;

const N: usize = 500_000;

fn bench_fig5(c: &mut Criterion) {
    let keyset = Dataset::Lognormal.generate(N, 42);
    let data = keyset.keys().to_vec();
    let queries = keyset.sample_existing(4096, 9);

    let mut group = c.benchmark_group("fig5/lognormal");
    group.measurement_time(Duration::from_millis(800));
    group.warm_up_time(Duration::from_millis(200));
    group.sample_size(20);

    let structures: Vec<(&str, Box<dyn RangeIndex>)> = vec![
        (
            "lookup-table",
            Box::new(li_btree::LookupTable::new(data.clone())),
        ),
        ("fast", Box::new(li_btree::FastTree::new(data.clone()))),
        (
            "interp-btree",
            Box::new(li_btree::InterpBTree::with_budget(data.clone(), 64 * 1024)),
        ),
        (
            "multivariate-rmi",
            Box::new(Rmi::build(
                data.clone(),
                &RmiConfig::two_stage(TopModel::Multivariate(FeatureMap::FULL), N / 2000),
            )),
        ),
    ];
    for (name, idx) in structures {
        let mut qi = 0usize;
        let queries = queries.clone();
        group.bench_function(name, move |b| {
            b.iter_batched(
                || {
                    qi = (qi + 1) & 4095;
                    queries[qi]
                },
                |q| idx.lower_bound(q),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
