//! Live observability: what the serving tier's own metrics see under
//! a mixed workload, and what the instrumentation costs — beyond the
//! paper.
//!
//! Every other experiment measures the serving tier from the outside
//! with harness stopwatches; this one asks the tier to measure
//! *itself*. A mixed workload (scalar inserts interleaved with point
//! lookups, a batched-insert leg, a batched-lookup leg) drives one
//! instrumented [`ShardedWritable`] plus a read-only [`ShardedIndex`]
//! sharing the same metrics registry, then the tables below are
//! rendered straight from [`ShardedWritable::metrics`] — the same
//! snapshot a production scrape would see via
//! [`ShardedWritable::render_text`]:
//!
//! * **operation counters** — inserts/lookups (scalar and batched) and
//!   the structural events the load provoked (splits, merges, seals,
//!   compactions);
//! * **per-shard gauges** — len / run-stack depth / pending delta per
//!   shard at snapshot time;
//! * **latency histograms** — count/mean/p50/p99 per instrumented
//!   phase, from the li-obs log-linear histograms;
//! * **event tail** — the newest entries of the lock-free trace ring.
//!
//! The final table prices the instrumentation itself: scalar insert
//! and scalar lookup mean ns with observability **on** (per-op
//! counters + sampled latency) vs **off** (`observe: false`, no
//! metrics bundle attached) on identically built structures. The
//! acceptance bar is ≤10% on the sampled hot paths; on a 1-core host
//! the two legs time-share with the OS, so expect noise of the same
//! order (EXPERIMENTS.md records the measured numbers and the caveat).

use crate::harness::{time_batch_ns, BenchConfig, LatencySummary};
use crate::table::Table;
use li_data::Dataset;
use li_serve::{
    FastShardBuilder, MetricsSnapshot, RangeIndex, RebalanceConfig, ServeMetrics, ShardedIndex,
    ShardedWritable, ShardedWritableConfig,
};
use std::sync::Arc;

/// Shard count for the mixed-workload structure.
pub const STATS_SHARDS: usize = 4;

/// Chunk size for the batched-insert leg.
pub const STATS_BATCH: usize = 1024;

/// Trace-ring entries shown in the event-tail table.
pub const EVENT_TAIL: usize = 8;

/// One instrumented-vs-disabled overhead measurement.
#[derive(Debug, Clone)]
pub struct OverheadLeg {
    /// Which hot path was measured.
    pub name: &'static str,
    /// Mean ns/op with observability on (the default configuration).
    pub on_ns: f64,
    /// Mean ns/op with observability off (`observe: false`, or no
    /// metrics bundle attached for the read-only index).
    pub off_ns: f64,
}

impl OverheadLeg {
    /// Instrumented cost as a multiple of the disabled cost.
    pub fn overhead(&self) -> f64 {
        self.on_ns / self.off_ns.max(1e-9)
    }
}

/// Everything `repro stats` measured.
#[derive(Debug, Clone)]
pub struct StatsReport {
    /// The metrics snapshot taken after the mixed workload settled.
    pub snapshot: MetricsSnapshot,
    /// Keys driven through the insert paths (scalar + batched).
    pub inserted: usize,
    /// Point lookups driven (scalar + batched).
    pub lookups_run: usize,
    /// Shard count after the load.
    pub final_shards: usize,
    /// Instrumentation cost per hot path (insert, then lookup).
    pub overhead: Vec<OverheadLeg>,
}

/// Drive the mixed workload and the overhead legs on the Lognormal
/// dataset: half the keys seed the structures, the other half arrive
/// live (half of those scalar + interleaved lookups, half batched).
pub fn run(cfg: &BenchConfig) -> StatsReport {
    let keyset = Dataset::Lognormal.generate(cfg.keys, cfg.seed);
    let keys = keyset.keys();
    let initial: Vec<u64> = keys.iter().copied().step_by(2).collect();
    let fresh: Vec<u64> = keys.iter().copied().skip(1).step_by(2).collect();
    let lookups = keyset.sample_existing(cfg.queries.clamp(1, 20_000), cfg.seed ^ 0x0b5);

    // Split pressure scaled as in the write experiment so the workload
    // provokes real structural events for the counters and the trace
    // ring to see.
    let max_shard_len = (initial.len() * 3 / (2 * STATS_SHARDS)).max(1024);
    let config = ShardedWritableConfig {
        merge_threshold: 1_000,
        rebalance: RebalanceConfig {
            max_shard_len,
            merge_max_len: (max_shard_len / 4).max(1),
            ..RebalanceConfig::default()
        },
        ..ShardedWritableConfig::default()
    };
    let sw = ShardedWritable::new(initial.clone(), STATS_SHARDS, config);
    // The read-only index records its lookups into the *same* registry
    // — one scrape covers the whole serving tier.
    let reader = ShardedIndex::build(initial.clone(), STATS_SHARDS, &FastShardBuilder);
    reader.attach_metrics(Arc::clone(sw.metrics_handle()));

    let (scalar, batched) = fresh.split_at(fresh.len() / 2);
    let mut acc = 0usize;
    let mut li = lookups.iter().cycle();
    for &k in scalar {
        acc = acc.wrapping_add(usize::from(sw.insert(k)));
        acc = acc.wrapping_add(reader.lower_bound(*li.next().expect("cycle")));
    }
    for chunk in batched.chunks(STATS_BATCH) {
        acc = acc.wrapping_add(sw.insert_batch(chunk).iter().filter(|&&f| f).count());
    }
    let mut out = vec![0usize; lookups.len()];
    reader.lower_bound_batch(&lookups, &mut out);
    std::hint::black_box((acc, &out));

    let snapshot = sw.metrics();
    let final_shards = sw.shard_count();
    let overhead = vec![
        insert_overhead(&initial, scalar),
        lookup_overhead(&initial, &lookups),
    ];
    StatsReport {
        snapshot,
        inserted: fresh.len(),
        lookups_run: scalar.len() + lookups.len(),
        final_shards,
        overhead,
    }
}

/// Scalar-insert cost, observability on vs off. Default (no-split)
/// rebalance thresholds so both structures do identical work and the
/// difference is the instrumentation alone.
fn insert_overhead(initial: &[u64], stream: &[u64]) -> OverheadLeg {
    let time = |observe: bool| {
        let config = ShardedWritableConfig {
            observe,
            ..ShardedWritableConfig::default()
        };
        let sw = ShardedWritable::new(initial.to_vec(), STATS_SHARDS, config);
        time_batch_ns(stream, |k| usize::from(sw.insert(k)))
    };
    // Instrumented leg first: any warm-up carry-over (allocator, page
    // cache) then favors the baseline, keeping the ratio conservative.
    let on_ns = time(true);
    OverheadLeg {
        name: "scalar insert",
        on_ns,
        off_ns: time(false),
    }
}

/// Scalar-lookup cost on the read-only index, metrics bundle attached
/// vs absent (the un-attached index skips even the counter add).
fn lookup_overhead(initial: &[u64], lookups: &[u64]) -> OverheadLeg {
    let time = |attach: bool| {
        let idx = ShardedIndex::build(initial.to_vec(), STATS_SHARDS, &FastShardBuilder);
        if attach {
            idx.attach_metrics(Arc::new(ServeMetrics::new()));
        }
        time_batch_ns(lookups, |q| idx.lower_bound(q))
    };
    let on_ns = time(true);
    OverheadLeg {
        name: "scalar lookup",
        on_ns,
        off_ns: time(false),
    }
}

/// Render the live-metrics tables and the overhead table.
pub fn print(report: &StatsReport, keys: usize) {
    let snap = &report.snapshot;

    let mut t = Table::new(
        &format!(
            "Observability — serving-tier metrics after a mixed workload ({keys} keys, half live; {} shards final)",
            report.final_shards
        ),
        &["Counter", "Total"],
    );
    for name in [
        "li_inserts_total",
        "li_batch_insert_keys_total",
        "li_lookups_total",
        "li_batch_lookup_queries_total",
        "li_shard_splits_total",
        "li_shard_merges_total",
        "li_buffer_seals_total",
        "li_buffer_merges_total",
        "li_compactions_total",
    ] {
        t.row(&[
            name.to_string(),
            snap.counter(name).map_or("-".into(), |v| v.to_string()),
        ]);
    }
    t.note("rendered straight from ShardedWritable::metrics() — the same snapshot render_text() exposes for a scrape; the read-only ShardedIndex records into the same registry");
    t.print();
    println!();

    let dash = |v: Option<u64>| v.map_or("-".into(), |v| v.to_string());
    let shards = snap.gauge_set("li_shard_len").map_or(0, <[u64]>::len);
    let mut t = Table::new(
        "Observability — per-shard gauges at snapshot time",
        &["Shard", "Len", "Runs", "Pending"],
    );
    for i in 0..shards {
        let cell = |name: &str| dash(snap.gauge_set(name).and_then(|v| v.get(i).copied()));
        t.row(&[
            i.to_string(),
            cell("li_shard_len"),
            cell("li_shard_runs"),
            cell("li_shard_pending"),
        ]);
    }
    t.note(&format!(
        "gauges li_shard_count = {}, li_generation = {} (generation counts published topology changes)",
        snap.gauge("li_shard_count").unwrap_or(0),
        snap.gauge("li_generation").unwrap_or(0),
    ));
    t.print();
    println!();

    let mut t = Table::new(
        "Observability — latency histograms (li-obs log-linear, bounded-error quantiles)",
        &["Histogram", "Samples", "Mean (ns)", "p50 (ns)", "p99 (ns)"],
    );
    for (name, h) in &snap.histograms {
        let s = LatencySummary::from_snapshot(h);
        if s.count == 0 {
            continue;
        }
        t.row(&[
            name.clone(),
            s.count.to_string(),
            format!("{:.0}", s.mean_ns),
            s.p50_ns.to_string(),
            s.p99_ns.to_string(),
        ]);
    }
    t.note("per-op latency is sampled (1-in-8 inserts, 1-in-32 lookups); batch and worker phases time every occurrence — empty histograms are omitted");
    t.print();
    println!();

    if let Some(events) = snap.ring("li_events") {
        let mut t = Table::new(
            &format!(
                "Observability — trace-ring tail (newest {EVENT_TAIL} of {})",
                events.len()
            ),
            &["Seq", "At (us)", "Event", "a", "b"],
        );
        for e in events.iter().rev().take(EVENT_TAIL).rev() {
            t.row(&[
                e.seq.to_string(),
                e.at_us.to_string(),
                e.name.to_string(),
                e.a.to_string(),
                e.b.to_string(),
            ]);
        }
        t.note("fixed-capacity lock-free ring: recording never blocks, the oldest entries are overwritten first; payload meaning depends on the event kind");
        t.print();
        println!();
    }

    let mut t = Table::new(
        "Observability — instrumentation overhead (mean ns/op, identical structures)",
        &["Hot path", "Instrumented (ns)", "Disabled (ns)", "Overhead"],
    );
    for leg in &report.overhead {
        t.row(&[
            leg.name.to_string(),
            format!("{:.0}", leg.on_ns),
            format!("{:.0}", leg.off_ns),
            format!("{:.2}x", leg.overhead()),
        ]);
    }
    t.note("instrumented = default config (counters on every op, latency sampled); disabled = observe: false / no metrics bundle attached — the acceptance bar is <=10% on these paths");
    t.note("on a 1-core host the measured difference is the same order as scheduler noise; EXPERIMENTS.md records representative numbers");
    t.print();
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mixed_workload_populates_the_registry() {
        let report = run(&BenchConfig {
            keys: 6_000,
            queries: 300,
            seed: 7,
        });
        let snap = &report.snapshot;
        // Scalar half counted one by one, batched half by key count.
        let scalar = (report.inserted / 2) as u64;
        assert_eq!(snap.counter("li_inserts_total"), Some(scalar));
        assert_eq!(
            snap.counter("li_batch_insert_keys_total"),
            Some(report.inserted as u64 - scalar)
        );
        // The attached reader's lookups land in the same registry.
        assert_eq!(snap.counter("li_lookups_total"), Some(scalar));
        assert!(snap.counter("li_batch_lookup_queries_total") > Some(0));
        // The load provokes splits, and every split lands in the ring.
        let splits = snap.counter("li_shard_splits_total").expect("registered");
        assert!(splits > 0, "split pressure was scaled to fire");
        assert!(report.final_shards > STATS_SHARDS);
        let events = snap.ring("li_events").expect("ring registered");
        assert!(events.iter().any(|e| e.name == "shard_split"), "{events:?}");
        // Sampled latency histograms saw the workload.
        for name in ["li_insert_ns", "li_lookup_ns", "li_batch_insert_ns"] {
            let h = snap.histogram(name).expect("registered");
            assert!(h.count() > 0, "{name} never sampled");
        }
        // Per-shard gauges cover the final topology.
        assert_eq!(
            snap.gauge_set("li_shard_len").map(<[u64]>::len),
            Some(report.final_shards)
        );
        // Overhead legs measured both sides of both paths.
        assert_eq!(report.overhead.len(), 2);
        for leg in &report.overhead {
            assert!(leg.on_ns > 0.0 && leg.off_ns > 0.0, "{leg:?}");
        }
        // Rendering is total: every metric above appears in the text
        // exposition the same snapshot serves to a scrape.
        let text = snap.render_text();
        assert!(text.contains("li_inserts_total"));
        assert!(text.contains("li_shard_len{shard=\"0\"}"));
    }
}
