//! Figure 5: alternative baselines on the Lognormal dataset.
//!
//! "Lookup Table w/ AVX search" vs FAST vs "Fixed-Size Btree w/
//! interpol. search" vs "Multivariate Learned Index" — time and size.
//! The learned index is a 2-stage RMI "with a multivariate linear
//! regression model at the top and simple linear models at the bottom"
//! with feature engineering (key, log key, key², √key). The
//! interpolation B-Tree's byte budget is tied to the learned index size,
//! exactly as the paper sizes it ("the total size of the tree is 1.5MB,
//! similar to our learned model").

use crate::harness::{mb, time_batch_ns, BenchConfig};
use crate::table::Table;
use li_core::{KeyStore, RangeIndex, Rmi, RmiConfig, TopModel};
use li_data::Dataset;
use li_models::FeatureMap;

/// One measured baseline.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Structure name.
    pub name: String,
    /// Mean lookup ns.
    pub lookup_ns: f64,
    /// Structure size in bytes.
    pub size_bytes: usize,
}

/// Run the Figure-5 comparison.
pub fn run(cfg: &BenchConfig) -> Vec<Fig5Row> {
    let keyset = Dataset::Lognormal.generate(cfg.keys, cfg.seed);
    let queries = keyset.sample_existing(cfg.queries, cfg.seed ^ 0xF16);
    // One shared store: all four baselines read the same allocation.
    let data = KeyStore::from(keyset.keys());

    let mut rows = Vec::new();

    let lut = li_btree::LookupTable::new(data.clone());
    rows.push(Fig5Row {
        name: "Lookup Table w/ branch-free search".into(),
        lookup_ns: time_batch_ns(&queries, |q| lut.lower_bound(q)),
        size_bytes: lut.size_bytes(),
    });

    let fast = li_btree::FastTree::new(data.clone());
    rows.push(Fig5Row {
        name: "FAST (branch-free, pow2-padded)".into(),
        lookup_ns: time_batch_ns(&queries, |q| fast.lower_bound(q)),
        size_bytes: fast.size_bytes(),
    });

    // Learned index first so the interpolation B-Tree can match its size.
    // The paper does not state the 2nd-stage size for Figure 5; its
    // learned index is 1.5MB at 190M keys ≈ 100k leaves. We keep a
    // denser n/500 so leaf windows stay tight at reduced scale (same
    // reasoning as fig8's granularity note).
    let rmi_cfg = RmiConfig::two_stage(
        TopModel::Multivariate(FeatureMap::FULL),
        (cfg.keys / 500).max(256),
    );
    let rmi = Rmi::build(data.clone(), &rmi_cfg);
    let rmi_size = rmi.size_bytes();

    let interp = li_btree::InterpBTree::with_budget(data.clone(), rmi_size.max(1024));
    rows.push(Fig5Row {
        name: "Fixed-Size Btree w/ interpol. search".into(),
        lookup_ns: time_batch_ns(&queries, |q| interp.lower_bound(q)),
        size_bytes: interp.size_bytes(),
    });

    rows.push(Fig5Row {
        name: "Multivariate Learned Index".into(),
        lookup_ns: time_batch_ns(&queries, |q| rmi.lower_bound(q)),
        size_bytes: rmi_size,
    });

    rows
}

/// Render the Figure-5 table.
pub fn print(rows: &[Fig5Row], keys: usize) {
    let mut t = Table::new(
        &format!("Figure 5 — Alternative Baselines, Lognormal ({keys} keys)"),
        &["Structure", "Time (ns)", "Size"],
    );
    for r in rows {
        let size = if r.size_bytes < 100 * 1024 {
            format!("{:.1} KB", r.size_bytes as f64 / 1024.0)
        } else {
            format!("{:.2} MB", mb(r.size_bytes))
        };
        t.row(&[r.name.clone(), format!("{:.0}", r.lookup_ns), size]);
    }
    t.note("paper@190M: lookup-table 199ns/16.3MB, FAST 189ns/1024MB, interp-btree 280ns/1.5MB, learned 105ns/1.5MB");
    t.note("expected shape: learned fastest; FAST largest by far (power-of-2 padding)");
    t.print();
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_four_baselines() {
        let rows = run(&BenchConfig::smoke());
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.lookup_ns > 0.0 && r.size_bytes > 0));
    }

    #[test]
    fn fast_is_the_largest_structure() {
        // The paper's observation: "the FAST index is big because of the
        // alignment requirement."
        let rows = run(&BenchConfig::smoke());
        let fast = rows.iter().find(|r| r.name.starts_with("FAST")).unwrap();
        for r in &rows {
            if !r.name.starts_with("FAST") {
                assert!(
                    fast.size_bytes >= r.size_bytes,
                    "{} >= {}",
                    fast.name,
                    r.name
                );
            }
        }
    }

    #[test]
    fn learned_index_is_small() {
        let rows = run(&BenchConfig::smoke());
        let learned = rows.iter().find(|r| r.name.contains("Learned")).unwrap();
        let fast = rows.iter().find(|r| r.name.starts_with("FAST")).unwrap();
        assert!(learned.size_bytes * 10 < fast.size_bytes);
    }
}
