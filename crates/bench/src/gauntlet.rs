//! The SOSD-style adversarial gauntlet — adaptive backend selection
//! under fire, beyond the paper.
//!
//! The paper's §3 hybrid picture assumes someone *chooses* a backend
//! per region; [`li_serve::Backend::Auto`] makes that choice from the
//! probe's `RmiStats` (`li_core::rmi::RmiStats`) at build time. This
//! experiment stress-tests the choice on distributions engineered to
//! punish a wrong one (see [`li_data::gauntlet`]): for every gauntlet
//! distribution it builds one [`ShardedIndex`] per hand-picked backend
//! plus one with `Backend::Auto`, measures mean lookup latency over the
//! same probe set, and reports auto's gap to the best and worst
//! hand-picked choice.
//!
//! The claim under test (the PR's acceptance bar): auto stays within
//! ~1.1× of the best hand-picked backend on *every* distribution, and
//! beats the worst hand-picked backend outright on the adversarial
//! ones — i.e. the selector buys near-best latency without per-dataset
//! hand-tuning.
//!
//! `heavy-dup` is a multiset: the bare RMI backend requires unique keys
//! and is excluded there (printed as the missing row); auto routes
//! duplicate shards to its multiset path instead.

use crate::harness::{time_batch_ns, BenchConfig};
use crate::table::Table;
use li_data::Gauntlet;
use li_serve::{Backend, RangeIndex, ShardBuilder, ShardedIndex};
use std::collections::BTreeMap;

/// Shard count for every measured structure.
pub const GAUNTLET_SHARDS: usize = 8;

/// Keys are capped here: the gauntlet is about *shape*, not scale, and
/// selection behavior is identical past a few hundred thousand keys.
pub const GAUNTLET_KEY_CAP: usize = 200_000;

/// Timed repetitions per (distribution, backend); the minimum is kept,
/// which is the standard way to strip scheduler noise from a
/// steady-state latency measurement.
const REPS: usize = 5;

/// One (distribution, backend) measurement.
#[derive(Debug, Clone)]
pub struct GauntletRow {
    /// Gauntlet distribution name ("books-like", ...).
    pub dataset: &'static str,
    /// Backend label ([`Backend::name`]).
    pub backend: String,
    /// Whether this row is the adaptive selector.
    pub auto: bool,
    /// Best-of-`REPS` (5) mean lookup latency, ns/op.
    pub mean_ns: f64,
    /// Total index size across shards, MiB.
    pub size_mib: f64,
    /// Per-shard backend families actually built, as `family×count`
    /// (interesting for auto; hand-picked rows are uniform by
    /// construction).
    pub choices: String,
}

/// Per-distribution roll-up of the auto-vs-hand-picked comparison.
#[derive(Debug, Clone)]
pub struct GauntletVerdict {
    /// Gauntlet distribution name.
    pub dataset: &'static str,
    /// Auto's mean latency, ns/op.
    pub auto_ns: f64,
    /// Best hand-picked backend's label and latency.
    pub best: (String, f64),
    /// Worst hand-picked backend's label and latency.
    pub worst: (String, f64),
}

impl GauntletVerdict {
    /// `auto / best` — the acceptance bar holds this ≤ ~1.1.
    pub fn vs_best(&self) -> f64 {
        self.auto_ns / self.best.1.max(1e-9)
    }

    /// `auto / worst` — < 1.0 means auto beats the worst hand-picked
    /// choice outright.
    pub fn vs_worst(&self) -> f64 {
        self.auto_ns / self.worst.1.max(1e-9)
    }
}

/// Shard-family census of a built index: `family×count` in shard order
/// of first appearance ("rmi×5, btree×3").
fn census(idx: &ShardedIndex) -> String {
    let mut order: Vec<String> = Vec::new();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for s in 0..idx.shard_count() {
        let full = idx.shard(s).name();
        let family = full.split('(').next().unwrap_or(&full).to_string();
        if !counts.contains_key(&family) {
            order.push(family.clone());
        }
        *counts.entry(family).or_insert(0) += 1;
    }
    order
        .iter()
        .map(|f| format!("{f}×{}", counts[f]))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Sample `count` probe keys from `keys` in a scrambled order (existing
/// keys only — the gauntlet measures hit-path latency).
fn sample_probes(keys: &[u64], count: usize, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    let mut probes = Vec::with_capacity(count);
    for _ in 0..count {
        // xorshift64* — deterministic, no dependency.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let r = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        probes.push(keys[(r % keys.len() as u64) as usize]);
    }
    probes
}

fn measure(idx: &ShardedIndex, probes: &[u64]) -> f64 {
    (0..REPS)
        .map(|_| time_batch_ns(probes, |q| idx.lower_bound(q)))
        .fold(f64::INFINITY, f64::min)
}

/// Run the gauntlet: every distribution × (hand-picked backends +
/// auto). Returns the raw rows and the per-distribution verdicts.
pub fn run(cfg: &BenchConfig) -> (Vec<GauntletRow>, Vec<GauntletVerdict>) {
    let n = cfg.keys.min(GAUNTLET_KEY_CAP);
    let probe_count = cfg.queries.clamp(1, 50_000);
    let mut rows = Vec::new();
    let mut verdicts = Vec::new();

    for dist in Gauntlet::ALL {
        let keys = dist.generate(n, cfg.seed);
        let probes = sample_probes(&keys, probe_count, cfg.seed ^ 0x6a17);

        let mut auto_ns = 0.0;
        let mut hand: Vec<(String, f64)> = Vec::new();
        let oracle = ShardedIndex::build(keys.clone(), GAUNTLET_SHARDS, &Backend::BTree);

        for backend in std::iter::once(Backend::Auto).chain(Backend::HAND_PICKED) {
            if backend == Backend::Rmi && dist.is_multiset() {
                continue; // bare RMI requires unique keys
            }
            let idx = ShardedIndex::build(keys.clone(), GAUNTLET_SHARDS, &backend);
            // Cheap cross-check before trusting the timing: every
            // backend must agree with the B-Tree on the probe set.
            for &q in probes.iter().take(512) {
                assert_eq!(
                    idx.lower_bound(q),
                    oracle.lower_bound(q),
                    "{} disagrees with btree on {} at q={q}",
                    backend.name(),
                    dist.name()
                );
            }
            let mean_ns = measure(&idx, &probes);
            let auto = backend == Backend::Auto;
            if auto {
                auto_ns = mean_ns;
            } else {
                hand.push((backend.name(), mean_ns));
            }
            rows.push(GauntletRow {
                dataset: dist.name(),
                backend: backend.name(),
                auto,
                mean_ns,
                size_mib: (0..idx.shard_count())
                    .map(|s| idx.shard(s).size_bytes())
                    .sum::<usize>() as f64
                    / (1024.0 * 1024.0),
                choices: census(&idx),
            });
        }

        let best = hand
            .iter()
            .cloned()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("hand-picked backends measured");
        let worst = hand
            .iter()
            .cloned()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("hand-picked backends measured");
        verdicts.push(GauntletVerdict {
            dataset: dist.name(),
            auto_ns,
            best,
            worst,
        });
    }
    (rows, verdicts)
}

/// Render the gauntlet tables.
pub fn print(rows: &[GauntletRow], verdicts: &[GauntletVerdict], keys: usize) {
    let n = keys.min(GAUNTLET_KEY_CAP);
    let mut t = Table::new(
        &format!(
            "Adversarial gauntlet — per-shard backend selection ({n} keys, {GAUNTLET_SHARDS} shards, best of {REPS} reps)"
        ),
        &["Dataset", "Backend", "Mean lookup (ns)", "Size (MiB)", "Shard backends"],
    );
    for r in rows {
        t.row(&[
            r.dataset.to_string(),
            if r.auto {
                format!("{} *", r.backend)
            } else {
                r.backend.clone()
            },
            format!("{:.0}", r.mean_ns),
            format!("{:.2}", r.size_mib),
            r.choices.clone(),
        ]);
    }
    t.note("* = adaptive selection (grid search over each shard's probe RmiStats at build time)");
    t.note("bare rmi is excluded on heavy-dup (multiset; RMI requires unique keys) — auto routes duplicate shards to its multiset path");
    t.print();
    println!();

    let mut v = Table::new(
        "Gauntlet verdict — auto vs hand-picked",
        &[
            "Dataset",
            "Auto (ns)",
            "Best hand-picked",
            "vs best",
            "Worst hand-picked",
            "vs worst",
        ],
    );
    for x in verdicts {
        v.row(&[
            x.dataset.to_string(),
            format!("{:.0}", x.auto_ns),
            format!("{} ({:.0} ns)", x.best.0, x.best.1),
            format!("{:.2}x", x.vs_best()),
            format!("{} ({:.0} ns)", x.worst.0, x.worst.1),
            format!("{:.2}x", x.vs_worst()),
        ]);
    }
    v.note("bar: vs best ≤ ~1.1x everywhere; vs worst < 1.0x on the adversarial distributions");
    v.print();
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_covers_every_distribution_and_backend() {
        let (rows, verdicts) = run(&BenchConfig {
            keys: 12_000,
            queries: 1_000,
            seed: 7,
        });
        // 5 distributions × (auto + 4 hand-picked), minus rmi on the
        // multiset.
        assert_eq!(rows.len(), 5 * 5 - 1);
        assert_eq!(verdicts.len(), 5);
        for r in &rows {
            assert!(r.mean_ns > 0.0, "{r:?}");
            assert!(!r.choices.is_empty(), "{r:?}");
        }
        for v in &verdicts {
            assert!(v.auto_ns > 0.0, "{v:?}");
            assert!(v.best.1 <= v.worst.1, "{v:?}");
        }
        // The auto row must exist for every distribution and its shard
        // census must be non-uniform-agnostic (structure, not timing).
        assert_eq!(rows.iter().filter(|r| r.auto).count(), 5);
    }
}
