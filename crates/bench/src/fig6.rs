//! Figure 6: string data — Learned Index vs B-Tree vs Hybrid vs
//! "Learned QS" (quaternary search).
//!
//! The paper's rows: B-Tree at page sizes {32..256}; non-hybrid learned
//! indexes with 1 and 2 hidden layers (10k 2nd-stage models); hybrid
//! indexes at error thresholds t = 128 and t = 64 (1/2 hidden layers);
//! and the best model — "a non-hybrid RMI model index with quaternary
//! search, named 'Learned QS'". Columns: size, total lookup ns, model
//! execution ns (and its share of the total).

use crate::harness::{mb, time_batch_ref_ns, BenchConfig};
use crate::table::Table;
use li_btree::PagedIndex;
use li_core::string_rmi::{StringRmi, StringRmiConfig, StringTopModel};
use li_core::SearchStrategy;
use li_index::KeyStore;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Configuration label.
    pub config: String,
    /// Index size in bytes.
    pub size_bytes: usize,
    /// Mean total lookup ns.
    pub lookup_ns: f64,
    /// Mean model/traversal-only ns.
    pub model_ns: f64,
}

/// Paper's string-dataset B-Tree pages.
pub const PAGE_SIZES: [usize; 4] = [32, 64, 128, 256];

/// Run the Figure-6 comparison over `cfg.keys` document-id strings.
/// (The paper's dataset is 10M doc-ids; the default scale here is
/// whatever `cfg.keys` says, same fractions for the 2nd stage.)
pub fn run(cfg: &BenchConfig) -> Vec<Fig6Row> {
    let n = cfg.keys;
    // One shared string store: all eleven configurations below index the
    // same allocation instead of deep-copying the dataset each.
    let data: KeyStore<String> = KeyStore::new(li_data::strings::doc_ids(n, cfg.seed));
    let mut rng = li_data::SplitMix64::new(cfg.seed ^ 0xF166);
    let queries: Vec<String> = (0..cfg.queries)
        .map(|_| data[rng.below(data.len())].clone())
        .collect();

    let mut rows = Vec::new();

    for page in PAGE_SIZES {
        let idx = PagedIndex::new(data.clone(), page);
        let lookup_ns = time_batch_ref_ns(&queries, |q| idx.lower_bound(q));
        let model_ns = time_batch_ref_ns(&queries, |q| idx.predict(q).start);
        rows.push(Fig6Row {
            config: format!("btree page={page}"),
            size_bytes: idx.size_bytes_with(|s| s.len()),
            lookup_ns,
            model_ns,
        });
    }

    // 10k models at 10M keys = 1/1000 of the key count.
    let leaves = (n / 1000).max(64);
    let mut learned =
        |label: String, top: StringTopModel, hybrid: Option<u32>, search: SearchStrategy| {
            let scfg = StringRmiConfig {
                max_len: 16,
                top,
                leaves,
                search,
                hybrid_threshold: hybrid,
            };
            let idx = StringRmi::build(data.clone(), &scfg);
            let lookup_ns = time_batch_ref_ns(&queries, |q| idx.lower_bound(q));
            let model_ns = time_batch_ref_ns(&queries, |q| idx.predict(q).0);
            rows.push(Fig6Row {
                config: label,
                size_bytes: idx.size_bytes(),
                lookup_ns,
                model_ns,
            });
        };

    for hidden in [1usize, 2] {
        learned(
            format!("learned {hidden} hidden layer(s)"),
            StringTopModel::Mlp { hidden, width: 16 },
            None,
            SearchStrategy::ModelBiasedBinary,
        );
    }
    for t in [128u32, 64] {
        for hidden in [1usize, 2] {
            learned(
                format!("hybrid t={t}, {hidden} hidden layer(s)"),
                StringTopModel::Mlp { hidden, width: 16 },
                Some(t),
                SearchStrategy::ModelBiasedBinary,
            );
        }
    }
    learned(
        "Learned QS, 1 hidden layer".into(),
        StringTopModel::Mlp {
            hidden: 1,
            width: 16,
        },
        None,
        SearchStrategy::BiasedQuaternary,
    );

    rows
}

/// Render the Figure-6 table.
pub fn print(rows: &[Fig6Row], keys: usize) {
    let reference = rows
        .iter()
        .find(|r| r.config == "btree page=128")
        .expect("reference present");
    let (ref_size, ref_ns) = (reference.size_bytes as f64, reference.lookup_ns);
    let mut t = Table::new(
        &format!("Figure 6 — String data ({keys} doc-id keys)"),
        &["Config", "Size (MB)", "Lookup (ns)", "Model (ns)"],
    );
    for r in rows {
        t.row(&[
            r.config.clone(),
            format!(
                "{:.2} ({:.2}x)",
                mb(r.size_bytes),
                r.size_bytes as f64 / ref_size
            ),
            format!("{:.0} ({:.2}x)", r.lookup_ns, ref_ns / r.lookup_ns),
            format!(
                "{:.0} ({:.0}%)",
                r.model_ns,
                100.0 * r.model_ns / r.lookup_ns.max(1e-9)
            ),
        ]);
    }
    t.note("paper@10M: string speedups are modest (0.8-1.1x); model execution dominates; quaternary search gives the best learned time");
    t.print();
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig {
            keys: 20_000,
            queries: 4_000,
            seed: 7,
        }
    }

    #[test]
    fn produces_all_rows() {
        let rows = run(&tiny());
        // 4 btree + 2 learned + 4 hybrid + 1 QS = 11.
        assert_eq!(rows.len(), 11);
        assert!(rows.iter().all(|r| r.lookup_ns > 0.0));
    }

    #[test]
    fn learned_string_index_smaller_than_btree32() {
        let rows = run(&tiny());
        let btree32 = rows.iter().find(|r| r.config == "btree page=32").unwrap();
        let learned = rows
            .iter()
            .find(|r| r.config.starts_with("learned 1"))
            .unwrap();
        assert!(learned.size_bytes < btree32.size_bytes);
    }
}
