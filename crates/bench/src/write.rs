//! Write-path throughput: the sharded concurrent write path under
//! insert load, with lookup latency measured *while the writes run* —
//! across four write strategies per configuration:
//!
//! * **Scalar / inline** — one [`ShardedWritable::insert`] per key;
//!   the inserting thread rebalances inline (the PR-4 baseline).
//! * **Batched / inline** — [`ShardedWritable::insert_batch`] in
//!   [`INSERT_BATCH`]-key chunks: one topology-lock acquisition and one
//!   per-shard lock handoff per chunk instead of per key.
//! * **Scalar / background** — scalar inserts with a
//!   [`RebalanceWorker`] attached: inserts only record pressure; shard
//!   rebuilds happen on the worker thread, off the insert path.
//! * **Tiered** — scalar inserts with `max_runs =` [`TIERED_MAX_RUNS`]
//!   and a worker attached: full buffers *seal* into immutable sorted
//!   runs (O(buffer), no retrain) and the worker folds full run stacks
//!   into the base with one retrain per [`TIERED_MAX_RUNS`] buffers —
//!   the LSM-style write path, so the hot insert path never pays a
//!   base retrain.
//!
//! The paper's Appendix D.1 sketches the buffer-and-retrain insert
//! strategy; "Learned Indexes for a Google-scale Disk-based Database"
//! shows that sustaining it under concurrent traffic is where the
//! engineering lives. For every configuration in [`WRITE_SHARD_GRID`] ×
//! [`MERGE_THRESHOLDS`] a writer thread floods fresh keys while the
//! measuring thread samples point-lookup latency: inserts per second,
//! p99 lookup-under-writes latency, and the rebalance activity the
//! load provoked.
//!
//! On a single-core host the writer, the measuring reader and (in the
//! background rows) the worker contend for the same CPU, so the
//! absolute numbers measure interleaving, not parallel capacity — the
//! table prints `available_parallelism` so the reader can judge
//! (EXPERIMENTS.md records the caveat).

use crate::harness::{BenchConfig, LatencySummary};
use crate::table::Table;
use li_data::Dataset;
use li_obs::Histogram;
use li_serve::{RebalanceConfig, RebalanceWorker, ShardedWritable, ShardedWritableConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Initial shard counts measured.
pub const WRITE_SHARD_GRID: [usize; 3] = [1, 4, 8];

/// Per-shard delta merge thresholds measured.
pub const MERGE_THRESHOLDS: [usize; 2] = [1_000, 16_000];

/// Chunk size for the batched write mode. Sized like the read path's
/// batch experiments: big enough to amortize the topology lock and to
/// give the per-shard phase-split base probes real memory-level
/// parallelism, small enough to stay cache-resident.
pub const INSERT_BATCH: usize = 4096;

/// Run-stack bound for the tiered mode: one base retrain per this many
/// sealed buffers (vs one per buffer in the untiered modes). Four
/// balances the retrain amortization (insert throughput) against the
/// lookup fan-out — every read probes the stack before the base, so a
/// deeper stack trades write speed for lookup tail latency.
pub const TIERED_MAX_RUNS: usize = 4;

/// How the writer drives its inserts for one measured sub-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// One `insert` per key; inline rebalancing.
    Scalar,
    /// `insert_batch` in [`INSERT_BATCH`]-key chunks; inline
    /// rebalancing.
    Batched,
    /// One `insert` per key; a background [`RebalanceWorker`] owns
    /// rebalancing.
    Background,
    /// One `insert` per key with `max_runs =` [`TIERED_MAX_RUNS`] and a
    /// background worker: buffers seal into runs, the worker compacts.
    Tiered,
}

impl WriteMode {
    /// All modes, in measurement (and table-column) order.
    pub const ALL: [WriteMode; 4] = [
        WriteMode::Scalar,
        WriteMode::Batched,
        WriteMode::Background,
        WriteMode::Tiered,
    ];

    /// The CLI / table name of the mode.
    pub fn name(self) -> &'static str {
        match self {
            WriteMode::Scalar => "scalar",
            WriteMode::Batched => "batched",
            WriteMode::Background => "bg",
            WriteMode::Tiered => "tiered",
        }
    }

    /// Parse a CLI mode name (as listed by [`WriteMode::name`]).
    ///
    /// # Examples
    /// ```
    /// use li_bench::write::WriteMode;
    ///
    /// assert_eq!(WriteMode::parse("tiered"), Some(WriteMode::Tiered));
    /// assert_eq!(WriteMode::parse("bg"), Some(WriteMode::Background));
    /// assert_eq!(WriteMode::parse("nope"), None);
    /// ```
    pub fn parse(s: &str) -> Option<WriteMode> {
        WriteMode::ALL.into_iter().find(|m| m.name() == s)
    }
}

/// Stats of one measured (configuration, mode) sub-run.
#[derive(Debug, Clone)]
pub struct ModeStats {
    /// Distinct keys the writer newly inserted (mode-independent: all
    /// three modes drive the same stream, so this must agree across
    /// them — the smoke test asserts it).
    pub inserted: usize,
    /// Newly inserted keys per second sustained by the writer.
    pub inserts_per_sec: f64,
    /// Mean point-lookup ns while the writer ran.
    pub mean_lookup_ns: f64,
    /// p99 point-lookup ns while the writer ran.
    pub p99_lookup_ns: f64,
    /// Shard splits the load provoked.
    pub splits: usize,
    /// Shard merges the load provoked.
    pub shard_merges: usize,
    /// Run-stack compactions the load provoked (tiered mode only;
    /// always 0 elsewhere).
    pub compactions: usize,
    /// Final shard count after the load.
    pub final_shards: usize,
}

/// One measured write configuration: the requested modes side by side
/// (`None` = mode filtered out by [`run_modes`]).
#[derive(Debug, Clone)]
pub struct WriteRow {
    /// Initial shard count.
    pub shards: usize,
    /// Per-shard delta merge threshold.
    pub merge_threshold: usize,
    /// Scalar inserts, inline rebalancing (the baseline).
    pub scalar: Option<ModeStats>,
    /// Batched inserts, inline rebalancing.
    pub batched: Option<ModeStats>,
    /// Scalar inserts, background rebalance worker.
    pub background: Option<ModeStats>,
    /// Scalar inserts, sealed-run tiering + background compaction.
    pub tiered: Option<ModeStats>,
}

impl WriteRow {
    /// The stats measured for `mode`, if that mode ran.
    pub fn mode(&self, mode: WriteMode) -> Option<&ModeStats> {
        match mode {
            WriteMode::Scalar => self.scalar.as_ref(),
            WriteMode::Batched => self.batched.as_ref(),
            WriteMode::Background => self.background.as_ref(),
            WriteMode::Tiered => self.tiered.as_ref(),
        }
    }
}

/// Greatest common divisor (for choosing a permutation stride).
fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Run one (configuration, mode) sub-run: the writer floods `inserts`
/// fresh keys (scalar or batched) while the measuring thread samples
/// lookups; in background mode a worker owns rebalancing for the
/// duration.
fn run_one(
    initial: &[u64],
    inserts: &[u64],
    lookups: &[u64],
    shards: usize,
    merge_threshold: usize,
    mode: WriteMode,
) -> ModeStats {
    // Split pressure scaled so the grid provokes real rebalancing:
    // the keyset doubles over the run, and a shard splits once it
    // outgrows its initial fair share by 1.5x — so every configuration
    // pays the topology-maintenance cost it would pay in production.
    let max_shard_len = (initial.len() * 3 / (2 * shards.max(1))).max(1024);
    let config = ShardedWritableConfig {
        merge_threshold,
        max_runs: if mode == WriteMode::Tiered {
            TIERED_MAX_RUNS
        } else {
            0
        },
        rebalance: RebalanceConfig {
            max_shard_len,
            merge_max_len: (max_shard_len / 4).max(1),
            ..RebalanceConfig::default()
        },
        ..ShardedWritableConfig::default()
    };
    let sw = Arc::new(ShardedWritable::new(initial.to_vec(), shards, config));
    let worker = matches!(mode, WriteMode::Background | WriteMode::Tiered)
        .then(|| RebalanceWorker::spawn(Arc::clone(&sw)));

    let done = AtomicBool::new(false);
    // Every sampled lookup lands in the shared li-obs histogram; the
    // mean/p99 columns come from its snapshot (same quantile engine as
    // the serving tier's own metrics).
    let lookup_hist = Histogram::new();
    let mut write_secs = 0.0f64;
    let mut inserted = 0usize;

    std::thread::scope(|scope| {
        let sw_ref = &*sw;
        let done_ref = &done;
        let writer = scope.spawn(move || {
            let t0 = Instant::now();
            let mut n = 0usize;
            match mode {
                WriteMode::Scalar | WriteMode::Background | WriteMode::Tiered => {
                    for &k in inserts {
                        n += usize::from(sw_ref.insert(k));
                    }
                }
                WriteMode::Batched => {
                    for chunk in inserts.chunks(INSERT_BATCH) {
                        n += sw_ref.insert_batch(chunk).iter().filter(|&&f| f).count();
                    }
                }
            }
            let secs = t0.elapsed().as_secs_f64();
            done_ref.store(true, Ordering::Release);
            (n, secs)
        });

        // Measuring loop: sample lookups until the writer finishes,
        // then keep cycling so every configured lookup gets a sample
        // even if the writer is quick.
        let mut acc = 0usize;
        for (i, &q) in lookups.iter().cycle().enumerate() {
            if i >= lookups.len() && done.load(Ordering::Acquire) {
                break;
            }
            let t0 = Instant::now();
            acc += usize::from(sw.contains(q));
            lookup_hist.record_since(t0);
        }
        std::hint::black_box(acc);

        let (n, secs) = writer.join().expect("writer panicked");
        inserted = n;
        write_secs = secs;
    });

    if let Some(worker) = &worker {
        // Let the worker finish any in-flight rebuild so the final
        // split/merge counters are settled before we read them.
        worker.wait_until_stable(Duration::from_secs(30));
    }
    drop(worker);

    let lat = LatencySummary::of(&lookup_hist);
    ModeStats {
        inserted,
        inserts_per_sec: inserted as f64 / write_secs.max(1e-9),
        mean_lookup_ns: lat.mean_ns,
        p99_lookup_ns: lat.p99_ns as f64,
        splits: sw.splits(),
        shard_merges: sw.shard_merges(),
        compactions: sw.compactions(),
        final_shards: sw.shard_count(),
    }
}

/// Run the full write grid (all of [`WriteMode::ALL`]); see
/// [`run_modes`] to measure a subset.
pub fn run(cfg: &BenchConfig) -> Vec<WriteRow> {
    run_modes(cfg, &WriteMode::ALL)
}

/// Run the write grid on the Lognormal dataset: half the keys seed the
/// structure, the other half arrive as concurrent inserts — one
/// measured sub-run per requested mode per configuration (modes not in
/// `modes` stay `None` in every [`WriteRow`]).
pub fn run_modes(cfg: &BenchConfig, modes: &[WriteMode]) -> Vec<WriteRow> {
    let keyset = Dataset::Lognormal.generate(cfg.keys, cfg.seed);
    let keys = keyset.keys();
    // Even positions seed the structure; odd positions are the insert
    // stream (shuffled order via stride so inserts hit every shard).
    let initial: Vec<u64> = keys.iter().copied().step_by(2).collect();
    let mut inserts: Vec<u64> = keys.iter().copied().skip(1).step_by(2).collect();
    // Deterministic de-clustering: remap the sorted insert stream by a
    // stride *coprime* with its length, so `i -> (i * stride) % n` is a
    // permutation — every key inserted exactly once, in shuffled order.
    let n = inserts.len();
    if n > 1 {
        let mut stride = (n / 2) | 1;
        while gcd(stride, n) != 1 {
            stride += 2;
        }
        inserts = (0..n).map(|i| inserts[(i * stride) % n]).collect();
    }
    let lookups = keyset.sample_existing(cfg.queries.clamp(1, 20_000), cfg.seed ^ 0x5712);

    WRITE_SHARD_GRID
        .iter()
        .flat_map(|&shards| {
            MERGE_THRESHOLDS
                .iter()
                .map(move |&mt| (shards, mt))
                .collect::<Vec<_>>()
        })
        .map(|(shards, mt)| {
            let measure = |mode: WriteMode| {
                modes
                    .contains(&mode)
                    .then(|| run_one(&initial, &inserts, &lookups, shards, mt, mode))
            };
            WriteRow {
                shards,
                merge_threshold: mt,
                scalar: measure(WriteMode::Scalar),
                batched: measure(WriteMode::Batched),
                background: measure(WriteMode::Background),
                tiered: measure(WriteMode::Tiered),
            }
        })
        .collect()
}

/// Render the write-path table. Modes not measured print `-`.
pub fn print(rows: &[WriteRow], keys: usize) {
    let ips = |m: Option<&ModeStats>| {
        m.map_or_else(|| "-".into(), |m| format!("{:.0}", m.inserts_per_sec))
    };
    let p99 =
        |m: Option<&ModeStats>| m.map_or_else(|| "-".into(), |m| format!("{:.0}", m.p99_lookup_ns));
    let ratio = |m: Option<&ModeStats>, base: Option<&ModeStats>| match (m, base) {
        (Some(m), Some(b)) => format!("{:.2}", m.inserts_per_sec / b.inserts_per_sec.max(1e-9)),
        _ => "-".into(),
    };
    let mut t = Table::new(
        &format!(
            "Write path — ShardedWritable on Lognormal ({keys} keys, half inserted live; batch = {INSERT_BATCH}; tiered max_runs = {TIERED_MAX_RUNS})"
        ),
        &[
            "Shards",
            "Merge thr.",
            "Scalar ins/s",
            "Batched ins/s",
            "Batch x",
            "BG ins/s",
            "Tiered ins/s",
            "Tiered x",
            "p99 inline (ns)",
            "p99 BG (ns)",
            "p99 tiered (ns)",
            "Rebal (s/m, BG)",
            "Compactions",
            "Final shards",
        ],
    );
    for r in rows {
        let (sc, ba, bg, ti) = (
            r.scalar.as_ref(),
            r.batched.as_ref(),
            r.background.as_ref(),
            r.tiered.as_ref(),
        );
        t.row(&[
            r.shards.to_string(),
            r.merge_threshold.to_string(),
            ips(sc),
            ips(ba),
            ratio(ba, sc),
            ips(bg),
            ips(ti),
            ratio(ti, sc),
            p99(sc),
            p99(bg),
            p99(ti),
            bg.map_or_else(
                || "-".into(),
                |m| format!("{}/{}", m.splits, m.shard_merges),
            ),
            ti.map_or_else(|| "-".into(), |m| m.compactions.to_string()),
            [ti, bg, ba, sc]
                .into_iter()
                .flatten()
                .next()
                .map_or_else(|| "-".into(), |m| m.final_shards.to_string()),
        ]);
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    t.note(&format!(
        "lookups sampled concurrently with the insert stream; host exposes {cores} core(s) — on 1 core the numbers measure interleaving, not parallel capacity"
    ));
    t.note("mean/p99 lookup latency comes from an li-obs log-linear histogram (bounded-error quantiles, same engine as the serving tier's metrics)");
    t.note("Scalar/Batched rebalance inline on the inserting thread; BG and Tiered rows attach a RebalanceWorker (rebuilds off the insert path, published with a straggler drain)");
    t.note("Tiered rows seal full buffers into sorted runs (no retrain) and the worker folds full stacks into the base — one retrain per max_runs buffers; Compactions counts those folds");
    t.note("splits/merges = rebalance actions the load provoked (a shard splits at 1.5x its initial fair share; the keyset doubles over the run)");
    t.print();
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_covers_the_grid_and_modes() {
        let rows = run(&BenchConfig {
            keys: 6_000,
            queries: 500,
            seed: 7,
        });
        assert_eq!(rows.len(), WRITE_SHARD_GRID.len() * MERGE_THRESHOLDS.len());
        for r in &rows {
            for mode in WriteMode::ALL {
                let m = r.mode(mode).expect("run() measures every mode");
                let label = mode.name();
                assert!(m.inserts_per_sec > 0.0, "{label}: {m:?}");
                // No relationship asserted between mean and p99: the
                // latency distribution is heavy-tailed (a lookup landing
                // behind a whole-base retrain costs milliseconds), so the
                // mean can legitimately exceed p99 on a loaded host.
                assert!(m.mean_lookup_ns > 0.0 && m.p99_lookup_ns > 0.0, "{label}");
                assert!(m.final_shards >= 1, "{label}");
                // Only the tiered mode ever compacts.
                if mode != WriteMode::Tiered {
                    assert_eq!(m.compactions, 0, "{label}");
                }
            }
            // All modes drive the same insert stream, so they must
            // agree on how many keys were newly inserted (throughput
            // differs, semantics must not — a mode that dropped or
            // double-counted keys fails here).
            let scalar = r.scalar.as_ref().unwrap();
            assert!(scalar.inserted > 0, "{r:?}");
            for mode in [WriteMode::Batched, WriteMode::Background, WriteMode::Tiered] {
                assert_eq!(scalar.inserted, r.mode(mode).unwrap().inserted, "{r:?}");
            }
        }
    }

    #[test]
    fn run_modes_filters_to_the_requested_subset() {
        let rows = run_modes(
            &BenchConfig {
                keys: 4_000,
                queries: 200,
                seed: 11,
            },
            &[WriteMode::Scalar, WriteMode::Tiered],
        );
        for r in &rows {
            assert!(r.scalar.is_some() && r.tiered.is_some(), "{r:?}");
            assert!(r.batched.is_none() && r.background.is_none(), "{r:?}");
            // The tiered stream inserts the same keyset and — at the
            // 1k threshold — seals instead of merging, provoking
            // worker-side compactions under sustained load.
            assert_eq!(
                r.scalar.as_ref().unwrap().inserted,
                r.tiered.as_ref().unwrap().inserted
            );
        }
    }

    #[test]
    fn mode_names_round_trip() {
        for mode in WriteMode::ALL {
            assert_eq!(WriteMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(WriteMode::parse("Scalar"), None, "names are lowercase");
    }

    #[test]
    fn declustering_stride_is_a_permutation() {
        // Regression: n ≡ 2 (mod 4) made the old stride share a factor
        // with n, collapsing the stream onto 2 distinct keys.
        for n in [1usize, 2, 7, 50_002, 100_000, 99_999] {
            let mut stride = (n / 2) | 1;
            while gcd(stride, n) != 1 {
                stride += 2;
            }
            let mut seen = vec![false; n];
            for i in 0..n {
                seen[(i * stride) % n] = true;
            }
            assert!(seen.iter().all(|&s| s), "n={n} stride={stride}");
        }
    }
}
