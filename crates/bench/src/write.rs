//! Write-path throughput: the sharded concurrent write path under
//! insert load, with lookup latency measured *while the writes run*.
//!
//! The paper's Appendix D.1 sketches the buffer-and-retrain insert
//! strategy; "Learned Indexes for a Google-scale Disk-based Database"
//! shows that sustaining it under concurrent traffic is where the
//! engineering lives. This experiment drives a
//! [`ShardedWritable`] with a writer thread flooding fresh keys while
//! the measuring thread samples point-lookup latency, for every
//! configuration in [`WRITE_SHARD_GRID`] × [`MERGE_THRESHOLDS`]:
//! inserts per second, mean and p99 lookup-under-writes latency, and
//! the rebalance activity (splits/merges) the load provoked.
//!
//! On a single-core host the writer and the measuring reader contend
//! for the same CPU, so the absolute numbers measure interleaving, not
//! parallel capacity — the table prints `available_parallelism` so the
//! reader can judge (EXPERIMENTS.md records the caveat).

use crate::harness::BenchConfig;
use crate::table::Table;
use li_data::Dataset;
use li_serve::{RebalanceConfig, ShardedWritable, ShardedWritableConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Initial shard counts measured.
pub const WRITE_SHARD_GRID: [usize; 3] = [1, 4, 8];

/// Per-shard delta merge thresholds measured.
pub const MERGE_THRESHOLDS: [usize; 2] = [1_000, 16_000];

/// One measured write configuration.
#[derive(Debug, Clone)]
pub struct WriteRow {
    /// Initial shard count.
    pub shards: usize,
    /// Per-shard delta merge threshold.
    pub merge_threshold: usize,
    /// Newly inserted keys per second sustained by the writer.
    pub inserts_per_sec: f64,
    /// Mean point-lookup ns while the writer ran.
    pub mean_lookup_ns: f64,
    /// p99 point-lookup ns while the writer ran.
    pub p99_lookup_ns: f64,
    /// Shard splits the load provoked.
    pub splits: usize,
    /// Shard merges the load provoked.
    pub shard_merges: usize,
    /// Final shard count after the load.
    pub final_shards: usize,
}

/// Greatest common divisor (for choosing a permutation stride).
fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// p-th percentile (0..=100) of unsorted latency samples, in place.
fn percentile(samples: &mut [u64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    let rank = ((samples.len() - 1) as f64 * p / 100.0).round() as usize;
    samples[rank] as f64
}

/// Run one configuration: writer floods `inserts` fresh keys while the
/// measuring thread samples lookups; returns the row.
fn run_one(
    initial: &[u64],
    inserts: &[u64],
    lookups: &[u64],
    shards: usize,
    merge_threshold: usize,
) -> WriteRow {
    // Split pressure scaled so the grid provokes real rebalancing:
    // the keyset doubles over the run, and a shard splits once it
    // outgrows its initial fair share by 1.5x — so every configuration
    // pays the topology-maintenance cost it would pay in production.
    let max_shard_len = (initial.len() * 3 / (2 * shards.max(1))).max(1024);
    let config = ShardedWritableConfig {
        merge_threshold,
        rebalance: RebalanceConfig {
            max_shard_len,
            merge_max_len: (max_shard_len / 4).max(1),
            ..RebalanceConfig::default()
        },
        ..ShardedWritableConfig::default()
    };
    let sw = ShardedWritable::new(initial.to_vec(), shards, config);

    let done = AtomicBool::new(false);
    let mut samples: Vec<u64> = Vec::with_capacity(lookups.len());
    let mut write_secs = 0.0f64;
    let mut inserted = 0usize;

    std::thread::scope(|scope| {
        let sw_ref = &sw;
        let done_ref = &done;
        let writer = scope.spawn(move || {
            let t0 = Instant::now();
            let mut n = 0usize;
            for &k in inserts {
                n += usize::from(sw_ref.insert(k));
            }
            let secs = t0.elapsed().as_secs_f64();
            done_ref.store(true, Ordering::Release);
            (n, secs)
        });

        // Measuring loop: sample lookups until the writer finishes,
        // then keep cycling so every configured lookup gets a sample
        // even if the writer is quick.
        let mut acc = 0usize;
        for (i, &q) in lookups.iter().cycle().enumerate() {
            if i >= lookups.len() && done.load(Ordering::Acquire) {
                break;
            }
            let t0 = Instant::now();
            acc += usize::from(sw.contains(q));
            let ns = t0.elapsed().as_nanos() as u64;
            if samples.len() < samples.capacity() {
                samples.push(ns);
            } else {
                samples[i % lookups.len()] = ns;
            }
        }
        std::hint::black_box(acc);

        let (n, secs) = writer.join().expect("writer panicked");
        inserted = n;
        write_secs = secs;
    });

    let mean = samples.iter().sum::<u64>() as f64 / samples.len().max(1) as f64;
    let p99 = percentile(&mut samples, 99.0);
    WriteRow {
        shards,
        merge_threshold,
        inserts_per_sec: inserted as f64 / write_secs.max(1e-9),
        mean_lookup_ns: mean,
        p99_lookup_ns: p99,
        splits: sw.splits(),
        shard_merges: sw.shard_merges(),
        final_shards: sw.shard_count(),
    }
}

/// Run the write grid on the Lognormal dataset: half the keys seed the
/// structure, the other half arrive as concurrent inserts.
pub fn run(cfg: &BenchConfig) -> Vec<WriteRow> {
    let keyset = Dataset::Lognormal.generate(cfg.keys, cfg.seed);
    let keys = keyset.keys();
    // Even positions seed the structure; odd positions are the insert
    // stream (shuffled order via stride so inserts hit every shard).
    let initial: Vec<u64> = keys.iter().copied().step_by(2).collect();
    let mut inserts: Vec<u64> = keys.iter().copied().skip(1).step_by(2).collect();
    // Deterministic de-clustering: remap the sorted insert stream by a
    // stride *coprime* with its length, so `i -> (i * stride) % n` is a
    // permutation — every key inserted exactly once, in shuffled order.
    let n = inserts.len();
    if n > 1 {
        let mut stride = (n / 2) | 1;
        while gcd(stride, n) != 1 {
            stride += 2;
        }
        inserts = (0..n).map(|i| inserts[(i * stride) % n]).collect();
    }
    let lookups = keyset.sample_existing(cfg.queries.clamp(1, 20_000), cfg.seed ^ 0x5712);

    WRITE_SHARD_GRID
        .iter()
        .flat_map(|&shards| {
            MERGE_THRESHOLDS
                .iter()
                .map(move |&mt| (shards, mt))
                .collect::<Vec<_>>()
        })
        .map(|(shards, mt)| run_one(&initial, &inserts, &lookups, shards, mt))
        .collect()
}

/// Render the write-path table.
pub fn print(rows: &[WriteRow], keys: usize) {
    let mut t = Table::new(
        &format!("Write path — ShardedWritable on Lognormal ({keys} keys, half inserted live)"),
        &[
            "Shards",
            "Merge thr.",
            "Inserts/s",
            "Lookup mean (ns)",
            "Lookup p99 (ns)",
            "Splits",
            "Merges",
            "Final shards",
        ],
    );
    for r in rows {
        t.row(&[
            r.shards.to_string(),
            r.merge_threshold.to_string(),
            format!("{:.0}", r.inserts_per_sec),
            format!("{:.0}", r.mean_lookup_ns),
            format!("{:.0}", r.p99_lookup_ns),
            r.splits.to_string(),
            r.shard_merges.to_string(),
            r.final_shards.to_string(),
        ]);
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    t.note(&format!(
        "lookups sampled concurrently with the insert stream; host exposes {cores} core(s) — on 1 core the numbers measure interleaving, not parallel capacity"
    ));
    t.note("splits/merges = rebalance actions the load provoked (a shard splits at 1.5x its initial fair share; the keyset doubles over the run)");
    t.print();
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_covers_the_grid() {
        let rows = run(&BenchConfig {
            keys: 6_000,
            queries: 500,
            seed: 7,
        });
        assert_eq!(rows.len(), WRITE_SHARD_GRID.len() * MERGE_THRESHOLDS.len());
        for r in &rows {
            assert!(r.inserts_per_sec > 0.0, "{r:?}");
            // No relationship asserted between mean and p99: the
            // latency distribution is heavy-tailed (a lookup landing
            // behind a whole-base retrain costs milliseconds), so the
            // mean can legitimately exceed p99 on a loaded host.
            assert!(r.mean_lookup_ns > 0.0 && r.p99_lookup_ns > 0.0, "{r:?}");
            assert!(r.final_shards >= 1);
        }
    }

    #[test]
    fn declustering_stride_is_a_permutation() {
        // Regression: n ≡ 2 (mod 4) made the old stride share a factor
        // with n, collapsing the stream onto 2 distinct keys.
        for n in [1usize, 2, 7, 50_002, 100_000, 99_999] {
            let mut stride = (n / 2) | 1;
            while gcd(stride, n) != 1 {
                stride += 2;
            }
            let mut seen = vec![false; n];
            for i in 0..n {
                seen[(i * stride) % n] = true;
            }
            assert!(seen.iter().all(|&s| s), "n={n} stride={stride}");
        }
    }

    #[test]
    fn percentile_is_monotone_and_bounded() {
        let mut s: Vec<u64> = (1..=100).rev().collect();
        assert_eq!(percentile(&mut s.clone(), 0.0), 1.0);
        assert_eq!(percentile(&mut s.clone(), 100.0), 100.0);
        let p50 = percentile(&mut s.clone(), 50.0);
        let p99 = percentile(&mut s, 99.0);
        assert!(p50 <= p99);
        assert_eq!(percentile(&mut [], 99.0), 0.0);
    }
}
