//! Warm-restart economics: cold build (train every model) vs warm load
//! (map the key file, deserialize coefficients) — beyond the paper.
//!
//! The paper's learned indexes are expensive to *train* and cheap to
//! *evaluate*; this experiment measures the operational consequence: a
//! serving snapshot on disk turns restart cost from "retrain the world"
//! into "map one file". For each structure the harness:
//!
//! 1. cold-builds over the keyset (every model trained from scratch),
//! 2. saves a snapshot (atomic tmp + rename publish),
//! 3. loads it back into a fresh structure, and
//! 4. verifies lookup parity between the original and the loaded copy
//!    on a sampled probe set (plus a full range sweep for the write
//!    path).
//!
//! [`li_core::train_count`] is read across the load to certify that the
//! warm path trained **zero** models — the speedup is structural, not a
//! cache artifact.

use crate::harness::BenchConfig;
use crate::table::Table;
use li_data::Dataset;
use li_serve::{RangeIndex, RmiShardBuilder, ShardedIndex, ShardedWritable, ShardedWritableConfig};
use std::time::Instant;

/// Shard count for both measured structures.
pub const PERSIST_SHARDS: usize = 8;

/// One structure's cold-vs-warm measurement.
#[derive(Debug, Clone)]
pub struct PersistRow {
    /// Which structure ("sharded-index" or "sharded-writable").
    pub structure: &'static str,
    /// Keys in the snapshot.
    pub keys: usize,
    /// Wall-clock ms to cold-build (train all models).
    pub cold_build_ms: f64,
    /// Wall-clock ms to save the snapshot.
    pub save_ms: f64,
    /// Snapshot file size in MiB.
    pub file_mib: f64,
    /// Wall-clock ms to warm-load the snapshot.
    pub warm_load_ms: f64,
    /// `cold_build_ms / warm_load_ms`.
    pub speedup: f64,
    /// Models trained during the load (must be 0).
    pub loads_trained: u64,
    /// Probes whose answers matched between original and loaded copy.
    pub parity_checked: usize,
    /// Whether the loaded key payload is served zero-copy from the
    /// mapped file (read tier; the write tier maps per-shard bases the
    /// same way).
    pub mapped: bool,
}

fn tmp_snapshot(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "li-bench-persist-{}-{tag}.lidx",
        std::process::id()
    ))
}

fn file_mib(path: &std::path::Path) -> f64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0) as f64 / (1024.0 * 1024.0)
}

/// Measure the read tier: [`ShardedIndex`] over the full keyset.
fn run_sharded_index(keys: &[u64], probes: &[u64]) -> PersistRow {
    let path = tmp_snapshot("index");

    let t0 = Instant::now();
    let cold = ShardedIndex::build(keys.to_vec(), PERSIST_SHARDS, &RmiShardBuilder::new());
    let cold_build_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    cold.save(&path).expect("save failed");
    let save_ms = t0.elapsed().as_secs_f64() * 1e3;

    let trained_before = li_core::train_count();
    let t0 = Instant::now();
    let warm = ShardedIndex::load(&path).expect("load failed");
    let warm_load_ms = t0.elapsed().as_secs_f64() * 1e3;
    let loads_trained = li_core::train_count() - trained_before;

    let mut parity_checked = 0usize;
    for &q in probes {
        assert_eq!(warm.lower_bound(q), cold.lower_bound(q), "parity q={q}");
        parity_checked += 1;
    }
    let row = PersistRow {
        structure: "sharded-index",
        keys: keys.len(),
        cold_build_ms,
        save_ms,
        file_mib: file_mib(&path),
        warm_load_ms,
        speedup: cold_build_ms / warm_load_ms.max(1e-9),
        loads_trained,
        parity_checked,
        mapped: warm.key_store().is_mapped(),
    };
    let _ = std::fs::remove_file(&path);
    row
}

/// Measure the write tier: [`ShardedWritable`] over the full keyset
/// with a slice of fresh keys left *pending* in the delta buffers, so
/// the snapshot carries live write-path state, not just trained bases.
fn run_sharded_writable(keys: &[u64], probes: &[u64]) -> PersistRow {
    let path = tmp_snapshot("writable");

    let t0 = Instant::now();
    let cold = ShardedWritable::new(
        keys.to_vec(),
        PERSIST_SHARDS,
        ShardedWritableConfig::default(),
    );
    let cold_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    // Park some inserts below the merge threshold: they must survive
    // the round trip as *pending* keys, without a merge.
    for &k in keys.iter().step_by(keys.len().max(1) / 64 + 1) {
        cold.insert(k | 1);
    }

    let t0 = Instant::now();
    cold.save(&path).expect("save failed");
    let save_ms = t0.elapsed().as_secs_f64() * 1e3;

    let trained_before = li_core::train_count();
    let t0 = Instant::now();
    let warm = ShardedWritable::load(&path).expect("load failed");
    let warm_load_ms = t0.elapsed().as_secs_f64() * 1e3;
    let loads_trained = li_core::train_count() - trained_before;

    let mut parity_checked = 0usize;
    for &q in probes {
        assert_eq!(warm.contains(q), cold.contains(q), "parity q={q}");
        assert_eq!(warm.contains(q | 1), cold.contains(q | 1), "parity q={q}|1");
        parity_checked += 2;
    }
    assert_eq!(warm.len(), cold.len(), "cardinality parity");
    let row = PersistRow {
        structure: "sharded-writable",
        keys: warm.len(),
        cold_build_ms,
        save_ms,
        file_mib: file_mib(&path),
        warm_load_ms,
        speedup: cold_build_ms / warm_load_ms.max(1e-9),
        loads_trained,
        parity_checked,
        mapped: true, // per-shard bases map the same region (see li-serve tests)
    };
    let _ = std::fs::remove_file(&path);
    row
}

/// Run the persistence experiment on the Lognormal dataset.
pub fn run(cfg: &BenchConfig) -> Vec<PersistRow> {
    let keyset = Dataset::Lognormal.generate(cfg.keys, cfg.seed);
    let probes = keyset.sample_existing(cfg.queries.clamp(1, 20_000), cfg.seed ^ 0x9e37);
    vec![
        run_sharded_index(keyset.keys(), &probes),
        run_sharded_writable(keyset.keys(), &probes),
    ]
}

/// Render the persistence table.
pub fn print(rows: &[PersistRow], keys: usize) {
    let mut t = Table::new(
        &format!("Persistence — cold build vs warm load on Lognormal ({keys} keys, {PERSIST_SHARDS} shards)"),
        &[
            "Structure",
            "Keys",
            "Cold build (ms)",
            "Save (ms)",
            "File (MiB)",
            "Warm load (ms)",
            "Speedup",
            "Trained on load",
            "Parity probes",
            "Mapped",
        ],
    );
    for r in rows {
        t.row(&[
            r.structure.to_string(),
            r.keys.to_string(),
            format!("{:.1}", r.cold_build_ms),
            format!("{:.1}", r.save_ms),
            format!("{:.2}", r.file_mib),
            format!("{:.1}", r.warm_load_ms),
            format!("{:.1}x", r.speedup),
            r.loads_trained.to_string(),
            r.parity_checked.to_string(),
            if r.mapped { "yes" } else { "no" }.to_string(),
        ]);
    }
    t.note("warm load maps the page-aligned key payload (zero-copy on 64-bit LE unix) and rebuilds every model from saved coefficients — 'Trained on load' counts Rmi::build calls during the load and must be 0");
    t.note("parity probes compare the loaded copy's answers against the original, per structure; the write tier also round-trips its pending delta buffers");
    t.print();
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_round_trips_both_structures() {
        let rows = run(&BenchConfig {
            keys: 20_000,
            queries: 500,
            seed: 11,
        });
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.cold_build_ms > 0.0, "{r:?}");
            assert!(r.warm_load_ms > 0.0, "{r:?}");
            assert!(r.file_mib > 0.0, "{r:?}");
            assert!(r.parity_checked > 0, "{r:?}");
            assert_eq!(r.loads_trained, 0, "warm load must train nothing: {r:?}");
        }
        assert!(rows[0].mapped, "read tier must map the payload");
    }
}
