//! Figure 8: reduction of hash conflicts — learned vs random hashing.
//!
//! §4.2: "We evaluated the conflict rate of learned hash functions over
//! the three integer data sets … As our model hash-functions we used the
//! 2-stage RMI models … with 100k models on the 2nd stage and without
//! any hidden layers. As the baseline we used a simple MurmurHash3-like
//! hash-function and compared the number of conflicts for a table with
//! the same number of slots as records."

use crate::harness::{time_batch_ns, BenchConfig};
use crate::table::Table;
use li_data::Dataset;
use li_hash::{conflict_stats, CdfHasher, KeyHasher, MurmurHasher};

/// Conflict measurement for one dataset.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Random-hash conflict rate.
    pub random_rate: f64,
    /// Learned-hash conflict rate.
    pub model_rate: f64,
    /// Reduction: `1 − model/random`.
    pub reduction: f64,
    /// Learned model execution ns per hash.
    pub model_ns: f64,
    /// Murmur execution ns per hash.
    pub random_ns: f64,
}

/// Run the Figure-8 experiment.
pub fn run(cfg: &BenchConfig) -> Vec<Fig8Row> {
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let keyset = ds.generate(cfg.keys, cfg.seed);
        let keys = keyset.keys();
        let slots = keys.len();

        // §4.2 uses 100k leaves at 200M keys (= keys/2000). The paper's
        // leaves each span minutes of wall-clock data at that density;
        // our scaled datasets are sparser per pattern period, so we keep
        // the *wall-clock granularity* equivalent with keys/500 leaves
        // (see li-data::weblog's scale notes).
        let learned = CdfHasher::train(keys, (keys.len() / 500).max(64));
        let random = MurmurHasher::new(cfg.seed);

        let model_stats = conflict_stats(keys, &learned, slots);
        let random_stats = conflict_stats(keys, &random, slots);

        let sample = keyset.sample_existing(cfg.queries.min(keys.len()), cfg.seed ^ 8);
        let model_ns = time_batch_ns(&sample, |q| learned.slot(q, slots));
        let random_ns = time_batch_ns(&sample, |q| random.slot(q, slots));

        rows.push(Fig8Row {
            dataset: ds.name(),
            random_rate: random_stats.conflict_rate(),
            model_rate: model_stats.conflict_rate(),
            reduction: model_stats.reduction_vs(&random_stats),
            model_ns,
            random_ns,
        });
    }
    rows
}

/// Render the Figure-8 table.
pub fn print(rows: &[Fig8Row], keys: usize) {
    let mut t = Table::new(
        &format!("Figure 8 — Reduction of Conflicts ({keys} keys, slots == keys)"),
        &[
            "Dataset",
            "% Conflicts Hash Map",
            "% Conflicts Model",
            "Reduction",
            "Model (ns)",
            "Murmur (ns)",
        ],
    );
    for r in rows {
        t.row(&[
            r.dataset.to_string(),
            format!("{:.1}%", 100.0 * r.random_rate),
            format!("{:.1}%", 100.0 * r.model_rate),
            format!("{:.1}%", 100.0 * r.reduction),
            format!("{:.0}", r.model_ns),
            format!("{:.0}", r.random_ns),
        ]);
    }
    t.note("paper@200M: Map 35.3%→7.9% (77.5% reduction), Web 35.3%→24.7% (30.0%), LogNormal 35.4%→25.9% (26.7%)");
    t.note("paper: model execution ≈25-40ns");
    t.print();
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learned_hash_reduces_conflicts_most_on_maps() {
        let rows = run(&BenchConfig {
            keys: 100_000,
            queries: 20_000,
            seed: 3,
        });
        assert_eq!(rows.len(), 3);
        let maps = rows.iter().find(|r| r.dataset == "Map Data").unwrap();
        let web = rows.iter().find(|r| r.dataset == "Web Data").unwrap();
        let logn = rows
            .iter()
            .find(|r| r.dataset == "Log-Normal Data")
            .unwrap();
        // Random baseline near 1/e for all datasets.
        for r in &rows {
            assert!(
                (0.3..0.45).contains(&r.random_rate),
                "{}: {}",
                r.dataset,
                r.random_rate
            );
        }
        // The paper's ordering: maps shows the biggest reduction.
        assert!(maps.reduction > 0.3, "maps reduction {}", maps.reduction);
        assert!(maps.reduction > web.reduction - 0.05);
        assert!(maps.reduction > logn.reduction - 0.05);
        // Every dataset must see *some* benefit.
        assert!(web.reduction > 0.0, "web {}", web.reduction);
        assert!(logn.reduction > 0.0, "lognormal {}", logn.reduction);
    }
}
