//! Figure 10 + §5.2: learned Bloom filter memory footprint vs FPR.
//!
//! "A normal Bloom filter with a desired 1% FPR requires 2.04MB … we
//! find that our model plus the spillover Bloom filter uses 1.31MB, a
//! 36% reduction in size. If we want to enforce an overall FPR of 0.1%
//! … brings the total Bloom filter size down from 3.06MB to 2.59MB, a
//! 15% reduction." Figure 10 sweeps the FPR for three model sizes
//! (W=128/32/16, E=32).
//!
//! At the default scale we train the paper's GRU (W=16, E=32) plus a
//! smaller GRU and an n-gram logistic regression as the three
//! model-size points; the key/non-key URL sets come from the generator
//! substituting for Google's transparency report.

use crate::harness::BenchConfig;
use crate::table::Table;
use li_bloom::{empirical_fpr, BloomFilter, LearnedBloom};
use li_data::strings::UrlGenerator;
use li_models::{Classifier, GruClassifier, GruConfig, NgramLogReg};

/// One point of the memory-vs-FPR curve.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Model label ("bloom" for the classical baseline).
    pub model: String,
    /// Target overall FPR p*.
    pub target_fpr: f64,
    /// Total memory in bytes (model + overflow, or the plain filter).
    pub total_bytes: usize,
    /// Classifier FNR (0 for the classical filter).
    pub fnr: f64,
    /// Empirical FPR on the held-out test set.
    pub test_fpr: f64,
}

/// The FPR sweep of Figure 10.
pub const FPR_SWEEP: [f64; 4] = [0.001, 0.005, 0.01, 0.02];

/// A trained classifier plus its deployment-size accounting.
enum ClassifierKind {
    Gru(Box<GruClassifier>),
    Ngram(NgramLogReg),
}

impl ClassifierKind {
    fn deploy_bytes(&self) -> usize {
        match self {
            // f32 accounting, as the paper reports GRU sizes.
            ClassifierKind::Gru(g) => g.size_bytes_f32(),
            ClassifierKind::Ngram(n) => n.size_bytes(),
        }
    }
}

impl Classifier for ClassifierKind {
    fn score(&self, input: &[u8]) -> f64 {
        match self {
            ClassifierKind::Gru(g) => g.score(input),
            ClassifierKind::Ngram(n) => n.score(input),
        }
    }

    fn size_bytes(&self) -> usize {
        self.deploy_bytes()
    }
}

/// Run the Figure-10 sweep. `cfg.keys` is the blacklist size (the paper
/// uses 1.7M URLs; default harness scale uses `keys/10`, capped, because
/// GRU training is the budget item).
pub fn run(cfg: &BenchConfig) -> Vec<Fig10Row> {
    let n_keys = (cfg.keys / 10).clamp(2_000, 50_000);
    let mut gen = UrlGenerator::new(cfg.seed);
    let (keys, mut negs) = gen.dataset(n_keys, n_keys * 2, 0.5);
    let test = negs.split_off(n_keys);
    let validation = negs;

    let kb: Vec<&[u8]> = keys.iter().map(|s| s.as_bytes()).collect();
    let vb: Vec<&[u8]> = validation.iter().map(|s| s.as_bytes()).collect();

    // Classifier training subsample keeps GRU time sane.
    let train_n = kb.len().min(1500);
    let train_pos = &kb[..train_n];
    let train_neg = &vb[..train_n.min(vb.len())];

    let models: Vec<(String, ClassifierKind)> = vec![
        (
            "GRU W=16,E=32".into(),
            ClassifierKind::Gru(Box::new(GruClassifier::train(
                &GruConfig {
                    width: 16,
                    embed: 32,
                    max_len: 24,
                    epochs: 6,
                    learning_rate: 0.02,
                    batch_size: 32,
                    seed: cfg.seed,
                },
                train_pos,
                train_neg,
            ))),
        ),
        (
            "GRU W=8,E=16".into(),
            ClassifierKind::Gru(Box::new(GruClassifier::train(
                &GruConfig {
                    width: 8,
                    embed: 16,
                    max_len: 24,
                    epochs: 6,
                    learning_rate: 0.02,
                    batch_size: 32,
                    seed: cfg.seed ^ 1,
                },
                train_pos,
                train_neg,
            ))),
        ),
        (
            "ngram-logreg 2^13".into(),
            ClassifierKind::Ngram(NgramLogReg::train(
                13, 8, 0.1, train_pos, train_neg, cfg.seed,
            )),
        ),
    ];

    let mut rows = Vec::new();
    for p in FPR_SWEEP {
        let mut bf = BloomFilter::new(keys.len(), p);
        for k in &kb {
            bf.insert(k);
        }
        rows.push(Fig10Row {
            model: "bloom".into(),
            target_fpr: p,
            total_bytes: bf.size_bytes(),
            fnr: 0.0,
            test_fpr: empirical_fpr(|x| bf.contains(x), test.iter().map(|s| s.as_bytes())),
        });
    }
    for (name, clf) in models {
        for p in FPR_SWEEP {
            let deploy = clf.deploy_bytes();
            let lb = LearnedBloom::build(clone_kind(&clf), &kb, &vb, p, Some(deploy));
            let test_fpr = empirical_fpr(|x| lb.contains(x), test.iter().map(|s| s.as_bytes()));
            rows.push(Fig10Row {
                model: name.clone(),
                target_fpr: p,
                total_bytes: lb.size_bytes(),
                fnr: lb.report().fnr,
                test_fpr,
            });
        }
    }
    rows
}

fn clone_kind(c: &ClassifierKind) -> ClassifierKind {
    match c {
        ClassifierKind::Gru(g) => ClassifierKind::Gru(g.clone()),
        ClassifierKind::Ngram(n) => ClassifierKind::Ngram(n.clone()),
    }
}

/// Render the Figure-10 table.
pub fn print(rows: &[Fig10Row], keys: usize) {
    let mut t = Table::new(
        &format!(
            "Figure 10 / §5.2 — Learned Bloom filter ({} blacklist URLs)",
            keys
        ),
        &[
            "Model",
            "Target FPR",
            "Total (KB)",
            "FNR",
            "Test FPR",
            "vs bloom",
        ],
    );
    for r in rows {
        let baseline = rows
            .iter()
            .find(|b| b.model == "bloom" && b.target_fpr == r.target_fpr)
            .map(|b| b.total_bytes as f64);
        let vs = match baseline {
            Some(b) if r.model != "bloom" => {
                format!("{:+.0}%", 100.0 * (r.total_bytes as f64 - b) / b)
            }
            _ => String::new(),
        };
        t.row(&[
            r.model.clone(),
            format!("{:.2}%", 100.0 * r.target_fpr),
            format!("{:.1}", r.total_bytes as f64 / 1024.0),
            format!("{:.0}%", 100.0 * r.fnr),
            format!("{:.3}%", 100.0 * r.test_fpr),
            vs,
        ]);
    }
    t.note("paper@1.7M URLs: 1% FPR bloom 2.04MB vs learned (W=16,E=32) 1.31MB (-36%); 0.1%: 3.06MB vs 2.59MB (-15%)");
    t.note("negative 'vs bloom' percentages mean the learned filter is smaller");
    t.print();
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_models_and_fprs() {
        let rows = run(&BenchConfig {
            keys: 30_000, // → 3000 URLs
            queries: 0,
            seed: 4,
        });
        // 4 models (incl. bloom) × 4 FPRs.
        assert_eq!(rows.len(), 16);
        // No-false-negative property is asserted inside LearnedBloom
        // tests; here check FPRs are honest.
        for r in &rows {
            assert!(
                r.test_fpr <= r.target_fpr * 4.0 + 0.01,
                "{}: {} vs {}",
                r.model,
                r.test_fpr,
                r.target_fpr
            );
        }
    }

    #[test]
    fn learned_filter_beats_bloom_at_scale_for_some_config() {
        // The §5.2 headline holds when model size amortizes over enough
        // keys relative to FPR cost.
        let rows = run(&BenchConfig {
            keys: 200_000, // → 20k URLs
            queries: 0,
            seed: 9,
        });
        let improved = rows.iter().any(|r| {
            if r.model == "bloom" {
                return false;
            }
            let bloom = rows
                .iter()
                .find(|b| b.model == "bloom" && b.target_fpr == r.target_fpr)
                .unwrap();
            r.total_bytes < bloom.total_bytes
        });
        assert!(improved, "no learned configuration beat the bloom baseline");
    }
}
