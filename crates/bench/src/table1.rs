//! Table 1 (Appendix C): hash-map alternative baselines.
//!
//! "AVX Cuckoo, 32-bit value … AVX Cuckoo, 20 Byte record … Comm.
//! Cuckoo, 20Byte record … In-place chained Hash-map with learned hash
//! functions, record" — lookup time and utilization, on the Lognormal
//! data.

use crate::harness::{time_batch_ns, BenchConfig};
use crate::table::Table;
use li_data::{Dataset, Record20};
use li_hash::{CdfHasher, CuckooHashMap, InPlaceChained};

/// One measured architecture.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Architecture label.
    pub name: &'static str,
    /// Mean lookup ns.
    pub lookup_ns: f64,
    /// Slot utilization (1.0 = 100%).
    pub utilization: f64,
}

/// Run the Table-1 comparison.
pub fn run(cfg: &BenchConfig) -> Vec<Table1Row> {
    let keyset = Dataset::Lognormal.generate(cfg.keys, cfg.seed);
    let keys = keyset.keys();
    let queries = keyset.sample_existing(cfg.queries, cfg.seed ^ 0x7A);
    let mut rows = Vec::new();

    // AVX-style cuckoo with 32-bit values.
    {
        let mut m: CuckooHashMap<u32> = CuckooHashMap::new(keys.len() + keys.len() / 64);
        for &k in keys {
            let _ = m.try_insert(k, (k >> 8) as u32);
        }
        rows.push(Table1Row {
            name: "AVX-style Cuckoo, 32-bit value",
            lookup_ns: time_batch_ns(&queries, |q| m.get(q).map(|v| v as usize).unwrap_or(0)),
            utilization: m.utilization(),
        });
    }

    // AVX-style cuckoo with 20-byte records.
    {
        let mut m: CuckooHashMap<Record20> = CuckooHashMap::new(keys.len() + keys.len() / 64);
        for &k in keys {
            let _ = m.try_insert(k, Record20::from_key(k));
        }
        rows.push(Table1Row {
            name: "AVX-style Cuckoo, 20 Byte record",
            lookup_ns: time_batch_ns(&queries, |q| {
                m.get(q).map(|r| r.payload as usize).unwrap_or(0)
            }),
            utilization: m.utilization(),
        });
    }

    // Commercial-grade cuckoo (validated reads + stash).
    {
        let mut m: CuckooHashMap<Record20> =
            CuckooHashMap::new_commercial(keys.len() + keys.len() / 16);
        for &k in keys {
            let _ = m.try_insert(k, Record20::from_key(k));
        }
        rows.push(Table1Row {
            name: "Comm. Cuckoo, 20 Byte record",
            lookup_ns: time_batch_ns(&queries, |q| {
                m.get(q).map(|r| r.payload as usize).unwrap_or(0)
            }),
            utilization: m.utilization().min(1.0),
        });
    }

    // In-place chained with the learned hash function.
    {
        let hasher = CdfHasher::train(keys, (keys.len() / 2000).max(64));
        let records: Vec<(u64, Record20)> =
            keys.iter().map(|&k| (k, Record20::from_key(k))).collect();
        let m = InPlaceChained::build(&records, hasher);
        rows.push(Table1Row {
            name: "In-place chained w/ learned hash, record",
            lookup_ns: time_batch_ns(&queries, |q| {
                m.get(q).map(|r| r.payload as usize).unwrap_or(0)
            }),
            utilization: m.utilization(),
        });
    }

    rows
}

/// Render Table 1.
pub fn print(rows: &[Table1Row], keys: usize) {
    let mut t = Table::new(
        &format!("Table 1 (App. C) — Hash-map alternatives, Lognormal ({keys} keys)"),
        &["Type", "Time (ns)", "Utilization"],
    );
    for r in rows {
        t.row(&[
            r.name.to_string(),
            format!("{:.0}", r.lookup_ns),
            format!("{:.0}%", r.utilization * 100.0),
        ]);
    }
    t.note("paper: AVX cuckoo 31ns/99% (32-bit) and 43ns/99% (record), comm. cuckoo 90ns/95%, learned in-place chained 35ns/100%");
    t.note("expected shape: payload size slows cuckoo; commercial overhead ~2x; learned in-place ~cuckoo speed at 100% utilization");
    t.print();
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_four_architectures_with_high_utilization() {
        let rows = run(&BenchConfig {
            keys: 50_000,
            queries: 10_000,
            seed: 5,
        });
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.lookup_ns > 0.0, "{}", r.name);
            assert!(r.utilization > 0.9, "{}: {}", r.name, r.utilization);
        }
        let inplace = rows.iter().find(|r| r.name.contains("In-place")).unwrap();
        assert!(
            (inplace.utilization - 1.0).abs() < 1e-9,
            "100% by construction"
        );
    }

    #[test]
    fn all_architectures_answer_their_queries() {
        // Latency *ordering* (commercial ≈ 2× lean, learned in-place ≈
        // cuckoo) is asserted by eye from `repro table1` release runs —
        // micro-timing in the test profile is codegen-dependent. Here we
        // pin the structural claims.
        let rows = run(&BenchConfig {
            keys: 80_000,
            queries: 40_000,
            seed: 6,
        });
        let lean = rows
            .iter()
            .find(|r| r.name == "AVX-style Cuckoo, 20 Byte record")
            .unwrap();
        let comm = rows
            .iter()
            .find(|r| r.name == "Comm. Cuckoo, 20 Byte record")
            .unwrap();
        let inplace = rows.iter().find(|r| r.name.contains("In-place")).unwrap();
        // Commercial mode never rejects inserts, so it holds every key.
        assert!(comm.utilization > 0.9);
        // Lean cuckoo reaches Table 1's ~99% utilization.
        assert!(lean.utilization > 0.95, "{}", lean.utilization);
        // In-place chained is exactly full.
        assert!((inplace.utilization - 1.0).abs() < 1e-9);
    }
}
