//! Durability economics: what a write-ahead log costs on the insert
//! path, per group-commit policy — beyond the paper.
//!
//! The persistence experiment ([`crate::persist`]) prices the *warm
//! restart*; this one prices the half snapshots cannot provide —
//! keeping every acknowledged live write crash-safe between saves. A
//! fresh-key stream is driven through [`ShardedWritable::insert`] four
//! times over identical structures:
//!
//! 1. **no-wal** — the inline scalar write path, the baseline every
//!    policy is priced against;
//! 2. **per-record** — `fsync` after every append: the zero-loss
//!    policy, and the price of paying the disk for every write;
//! 3. **every-64** — classic group commit ([`WalSyncPolicy::EveryN`],
//!    the default): one `fsync` amortized over 64 appends, a crash
//!    loses at most the unsynced suffix;
//! 4. **every-1ms** — time-based group commit
//!    ([`WalSyncPolicy::EveryInterval`]).
//!
//! After the group-commit run the harness *crashes* the structure
//! (drops it without saving) and measures
//! [`ShardedWritable::recover`]: scan + replay wall-clock and a full
//! membership sweep proving no acknowledged-durable write was lost.
//!
//! Numbers to expect: `fsync` latency dominates per-record (orders of
//! magnitude over the baseline on real disks; tmpfs hides most of it),
//! while group commit amortizes the sync down to a small constant
//! factor — the acceptance bar is ≤2× the inline baseline at
//! every-64. On a single-core host writer and (in recovery) replay
//! share the CPU; EXPERIMENTS.md records the caveat.

use crate::harness::{BenchConfig, LatencySummary};
use crate::table::Table;
use li_data::Dataset;
use li_obs::Histogram;
use li_serve::{ShardedWritable, ShardedWritableConfig, WalSyncPolicy};
use std::time::{Duration, Instant};

/// Shard count for every measured structure.
pub const WAL_SHARDS: usize = 8;

/// The group-commit window of the default policy (the acceptance-bar
/// row of the table).
pub const GROUP_COMMIT_N: usize = 64;

/// One policy's measured insert leg.
#[derive(Debug, Clone)]
pub struct WalRow {
    /// Policy name ("no-wal" is the baseline row).
    pub policy: &'static str,
    /// Insert operations driven (the identical stream for every
    /// policy).
    pub inserted: usize,
    /// Wall-clock for the insert leg, milliseconds.
    pub wall_ms: f64,
    /// Inserts per second sustained.
    pub inserts_per_sec: f64,
    /// Wall-clock multiple of the no-wal baseline (1.0 for the
    /// baseline itself).
    pub overhead: f64,
    /// `fsync` sync points the policy issued.
    pub syncs: u64,
    /// Mean per-insert latency in ns (li-obs histogram over every
    /// insert in the leg).
    pub mean_insert_ns: f64,
    /// p99 per-insert latency in ns — group commit shows up here: the
    /// 1-in-64 insert that pays the fsync lives in the tail, not the
    /// mean.
    pub p99_insert_ns: u64,
    /// Final log size in MiB.
    pub log_mib: f64,
}

/// The crash-recovery leg run after the group-commit policy.
#[derive(Debug, Clone)]
pub struct WalRecoveryRow {
    /// Records replayed from the log (every insert: the crash happened
    /// after a final sync, so the whole log is the durable prefix).
    pub replayed: usize,
    /// Wall-clock to scan + replay + re-arm, milliseconds.
    pub recover_ms: f64,
    /// Replayed inserts per second.
    pub replays_per_sec: f64,
    /// Keys verified present after recovery (base + every logged key).
    pub verified: usize,
    /// Models trained during recovery. The snapshot load trains zero;
    /// replay goes through the normal routed insert path, so delta
    /// merges train exactly as the live writes they reproduce did — at
    /// small scales (below the merge threshold per shard) this is 0.
    pub trained: u64,
}

fn tmp_wal(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("li-bench-wal-{}-{tag}.wal", std::process::id()))
}

/// Drive `fresh` through scalar durable inserts under one policy
/// (`None` = the no-wal baseline) and measure the leg.
fn run_policy(
    base: &[u64],
    fresh: &[u64],
    policy: Option<(&'static str, WalSyncPolicy)>,
    baseline_ms: Option<f64>,
) -> WalRow {
    let sw = ShardedWritable::new(base.to_vec(), WAL_SHARDS, ShardedWritableConfig::default());
    let (name, path) = match policy {
        Some((name, p)) => {
            let path = tmp_wal(name);
            sw.enable_wal(&path, p).expect("enable_wal");
            (name, Some(path))
        }
        None => ("no-wal", None),
    };

    // Per-insert latency lands in an li-obs histogram; every row
    // (baseline included) pays the same two clock reads per insert, so
    // the wall-clock overhead ratio stays an apples-to-apples compare.
    let hist = Histogram::new();
    let t0 = Instant::now();
    for &k in fresh {
        let ti = Instant::now();
        sw.insert(k);
        hist.record_since(ti);
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(sw.wal_failure().is_none(), "WAL latched a failure: {name}");
    let lat = LatencySummary::of(&hist);

    let log_mib = path
        .as_ref()
        .and_then(|p| std::fs::metadata(p).ok())
        .map_or(0.0, |m| m.len() as f64 / (1024.0 * 1024.0));
    let row = WalRow {
        policy: name,
        inserted: fresh.len(),
        wall_ms,
        inserts_per_sec: fresh.len() as f64 / (wall_ms / 1e3).max(1e-9),
        overhead: baseline_ms.map_or(1.0, |b| wall_ms / b.max(1e-9)),
        syncs: sw.wal_sync_count(),
        mean_insert_ns: lat.mean_ns,
        p99_insert_ns: lat.p99_ns,
        log_mib,
    };
    if let Some(p) = path {
        let _ = std::fs::remove_file(p);
    }
    row
}

/// The crash + recover leg: durable inserts under the default group
/// commit, a hard sync, a crash (drop), then [`ShardedWritable::recover`]
/// with a full membership verification.
fn run_recovery(base: &[u64], fresh: &[u64]) -> WalRecoveryRow {
    let wal_path = tmp_wal("recover");
    let snap_path = tmp_wal("recover-snap"); // never written: crash before first save
    let policy = WalSyncPolicy::EveryN(GROUP_COMMIT_N);

    let sw = ShardedWritable::new(base.to_vec(), WAL_SHARDS, ShardedWritableConfig::default());
    sw.enable_wal(&wal_path, policy).expect("enable_wal");
    for &k in fresh {
        sw.insert(k);
    }
    // Make the tail durable so the whole stream is the acknowledged
    // prefix recovery must reproduce, then crash.
    sw.wal_sync().expect("wal_sync");
    let expected = sw.len();
    drop(sw);

    // No snapshot exists, so recovery boots empty (that boot trains
    // one trivial model — measured out) and replays the entire log
    // into the base-less structure... which would lose `base`. The
    // honest benchmark therefore replays over the same starting state:
    // rebuild the base first, exactly what an operator restoring from
    // the last snapshot does — here the "snapshot" is the cold build.
    let cold = ShardedWritable::new(base.to_vec(), WAL_SHARDS, ShardedWritableConfig::default());
    cold.save(&snap_path).expect("save snapshot");
    drop(cold);

    let trained_before = li_core::train_count();
    let t0 = Instant::now();
    let (rec, report) = ShardedWritable::recover_with_config(
        &snap_path,
        &wal_path,
        policy,
        ShardedWritableConfig::default(),
    )
    .expect("recover");
    let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
    let trained = li_core::train_count() - trained_before;

    assert_eq!(rec.len(), expected, "recovery lost or invented keys");
    let mut verified = 0usize;
    for &k in fresh.iter().chain(base.iter()) {
        assert!(rec.contains(k), "lost key {k} across the crash");
        verified += 1;
    }
    let row = WalRecoveryRow {
        replayed: report.replayed,
        recover_ms,
        replays_per_sec: report.replayed as f64 / (recover_ms / 1e3).max(1e-9),
        verified,
        trained,
    };
    let _ = std::fs::remove_file(&wal_path);
    let _ = std::fs::remove_file(&snap_path);
    row
}

/// Run the WAL experiment on the Lognormal dataset: `cfg.keys` base
/// keys, one fresh odd key inserted per 8 base keys (bounded so debug
/// runs stay fast).
pub fn run(cfg: &BenchConfig) -> (Vec<WalRow>, WalRecoveryRow) {
    let keyset = Dataset::Lognormal.generate(cfg.keys, cfg.seed);
    let base = keyset.keys();
    // Mostly-fresh keys (an odd twin per 8th base key; the rare
    // collision with an odd base key is a duplicate insert, which the
    // WAL logs and replays like any other acknowledged write).
    let fresh: Vec<u64> = base
        .iter()
        .step_by(8)
        .map(|&k| k | 1)
        .take(100_000)
        .collect();

    let baseline = run_policy(base, &fresh, None, None);
    let b = baseline.wall_ms;
    let rows = vec![
        baseline,
        run_policy(
            base,
            &fresh,
            Some(("per-record", WalSyncPolicy::PerRecord)),
            Some(b),
        ),
        run_policy(
            base,
            &fresh,
            Some(("every-64", WalSyncPolicy::EveryN(GROUP_COMMIT_N))),
            Some(b),
        ),
        run_policy(
            base,
            &fresh,
            Some((
                "every-1ms",
                WalSyncPolicy::EveryInterval(Duration::from_millis(1)),
            )),
            Some(b),
        ),
    ];
    let recovery = run_recovery(base, &fresh);
    (rows, recovery)
}

/// Render the WAL tables.
pub fn print(results: &(Vec<WalRow>, WalRecoveryRow), keys: usize) {
    let (rows, rec) = results;
    let mut t = Table::new(
        &format!(
            "WAL — durable insert overhead per sync policy on Lognormal ({keys} base keys, {WAL_SHARDS} shards)"
        ),
        &[
            "Policy",
            "Inserted",
            "Wall (ms)",
            "Inserts/s",
            "Overhead",
            "Syncs",
            "Mean ins (ns)",
            "p99 ins (ns)",
            "Log (MiB)",
        ],
    );
    for r in rows {
        t.row(&[
            r.policy.to_string(),
            r.inserted.to_string(),
            format!("{:.1}", r.wall_ms),
            format!("{:.0}", r.inserts_per_sec),
            format!("{:.2}x", r.overhead),
            r.syncs.to_string(),
            format!("{:.0}", r.mean_insert_ns),
            r.p99_insert_ns.to_string(),
            format!("{:.2}", r.log_mib),
        ]);
    }
    t.note("every policy drives the same fresh-key stream through the scalar durable insert path; overhead is wall-clock over the no-wal baseline");
    t.note("mean/p99 ins come from an li-obs histogram over every insert — group commit's 1-in-64 fsync lives in the p99 tail, not the mean");
    t.note("per-record pays one fsync per insert (zero loss); the group-commit rows may lose only the unsynced suffix on a crash — the acceptance bar is <=2x at every-64");
    t.print();
    println!();

    let mut t = Table::new(
        "WAL — crash recovery (group commit every-64, final sync, crash before save)",
        &[
            "Replayed",
            "Recover (ms)",
            "Replays/s",
            "Verified keys",
            "Trained",
        ],
    );
    t.row(&[
        rec.replayed.to_string(),
        format!("{:.1}", rec.recover_ms),
        format!("{:.0}", rec.replays_per_sec),
        rec.verified.to_string(),
        rec.trained.to_string(),
    ]);
    t.note("recovery = load the snapshot (zero training) + scan the log + replay every record with lsn > snapshot lsn through the routed unlogged insert path");
    t.note("verified sweeps every base and every logged key through contains() on the recovered structure");
    t.print();
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_measures_all_policies_and_recovers() {
        let (rows, rec) = run(&BenchConfig {
            keys: 20_000,
            queries: 100,
            seed: 7,
        });
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].policy, "no-wal");
        assert_eq!(rows[0].syncs, 0, "baseline must not sync");
        assert!((rows[0].overhead - 1.0).abs() < f64::EPSILON);
        let n = rows[0].inserted;
        for r in &rows {
            assert_eq!(r.inserted, n, "all policies drive the same stream: {r:?}");
            assert!(r.wall_ms > 0.0, "{r:?}");
            // Every leg records a per-insert latency distribution.
            assert!(r.mean_insert_ns > 0.0 && r.p99_insert_ns > 0, "{r:?}");
        }
        // Group commit must amortize: strictly fewer syncs than
        // per-record, and per-record syncs once per insert.
        assert_eq!(rows[1].syncs, n as u64, "{:?}", rows[1]);
        assert!(rows[2].syncs < rows[1].syncs, "{:?}", rows[2]);
        assert!(rows[2].syncs >= (n / GROUP_COMMIT_N) as u64);
        // The durable rows wrote a real log.
        for r in &rows[1..] {
            assert!(r.log_mib > 0.0, "{r:?}");
        }
        assert_eq!(rec.replayed, n, "the whole stream is the durable prefix");
        assert_eq!(rec.verified, n + 20_000);
        assert_eq!(rec.trained, 0, "recovery must not train: {rec:?}");
        assert!(rec.recover_ms > 0.0);
    }
}
