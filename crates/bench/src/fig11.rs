//! Figure 11 (Appendix B): model vs random hash in a separate-chaining
//! hash map.
//!
//! "For all experiments we varied the number of available slots from 75%
//! to 125% of the data … we store the full records, which consist of a
//! 64bit key, 64bit payload, and a 32bit meta-data field … our chained
//! hash-map adds another 32bit pointer, making it a 24Byte slot."
//! Columns: average lookup time, wasted space in empty slots, and the
//! space factor of model vs random.

use crate::harness::{time_batch_ns, BenchConfig};
use crate::table::Table;
use li_data::{Dataset, Record20};
use li_hash::{CdfHasher, ChainedHashMap, MurmurHasher};

/// Measurement for one (dataset, slot-factor, hash) combination.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Slot count as a fraction of the record count (0.75/1.0/1.25).
    pub slot_factor: f64,
    /// "Model Hash" or "Random Hash".
    pub hash_type: &'static str,
    /// Mean lookup ns.
    pub lookup_ns: f64,
    /// Bytes wasted in empty primary slots.
    pub empty_bytes: usize,
    /// Records that overflowed into chains.
    pub overflow: usize,
}

/// The paper's slot factors.
pub const SLOT_FACTORS: [f64; 3] = [0.75, 1.0, 1.25];

/// Run the Figure-11 grid.
pub fn run(cfg: &BenchConfig) -> Vec<Fig11Row> {
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let keyset = ds.generate(cfg.keys, cfg.seed);
        let keys = keyset.keys();
        let learned = CdfHasher::train(keys, (keys.len() / 2000).max(64));
        let queries = keyset.sample_existing(cfg.queries, cfg.seed ^ 0x11);

        for factor in SLOT_FACTORS {
            let slots = ((keys.len() as f64 * factor) as usize).max(1);

            let mut model_map: ChainedHashMap<Record20, _> =
                ChainedHashMap::new(slots, learned_clone(&learned, keys));
            for &k in keys {
                model_map.insert(k, Record20::from_key(k));
            }
            let s = model_map.stats();
            rows.push(Fig11Row {
                dataset: ds.name(),
                slot_factor: factor,
                hash_type: "Model Hash",
                lookup_ns: time_batch_ns(&queries, |q| {
                    model_map.get(q).map(|r| r.payload as usize).unwrap_or(0)
                }),
                empty_bytes: s.empty_bytes,
                overflow: s.overflow,
            });

            let mut random_map: ChainedHashMap<Record20, _> =
                ChainedHashMap::new(slots, MurmurHasher::new(cfg.seed));
            for &k in keys {
                random_map.insert(k, Record20::from_key(k));
            }
            let s = random_map.stats();
            rows.push(Fig11Row {
                dataset: ds.name(),
                slot_factor: factor,
                hash_type: "Random Hash",
                lookup_ns: time_batch_ns(&queries, |q| {
                    random_map.get(q).map(|r| r.payload as usize).unwrap_or(0)
                }),
                empty_bytes: s.empty_bytes,
                overflow: s.overflow,
            });
        }
    }
    rows
}

// CdfHasher is not Clone (it owns an RMI); retrain cheaply per map.
fn learned_clone(h: &CdfHasher, keys: &[u64]) -> CdfHasher {
    let leaves = h.rmi().stats().leaves;
    CdfHasher::train(keys, leaves)
}

/// Render the Figure-11 table.
pub fn print(rows: &[Fig11Row], keys: usize) {
    let mut t = Table::new(
        &format!("Figure 11 (App. B) — Model vs Random Hash-map ({keys} records, 24B slots)"),
        &[
            "Dataset",
            "Slots",
            "Hash Type",
            "Time (ns)",
            "Empty Slots (MB)",
            "Space vs Random",
        ],
    );
    for chunk in rows.chunks(2) {
        // chunks are (model, random) pairs by construction.
        let model = &chunk[0];
        let random = &chunk[1];
        for r in [model, random] {
            let factor = if std::ptr::eq(r, model) && random.empty_bytes > 0 {
                format!(
                    "{:.2}x",
                    model.empty_bytes as f64 / random.empty_bytes as f64
                )
            } else {
                String::new()
            };
            t.row(&[
                r.dataset.to_string(),
                format!("{:.0}%", r.slot_factor * 100.0),
                r.hash_type.to_string(),
                format!("{:.0}", r.lookup_ns),
                format!("{:.2}", r.empty_bytes as f64 / (1024.0 * 1024.0)),
                factor,
            ]);
        }
    }
    t.note("paper@200M (map/100% slots): model wastes 0.18GB vs random 0.84GB (0.21x) at similar lookup time");
    t.print();
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_hash_wastes_less_space_at_full_load() {
        let rows = run(&BenchConfig {
            keys: 60_000,
            queries: 10_000,
            seed: 1,
        });
        assert_eq!(rows.len(), 3 * 3 * 2);
        // At 100% slots on Map Data the learned hash must waste less.
        let maps100: Vec<&Fig11Row> = rows
            .iter()
            .filter(|r| r.dataset == "Map Data" && r.slot_factor == 1.0)
            .collect();
        let model = maps100
            .iter()
            .find(|r| r.hash_type == "Model Hash")
            .unwrap();
        let random = maps100
            .iter()
            .find(|r| r.hash_type == "Random Hash")
            .unwrap();
        assert!(
            model.empty_bytes < random.empty_bytes,
            "model {} vs random {}",
            model.empty_bytes,
            random.empty_bytes
        );
    }

    #[test]
    fn all_lookups_resolve() {
        // Sanity: maps answer the sampled queries (payload nonzero for
        // most records given Record20::from_key).
        let rows = run(&BenchConfig {
            keys: 20_000,
            queries: 2_000,
            seed: 2,
        });
        assert!(rows.iter().all(|r| r.lookup_ns > 0.0));
    }
}
