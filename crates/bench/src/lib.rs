//! # li-bench — the evaluation harness
//!
//! One module per table/figure of the paper's evaluation, each exposing
//! a `run(cfg)` function that generates the workload, builds every
//! structure the paper compares, measures it, and returns printable rows
//! (used both by the `repro` binary and the Criterion benches):
//!
//! | module       | reproduces |
//! |--------------|------------|
//! | [`fig4`]     | Figure 4 — learned index vs B-Tree, 3 integer datasets |
//! | [`fig5`]     | Figure 5 — alternative baselines on Lognormal |
//! | [`fig6`]     | Figure 6 — string data, hybrid indexes, Learned QS |
//! | [`fig8`]     | Figure 8 — hash conflict reduction |
//! | [`fig10`]    | Figure 10 + §5.2 — learned Bloom filter memory/FPR |
//! | [`fig11`]    | Figure 11 (App. B) — model vs random chained hash map |
//! | [`table1`]   | Table 1 (App. C) — cuckoo & in-place chained baselines |
//! | [`naive`]    | §2.3 — naïve TF-style learned index vs B-Tree |
//! | [`appendix_a`] | Appendix A — O(√N) error scaling |
//! | [`appendix_e`] | Appendix E — model-hash Bloom filter |
//! | [`scaling`]  | beyond the paper — sharded serving under multi-thread batched load |
//! | [`mod@write`] | beyond the paper — sharded write path: scalar/batched/background inserts/sec + lookup-under-writes |
//! | [`persist`]  | beyond the paper — warm restart: cold build vs mapped snapshot load, with lookup parity |
//! | [`gauntlet`] | beyond the paper — adaptive per-shard backend selection on SOSD-style adversarial distributions |
//! | [`mod@wal`]  | beyond the paper — durable live writes: WAL insert overhead per sync policy + crash recovery |
//! | [`stats`]    | beyond the paper — live observability: mixed workload metrics snapshot + instrumentation overhead |
//!
//! Scale: every experiment takes a key count; the defaults target a
//! laptop (≈2M keys, seconds per experiment). The paper's absolute
//! numbers come from 200M keys on the authors' testbed — the *shape*
//! (who wins, by what factor) is what these reproduce. Set `LI_KEYS` or
//! pass `--keys` to the `repro` binary to raise the scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appendix_a;
pub mod appendix_e;
pub mod fig10;
pub mod fig11;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod gauntlet;
pub mod harness;
pub mod naive;
pub mod persist;
pub mod scaling;
pub mod stats;
pub mod table;
pub mod table1;
pub mod wal;
pub mod write;

pub use harness::{
    time_batch_chunked_ns, time_batch_ns, time_each_ns, BenchConfig, LatencySummary,
};
pub use table::Table;

/// Resolve the key-count scale: CLI override > `LI_KEYS` env > default.
pub fn resolve_keys(cli: Option<usize>, default: usize) -> usize {
    cli.or_else(|| {
        std::env::var("LI_KEYS")
            .ok()
            .and_then(|v| v.replace('_', "").parse().ok())
    })
    .unwrap_or(default)
}
