//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [EXPERIMENT...] [--keys N] [--queries Q] [--seed S]
//!       [--modes scalar,batched,bg,tiered]
//!
//! experiments: fig4 fig5 fig6 fig8 fig10 fig11 table1 naive
//!              appendix-a appendix-e scaling write persist gauntlet wal stats all   (default: all)
//! --modes filters the `write` experiment's measured write modes
//!         (default: all four)
//! ```
//!
//! Run release builds for meaningful numbers:
//! `cargo run --release -p li-bench --bin repro -- fig4 --keys 2000000`.

use li_bench::harness::BenchConfig;
use li_bench::write::WriteMode;
use li_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiments: Vec<String> = Vec::new();
    let mut write_modes: Vec<WriteMode> = WriteMode::ALL.to_vec();
    let mut cfg = BenchConfig {
        keys: resolve_keys(None, 2_000_000),
        queries: 200_000,
        seed: 42,
    };

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--keys" => {
                cfg.keys = it
                    .next()
                    .and_then(|v| v.replace('_', "").parse().ok())
                    .unwrap_or_else(|| die("--keys requires a number"));
            }
            "--queries" => {
                cfg.queries = it
                    .next()
                    .and_then(|v| v.replace('_', "").parse().ok())
                    .unwrap_or_else(|| die("--queries requires a number"));
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed requires a number"));
            }
            "--modes" => {
                let list = it
                    .next()
                    .unwrap_or_else(|| die("--modes requires a comma-separated list"));
                write_modes = list
                    .split(',')
                    .map(|name| {
                        WriteMode::parse(name.trim()).unwrap_or_else(|| {
                            die(&format!(
                                "unknown write mode '{name}' (expected scalar, batched, bg, tiered)"
                            ))
                        })
                    })
                    .collect();
                if write_modes.is_empty() {
                    die("--modes requires at least one mode");
                }
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            exp => experiments.push(exp.to_string()),
        }
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = [
            "naive",
            "fig4",
            "fig5",
            "fig6",
            "fig8",
            "fig10",
            "fig11",
            "table1",
            "appendix-a",
            "appendix-e",
            "scaling",
            "write",
            "persist",
            "gauntlet",
            "wal",
            "stats",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    if cfg!(debug_assertions) {
        eprintln!("warning: debug build — run with --release for meaningful timings\n");
    }
    println!(
        "Reproducing 'The Case for Learned Index Structures' (SIGMOD 2018)\nscale: {} keys, {} queries, seed {}\n",
        cfg.keys, cfg.queries, cfg.seed
    );

    for exp in &experiments {
        match exp.as_str() {
            "fig4" => fig4::print(&fig4::run(&cfg), cfg.keys),
            "fig5" => fig5::print(&fig5::run(&cfg), cfg.keys),
            "fig6" => {
                // The paper's string dataset is 10M keys vs 200M integers;
                // keep the same 1/20 ratio.
                let scfg = BenchConfig {
                    keys: (cfg.keys / 20).max(10_000),
                    ..cfg.clone()
                };
                fig6::print(&fig6::run(&scfg), scfg.keys);
            }
            "fig8" => fig8::print(&fig8::run(&cfg), cfg.keys),
            "fig10" => fig10::print(&fig10::run(&cfg), (cfg.keys / 10).clamp(2_000, 50_000)),
            "fig11" => {
                // Hash-map builds store full records; cap for memory.
                let hcfg = BenchConfig {
                    keys: cfg.keys.min(4_000_000),
                    ..cfg.clone()
                };
                fig11::print(&fig11::run(&hcfg), hcfg.keys);
            }
            "table1" => table1::print(&table1::run(&cfg), cfg.keys),
            "naive" => naive::print(&naive::run(&cfg), cfg.keys),
            "appendix-a" => appendix_a::print(&appendix_a::run(&cfg)),
            "appendix-e" => appendix_e::print(&appendix_e::run(&cfg), cfg.keys),
            "scaling" => {
                // The paper-level defaults are tuned for 200M-key hosts;
                // the serving-scaling story is already visible at 200k.
                let scfg = BenchConfig {
                    keys: cfg.keys.min(200_000),
                    ..cfg.clone()
                };
                scaling::print(&scaling::run(&scfg), scfg.keys);
            }
            "write" => {
                // Same scale reasoning as `scaling`: the write-path
                // story (routing, merges, rebalancing) is visible well
                // below paper scale, and every insert retrains models.
                let wcfg = BenchConfig {
                    keys: cfg.keys.min(200_000),
                    ..cfg.clone()
                };
                write::print(&write::run_modes(&wcfg, &write_modes), wcfg.keys);
            }
            "gauntlet" => {
                let (rows, verdicts) = gauntlet::run(&cfg);
                gauntlet::print(&rows, &verdicts, cfg.keys);
            }
            "persist" => {
                // Training dominates the cold side, so the warm-load
                // advantage is already unambiguous at 1M keys; cap to
                // keep the snapshot files small.
                let pcfg = BenchConfig {
                    keys: cfg.keys.min(1_000_000),
                    ..cfg.clone()
                };
                persist::print(&persist::run(&pcfg), pcfg.keys);
            }
            "wal" => {
                // Same scale reasoning as `write`: the sync-policy
                // economics (fsync amortization) are visible well below
                // paper scale, and the per-record row pays one fsync
                // per insert.
                let wcfg = BenchConfig {
                    keys: cfg.keys.min(200_000),
                    ..cfg.clone()
                };
                wal::print(&wal::run(&wcfg), wcfg.keys);
            }
            "stats" => {
                // Same scale reasoning as `write`: the metrics story
                // (counters, gauges, event tail, overhead) is fully
                // visible well below paper scale.
                let scfg = BenchConfig {
                    keys: cfg.keys.min(200_000),
                    ..cfg.clone()
                };
                stats::print(&stats::run(&scfg), scfg.keys);
            }
            other => die(&format!("unknown experiment {other}")),
        }
    }
}

fn print_usage() {
    println!(
        "repro [EXPERIMENT...] [--keys N] [--queries Q] [--seed S] [--modes scalar,batched,bg,tiered]\n\
         experiments: fig4 fig5 fig6 fig8 fig10 fig11 table1 naive appendix-a appendix-e scaling write persist gauntlet wal stats all\n\
         --modes filters the write experiment's measured write modes (default: all four)"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    print_usage();
    std::process::exit(2);
}
