//! Appendix E: Bloom filters with model-hashes.
//!
//! "For a desired total FPR p* = 0.1%, we find that setting m = 1000000
//! gives a total size of 2.21MB, a 27.4% reduction in memory, compared
//! to the 15% reduction following the approach in Section 5.1.1 … For a
//! desired total FPR p* = 1% we get a total size of 1.19MB, a 41%
//! reduction in memory, compared to the 36% reduction reported in
//! Section 5.2."

use crate::harness::BenchConfig;
use crate::table::Table;
use li_bloom::{empirical_fpr, BloomFilter, LearnedBloom, ModelHashBloom};
use li_data::strings::UrlGenerator;
use li_models::NgramLogReg;

/// One (p*, m) configuration result.
#[derive(Debug, Clone)]
pub struct AppendixERow {
    /// Approach label.
    pub approach: String,
    /// Target overall FPR.
    pub target_fpr: f64,
    /// Total size in bytes (model + filter structures).
    pub total_bytes: usize,
    /// Filter-structure bytes only (bitmap + backup / overflow), i.e.
    /// the part that scales with the key count.
    pub filter_bytes: usize,
    /// Empirical FPR on the test set.
    pub test_fpr: f64,
}

/// Run the Appendix-E comparison: classical Bloom vs §5.1.1 learned
/// Bloom vs §5.1.2 model-hash Bloom, at p* ∈ {0.1%, 1%}.
pub fn run(cfg: &BenchConfig) -> Vec<AppendixERow> {
    let n_keys = (cfg.keys / 10).clamp(2_000, 50_000);
    let mut gen = UrlGenerator::new(cfg.seed ^ 0xE);
    let (keys, mut negs) = gen.dataset(n_keys, n_keys * 2, 0.5);
    let test = negs.split_off(n_keys);
    let validation = negs;
    let kb: Vec<&[u8]> = keys.iter().map(|s| s.as_bytes()).collect();
    let vb: Vec<&[u8]> = validation.iter().map(|s| s.as_bytes()).collect();
    let clf = NgramLogReg::train(
        11,
        8,
        0.1,
        &kb[..kb.len().min(2000)],
        &vb[..vb.len().min(2000)],
        3,
    );

    let mut rows = Vec::new();
    for p in [0.001, 0.01] {
        let mut bf = BloomFilter::new(keys.len(), p);
        for k in &kb {
            bf.insert(k);
        }
        rows.push(AppendixERow {
            approach: "standard bloom".into(),
            target_fpr: p,
            total_bytes: bf.size_bytes(),
            filter_bytes: bf.size_bytes(),
            test_fpr: empirical_fpr(|x| bf.contains(x), test.iter().map(|s| s.as_bytes())),
        });

        let lb = LearnedBloom::build(clf.clone(), &kb, &vb, p, None);
        rows.push(AppendixERow {
            approach: "learned bloom (5.1.1)".into(),
            target_fpr: p,
            total_bytes: lb.size_bytes(),
            filter_bytes: lb.report().overflow_bytes,
            test_fpr: empirical_fpr(|x| lb.contains(x), test.iter().map(|s| s.as_bytes())),
        });

        // Model-hash bitmap sized like the paper's m = 1M for 1.7M keys:
        // m ≈ 0.6 bits per key × n, rounded up to 64.
        let m = (keys.len() * 6 / 10).next_multiple_of(64).max(1024);
        let mh = ModelHashBloom::build(clf.clone(), &kb, &vb, m, p, None);
        rows.push(AppendixERow {
            approach: format!("model-hash bloom (5.1.2), m={m}"),
            target_fpr: p,
            total_bytes: mh.size_bytes(),
            filter_bytes: mh.bitmap_bytes() + mh.backup_bytes(),
            test_fpr: empirical_fpr(|x| mh.contains(x), test.iter().map(|s| s.as_bytes())),
        });
    }
    rows
}

/// Render the Appendix-E table.
pub fn print(rows: &[AppendixERow], keys: usize) {
    let mut t = Table::new(
        &format!("Appendix E — Model-hash Bloom filters ({keys} keys scale)"),
        &[
            "Approach",
            "Target FPR",
            "Total (KB)",
            "Filter (KB)",
            "Test FPR",
            "vs bloom",
        ],
    );
    for r in rows {
        let baseline = rows
            .iter()
            .find(|b| b.approach == "standard bloom" && b.target_fpr == r.target_fpr)
            .map(|b| b.total_bytes as f64);
        let vs = match baseline {
            Some(b) if r.approach != "standard bloom" => {
                format!("{:+.0}%", 100.0 * (r.total_bytes as f64 - b) / b)
            }
            _ => String::new(),
        };
        t.row(&[
            r.approach.clone(),
            format!("{:.2}%", 100.0 * r.target_fpr),
            format!("{:.1}", r.total_bytes as f64 / 1024.0),
            format!("{:.1}", r.filter_bytes as f64 / 1024.0),
            format!("{:.3}%", 100.0 * r.test_fpr),
            vs,
        ]);
    }
    t.note("paper@1.7M: p*=0.1% → -27.4% (vs -15% for 5.1.1); p*=1% → -41% (vs -36%)");
    t.print();
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_hash_respects_fpr_and_shrinks_memory() {
        let rows = run(&BenchConfig {
            keys: 100_000, // → 10k URLs
            queries: 0,
            seed: 2,
        });
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.test_fpr <= r.target_fpr * 4.0 + 0.005,
                "{}: {} vs {}",
                r.approach,
                r.test_fpr,
                r.target_fpr
            );
        }
        // The scale-free Appendix-E property: the model-hash system's
        // *filter* portion (bitmap + relaxed backup) undercuts a
        // standalone filter at p*. (The classifier's fixed table only
        // amortizes at the paper's 1.7M-key scale, so totals are
        // reported but not asserted here.)
        let bloom_1pct = rows
            .iter()
            .find(|r| r.approach == "standard bloom" && r.target_fpr == 0.01)
            .unwrap();
        let mh_1pct = rows
            .iter()
            .find(|r| r.approach.starts_with("model-hash") && r.target_fpr == 0.01)
            .unwrap();
        assert!(
            mh_1pct.filter_bytes < bloom_1pct.total_bytes,
            "model-hash filter portion {} must undercut standalone {}",
            mh_1pct.filter_bytes,
            bloom_1pct.total_bytes
        );
    }
}
