//! Shared measurement utilities.

use std::time::Instant;

/// Common experiment parameters.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Keys per dataset (the paper uses 200M; default here is 2M).
    pub keys: usize,
    /// Lookup queries per measurement.
    pub queries: usize,
    /// RNG seed for data + workload.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            keys: 2_000_000,
            queries: 200_000,
            seed: 42,
        }
    }
}

impl BenchConfig {
    /// A configuration scaled for quick smoke runs and unit tests.
    pub fn smoke() -> Self {
        Self {
            keys: 50_000,
            queries: 10_000,
            seed: 42,
        }
    }
}

/// Time `f(q)` over every query, returning mean nanoseconds per call.
/// A short warm-up precedes the measured pass; the accumulated result is
/// black-boxed so the compiler cannot elide the work.
pub fn time_batch_ns<Q: Copy>(queries: &[Q], mut f: impl FnMut(Q) -> usize) -> f64 {
    assert!(!queries.is_empty());
    let mut acc = 0usize;
    for &q in queries.iter().take((queries.len() / 10).max(1)) {
        acc = acc.wrapping_add(f(q));
    }
    let t0 = Instant::now();
    for &q in queries {
        acc = acc.wrapping_add(f(q));
    }
    let elapsed = t0.elapsed();
    std::hint::black_box(acc);
    elapsed.as_nanos() as f64 / queries.len() as f64
}

/// Time a *batched* lookup path: `f(chunk, out)` is called once per
/// `chunk_size` slice of the queries with a matching output buffer, and
/// the mean nanoseconds **per query** (not per call) is returned — the
/// same unit as [`time_batch_ns`], so scalar-vs-batched columns compare
/// directly. A short warm-up precedes the measured pass; results are
/// black-boxed so the work cannot be elided.
pub fn time_batch_chunked_ns(
    queries: &[u64],
    chunk_size: usize,
    mut f: impl FnMut(&[u64], &mut [usize]),
) -> f64 {
    assert!(!queries.is_empty());
    let chunk_size = chunk_size.max(1);
    let mut out = vec![0usize; chunk_size];
    // Warm-up over ~10% of the workload.
    for chunk in queries
        .chunks(chunk_size)
        .take((queries.len() / (10 * chunk_size)).max(1))
    {
        f(chunk, &mut out[..chunk.len()]);
    }
    let t0 = Instant::now();
    for chunk in queries.chunks(chunk_size) {
        f(chunk, &mut out[..chunk.len()]);
    }
    let elapsed = t0.elapsed();
    std::hint::black_box(&out);
    elapsed.as_nanos() as f64 / queries.len() as f64
}

/// Same, for borrowed (non-`Copy`) queries such as strings.
pub fn time_batch_ref_ns<Q>(queries: &[Q], mut f: impl FnMut(&Q) -> usize) -> f64 {
    assert!(!queries.is_empty());
    let mut acc = 0usize;
    for q in queries.iter().take((queries.len() / 10).max(1)) {
        acc = acc.wrapping_add(f(q));
    }
    let t0 = Instant::now();
    for q in queries {
        acc = acc.wrapping_add(f(q));
    }
    let elapsed = t0.elapsed();
    std::hint::black_box(acc);
    elapsed.as_nanos() as f64 / queries.len() as f64
}

/// Format a byte count as MB with 2 decimals (the paper's size unit).
pub fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_batch_returns_positive_ns() {
        let queries: Vec<u64> = (0..1000).collect();
        let ns = time_batch_ns(&queries, |q| q as usize * 2);
        assert!(ns > 0.0 && ns < 1e6, "{ns}");
    }

    #[test]
    fn chunked_batch_visits_every_query_once() {
        let queries: Vec<u64> = (0..1000).collect();
        let mut visited = 0usize;
        let ns = time_batch_chunked_ns(&queries, 128, |chunk, out| {
            visited += chunk.len();
            for (o, &q) in out.iter_mut().zip(chunk) {
                *o = q as usize;
            }
        });
        assert!(ns > 0.0);
        // Measured pass covers every query once; warm-up adds at most
        // one more full pass.
        assert!(visited >= queries.len() && visited <= 2 * queries.len());
    }

    #[test]
    fn ref_variant_works_for_strings() {
        let queries: Vec<String> = (0..100).map(|i| format!("{i}")).collect();
        let ns = time_batch_ref_ns(&queries, |q| q.len());
        assert!(ns > 0.0);
    }

    #[test]
    fn mb_conversion() {
        assert!((mb(1024 * 1024) - 1.0).abs() < 1e-12);
    }
}
