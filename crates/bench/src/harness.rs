//! Shared measurement utilities.

use std::time::Instant;

/// Common experiment parameters.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Keys per dataset (the paper uses 200M; default here is 2M).
    pub keys: usize,
    /// Lookup queries per measurement.
    pub queries: usize,
    /// RNG seed for data + workload.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            keys: 2_000_000,
            queries: 200_000,
            seed: 42,
        }
    }
}

impl BenchConfig {
    /// A configuration scaled for quick smoke runs and unit tests.
    pub fn smoke() -> Self {
        Self {
            keys: 50_000,
            queries: 10_000,
            seed: 42,
        }
    }
}

/// Time `f(q)` over every query, returning mean nanoseconds per call.
/// A short warm-up precedes the measured pass; the accumulated result is
/// black-boxed so the compiler cannot elide the work.
pub fn time_batch_ns<Q: Copy>(queries: &[Q], mut f: impl FnMut(Q) -> usize) -> f64 {
    assert!(!queries.is_empty());
    let mut acc = 0usize;
    for &q in queries.iter().take((queries.len() / 10).max(1)) {
        acc = acc.wrapping_add(f(q));
    }
    let t0 = Instant::now();
    for &q in queries {
        acc = acc.wrapping_add(f(q));
    }
    let elapsed = t0.elapsed();
    std::hint::black_box(acc);
    elapsed.as_nanos() as f64 / queries.len() as f64
}

/// Same, for borrowed (non-`Copy`) queries such as strings.
pub fn time_batch_ref_ns<Q>(queries: &[Q], mut f: impl FnMut(&Q) -> usize) -> f64 {
    assert!(!queries.is_empty());
    let mut acc = 0usize;
    for q in queries.iter().take((queries.len() / 10).max(1)) {
        acc = acc.wrapping_add(f(q));
    }
    let t0 = Instant::now();
    for q in queries {
        acc = acc.wrapping_add(f(q));
    }
    let elapsed = t0.elapsed();
    std::hint::black_box(acc);
    elapsed.as_nanos() as f64 / queries.len() as f64
}

/// Format a byte count as MB with 2 decimals (the paper's size unit).
pub fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_batch_returns_positive_ns() {
        let queries: Vec<u64> = (0..1000).collect();
        let ns = time_batch_ns(&queries, |q| q as usize * 2);
        assert!(ns > 0.0 && ns < 1e6, "{ns}");
    }

    #[test]
    fn ref_variant_works_for_strings() {
        let queries: Vec<String> = (0..100).map(|i| format!("{i}")).collect();
        let ns = time_batch_ref_ns(&queries, |q| q.len());
        assert!(ns > 0.0);
    }

    #[test]
    fn mb_conversion() {
        assert!((mb(1024 * 1024) - 1.0).abs() < 1e-12);
    }
}
