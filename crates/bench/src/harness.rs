//! Shared measurement utilities.

use li_obs::{Histogram, HistogramSnapshot};
use std::time::Instant;

/// Common experiment parameters.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Keys per dataset (the paper uses 200M; default here is 2M).
    pub keys: usize,
    /// Lookup queries per measurement.
    pub queries: usize,
    /// RNG seed for data + workload.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            keys: 2_000_000,
            queries: 200_000,
            seed: 42,
        }
    }
}

impl BenchConfig {
    /// A configuration scaled for quick smoke runs and unit tests.
    pub fn smoke() -> Self {
        Self {
            keys: 50_000,
            queries: 10_000,
            seed: 42,
        }
    }
}

/// Time `f(q)` over every query, returning mean nanoseconds per call.
/// A short warm-up precedes the measured pass; the accumulated result is
/// black-boxed so the compiler cannot elide the work.
pub fn time_batch_ns<Q: Copy>(queries: &[Q], mut f: impl FnMut(Q) -> usize) -> f64 {
    assert!(!queries.is_empty());
    let mut acc = 0usize;
    for &q in queries.iter().take((queries.len() / 10).max(1)) {
        acc = acc.wrapping_add(f(q));
    }
    let t0 = Instant::now();
    for &q in queries {
        acc = acc.wrapping_add(f(q));
    }
    let elapsed = t0.elapsed();
    std::hint::black_box(acc);
    elapsed.as_nanos() as f64 / queries.len() as f64
}

/// Time a *batched* lookup path: `f(chunk, out)` is called once per
/// `chunk_size` slice of the queries with a matching output buffer, and
/// the mean nanoseconds **per query** (not per call) is returned — the
/// same unit as [`time_batch_ns`], so scalar-vs-batched columns compare
/// directly. A short warm-up precedes the measured pass; results are
/// black-boxed so the work cannot be elided.
pub fn time_batch_chunked_ns(
    queries: &[u64],
    chunk_size: usize,
    mut f: impl FnMut(&[u64], &mut [usize]),
) -> f64 {
    assert!(!queries.is_empty());
    let chunk_size = chunk_size.max(1);
    let mut out = vec![0usize; chunk_size];
    // Warm-up over ~10% of the workload.
    for chunk in queries
        .chunks(chunk_size)
        .take((queries.len() / (10 * chunk_size)).max(1))
    {
        f(chunk, &mut out[..chunk.len()]);
    }
    let t0 = Instant::now();
    for chunk in queries.chunks(chunk_size) {
        f(chunk, &mut out[..chunk.len()]);
    }
    let elapsed = t0.elapsed();
    std::hint::black_box(&out);
    elapsed.as_nanos() as f64 / queries.len() as f64
}

/// Same, for borrowed (non-`Copy`) queries such as strings.
pub fn time_batch_ref_ns<Q>(queries: &[Q], mut f: impl FnMut(&Q) -> usize) -> f64 {
    assert!(!queries.is_empty());
    let mut acc = 0usize;
    for q in queries.iter().take((queries.len() / 10).max(1)) {
        acc = acc.wrapping_add(f(q));
    }
    let t0 = Instant::now();
    for q in queries {
        acc = acc.wrapping_add(f(q));
    }
    let elapsed = t0.elapsed();
    std::hint::black_box(acc);
    elapsed.as_nanos() as f64 / queries.len() as f64
}

/// Mean/p50/p99 summary of a per-operation latency series, derived
/// from an [`li_obs::Histogram`] snapshot — the single quantile engine
/// shared by every latency-reporting experiment (`repro write`,
/// `repro wal`, `repro stats`), replacing per-bench sort-based
/// percentile code. Quantile estimates inherit the histogram's error
/// bound: each lands in the same bucket as the true rank-order sample
/// (within ~3.2% above 64 ns, exact below).
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean in nanoseconds (0.0 when empty).
    pub mean_ns: f64,
    /// Median in nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile in nanoseconds.
    pub p99_ns: u64,
}

impl LatencySummary {
    /// Summarize a frozen snapshot.
    pub fn from_snapshot(s: &HistogramSnapshot) -> Self {
        LatencySummary {
            count: s.count(),
            mean_ns: s.mean(),
            p50_ns: s.value_at_quantile(0.5),
            p99_ns: s.value_at_quantile(0.99),
        }
    }

    /// Snapshot and summarize a live histogram.
    pub fn of(hist: &Histogram) -> Self {
        Self::from_snapshot(&hist.snapshot())
    }
}

/// Time `f(q)` per *call* (not per batch): each call's nanoseconds are
/// recorded into an li-obs histogram and the mean/p50/p99 summary is
/// returned — the same ns units as [`time_batch_ns`]. Use this when
/// the latency *distribution* matters (tail behaviour under
/// contention); use `time_batch_ns` when only the mean does, since the
/// per-call `Instant` reads here add a few ns to every operation. A
/// short warm-up precedes the measured pass; the accumulated result is
/// black-boxed so the compiler cannot elide the work.
pub fn time_each_ns<Q: Copy>(queries: &[Q], mut f: impl FnMut(Q) -> usize) -> LatencySummary {
    assert!(!queries.is_empty());
    let hist = Histogram::new();
    let mut acc = 0usize;
    for &q in queries.iter().take((queries.len() / 10).max(1)) {
        acc = acc.wrapping_add(f(q));
    }
    for &q in queries {
        let t0 = Instant::now();
        acc = acc.wrapping_add(f(q));
        hist.record_since(t0);
    }
    std::hint::black_box(acc);
    LatencySummary::of(&hist)
}

/// Format a byte count as MB with 2 decimals (the paper's size unit).
pub fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_batch_returns_positive_ns() {
        let queries: Vec<u64> = (0..1000).collect();
        let ns = time_batch_ns(&queries, |q| q as usize * 2);
        assert!(ns > 0.0 && ns < 1e6, "{ns}");
    }

    #[test]
    fn chunked_batch_visits_every_query_once() {
        let queries: Vec<u64> = (0..1000).collect();
        let mut visited = 0usize;
        let ns = time_batch_chunked_ns(&queries, 128, |chunk, out| {
            visited += chunk.len();
            for (o, &q) in out.iter_mut().zip(chunk) {
                *o = q as usize;
            }
        });
        assert!(ns > 0.0);
        // Measured pass covers every query once; warm-up adds at most
        // one more full pass.
        assert!(visited >= queries.len() && visited <= 2 * queries.len());
    }

    #[test]
    fn ref_variant_works_for_strings() {
        let queries: Vec<String> = (0..100).map(|i| format!("{i}")).collect();
        let ns = time_batch_ref_ns(&queries, |q| q.len());
        assert!(ns > 0.0);
    }

    #[test]
    fn mb_conversion() {
        assert!((mb(1024 * 1024) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_op_timing_summarizes_every_query() {
        let queries: Vec<u64> = (0..1000).collect();
        let s = time_each_ns(&queries, |q| q as usize * 2);
        assert_eq!(s.count, queries.len() as u64, "one sample per query");
        assert!(s.mean_ns > 0.0, "{s:?}");
        // Quantiles are monotone in q by construction.
        assert!(s.p50_ns <= s.p99_ns, "{s:?}");
    }

    #[test]
    fn latency_summary_of_known_samples() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        let s = LatencySummary::of(&h);
        assert_eq!(s.count, 4);
        assert!((s.mean_ns - 25.0).abs() < 1e-12);
        // Values below 64 recover exactly from the histogram.
        assert_eq!(s.p50_ns, 20);
        assert_eq!(s.p99_ns, 40);
        let empty = LatencySummary::of(&Histogram::new());
        assert_eq!((empty.count, empty.p99_ns), (0, 0));
    }
}
