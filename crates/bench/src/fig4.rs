//! Figure 4: Learned Index vs B-Tree on the three integer datasets.
//!
//! The paper's grid: B-Trees at page sizes {32, 64, 128, 256, 512} vs
//! 2-stage RMIs at second-stage sizes {10k, 50k, 100k, 200k} (for 200M
//! keys — we keep the same *fractions* of the key count at any scale),
//! reporting per configuration: size (MB, with the factor vs the
//! page-128 B-Tree reference), total lookup (ns, with speedup), and
//! model-execution time (ns, and as % of total).

use crate::harness::{mb, time_batch_chunked_ns, time_batch_ns, BenchConfig};
use crate::table::Table;
use li_core::{KeyStore, RangeIndex, Rmi, RmiConfig, TopModel};
use li_data::Dataset;

/// Queries per `lower_bound_batch` call in the batched column (big
/// enough to expose memory-level parallelism, small enough that the
/// plan scratch stays cache-resident).
pub const BATCH_CHUNK: usize = 1024;

/// One measured configuration on one dataset.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Configuration label (page size or 2nd-stage size).
    pub config: String,
    /// Index size in bytes.
    pub size_bytes: usize,
    /// Mean total lookup ns.
    pub lookup_ns: f64,
    /// Mean model-only (predict) ns.
    pub model_ns: f64,
    /// Mean per-query ns through `lower_bound_batch` (chunked).
    pub batch_ns: f64,
}

/// The paper's B-Tree page-size grid.
pub const PAGE_SIZES: [usize; 5] = [32, 64, 128, 256, 512];

/// The paper's second-stage fractions of the key count
/// (10k/50k/100k/200k out of 200M).
pub const LEAF_FRACTIONS: [(&str, f64); 4] = [
    ("10k", 10_000.0 / 200_000_000.0),
    ("50k", 50_000.0 / 200_000_000.0),
    ("100k", 100_000.0 / 200_000_000.0),
    ("200k", 200_000.0 / 200_000_000.0),
];

/// Stage-0 model the grid search picks per dataset (§3.7.1: "simple
/// (0 hidden layers) to semi-complex … models for the first stage work
/// the best"). On our generators the LIF grid search lands on simple
/// configurations: linear tops throughout, with an extra 64-model linear
/// stage for the heavy-tailed Lognormal CDF — scalar-f64 MLP tops cost
/// ~300ns of model time for little routing gain at this scale (the
/// paper's ~30ns nets imply f32/SIMD inference).
pub fn top_model_for(ds: Dataset) -> TopModel {
    match ds {
        Dataset::Maps | Dataset::Weblogs | Dataset::Lognormal => TopModel::Linear,
    }
}

/// Full RMI configuration per dataset: lognormal benefits from a
/// 3-stage cascade (linear → 64 linear → leaves).
pub fn rmi_config_for(ds: Dataset, leaves: usize) -> RmiConfig {
    match ds {
        Dataset::Lognormal => RmiConfig {
            top: TopModel::Linear,
            stages: vec![64, leaves],
            ..Default::default()
        },
        _ => RmiConfig::two_stage(top_model_for(ds), leaves),
    }
}

/// Leaf count for a paper-fraction at scale `n` (min 64 so tiny smoke
/// runs still have a second stage).
pub fn scaled_leaves(fraction: f64, n: usize) -> usize {
    ((fraction * n as f64).round() as usize).max(64)
}

/// Run the full Figure-4 grid.
pub fn run(cfg: &BenchConfig) -> Vec<Fig4Row> {
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let keyset = ds.generate(cfg.keys, cfg.seed);
        let queries = keyset.sample_existing(cfg.queries, cfg.seed ^ 0xBEEF);
        // One shared key store per dataset: every configuration below is
        // a zero-copy view over the same allocation.
        let store = KeyStore::from(keyset.keys());

        for page in PAGE_SIZES {
            let idx = li_btree::BTreeIndex::new(store.clone(), page);
            let lookup_ns = time_batch_ns(&queries, |q| idx.lower_bound(q));
            let model_ns = time_batch_ns(&queries, |q| idx.predict(q).pos);
            let batch_ns = time_batch_chunked_ns(&queries, BATCH_CHUNK, |chunk, out| {
                idx.lower_bound_batch(chunk, out)
            });
            rows.push(Fig4Row {
                dataset: ds.name(),
                config: format!("btree page={page}"),
                size_bytes: idx.size_bytes(),
                lookup_ns,
                model_ns,
                batch_ns,
            });
        }

        for (label, fraction) in LEAF_FRACTIONS {
            let leaves = scaled_leaves(fraction, cfg.keys);
            let rmi_cfg = rmi_config_for(ds, leaves);
            let idx = Rmi::build(store.clone(), &rmi_cfg);
            let lookup_ns = time_batch_ns(&queries, |q| idx.lower_bound(q));
            let model_ns = time_batch_ns(&queries, |q| idx.predict(q).pos);
            let batch_ns = time_batch_chunked_ns(&queries, BATCH_CHUNK, |chunk, out| {
                idx.lower_bound_batch(chunk, out)
            });
            rows.push(Fig4Row {
                dataset: ds.name(),
                config: format!("learned 2nd-stage={label}-equiv ({leaves})"),
                size_bytes: idx.size_bytes(),
                lookup_ns,
                model_ns,
                batch_ns,
            });
        }
    }
    rows
}

/// Render rows in the paper's layout (one table per dataset, size and
/// speedup factors relative to the page-128 B-Tree).
pub fn print(rows: &[Fig4Row], keys: usize) {
    for ds in Dataset::ALL {
        let ds_rows: Vec<&Fig4Row> = rows.iter().filter(|r| r.dataset == ds.name()).collect();
        let reference = ds_rows
            .iter()
            .find(|r| r.config == "btree page=128")
            .expect("reference config present");
        let (ref_size, ref_ns) = (reference.size_bytes as f64, reference.lookup_ns);

        let mut t = Table::new(
            &format!("Figure 4 — {} ({} keys)", ds.name(), keys),
            &[
                "Config",
                "Size (MB)",
                "Lookup (ns)",
                "Model (ns)",
                "Batched (ns)",
            ],
        );
        for r in &ds_rows {
            t.row(&[
                r.config.clone(),
                format!(
                    "{:.2} ({:.2}x)",
                    mb(r.size_bytes),
                    r.size_bytes as f64 / ref_size
                ),
                format!("{:.0} ({:.2}x)", r.lookup_ns, ref_ns / r.lookup_ns),
                format!(
                    "{:.0} ({:.0}%)",
                    r.model_ns,
                    100.0 * r.model_ns / r.lookup_ns.max(1e-9)
                ),
                format!(
                    "{:.0} ({:.2}x vs scalar)",
                    r.batch_ns,
                    r.lookup_ns / r.batch_ns.max(1e-9)
                ),
            ]);
        }
        t.note("factors are relative to the btree page=128 reference, as in the paper");
        t.note("paper@200M: learned 10k..200k-leaf configs are 1.5-3x faster and 10-100x smaller than btree page=128");
        t.note(&format!(
            "batched = lower_bound_batch in chunks of {BATCH_CHUNK} (phase-split predict/search); x-factor >1 means batching wins"
        ));
        t.print();
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_full_grid() {
        let rows = run(&BenchConfig::smoke());
        // 3 datasets × (5 pages + 4 learned) = 27 rows.
        assert_eq!(rows.len(), 27);
        for r in &rows {
            assert!(r.lookup_ns > 0.0, "{}", r.config);
            // Model time can exceed total by measurement jitter on tiny
            // windows; it must never *dwarf* it.
            assert!(
                r.model_ns <= r.lookup_ns * 3.0 + 50.0,
                "{}: model {} vs total {}",
                r.config,
                r.model_ns,
                r.lookup_ns
            );
            // The batched column measures the same work through
            // lower_bound_batch; it must be in the same order of
            // magnitude as scalar (jitter aside), never zero.
            assert!(r.batch_ns > 0.0, "{}", r.config);
            assert!(
                r.batch_ns <= r.lookup_ns * 5.0 + 100.0,
                "{}: batch {} vs scalar {}",
                r.config,
                r.batch_ns,
                r.lookup_ns
            );
        }
    }

    #[test]
    fn learned_indexes_are_much_smaller_than_btrees() {
        let rows = run(&BenchConfig::smoke());
        for ds in Dataset::ALL {
            let btree128 = rows
                .iter()
                .find(|r| r.dataset == ds.name() && r.config == "btree page=128")
                .unwrap();
            let learned_smallest = rows
                .iter()
                .filter(|r| r.dataset == ds.name() && r.config.starts_with("learned"))
                .map(|r| r.size_bytes)
                .min()
                .unwrap();
            assert!(
                learned_smallest < btree128.size_bytes,
                "{}: learned {} vs btree {}",
                ds.name(),
                learned_smallest,
                btree128.size_bytes
            );
        }
    }

    #[test]
    fn scaled_leaves_follow_fractions() {
        assert_eq!(scaled_leaves(10_000.0 / 200_000_000.0, 200_000_000), 10_000);
        assert_eq!(scaled_leaves(10_000.0 / 200_000_000.0, 2_000_000), 100);
        assert_eq!(scaled_leaves(10_000.0 / 200_000_000.0, 1000), 64); // floor
    }
}
