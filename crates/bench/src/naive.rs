//! §2.3: the naïve learned index — why TensorFlow-at-inference loses.
//!
//! The paper's first attempt ran a 2×32 ReLU net through TensorFlow with
//! Python: "≈ 80,000 nano-seconds to execute the model … a B-Tree
//! traversal over the same data takes ≈ 300ns and binary search over the
//! entire data roughly ≈ 900ns". The 250× gap is invocation overhead,
//! not arithmetic: the same net compiled to straight-line code runs in
//! tens of nanoseconds (§3.1's LIF code generation).
//!
//! We reproduce the comparison with an *interpreted-graph* executor —
//! dynamic dispatch per op, freshly allocated tensors, a simulated
//! runtime-session entry cost — against the compiled [`Mlp`], a B-Tree
//! and full binary search.

use crate::harness::{time_batch_ns, BenchConfig};
use crate::table::Table;
use li_core::{KeyStore, RangeIndex};
use li_data::Dataset;
use li_models::{Mlp, MlpConfig, Model};

/// One measured execution path.
#[derive(Debug, Clone)]
pub struct NaiveRow {
    /// Path label.
    pub name: &'static str,
    /// Mean ns per lookup/prediction.
    pub ns: f64,
}

/// A deliberately naive graph interpreter modeled on a framework
/// front-end invoking a tiny model: each call builds a feed dict keyed
/// by tensor *name*, resolves every graph node by string lookup, runs
/// each op through dynamic dispatch over freshly allocated `Vec`s, and
/// stores every intermediate back into the dict — "Tensorflow was
/// designed to efficiently run larger models, not small models, and
/// thus, has a significant invocation overhead" (§2.3).
struct InterpretedNet {
    /// Graph nodes: (output name, input name, op).
    nodes: Vec<(String, String, DynOp)>,
}

type DynOp = Box<dyn Fn(&[f64]) -> Vec<f64> + Send + Sync>;

impl InterpretedNet {
    fn like_paper(width: usize) -> Self {
        // 1 → width → width → 1, ReLU between, fixed pseudorandom weights.
        let mut nodes: Vec<(String, String, DynOp)> = Vec::new();
        let dims = [1usize, width, width, 1];
        let mut prev = "input".to_string();
        for (li, w) in dims.windows(2).enumerate() {
            let (fan_in, fan_out) = (w[0], w[1]);
            let weights: Vec<f64> = (0..fan_in * fan_out)
                .map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
                .collect();
            let matmul = format!("dense_{li}/matmul");
            nodes.push((
                matmul.clone(),
                prev.clone(),
                Box::new(move |input: &[f64]| {
                    let mut out = vec![0.0; fan_out];
                    for (r, o) in out.iter_mut().enumerate() {
                        for (c, &x) in input.iter().enumerate() {
                            *o += weights[r * fan_in + c] * x;
                        }
                    }
                    out
                }),
            ));
            let relu = format!("dense_{li}/relu");
            nodes.push((
                relu.clone(),
                matmul,
                Box::new(|input: &[f64]| input.iter().map(|&x| x.max(0.0)).collect()),
            ));
            prev = relu;
        }
        Self { nodes }
    }

    /// One prediction through the interpreted graph: feed-dict build,
    /// name resolution, dynamic dispatch, per-op tensor allocation.
    fn predict(&self, x: f64) -> f64 {
        use std::collections::HashMap;
        let mut feed: HashMap<String, Vec<f64>> = HashMap::new();
        feed.insert("input".to_string(), vec![x]);
        let mut last = Vec::new();
        for (out_name, in_name, op) in &self.nodes {
            let input = feed.get(in_name.as_str()).expect("graph is topo-ordered");
            // Frameworks validate shapes and keep run metadata per op.
            let shape_tag = format!("{out_name}:[{}]", input.len());
            std::hint::black_box(&shape_tag);
            let out = op(std::hint::black_box(input));
            last = out.clone();
            feed.insert(out_name.clone(), out);
        }
        last[0]
    }
}

/// Run the §2.3 comparison on the weblog dataset (as in the paper).
pub fn run(cfg: &BenchConfig) -> Vec<NaiveRow> {
    let keyset = Dataset::Weblogs.generate(cfg.keys, cfg.seed);
    let data = KeyStore::from(keyset.keys());
    let queries = keyset.sample_existing(cfg.queries, cfg.seed ^ 0x2_3);

    let mut rows = Vec::new();

    let interp = InterpretedNet::like_paper(32);
    rows.push(NaiveRow {
        name: "interpreted 2x32 net (TF-style)",
        ns: time_batch_ns(&queries, |q| interp.predict(q as f64) as usize),
    });

    let compiled = Mlp::fit_keys(
        &MlpConfig {
            hidden_layers: 2,
            width: 32,
            epochs: 5,
            ..Default::default()
        },
        &keyset.keys_f64(),
    );
    rows.push(NaiveRow {
        name: "compiled 2x32 net (LIF-style)",
        ns: time_batch_ns(&queries, |q| compiled.predict(q as f64) as usize),
    });

    let btree = li_btree::BTreeIndex::new(data.clone(), 128);
    rows.push(NaiveRow {
        name: "btree traversal (page=128)",
        ns: time_batch_ns(&queries, |q| btree.lower_bound(q)),
    });

    rows.push(NaiveRow {
        name: "binary search (whole array)",
        ns: time_batch_ns(&queries, |q| data.partition_point(|&k| k < q)),
    });

    rows
}

/// Render the §2.3 table.
pub fn print(rows: &[NaiveRow], keys: usize) {
    let mut t = Table::new(
        &format!("§2.3 — naïve learned index ({keys} weblog keys)"),
        &["Execution path", "Time (ns)"],
    );
    for r in rows {
        t.row(&[r.name.to_string(), format!("{:.0}", r.ns)]);
    }
    t.note("paper@200M: TF-interpreted ≈80,000ns; btree ≈300ns; binary search ≈900ns");
    t.note("expected shape: interpreted >> binary search > btree > compiled model");
    t.print();
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreted_model_is_much_slower_than_compiled() {
        let rows = run(&BenchConfig {
            keys: 50_000,
            queries: 20_000,
            seed: 1,
        });
        let interp = rows
            .iter()
            .find(|r| r.name.starts_with("interpreted"))
            .unwrap();
        let compiled = rows
            .iter()
            .find(|r| r.name.starts_with("compiled"))
            .unwrap();
        assert!(
            interp.ns > compiled.ns * 2.0,
            "interp {} vs compiled {}",
            interp.ns,
            compiled.ns
        );
    }

    #[test]
    fn interpreted_dominates_every_conventional_path() {
        // The scale-independent §2.3 shape: the interpreted model costs
        // more than both the B-Tree and binary search. (The paper's
        // btree-faster-than-binary-search gap only appears at 200M keys
        // where cache misses dominate; at test scale the whole array is
        // cache-resident, so we do not assert that ordering here.)
        let rows = run(&BenchConfig {
            keys: 200_000,
            queries: 50_000,
            seed: 2,
        });
        let interp = rows
            .iter()
            .find(|r| r.name.starts_with("interpreted"))
            .unwrap();
        let btree = rows.iter().find(|r| r.name.starts_with("btree")).unwrap();
        let bin = rows.iter().find(|r| r.name.starts_with("binary")).unwrap();
        assert!(
            interp.ns > btree.ns,
            "interp {} vs btree {}",
            interp.ns,
            btree.ns
        );
        assert!(
            interp.ns > bin.ns,
            "interp {} vs binary {}",
            interp.ns,
            bin.ns
        );
    }
}
