//! Multi-thread serving scaling: the sharded index under concurrent
//! batched load.
//!
//! The ROADMAP's north star is a serving system, and serving is where
//! partitioned learned indexes earn their keep ("Learned Indexes for a
//! Google-scale Disk-based Database" partitions exactly this way). This
//! experiment measures a [`ShardedIndex`] over the Lognormal dataset at
//! every shard count in [`SHARD_GRID`]: the scalar path, the bucketed
//! batch path, and the parallel batch path fanned across 1/2/4/8
//! scoped threads — all in ns per query, so the columns compare
//! directly.
//!
//! Parallel speedup is bounded by the physical cores the host exposes
//! (reported in the table notes); on a single-core container the
//! 1→4-thread column shows contention, not scaling, while the shard
//! and batch columns still show the partitioning/bucketing effects.

use crate::harness::{mb, time_batch_chunked_ns, time_batch_ns, BenchConfig};
use crate::table::Table;
use li_data::Dataset;
use li_index::{KeyStore, RangeIndex};
use li_serve::{RmiShardBuilder, ShardedIndex};
use std::time::Instant;

/// Queries per batch call (matches fig4's batched column).
pub const BATCH_CHUNK: usize = 1024;

/// Shard counts measured.
pub const SHARD_GRID: [usize; 4] = [1, 4, 8, 16];

/// Thread counts for the parallel-batched path.
pub const THREAD_GRID: [usize; 4] = [1, 2, 4, 8];

/// One measured shard configuration.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Shard count.
    pub shards: usize,
    /// Index overhead in bytes (shards + router).
    pub size_bytes: usize,
    /// Whether the learned router fast path was active.
    pub learned_router: bool,
    /// Mean scalar `lower_bound` ns per query.
    pub scalar_ns: f64,
    /// Mean bucketed `lower_bound_batch` ns per query (chunks of
    /// [`BATCH_CHUNK`]).
    pub batch_ns: f64,
    /// `(threads, ns per query)` for the parallel-batched path, one
    /// entry per [`THREAD_GRID`] value.
    pub parallel_ns: Vec<(usize, f64)>,
}

/// Time the parallel path: whole-workload passes through
/// `lower_bound_batch_parallel` at `threads`, mean ns per query (one
/// warm-up pass precedes the measured passes).
fn time_parallel_ns(idx: &ShardedIndex, queries: &[u64], threads: usize) -> f64 {
    let mut out = vec![0usize; queries.len()];
    idx.lower_bound_batch_parallel(queries, &mut out, threads);
    const PASSES: usize = 3;
    let t0 = Instant::now();
    for _ in 0..PASSES {
        idx.lower_bound_batch_parallel(queries, &mut out, threads);
    }
    let elapsed = t0.elapsed();
    std::hint::black_box(&out);
    elapsed.as_nanos() as f64 / (queries.len() * PASSES) as f64
}

/// Run the scaling grid on the Lognormal dataset.
pub fn run(cfg: &BenchConfig) -> Vec<ScalingRow> {
    let keyset = Dataset::Lognormal.generate(cfg.keys, cfg.seed);
    let queries = keyset.sample_existing(cfg.queries, cfg.seed ^ 0x5EED);
    let store = KeyStore::from(keyset.keys());
    let builder = RmiShardBuilder::new();

    SHARD_GRID
        .iter()
        .map(|&shards| {
            let idx = ShardedIndex::build(store.clone(), shards, &builder);
            let scalar_ns = time_batch_ns(&queries, |q| idx.lower_bound(q));
            let batch_ns = time_batch_chunked_ns(&queries, BATCH_CHUNK, |chunk, out| {
                idx.lower_bound_batch(chunk, out)
            });
            let parallel_ns = THREAD_GRID
                .iter()
                .map(|&t| (t, time_parallel_ns(&idx, &queries, t)))
                .collect();
            ScalingRow {
                shards: idx.shard_count(),
                size_bytes: idx.size_bytes(),
                learned_router: idx.router().is_learned(),
                scalar_ns,
                batch_ns,
                parallel_ns,
            }
        })
        .collect()
}

/// Render the scaling table.
pub fn print(rows: &[ScalingRow], keys: usize) {
    let mut header: Vec<String> = vec![
        "Shards".into(),
        "Size (MB)".into(),
        "Scalar (ns)".into(),
        "Batched (ns)".into(),
    ];
    header.extend(THREAD_GRID.iter().map(|t| format!("Par@{t} (ns)")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    let mut t = Table::new(
        &format!("Serving scaling — ShardedIndex on Lognormal ({keys} keys)"),
        &header_refs,
    );
    for r in rows {
        let mut cells = vec![
            format!(
                "{}{}",
                r.shards,
                if r.learned_router { "" } else { " (binary)" }
            ),
            format!("{:.2}", mb(r.size_bytes)),
            format!("{:.0}", r.scalar_ns),
            format!(
                "{:.0} ({:.2}x vs scalar)",
                r.batch_ns,
                r.scalar_ns / r.batch_ns.max(1e-9)
            ),
        ];
        let par1 = r.parallel_ns.first().map(|&(_, ns)| ns).unwrap_or(f64::NAN);
        for &(_, ns) in &r.parallel_ns {
            cells.push(format!("{:.0} ({:.2}x vs 1T)", ns, par1 / ns.max(1e-9)));
        }
        t.row(&cells);
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    t.note(&format!(
        "parallel = lower_bound_batch_parallel over the whole workload; host exposes {cores} core(s) — speedup is bounded by that"
    ));
    t.note("batched = per-shard bucketed lower_bound_batch in chunks of 1024 (phase-split within each shard)");
    t.note("router marked (binary) when the boundary keys were too degenerate for the learned fast path");
    t.print();
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_covers_the_grid() {
        let rows = run(&BenchConfig::smoke());
        assert_eq!(rows.len(), SHARD_GRID.len());
        for r in &rows {
            assert!(r.scalar_ns > 0.0 && r.batch_ns > 0.0, "shards={}", r.shards);
            assert_eq!(r.parallel_ns.len(), THREAD_GRID.len());
            for &(t, ns) in &r.parallel_ns {
                assert!(ns > 0.0, "shards={} threads={t}", r.shards);
                // Sanity bound, not a perf assertion: the parallel path
                // must stay within two orders of magnitude of scalar
                // even on a loaded single-core CI runner.
                assert!(
                    ns < r.scalar_ns * 100.0 + 10_000.0,
                    "shards={} threads={t}: {ns} vs scalar {}",
                    r.shards,
                    r.scalar_ns
                );
            }
        }
    }

    #[test]
    fn parallel_results_equal_sequential_results() {
        let cfg = BenchConfig::smoke();
        let keyset = Dataset::Lognormal.generate(cfg.keys, cfg.seed);
        let queries = keyset.sample_existing(2000, 99);
        let idx = ShardedIndex::build(KeyStore::from(keyset.keys()), 8, &RmiShardBuilder::new());
        let mut seq = vec![0usize; queries.len()];
        idx.lower_bound_batch(&queries, &mut seq);
        for threads in THREAD_GRID {
            let mut par = vec![usize::MAX; queries.len()];
            idx.lower_bound_batch_parallel(&queries, &mut par, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
    }
}
