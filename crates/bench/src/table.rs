//! Plain-text table printing in the style of the paper's figures.

/// A simple fixed-width text table.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a data row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Append a footnote printed under the table.
    pub fn note(&mut self, note: &str) {
        self.notes.push(note.to_string());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |widths: &[usize]| {
            let mut s = String::from("+");
            for w in widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&widths));
        out.push('|');
        for (h, &width) in self.header.iter().zip(&widths) {
            out.push_str(&format!(" {h:<width$} |"));
        }
        out.push('\n');
        out.push_str(&line(&widths));
        for row in &self.rows {
            out.push('|');
            for c in 0..cols {
                out.push_str(&format!(" {:<width$} |", row[c], width = widths[c]));
            }
            out.push('\n');
        }
        out.push_str(&line(&widths));
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format helper: `12.34 (1.5x)` style cells used throughout the paper.
pub fn with_factor(value: f64, reference: f64, unit: &str) -> String {
    if reference > 0.0 {
        format!("{value:.2}{unit} ({:.2}x)", reference / value)
    } else {
        format!("{value:.2}{unit}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "2".into()]);
        t.note("footnote");
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("| long-name |"));
        assert!(r.contains("note: footnote"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn factor_formatting() {
        assert_eq!(with_factor(2.0, 4.0, "ns"), "2.00ns (2.00x)");
        assert_eq!(with_factor(2.0, 0.0, "ns"), "2.00ns");
    }
}
