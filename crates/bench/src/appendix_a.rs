//! Appendix A: error scaling of constant-size models vs B-Trees.
//!
//! The theory: for a constant-size model the expected position error
//! grows as O(√N) (`std = √(N·F(1−F))`), whereas a constant-size B-Tree
//! (fixed separator budget) leaves residual regions that grow as O(N).
//! This experiment measures both on uniform keys and prints them next to
//! the analytic prediction.

use crate::harness::BenchConfig;
use crate::table::Table;
use li_data::keyset::uniform_keys;
use li_models::{cdf::mean_position_error_std, LinearModel, Model};

/// One scale point.
#[derive(Debug, Clone)]
pub struct AppendixARow {
    /// Key count N.
    pub n: usize,
    /// Measured mean |error| of a constant-size linear model.
    pub model_mean_abs_err: f64,
    /// Analytic √N·π/8 prediction for the same.
    pub analytic: f64,
    /// Residual page size of a constant-budget (1024-separator) B-Tree.
    pub btree_page: usize,
}

/// Run the scaling sweep: N doubling from `cfg.keys / 16` to `cfg.keys`.
pub fn run(cfg: &BenchConfig) -> Vec<AppendixARow> {
    let mut rows = Vec::new();
    let mut n = (cfg.keys / 16).max(1024);
    while n <= cfg.keys {
        let keyset = uniform_keys(n, u64::MAX / 2, cfg.seed);
        let keys = keyset.keys_f64();
        let model = LinearModel::fit_keys(&keys);
        let mean_abs: f64 = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (model.predict(k) - i as f64).abs())
            .sum::<f64>()
            / keys.len() as f64;
        rows.push(AppendixARow {
            n,
            model_mean_abs_err: mean_abs,
            analytic: mean_position_error_std(n),
            // A constant-size B-Tree has a fixed separator budget; its
            // "error" (page size) is N / budget.
            btree_page: n / 1024,
        });
        n *= 2;
    }
    rows
}

/// Render the Appendix-A table.
pub fn print(rows: &[AppendixARow]) {
    let mut t = Table::new(
        "Appendix A — error scaling of constant-size structures",
        &[
            "N",
            "model mean|err|",
            "analytic √N·π/8",
            "const-size btree page",
        ],
    );
    for r in rows {
        t.row(&[
            format!("{}", r.n),
            format!("{:.1}", r.model_mean_abs_err),
            format!("{:.1}", r.analytic),
            format!("{}", r.btree_page),
        ]);
    }
    t.note("model error grows ~√N (sub-linear); a constant-size B-Tree's residual region grows linearly in N");
    t.print();
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_error_grows_sublinearly() {
        let rows = run(&BenchConfig {
            keys: 256_000,
            queries: 0,
            seed: 1,
        });
        assert!(rows.len() >= 3);
        let first = &rows[0];
        let last = rows.last().unwrap();
        let n_ratio = last.n as f64 / first.n as f64;
        let err_ratio = last.model_mean_abs_err / first.model_mean_abs_err;
        // O(√N): error ratio should track sqrt(n_ratio), far below n_ratio.
        assert!(
            err_ratio < n_ratio * 0.5,
            "err ratio {err_ratio} vs n ratio {n_ratio}"
        );
        assert!(
            err_ratio > n_ratio.sqrt() * 0.3,
            "err ratio {err_ratio} suspiciously flat"
        );
        // B-Tree residual is linear (up to integer-division rounding).
        let page_ratio = last.btree_page as f64 / first.btree_page.max(1) as f64;
        assert!(
            (page_ratio - n_ratio).abs() / n_ratio < 0.15,
            "page ratio {page_ratio} vs n ratio {n_ratio}"
        );
    }

    #[test]
    fn measured_error_matches_analytic_order() {
        let rows = run(&BenchConfig {
            keys: 128_000,
            queries: 0,
            seed: 2,
        });
        for r in &rows {
            let ratio = r.model_mean_abs_err / r.analytic;
            assert!((0.2..5.0).contains(&ratio), "N={} ratio {ratio}", r.n);
        }
    }
}
