//! Read-only file regions for the persistence layer: `mmap(2)` when the
//! target supports it, a buffered read otherwise.
//!
//! The warm-restart design (ROADMAP item 1, after "Learned Indexes for a
//! Google-scale Disk-based Database") is "mmap the sorted-key file and
//! load coefficients" — the key payload must become addressable without
//! copying 8 bytes per key back into the heap. [`MappedFile`] is that
//! primitive: an immutable byte region backed by a private read-only
//! mapping on 64-bit little-endian unix targets (feature `mmap`,
//! default-on), or by an owned buffer everywhere else. Callers never
//! branch on which one they got; `KeyStore::from_mapped` builds a
//! zero-copy `u64` view either way.
//!
//! This module is the only place in the workspace that uses `unsafe`
//! (raw `mmap`/`munmap` declarations — no external crate can be added
//! in the offline build — plus the pointer-to-slice reinterpretation
//! that both backings share). Everything above it stays
//! `deny(unsafe_code)`-clean.

#![allow(unsafe_code)]

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;
use std::sync::Arc;

/// Raw `mmap(2)` bindings, gated to the one ABI this workspace can
/// vouch for offline: 64-bit little-endian unix, where `off_t` is
/// `i64`, `size_t` is `usize`, and the mapped bytes can be
/// reinterpreted as little-endian `u64`s directly.
#[cfg(all(
    feature = "mmap",
    unix,
    target_pointer_width = "64",
    target_endian = "little"
))]
mod sys {
    use std::ffi::{c_int, c_void};
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }

    /// An owned private read-only mapping of `len > 0` bytes.
    pub(super) struct Mapping {
        ptr: *const u8,
        len: usize,
    }

    impl Mapping {
        pub(super) fn map(file: &File, len: usize) -> io::Result<Self> {
            debug_assert!(len > 0, "zero-length mappings are handled by the caller");
            // SAFETY: fd is a valid open file descriptor for the
            // lifetime of the call; a NULL addr + MAP_PRIVATE asks the
            // kernel to pick the placement; failure is reported as
            // MAP_FAILED (-1), checked below.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 || ptr.is_null() {
                return Err(io::Error::last_os_error());
            }
            Ok(Self {
                ptr: ptr as *const u8,
                len,
            })
        }

        pub(super) fn bytes(&self) -> &[u8] {
            // SAFETY: `ptr` is a successful PROT_READ mapping of
            // exactly `len` bytes, unmapped only in Drop.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` came from a successful mmap and are
            // unmapped exactly once. Failure is ignored: the region is
            // leaked, never reused.
            unsafe {
                munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }

    // SAFETY: the mapping is read-only for its entire lifetime, so
    // shared references to its bytes are valid from any thread.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}
}

enum Inner {
    #[cfg(all(
        feature = "mmap",
        unix,
        target_pointer_width = "64",
        target_endian = "little"
    ))]
    Mapped(sys::Mapping),
    Owned(Box<[u8]>),
}

/// An immutable byte region loaded from a file — `mmap(2)`-backed where
/// the target supports it (feature `mmap`, 64-bit little-endian unix),
/// an owned buffered read everywhere else. Either way the bytes are
/// read-only and live until the last [`Arc<MappedFile>`] handle drops,
/// which is what lets `KeyStore` hand out zero-copy `u64` views into
/// the region.
///
/// # Caller contract
/// The file must not be truncated or rewritten while mapped: on unix a
/// truncation under a live mapping turns reads into `SIGBUS`. The
/// persistence layer guarantees this by publishing snapshot files
/// atomically (write to a temp name, then rename) and never mutating
/// them in place.
pub struct MappedFile {
    inner: Inner,
}

impl MappedFile {
    /// Load `path` as an immutable region. Empty files and targets (or
    /// mapping failures) without real `mmap` fall back to an owned
    /// read; the caller-visible behavior is identical.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let meta_len = file.metadata()?.len();
        if meta_len == 0 {
            return Ok(Self {
                inner: Inner::Owned(Box::default()),
            });
        }
        let len = usize::try_from(meta_len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space")
        })?;

        #[cfg(all(
            feature = "mmap",
            unix,
            target_pointer_width = "64",
            target_endian = "little"
        ))]
        if let Ok(mapping) = sys::Mapping::map(&file, len) {
            return Ok(Self {
                inner: Inner::Mapped(mapping),
            });
        }

        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(Self {
            inner: Inner::Owned(buf.into_boxed_slice()),
        })
    }

    /// The region's bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(
                feature = "mmap",
                unix,
                target_pointer_width = "64",
                target_endian = "little"
            ))]
            Inner::Mapped(m) => m.bytes(),
            Inner::Owned(b) => b,
        }
    }

    /// Region length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Whether the region is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes().is_empty()
    }

    /// Whether the region is a real `mmap(2)` mapping (false for the
    /// owned-read fallback). Purely informational — e.g. for the
    /// persistence bench report.
    pub fn is_mmapped(&self) -> bool {
        match &self.inner {
            #[cfg(all(
                feature = "mmap",
                unix,
                target_pointer_width = "64",
                target_endian = "little"
            ))]
            Inner::Mapped(_) => true,
            Inner::Owned(_) => false,
        }
    }
}

impl std::fmt::Debug for MappedFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedFile")
            .field("len", &self.len())
            .field("mmapped", &self.is_mmapped())
            .finish()
    }
}

/// A typed zero-copy view of `len` elements inside a shared
/// [`MappedFile`] region. Only ever constructed for `T = u64` (see
/// [`MappedSlice::try_new`]); the `Arc` keeps the region — and thus the
/// mapping — alive for as long as any view exists.
pub(crate) struct MappedSlice<T> {
    region: Arc<MappedFile>,
    ptr: *const T,
    len: usize,
}

impl MappedSlice<u64> {
    /// A zero-copy little-endian `u64` view of `len` elements starting
    /// at `byte_offset`. Returns `None` when reinterpreting the bytes
    /// in place would be unsound or wrong — out of bounds, misaligned
    /// start, or a big-endian host — in which case the caller decodes
    /// an owned copy instead.
    pub(crate) fn try_new(
        region: &Arc<MappedFile>,
        byte_offset: usize,
        len: usize,
    ) -> Option<Self> {
        let bytes = region.bytes();
        let nbytes = len.checked_mul(std::mem::size_of::<u64>())?;
        let end = byte_offset.checked_add(nbytes)?;
        if end > bytes.len() || cfg!(target_endian = "big") {
            return None;
        }
        let ptr = bytes[byte_offset..].as_ptr();
        if !(ptr as usize).is_multiple_of(std::mem::align_of::<u64>()) {
            return None;
        }
        Some(Self {
            region: Arc::clone(region),
            ptr: ptr.cast(),
            len,
        })
    }
}

impl<T> MappedSlice<T> {
    #[inline]
    pub(crate) fn as_slice(&self) -> &[T] {
        // SAFETY: only `try_new` constructs this type, and it verified
        // that [`ptr`, `ptr + len * size_of::<T>()`) lies inside the
        // region's byte buffer with `T`'s alignment; the Arc keeps the
        // region alive for `&self`'s lifetime; the only instantiated
        // `T` is `u64`, valid for every bit pattern.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    pub(crate) fn region(&self) -> &Arc<MappedFile> {
        &self.region
    }
}

impl<T> Clone for MappedSlice<T> {
    fn clone(&self) -> Self {
        Self {
            region: Arc::clone(&self.region),
            ptr: self.ptr,
            len: self.len,
        }
    }
}

// SAFETY: the view is read-only and the underlying region is immutable
// and thread-safe (`MappedFile` bytes never change after open), so the
// raw pointer may travel across threads and be read from any of them.
// `T: Sync` is required because shared `&[T]` slices are handed out.
unsafe impl<T: Sync> Send for MappedSlice<T> {}
unsafe impl<T: Sync> Sync for MappedSlice<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("li-index-mapped-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn open_reads_back_written_bytes() {
        let path = tmp_path("roundtrip");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let region = MappedFile::open(&path).unwrap();
        assert_eq!(region.bytes(), &payload[..]);
        assert_eq!(region.len(), payload.len());
        assert!(!region.is_empty());
        drop(region);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_region() {
        let path = tmp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let region = MappedFile::open(&path).unwrap();
        assert!(region.is_empty());
        assert!(!region.is_mmapped(), "empty files use the owned path");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(MappedFile::open(&tmp_path("does-not-exist")).is_err());
    }

    #[test]
    fn u64_view_decodes_little_endian_payload() {
        let path = tmp_path("u64s");
        let keys: Vec<u64> = vec![0, 1, 1 << 53, u64::MAX - 1, u64::MAX];
        let mut bytes = Vec::new();
        for k in &keys {
            bytes.extend_from_slice(&k.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        let region = Arc::new(MappedFile::open(&path).unwrap());
        let view = MappedSlice::try_new(&region, 0, keys.len()).expect("aligned view");
        assert_eq!(view.as_slice(), &keys[..]);
        assert!(Arc::ptr_eq(view.region(), &region));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_bounds_view_is_rejected() {
        let path = tmp_path("oob");
        std::fs::write(&path, [0u8; 16]).unwrap();
        let region = Arc::new(MappedFile::open(&path).unwrap());
        assert!(MappedSlice::try_new(&region, 0, 3).is_none());
        assert!(MappedSlice::try_new(&region, 16, 1).is_none());
        assert!(MappedSlice::try_new(&region, usize::MAX, 1).is_none());
        assert!(MappedSlice::try_new(&region, 0, usize::MAX).is_none());
        std::fs::remove_file(&path).unwrap();
    }
}
