//! The shared, read-only key store every index is built over.
//!
//! The paper's §3 framing — indexes are interchangeable models over one
//! sorted array — implies the array itself should exist exactly once, no
//! matter how many candidate indexes are built on it (LIF grid search
//! builds dozens). SOSD-style benchmarking makes the same demand: fair
//! comparison requires every structure to read the *same* memory.
//! [`KeyStore`] delivers that: an `Arc<[T]>` plus a sub-range, so clones
//! and slices are O(1) pointer bumps and `ptr_eq` can assert that two
//! indexes really do share one allocation.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// A cheaply clonable, read-only view over a shared sorted key array.
///
/// Defaults to `u64` keys (the workspace's common case); string indexes
/// use `KeyStore<String>`. Cloning never copies key data; [`slice`]
/// produces a narrowed view over the *same* allocation (used by hybrid
/// B-Tree leaves, which index a sub-range of the full array).
///
/// [`slice`]: KeyStore::slice
#[derive(Clone)]
pub struct KeyStore<T = u64> {
    data: Arc<[T]>,
    start: usize,
    end: usize,
}

impl<T> KeyStore<T> {
    /// Wrap an owned key vector (the one unavoidable allocation; every
    /// clone and slice afterwards is free).
    pub fn new(data: Vec<T>) -> Self {
        let data: Arc<[T]> = data.into();
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
        }
    }

    /// The keys this view addresses.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data[self.start..self.end]
    }

    /// Number of keys in this view.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether this view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A narrowed view over the same allocation — zero-copy. `range` is
    /// relative to this view.
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for KeyStore of len {}",
            self.len()
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Bytes of key data addressed by this view (shallow: for heap-owning
    /// key types such as `String` this counts the inline part only).
    pub fn size_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }

    /// Whether two stores share the same underlying allocation (views
    /// over different ranges of one array still compare equal here —
    /// this is the zero-copy witness, not value equality).
    pub fn ptr_eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Number of `KeyStore` handles sharing this allocation.
    pub fn strong_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }
}

impl<T> Deref for KeyStore<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> From<Vec<T>> for KeyStore<T> {
    fn from(data: Vec<T>) -> Self {
        Self::new(data)
    }
}

impl<T> From<Arc<[T]>> for KeyStore<T> {
    fn from(data: Arc<[T]>) -> Self {
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
        }
    }
}

impl<T: Clone> From<&[T]> for KeyStore<T> {
    fn from(data: &[T]) -> Self {
        Self::new(data.to_vec())
    }
}

impl<T: Clone> From<&Vec<T>> for KeyStore<T> {
    fn from(data: &Vec<T>) -> Self {
        Self::new(data.clone())
    }
}

impl<T> FromIterator<T> for KeyStore<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for KeyStore<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyStore")
            .field("len", &self.len())
            .field("start", &self.start)
            .field("shared_handles", &self.strong_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let store = KeyStore::new(vec![1u64, 2, 3]);
        let a = store.clone();
        let b = store.clone();
        assert!(a.ptr_eq(&b));
        assert!(a.ptr_eq(&store));
        assert_eq!(store.strong_count(), 3);
        assert_eq!(a.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn slice_is_a_zero_copy_view() {
        let store = KeyStore::new((0..100u64).collect());
        let mid = store.slice(10..20);
        assert!(mid.ptr_eq(&store));
        assert_eq!(mid.as_slice(), &(10..20).collect::<Vec<u64>>()[..]);
        // Slicing a slice composes.
        let inner = mid.slice(2..5);
        assert_eq!(inner.as_slice(), &[12, 13, 14]);
        assert!(inner.ptr_eq(&store));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        KeyStore::new(vec![1u64]).slice(0..2);
    }

    #[test]
    fn size_bytes_counts_the_view_not_the_allocation() {
        let store: KeyStore = (0..64u64).collect();
        assert_eq!(store.size_bytes(), 64 * 8);
        assert_eq!(store.slice(0..8).size_bytes(), 8 * 8);
    }

    #[test]
    fn conversions_cover_common_sources() {
        let v = vec![5u64, 6];
        let from_ref: KeyStore = (&v).into();
        let from_slice: KeyStore = v.as_slice().into();
        let from_vec: KeyStore = v.into();
        for s in [&from_ref, &from_slice, &from_vec] {
            assert_eq!(s.as_slice(), &[5, 6]);
        }
        // Conversions from borrowed data copy once; they do not share.
        assert!(!from_ref.ptr_eq(&from_vec));
    }

    #[test]
    fn generic_string_store_works() {
        let store: KeyStore<String> = vec!["a".to_string(), "b".to_string()].into();
        assert_eq!(store.len(), 2);
        assert_eq!(&store[0], "a");
        assert!(store.clone().ptr_eq(&store));
    }

    #[test]
    fn deref_gives_slice_methods() {
        let store = KeyStore::new(vec![1u64, 3, 5]);
        assert_eq!(store.partition_point(|&k| k < 4), 2);
        assert!(!store.is_empty());
        assert_eq!(store.len(), 3);
    }
}
