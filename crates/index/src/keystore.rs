//! The shared, read-only key store every index is built over.
//!
//! The paper's §3 framing — indexes are interchangeable models over one
//! sorted array — implies the array itself should exist exactly once, no
//! matter how many candidate indexes are built on it (LIF grid search
//! builds dozens). SOSD-style benchmarking makes the same demand: fair
//! comparison requires every structure to read the *same* memory.
//! [`KeyStore`] delivers that: a shared backing (an `Arc<[T]>`, or a
//! mapped file region for warm restarts) plus a sub-range, so clones
//! and slices are O(1) pointer bumps and `ptr_eq` can assert that two
//! indexes really do share one allocation.

use std::ops::{Deref, Range};
use std::sync::Arc;

use crate::mapped::{MappedFile, MappedSlice};

/// The shared storage behind a [`KeyStore`] view: a heap allocation, or
/// a zero-copy window into a loaded snapshot file. Both are immutable
/// and refcounted; `KeyStore` never branches on which one it holds
/// outside this enum.
enum Backing<T> {
    /// The in-memory case: one `Arc<[T]>` shared by every clone/slice.
    Owned(Arc<[T]>),
    /// The warm-restart case: a typed view into an `Arc<MappedFile>`
    /// region (see `KeyStore::from_mapped`). Sharing is witnessed by
    /// the region handle instead of the slice allocation.
    Mapped(MappedSlice<T>),
}

impl<T> Backing<T> {
    #[inline]
    fn full_slice(&self) -> &[T] {
        match self {
            Backing::Owned(data) => data,
            Backing::Mapped(view) => view.as_slice(),
        }
    }

    fn ptr_eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Backing::Owned(a), Backing::Owned(b)) => Arc::ptr_eq(a, b),
            (Backing::Mapped(a), Backing::Mapped(b)) => Arc::ptr_eq(a.region(), b.region()),
            _ => false,
        }
    }

    fn strong_count(&self) -> usize {
        match self {
            Backing::Owned(data) => Arc::strong_count(data),
            Backing::Mapped(view) => Arc::strong_count(view.region()),
        }
    }
}

impl<T> Clone for Backing<T> {
    fn clone(&self) -> Self {
        match self {
            Backing::Owned(data) => Backing::Owned(Arc::clone(data)),
            Backing::Mapped(view) => Backing::Mapped(view.clone()),
        }
    }
}

/// A cheaply clonable, read-only view over a shared sorted key array.
///
/// Defaults to `u64` keys (the workspace's common case); string indexes
/// use `KeyStore<String>`. Cloning never copies key data; [`slice`]
/// produces a narrowed view over the *same* allocation (used by hybrid
/// B-Tree leaves, which index a sub-range of the full array). The
/// backing is either an owned heap allocation or — after a warm restart
/// via [`KeyStore::from_mapped`] — a window into a mapped snapshot
/// file; every operation behaves identically over both.
///
/// [`slice`]: KeyStore::slice
pub struct KeyStore<T = u64> {
    data: Backing<T>,
    start: usize,
    end: usize,
}

impl<T> Clone for KeyStore<T> {
    fn clone(&self) -> Self {
        Self {
            data: self.data.clone(),
            start: self.start,
            end: self.end,
        }
    }
}

impl<T> KeyStore<T> {
    /// Wrap an owned key vector (the one unavoidable allocation; every
    /// clone and slice afterwards is free).
    pub fn new(data: Vec<T>) -> Self {
        let data: Arc<[T]> = data.into();
        let end = data.len();
        Self {
            data: Backing::Owned(data),
            start: 0,
            end,
        }
    }

    /// The keys this view addresses.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data.full_slice()[self.start..self.end]
    }

    /// Number of keys in this view.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether this view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A narrowed view over the same allocation — zero-copy. `range` is
    /// relative to this view.
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for KeyStore of len {}",
            self.len()
        );
        Self {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Bytes of key data addressed by this view (shallow: for heap-owning
    /// key types such as `String` this counts the inline part only).
    pub fn size_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }

    /// Whether two stores share the same underlying allocation (views
    /// over different ranges of one array still compare equal here —
    /// this is the zero-copy witness, not value equality). For mapped
    /// stores, "same allocation" means the same file region; an owned
    /// store never compares equal to a mapped one.
    pub fn ptr_eq(&self, other: &Self) -> bool {
        self.data.ptr_eq(&other.data)
    }

    /// Number of `KeyStore` handles sharing this allocation (for mapped
    /// stores: handles on the shared file region, including any the
    /// caller holds directly).
    pub fn strong_count(&self) -> usize {
        self.data.strong_count()
    }

    /// Whether this view is backed by a mapped snapshot file rather
    /// than an owned heap allocation.
    pub fn is_mapped(&self) -> bool {
        matches!(self.data, Backing::Mapped(_))
    }
}

impl KeyStore<u64> {
    /// A zero-copy view of `len` little-endian `u64` keys starting at
    /// `byte_offset` in a loaded snapshot region — the warm-restart
    /// constructor: no key is copied; the view reads the file's pages
    /// directly and keeps the region alive via its `Arc`.
    ///
    /// Falls back to decoding an owned copy only when in-place
    /// reinterpretation would be unsound or wrong (misaligned offset,
    /// big-endian host) — never silently misreads bytes.
    ///
    /// # Errors
    /// If `[byte_offset, byte_offset + len * 8)` does not lie within
    /// the region.
    pub fn from_mapped(
        region: &Arc<MappedFile>,
        byte_offset: usize,
        len: usize,
    ) -> std::io::Result<Self> {
        let nbytes = len
            .checked_mul(std::mem::size_of::<u64>())
            .and_then(|n| n.checked_add(byte_offset))
            .filter(|&end| end <= region.len())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "key range [{byte_offset}, +{len}*8) out of bounds for region of {} bytes",
                        region.len()
                    ),
                )
            })?;
        if let Some(view) = MappedSlice::try_new(region, byte_offset, len) {
            return Ok(Self {
                data: Backing::Mapped(view),
                start: 0,
                end: len,
            });
        }
        // Misaligned or big-endian: decode a faithful owned copy.
        let bytes = &region.bytes()[byte_offset..nbytes];
        let keys: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect();
        Ok(Self::new(keys))
    }
}

impl<T> Deref for KeyStore<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> From<Vec<T>> for KeyStore<T> {
    fn from(data: Vec<T>) -> Self {
        Self::new(data)
    }
}

impl<T> From<Arc<[T]>> for KeyStore<T> {
    fn from(data: Arc<[T]>) -> Self {
        let end = data.len();
        Self {
            data: Backing::Owned(data),
            start: 0,
            end,
        }
    }
}

impl<T: Clone> From<&[T]> for KeyStore<T> {
    fn from(data: &[T]) -> Self {
        Self::new(data.to_vec())
    }
}

impl<T: Clone> From<&Vec<T>> for KeyStore<T> {
    fn from(data: &Vec<T>) -> Self {
        Self::new(data.clone())
    }
}

impl<T> FromIterator<T> for KeyStore<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for KeyStore<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyStore")
            .field("len", &self.len())
            .field("start", &self.start)
            .field("shared_handles", &self.strong_count())
            .field(
                "backing",
                if self.is_mapped() {
                    &"mapped"
                } else {
                    &"owned"
                },
            )
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let store = KeyStore::new(vec![1u64, 2, 3]);
        let a = store.clone();
        let b = store.clone();
        assert!(a.ptr_eq(&b));
        assert!(a.ptr_eq(&store));
        assert_eq!(store.strong_count(), 3);
        assert_eq!(a.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn slice_is_a_zero_copy_view() {
        let store = KeyStore::new((0..100u64).collect());
        let mid = store.slice(10..20);
        assert!(mid.ptr_eq(&store));
        assert_eq!(mid.as_slice(), &(10..20).collect::<Vec<u64>>()[..]);
        // Slicing a slice composes.
        let inner = mid.slice(2..5);
        assert_eq!(inner.as_slice(), &[12, 13, 14]);
        assert!(inner.ptr_eq(&store));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        KeyStore::new(vec![1u64]).slice(0..2);
    }

    #[test]
    fn size_bytes_counts_the_view_not_the_allocation() {
        let store: KeyStore = (0..64u64).collect();
        assert_eq!(store.size_bytes(), 64 * 8);
        assert_eq!(store.slice(0..8).size_bytes(), 8 * 8);
    }

    #[test]
    fn conversions_cover_common_sources() {
        let v = vec![5u64, 6];
        let from_ref: KeyStore = (&v).into();
        let from_slice: KeyStore = v.as_slice().into();
        let from_vec: KeyStore = v.into();
        for s in [&from_ref, &from_slice, &from_vec] {
            assert_eq!(s.as_slice(), &[5, 6]);
        }
        // Conversions from borrowed data copy once; they do not share.
        assert!(!from_ref.ptr_eq(&from_vec));
    }

    #[test]
    fn generic_string_store_works() {
        let store: KeyStore<String> = vec!["a".to_string(), "b".to_string()].into();
        assert_eq!(store.len(), 2);
        assert_eq!(&store[0], "a");
        assert!(store.clone().ptr_eq(&store));
    }

    #[test]
    fn deref_gives_slice_methods() {
        let store = KeyStore::new(vec![1u64, 3, 5]);
        assert_eq!(store.partition_point(|&k| k < 4), 2);
        assert!(!store.is_empty());
        assert_eq!(store.len(), 3);
    }

    fn write_keys(name: &str, keys: &[u64], lead_pad: usize) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("li-index-keystore-{}-{name}", std::process::id()));
        let mut bytes = vec![0u8; lead_pad];
        for k in keys {
            bytes.extend_from_slice(&k.to_le_bytes());
        }
        std::fs::write(&p, &bytes).unwrap();
        p
    }

    #[test]
    fn mapped_store_round_trips_and_shares_the_region() {
        let keys: Vec<u64> = (0..512u64).map(|i| i * 37).collect();
        let path = write_keys("share", &keys, 0);
        let region = Arc::new(MappedFile::open(&path).unwrap());
        let store = KeyStore::from_mapped(&region, 0, keys.len()).unwrap();
        assert_eq!(store.as_slice(), &keys[..]);
        assert!(store.is_mapped());

        // Clones and slices share the region, witnessed like Arc data.
        let clone = store.clone();
        let mid = store.slice(100..200);
        assert!(clone.ptr_eq(&store));
        assert!(mid.ptr_eq(&store));
        assert_eq!(mid.as_slice(), &keys[100..200]);
        // region handle + store + clone + mid.
        assert_eq!(store.strong_count(), 4);

        // An owned store never aliases a mapped one.
        let owned = KeyStore::new(keys.clone());
        assert!(!owned.ptr_eq(&store));
        assert!(!owned.is_mapped());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn misaligned_mapped_store_decodes_a_faithful_copy() {
        let keys: Vec<u64> = vec![3, 1 << 53, u64::MAX];
        let path = write_keys("misaligned", &keys, 3);
        let region = Arc::new(MappedFile::open(&path).unwrap());
        let store = KeyStore::from_mapped(&region, 3, keys.len()).unwrap();
        assert_eq!(store.as_slice(), &keys[..]);
        // Offset 3 cannot be reinterpreted in place.
        assert!(!store.is_mapped());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapped_store_rejects_out_of_bounds_ranges() {
        let keys: Vec<u64> = vec![1, 2];
        let path = write_keys("oob", &keys, 0);
        let region = Arc::new(MappedFile::open(&path).unwrap());
        assert!(KeyStore::from_mapped(&region, 0, 3).is_err());
        assert!(KeyStore::from_mapped(&region, 8, 2).is_err());
        assert!(KeyStore::from_mapped(&region, usize::MAX, 1).is_err());
        assert!(KeyStore::from_mapped(&region, 0, usize::MAX).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
