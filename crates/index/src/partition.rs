//! Range-partitioning helpers for sharded serving.
//!
//! A sharded index splits one sorted key array into N contiguous
//! position ranges ("shards") and routes each query to the shard that
//! must contain its lower-bound position. These helpers hold the
//! arithmetic both the router and the partitioner share, so `li-serve`
//! and any future partitioned structure agree on the exact semantics:
//!
//! * [`even_offsets`] — N+1 split points over `len` positions, balanced
//!   to within one key.
//! * [`boundaries`] — the first key of every shard except shard 0: the
//!   router's decision keys.
//! * [`route_binary`] — the reference routing rule. For a globally
//!   sorted array the lower-bound position of `q` always falls inside
//!   shard `partition_point(boundaries, |b| b < q)` (proof in the
//!   function docs), so a learned router only has to *approximate* this
//!   and verify in O(1).

/// Split `len` positions into `shards` contiguous ranges, returning the
/// `shards + 1` offsets (offset `i`..offset `i+1` is shard `i`). The
/// first `len % shards` shards get one extra key, so sizes differ by at
/// most one.
///
/// # Panics
/// If `shards == 0`.
pub fn even_offsets(len: usize, shards: usize) -> Vec<usize> {
    assert!(shards > 0, "even_offsets: shards must be > 0");
    let base = len / shards;
    let extra = len % shards;
    let mut offsets = Vec::with_capacity(shards + 1);
    let mut at = 0usize;
    offsets.push(0);
    for i in 0..shards {
        at += base + usize::from(i < extra);
        offsets.push(at);
    }
    debug_assert_eq!(*offsets.last().unwrap(), len);
    offsets
}

/// The routing keys for a partition of `keys` at `offsets` (as produced
/// by [`even_offsets`]): the first key of each shard `1..N`. Shard 0
/// needs no boundary — every query smaller than all boundaries routes
/// there.
///
/// Empty shards (which [`even_offsets`] only produces as a suffix, when
/// `shards > len`) get boundary `u64::MAX`: since `u64::MAX < q` never
/// holds, [`route_binary`] never selects them and every query stops at
/// the last non-empty shard instead.
pub fn boundaries(keys: &[u64], offsets: &[usize]) -> Vec<u64> {
    let n = offsets.len().saturating_sub(1);
    offsets[1..n.max(1)]
        .iter()
        .map(|&o| keys.get(o).copied().unwrap_or(u64::MAX))
        .collect()
}

/// Reference routing rule: the shard whose position range contains
/// `lower_bound(q)` over the full array.
///
/// Why `partition_point(|b| b < q)` is correct, duplicates included:
/// let `s` be the returned shard. Every shard `j > s` has first key
/// `>= q`, so the global lower bound is at or before shard `s+1`'s
/// start. Every key in shards `< s` is `<=` shard `s`'s first key
/// (global sort order), which is `< q`, so the global lower bound is at
/// or after shard `s`'s start. Hence it lies in
/// `[offsets[s], offsets[s+1]]`, and a shard-local `lower_bound`
/// (which returns the shard length when every shard key is `< q`)
/// lands exactly on it.
#[inline]
pub fn route_binary(boundaries: &[u64], q: u64) -> usize {
    boundaries.partition_point(|&b| b < q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_balanced_and_cover() {
        for len in [0usize, 1, 2, 7, 10, 100, 101] {
            for shards in [1usize, 2, 3, 7, 16] {
                let o = even_offsets(len, shards);
                assert_eq!(o.len(), shards + 1);
                assert_eq!(o[0], 0);
                assert_eq!(*o.last().unwrap(), len);
                let sizes: Vec<usize> = o.windows(2).map(|w| w[1] - w[0]).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "len={len} shards={shards} sizes={sizes:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "shards must be > 0")]
    fn zero_shards_panics() {
        even_offsets(10, 0);
    }

    #[test]
    fn boundaries_are_first_keys() {
        let keys: Vec<u64> = (0..10u64).map(|i| i * 5).collect();
        let offsets = even_offsets(keys.len(), 3); // [0, 4, 7, 10]
        assert_eq!(boundaries(&keys, &offsets), vec![keys[4], keys[7]]);
        // Single shard: no boundaries.
        assert_eq!(boundaries(&keys, &even_offsets(keys.len(), 1)), vec![]);
        // Empty keyset, single shard.
        assert_eq!(boundaries(&[], &even_offsets(0, 1)), vec![]);
    }

    /// Routing must place the global lower bound inside the chosen
    /// shard's position range, for unique and duplicate-heavy keysets.
    #[test]
    fn routed_shard_contains_the_global_lower_bound() {
        let keysets: Vec<Vec<u64>> = vec![
            (0..100u64).map(|i| i * 3).collect(),
            vec![7; 50],
            vec![1, 1, 1, 5, 5, 9, 9, 9, 9, 12],
            vec![0, u64::MAX - 1, u64::MAX, u64::MAX],
        ];
        for keys in keysets {
            for shards in [1usize, 2, 3, 7] {
                let offsets = even_offsets(keys.len(), shards);
                let bounds = boundaries(&keys, &offsets);
                let mut probes = vec![0u64, 1, u64::MAX - 1, u64::MAX];
                probes.extend(
                    keys.iter()
                        .flat_map(|&k| [k.saturating_sub(1), k, k.saturating_add(1)]),
                );
                for q in probes {
                    let s = route_binary(&bounds, q);
                    let global = keys.partition_point(|&k| k < q);
                    let local = keys[offsets[s]..offsets[s + 1]].partition_point(|&k| k < q);
                    assert_eq!(
                        offsets[s] + local,
                        global,
                        "keys={keys:?} shards={shards} q={q} -> shard {s}"
                    );
                }
            }
        }
    }
}
