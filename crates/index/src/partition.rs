//! Range-partitioning helpers for sharded serving.
//!
//! A sharded index splits one sorted key array into N contiguous
//! position ranges ("shards") and routes each query to the shard that
//! must contain its lower-bound position. These helpers hold the
//! arithmetic both the router and the partitioner share, so `li-serve`
//! and any future partitioned structure agree on the exact semantics:
//!
//! * [`even_offsets`] — N+1 split points over `len` positions, balanced
//!   to within one key.
//! * [`boundaries`] — the first key of every shard except shard 0: the
//!   router's decision keys.
//! * [`route_binary`] — the reference routing rule. For a globally
//!   sorted array the lower-bound position of `q` always falls inside
//!   shard `partition_point(boundaries, |b| b < q)` (proof in the
//!   function docs), so a learned router only has to *approximate* this
//!   and verify in O(1).
//! * [`route_owner_binary`] — the *ownership* routing rule for writable
//!   sharding: shard `i` owns the half-open key range
//!   `[boundaries[i-1], boundaries[i])`, so a key has exactly one home
//!   shard no matter how shard contents evolve under inserts.
//! * [`split_point`] — where a hot shard hands the upper half of its
//!   keys to a new sibling: the balanced split index that never tears a
//!   duplicate run across the new boundary.

/// Split `len` positions into `shards` contiguous ranges, returning the
/// `shards + 1` offsets (offset `i`..offset `i+1` is shard `i`). The
/// first `len % shards` shards get one extra key, so sizes differ by at
/// most one.
///
/// # Panics
/// If `shards == 0`.
pub fn even_offsets(len: usize, shards: usize) -> Vec<usize> {
    assert!(shards > 0, "even_offsets: shards must be > 0");
    let base = len / shards;
    let extra = len % shards;
    let mut offsets = Vec::with_capacity(shards + 1);
    let mut at = 0usize;
    offsets.push(0);
    for i in 0..shards {
        at += base + usize::from(i < extra);
        offsets.push(at);
    }
    debug_assert_eq!(*offsets.last().unwrap(), len);
    offsets
}

/// The routing keys for a partition of `keys` at `offsets` (as produced
/// by [`even_offsets`]): the first key of each shard `1..N`. Shard 0
/// needs no boundary — every query smaller than all boundaries routes
/// there.
///
/// Empty shards (which [`even_offsets`] only produces as a suffix, when
/// `shards > len`) get boundary `u64::MAX`: since `u64::MAX < q` never
/// holds, [`route_binary`] never selects them and every query stops at
/// the last non-empty shard instead.
pub fn boundaries(keys: &[u64], offsets: &[usize]) -> Vec<u64> {
    let n = offsets.len().saturating_sub(1);
    offsets[1..n.max(1)]
        .iter()
        .map(|&o| keys.get(o).copied().unwrap_or(u64::MAX))
        .collect()
}

/// Reference routing rule: the shard whose position range contains
/// `lower_bound(q)` over the full array.
///
/// Why `partition_point(|b| b < q)` is correct, duplicates included:
/// let `s` be the returned shard. Every shard `j > s` has first key
/// `>= q`, so the global lower bound is at or before shard `s+1`'s
/// start. Every key in shards `< s` is `<=` shard `s`'s first key
/// (global sort order), which is `< q`, so the global lower bound is at
/// or after shard `s`'s start. Hence it lies in
/// `[offsets[s], offsets[s+1]]`, and a shard-local `lower_bound`
/// (which returns the shard length when every shard key is `< q`)
/// lands exactly on it.
#[inline]
pub fn route_binary(boundaries: &[u64], q: u64) -> usize {
    boundaries.partition_point(|&b| b < q)
}

/// Ownership routing rule for *writable* sharding: the shard whose
/// half-open key range `[boundaries[s-1], boundaries[s])` contains `k`
/// (shard 0 owns everything below `boundaries[0]`, the last shard owns
/// everything from the last boundary up).
///
/// This differs from [`route_binary`] exactly on boundary keys:
/// `partition_point(|b| b <= k)` sends `k == boundaries[i]` to shard
/// `i + 1` — the shard that *starts* at that key — while the read rule
/// may stop one earlier (both are correct for a read, because the two
/// candidate positions coincide at the shard edge). For writes the
/// distinction matters: inserts must have exactly **one** home shard,
/// or a key could be duplicated across shards and membership/rank
/// queries would consult the wrong one.
///
/// Why ownership composes with per-shard queries: if every shard `s`
/// holds only keys in its owned range, then for any `k` with owner `s`,
/// every key in shards `< s` is `< boundaries[s-1] <= k` and every key
/// in shards `> s` is `>= boundaries[s] > k`. Hence
/// `contains(k) == shard_s.contains(k)` and
/// `rank(k) == len(shard_0..s) + shard_s.rank(k)` — each global query
/// touches exactly one shard plus O(1) bookkeeping.
#[inline]
pub fn route_owner_binary(boundaries: &[u64], k: u64) -> usize {
    boundaries.partition_point(|&b| b <= k)
}

/// The balanced split index for handing the upper half of a hot shard's
/// keys to a new sibling: an index `m` with `0 < m < len` and
/// `keys[m-1] < keys[m]`, as close to `len / 2` as possible.
///
/// The strict-inequality requirement keeps ownership sound: the new
/// boundary is `keys[m]`, and a duplicate run straddling `m` would put
/// equal keys on both sides of a boundary — the left copies outside
/// their owner's range. `None` when no such index exists (fewer than
/// two keys, or all keys equal), in which case the shard cannot split.
pub fn split_point(keys: &[u64]) -> Option<usize> {
    let n = keys.len();
    if n < 2 {
        return None;
    }
    let mid = n / 2;
    // Scan outward from the middle for the nearest run edge.
    for d in 0..n {
        let lo = mid.checked_sub(d).filter(|&m| m > 0);
        if let Some(m) = lo {
            if keys[m - 1] < keys[m] {
                return Some(m);
            }
        }
        let hi = mid + d;
        if hi > mid && hi < n && keys[hi - 1] < keys[hi] {
            return Some(hi);
        }
        if lo.is_none() && hi >= n {
            break;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_balanced_and_cover() {
        for len in [0usize, 1, 2, 7, 10, 100, 101] {
            for shards in [1usize, 2, 3, 7, 16] {
                let o = even_offsets(len, shards);
                assert_eq!(o.len(), shards + 1);
                assert_eq!(o[0], 0);
                assert_eq!(*o.last().unwrap(), len);
                let sizes: Vec<usize> = o.windows(2).map(|w| w[1] - w[0]).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "len={len} shards={shards} sizes={sizes:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "shards must be > 0")]
    fn zero_shards_panics() {
        even_offsets(10, 0);
    }

    #[test]
    fn boundaries_are_first_keys() {
        let keys: Vec<u64> = (0..10u64).map(|i| i * 5).collect();
        let offsets = even_offsets(keys.len(), 3); // [0, 4, 7, 10]
        assert_eq!(boundaries(&keys, &offsets), vec![keys[4], keys[7]]);
        // Single shard: no boundaries.
        assert_eq!(boundaries(&keys, &even_offsets(keys.len(), 1)), vec![]);
        // Empty keyset, single shard.
        assert_eq!(boundaries(&[], &even_offsets(0, 1)), vec![]);
    }

    /// Ownership routing gives every key exactly one home shard, and
    /// boundary keys belong to the shard that *starts* at them.
    #[test]
    fn owner_routing_sends_boundary_keys_to_the_starting_shard() {
        let bounds = vec![10u64, 20, 30];
        assert_eq!(route_owner_binary(&bounds, 0), 0);
        assert_eq!(route_owner_binary(&bounds, 9), 0);
        assert_eq!(
            route_owner_binary(&bounds, 10),
            1,
            "boundary key owned by the shard starting at it"
        );
        assert_eq!(route_owner_binary(&bounds, 19), 1);
        assert_eq!(route_owner_binary(&bounds, 20), 2);
        assert_eq!(route_owner_binary(&bounds, 30), 3);
        assert_eq!(route_owner_binary(&bounds, u64::MAX), 3);
        assert_eq!(
            route_owner_binary(&[], 42),
            0,
            "single shard owns everything"
        );
    }

    /// The composition argument in the `route_owner_binary` docs,
    /// checked mechanically: partition a keyset by owner, then verify
    /// per-shard contains/rank reconstruct the global answers.
    #[test]
    fn owner_routing_composes_with_per_shard_queries() {
        let keys: Vec<u64> = (0..120u64).map(|i| i * 7 % 256).collect();
        let mut keys = keys;
        keys.sort_unstable();
        keys.dedup();
        let bounds = vec![40u64, 99, 200];
        let shards: Vec<Vec<u64>> = (0..=bounds.len())
            .map(|s| {
                keys.iter()
                    .copied()
                    .filter(|&k| route_owner_binary(&bounds, k) == s)
                    .collect()
            })
            .collect();
        // Partition respects global order: concatenation == original.
        let concat: Vec<u64> = shards.iter().flatten().copied().collect();
        assert_eq!(concat, keys);
        for q in [0u64, 39, 40, 41, 98, 99, 150, 200, 255, u64::MAX] {
            let s = route_owner_binary(&bounds, q);
            let prefix: usize = shards[..s].iter().map(Vec::len).sum();
            let local = shards[s].partition_point(|&k| k < q);
            assert_eq!(prefix + local, keys.partition_point(|&k| k < q), "q={q}");
            assert_eq!(
                shards[s].binary_search(&q).is_ok(),
                keys.binary_search(&q).is_ok(),
                "q={q}"
            );
        }
    }

    #[test]
    fn split_point_is_balanced_and_never_tears_runs() {
        // Unique keys: exact middle.
        let unique: Vec<u64> = (0..10u64).collect();
        assert_eq!(split_point(&unique), Some(5));
        // Odd length: middle-ish.
        assert_eq!(split_point(&[1, 2, 3]), Some(1));
        // A duplicate run across the middle is skipped, not torn.
        let run = vec![1u64, 5, 5, 5, 5, 5, 5, 9];
        let m = split_point(&run).unwrap();
        assert!(m > 0 && m < run.len());
        assert!(run[m - 1] < run[m], "torn run at {m}: {run:?}");
        // Unsplittable: too small or all-equal.
        assert_eq!(split_point(&[]), None);
        assert_eq!(split_point(&[7]), None);
        assert_eq!(split_point(&[7, 7, 7, 7]), None);
        // Splittable only at one edge.
        assert_eq!(split_point(&[1, 9, 9, 9]), Some(1));
        assert_eq!(split_point(&[9, 9, 9, 12]), Some(3));
    }

    /// Splitting at `split_point` yields two non-empty halves whose
    /// boundary key re-routes every key to the correct half.
    #[test]
    fn split_point_halves_agree_with_owner_routing() {
        let keysets: Vec<Vec<u64>> = vec![
            (0..101u64).map(|i| i * 3).collect(),
            vec![0, 1, 1, 2, 2, 2, 3, u64::MAX],
            vec![5, 6],
        ];
        for keys in keysets {
            let m = split_point(&keys).unwrap();
            let boundary = keys[m];
            for (i, &k) in keys.iter().enumerate() {
                let side = usize::from(route_owner_binary(&[boundary], k) == 1);
                assert_eq!(side, usize::from(i >= m), "keys={keys:?} m={m} k={k}");
            }
        }
    }

    /// Routing must place the global lower bound inside the chosen
    /// shard's position range, for unique and duplicate-heavy keysets.
    #[test]
    fn routed_shard_contains_the_global_lower_bound() {
        let keysets: Vec<Vec<u64>> = vec![
            (0..100u64).map(|i| i * 3).collect(),
            vec![7; 50],
            vec![1, 1, 1, 5, 5, 9, 9, 9, 9, 12],
            vec![0, u64::MAX - 1, u64::MAX, u64::MAX],
        ];
        for keys in keysets {
            for shards in [1usize, 2, 3, 7] {
                let offsets = even_offsets(keys.len(), shards);
                let bounds = boundaries(&keys, &offsets);
                let mut probes = vec![0u64, 1, u64::MAX - 1, u64::MAX];
                probes.extend(
                    keys.iter()
                        .flat_map(|&k| [k.saturating_sub(1), k, k.saturating_add(1)]),
                );
                for q in probes {
                    let s = route_binary(&bounds, q);
                    let global = keys.partition_point(|&k| k < q);
                    let local = keys[offsets[s]..offsets[s + 1]].partition_point(|&k| k < q);
                    assert_eq!(
                        offsets[s] + local,
                        global,
                        "keys={keys:?} shards={shards} q={q} -> shard {s}"
                    );
                }
            }
        }
    }
}
