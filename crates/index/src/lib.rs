//! # li-index — the foundation of the learned-index workspace
//!
//! The paper's central claim (§3) is that B-Trees, lookup tables and
//! learned models are all *interchangeable models over one sorted
//! array*. This crate is that claim as a dependency graph: it holds the
//! shared vocabulary every index implementation speaks, with no
//! dependency on any particular implementation.
//!
//! * [`KeyStore`] — the shared, zero-copy sorted key array. Every index
//!   in the workspace (baseline or learned) is built over a `KeyStore`
//!   clone, so LIF synthesis can build N candidates over one allocation.
//! * [`Prediction`] — a candidate region produced by an index's predict
//!   phase (for a B-Tree: the page; for a model: position ± error).
//! * [`RangeIndex`] — the common trait, split into *predict* and
//!   *search* phases so the benchmark harness can report the paper's
//!   "Model (ns)" column, plus [`RangeIndex::lower_bound_batch`]: the
//!   batched execution path that lets phase-split implementations
//!   overlap the cache misses of many queries (the SOSD-style
//!   memory-level-parallelism measurement).
//! * [`partition`] — the range-partitioning arithmetic shared by the
//!   sharded serving layer (`li-serve`): balanced shard offsets, shard
//!   boundary keys, and the reference routing rule with its
//!   duplicates-safe correctness argument.
//!
//! The workspace dependency graph is `li-index → li-btree → li-core →
//! {li-serve, li-hash} → {li-bloom, li-bench}`; `li-btree` and
//! `li-core` re-export these types for backward compatibility, and
//! `li-serve` builds its sharded serving layer on [`partition`].

// `deny` rather than `forbid`: the `mapped` module is the workspace's
// single, audited `unsafe` island (raw mmap + pointer-to-slice views
// for warm restarts) and opts out locally. Everything else stays
// unsafe-free and the lint keeps it that way.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod keystore;
pub mod mapped;
pub mod partition;

pub use keystore::KeyStore;
pub use mapped::MappedFile;

/// A candidate region produced by an index's predict phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// The position estimate (for a B-Tree: start of the page; for a
    /// learned index: the model output).
    pub pos: usize,
    /// Inclusive lower bound of the region guaranteed to contain the
    /// lower-bound position of the key.
    pub lo: usize,
    /// Exclusive upper bound of that region.
    pub hi: usize,
}

/// A read-only range index over a sorted `u64` key array.
///
/// Semantics follow §3.4 of the paper: `lower_bound(q)` returns the
/// position of the first stored key `>= q` (i.e. `data.len()` when every
/// key is smaller), exactly like `slice::partition_point(|k| k < q)` on
/// the underlying sorted array. Keys may contain duplicates unless an
/// implementation documents a stricter contract.
pub trait RangeIndex: Send + Sync {
    /// The shared key store the index was built over. All stored keys —
    /// `data()` is a view into exactly this store, so callers can verify
    /// zero-copy sharing across indexes with [`KeyStore::ptr_eq`].
    fn key_store(&self) -> &KeyStore;

    /// The sorted key array the index was built over.
    fn data(&self) -> &[u64] {
        self.key_store().as_slice()
    }

    /// Predict phase: narrow the key to a candidate region. The paper's
    /// "Model (ns)" column times exactly this.
    fn predict(&self, key: u64) -> Prediction;

    /// Full lookup: position of the first key `>= key`.
    fn lower_bound(&self, key: u64) -> usize;

    /// Batched lookup: for every `queries[i]`, store the position of the
    /// first key `>= queries[i]` into `out[i]`.
    ///
    /// The default is the scalar loop. Implementations with a separable
    /// predict phase ([`crate::RangeIndex::predict`]) override this with
    /// a *phase-split* plan: run every model/traversal prediction first,
    /// then resolve every local search — loop fission that exposes the
    /// independent cache misses of different queries to the hardware at
    /// once instead of serializing predict→search per query.
    ///
    /// # Panics
    /// If `queries.len() != out.len()`.
    fn lower_bound_batch(&self, queries: &[u64], out: &mut [usize]) {
        assert_eq!(
            queries.len(),
            out.len(),
            "lower_bound_batch: queries and out must have equal length"
        );
        for (o, &q) in out.iter_mut().zip(queries) {
            *o = self.lower_bound(q);
        }
    }

    /// Position of the first key `> key`.
    ///
    /// Correct for duplicate keysets: every key equal to `key` is
    /// skipped with a `partition_point` scan over the (contiguous) run
    /// of equal keys, not just one.
    fn upper_bound(&self, key: u64) -> usize {
        let lb = self.lower_bound(key);
        let data = self.data();
        // data[lb..] starts at the first key >= `key`; equal keys form a
        // contiguous prefix of that tail.
        lb + data[lb..].partition_point(|&k| k == key)
    }

    /// Position of `key` if present (the first occurrence, for
    /// duplicate keysets).
    fn lookup(&self, key: u64) -> Option<usize> {
        let lb = self.lower_bound(key);
        let data = self.data();
        (lb < data.len() && data[lb] == key).then_some(lb)
    }

    /// All positions whose keys fall in `[lo, hi)` — the range scan the
    /// sorted layout exists to serve (§2.2).
    fn range(&self, lo: u64, hi: u64) -> std::ops::Range<usize> {
        if hi <= lo {
            return 0..0;
        }
        let start = self.lower_bound(lo);
        let end = self.lower_bound(hi);
        start..end
    }

    /// Index overhead in bytes, **excluding** the data array itself (the
    /// paper's "Size (MB)" column counts only the index).
    fn size_bytes(&self) -> usize;

    /// Human-readable name including configuration, e.g.
    /// `"btree(page=128)"`.
    fn name(&self) -> String;

    /// Concrete-type escape hatch for the persistence layer:
    /// implementations whose parameters can be serialized return
    /// `Some(self)` so callers may downcast (e.g. `li-serve`'s save
    /// path downcasting shard backends to `Rmi`). The default keeps the
    /// concrete type hidden, which save paths report as "unsupported
    /// backend" rather than guessing.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal reference implementation: plain binary search over the
    /// store. Exercises every *provided* trait method exactly as written.
    struct BinarySearchIndex {
        keys: KeyStore,
    }

    impl BinarySearchIndex {
        fn new(data: Vec<u64>) -> Self {
            Self {
                keys: KeyStore::new(data),
            }
        }
    }

    impl RangeIndex for BinarySearchIndex {
        fn key_store(&self) -> &KeyStore {
            &self.keys
        }

        fn predict(&self, key: u64) -> Prediction {
            let pos = self.lower_bound(key);
            Prediction {
                pos,
                lo: pos,
                hi: pos,
            }
        }

        fn lower_bound(&self, key: u64) -> usize {
            self.keys.partition_point(|&k| k < key)
        }

        fn size_bytes(&self) -> usize {
            0
        }

        fn name(&self) -> String {
            "binary-search".into()
        }
    }

    fn upper_oracle(data: &[u64], key: u64) -> usize {
        data.partition_point(|&k| k <= key)
    }

    #[test]
    fn provided_methods_agree_with_semantics() {
        let idx = BinarySearchIndex::new(vec![10, 20, 30, 40]);
        assert_eq!(idx.lookup(20), Some(1));
        assert_eq!(idx.lookup(25), None);
        assert_eq!(idx.upper_bound(20), 2);
        assert_eq!(idx.upper_bound(25), 2);
        assert_eq!(idx.range(15, 35), 1..3);
        assert_eq!(idx.range(35, 15), 0..0);
        assert_eq!(idx.range(0, 100), 0..4);
    }

    #[test]
    fn upper_bound_skips_entire_duplicate_runs() {
        // Regression: the old default assumed unique keys and skipped at
        // most one equal key, silently under-counting on duplicates.
        let data = vec![1u64, 5, 5, 5, 5, 9, 9, 12];
        let idx = BinarySearchIndex::new(data.clone());
        for q in [0u64, 1, 2, 5, 6, 9, 10, 12, 13, u64::MAX] {
            assert_eq!(idx.upper_bound(q), upper_oracle(&data, q), "q={q}");
        }
        // The run the old implementation got wrong: upper_bound(5) must
        // land after all four 5s, not after the first.
        assert_eq!(idx.upper_bound(5), 5);
        assert_eq!(idx.upper_bound(9), 7);
    }

    #[test]
    fn upper_bound_on_all_equal_keys() {
        for n in [1usize, 2, 7, 100] {
            let idx = BinarySearchIndex::new(vec![42u64; n]);
            assert_eq!(idx.upper_bound(42), n);
            assert_eq!(idx.upper_bound(41), 0);
            assert_eq!(idx.upper_bound(43), n);
            assert_eq!(idx.lookup(42), Some(0));
        }
    }

    #[test]
    fn upper_bound_handles_max_key_duplicates() {
        let idx = BinarySearchIndex::new(vec![7, u64::MAX, u64::MAX, u64::MAX]);
        assert_eq!(idx.upper_bound(u64::MAX), 4);
        assert_eq!(idx.lower_bound(u64::MAX), 1);
    }

    #[test]
    fn lookup_returns_first_occurrence() {
        let idx = BinarySearchIndex::new(vec![3, 3, 3, 8, 8]);
        assert_eq!(idx.lookup(3), Some(0));
        assert_eq!(idx.lookup(8), Some(3));
        assert_eq!(idx.range(3, 8), 0..3);
    }

    #[test]
    fn default_batch_matches_scalar() {
        let data: Vec<u64> = (0..500u64).map(|i| i * 3).collect();
        let idx = BinarySearchIndex::new(data);
        let queries: Vec<u64> = (0..600u64).map(|i| i * 7 % 1600).collect();
        let mut out = vec![0usize; queries.len()];
        idx.lower_bound_batch(&queries, &mut out);
        for (&q, &got) in queries.iter().zip(&out) {
            assert_eq!(got, idx.lower_bound(q), "q={q}");
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn batch_length_mismatch_panics() {
        let idx = BinarySearchIndex::new(vec![1]);
        let mut out = vec![0usize; 2];
        idx.lower_bound_batch(&[1, 2, 3], &mut out);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let idx = BinarySearchIndex::new(vec![]);
        let mut out: Vec<usize> = vec![];
        idx.lower_bound_batch(&[], &mut out);
        assert!(out.is_empty());
    }
}
