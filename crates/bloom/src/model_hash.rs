//! Bloom filters with model-hashes (§5.1.2 / Appendix E).
//!
//! "An alternative approach … is to learn a hash function with the goal
//! to maximize collisions among keys and among non-keys while minimizing
//! collisions of keys and non-keys … we can create a hash function d,
//! which maps f to a bit array of size m by scaling its output as
//! d = ⌊f(x)·m⌋." Appendix E adds the backup filter: "we have a
//! traditional Bloom filter with false positive rate
//! FPR_B = p*/FPR_m … the overall FPR of the system is FPR_m × FPR_B."
//!
//! [`ModelHashBloom::build`] sets the bitmap from the keys, measures
//! `FPR_m` on the validation non-keys, sizes the backup filter for
//! `p*/FPR_m`, and inserts **all** keys into the backup (both structures
//! must agree for a positive, and neither can produce a false negative).

use crate::standard::BloomFilter;
use li_models::Classifier;

/// Model-hash Bloom filter: classifier-driven bitmap + backup filter.
pub struct ModelHashBloom<C> {
    classifier: C,
    bitmap: Vec<u64>,
    m: usize,
    backup: BloomFilter,
    fpr_m: f64,
    model_bytes: usize,
}

impl<C: Classifier> ModelHashBloom<C> {
    /// Build with an `m`-bit model bitmap and overall FPR target `p*`.
    pub fn build(
        classifier: C,
        keys: &[&[u8]],
        validation_non_keys: &[&[u8]],
        m: usize,
        p_star: f64,
        model_bytes: Option<usize>,
    ) -> Self {
        assert!(m >= 64);
        assert!(p_star > 0.0 && p_star < 1.0);
        assert!(!keys.is_empty());
        let mut bitmap = vec![0u64; m.div_ceil(64)];
        let slot = |score: f64| -> usize { ((score * m as f64) as usize).min(m - 1) };
        for k in keys {
            let s = slot(classifier.score(k));
            bitmap[s / 64] |= 1 << (s % 64);
        }

        // FPR_m on validation: fraction of non-keys whose slot is set.
        let hits = validation_non_keys
            .iter()
            .filter(|nk| {
                let s = slot(classifier.score(nk));
                bitmap[s / 64] >> (s % 64) & 1 == 1
            })
            .count();
        let fpr_m = (hits as f64 / validation_non_keys.len().max(1) as f64).max(1e-6);

        // Backup filter at FPR_B = p*/FPR_m (clamped below 1).
        let fpr_b = (p_star / fpr_m).min(0.5);
        let mut backup = BloomFilter::new(keys.len(), fpr_b);
        for k in keys {
            backup.insert(k);
        }

        let model_bytes = model_bytes.unwrap_or_else(|| classifier.size_bytes());
        Self {
            classifier,
            bitmap,
            m,
            backup,
            fpr_m,
            model_bytes,
        }
    }

    /// "We say that a query q is predicted to be a key if M[⌊f(q)·m⌋] = 1
    /// and the Bloom filter also returns that it is a key."
    pub fn contains(&self, key: &[u8]) -> bool {
        let s = ((self.classifier.score(key) * self.m as f64) as usize).min(self.m - 1);
        (self.bitmap[s / 64] >> (s % 64) & 1 == 1) && self.backup.contains(key)
    }

    /// Measured bitmap FPR on the validation set.
    pub fn fpr_m(&self) -> f64 {
        self.fpr_m
    }

    /// Total size: model + bitmap + backup filter.
    pub fn size_bytes(&self) -> usize {
        self.model_bytes + self.bitmap.len() * 8 + self.backup.size_bytes()
    }

    /// Size of the model bitmap alone.
    pub fn bitmap_bytes(&self) -> usize {
        self.bitmap.len() * 8
    }

    /// Size of the backup Bloom filter alone.
    pub fn backup_bytes(&self) -> usize {
        self.backup.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::empirical_fpr;
    use li_data::strings::UrlGenerator;
    use li_models::NgramLogReg;

    fn setup(n: usize) -> (Vec<String>, Vec<String>, Vec<String>, NgramLogReg) {
        let mut gen = UrlGenerator::new(23);
        let (keys, mut negs) = gen.dataset(n, n * 2, 0.5);
        let test = negs.split_off(n);
        let validation = negs;
        let kb: Vec<&[u8]> = keys.iter().map(|s| s.as_bytes()).collect();
        let vb: Vec<&[u8]> = validation.iter().map(|s| s.as_bytes()).collect();
        let clf = NgramLogReg::train(13, 8, 0.1, &kb, &vb, 9);
        (keys, validation, test, clf)
    }

    #[test]
    fn zero_false_negatives() {
        let (keys, validation, _, clf) = setup(2000);
        let kb: Vec<&[u8]> = keys.iter().map(|s| s.as_bytes()).collect();
        let vb: Vec<&[u8]> = validation.iter().map(|s| s.as_bytes()).collect();
        let mh = ModelHashBloom::build(clf, &kb, &vb, 1 << 14, 0.01, None);
        for k in &keys {
            assert!(mh.contains(k.as_bytes()), "false negative: {k}");
        }
    }

    #[test]
    fn fpr_near_target_on_test_set() {
        let (keys, validation, test, clf) = setup(3000);
        let kb: Vec<&[u8]> = keys.iter().map(|s| s.as_bytes()).collect();
        let vb: Vec<&[u8]> = validation.iter().map(|s| s.as_bytes()).collect();
        let p = 0.02;
        let mh = ModelHashBloom::build(clf, &kb, &vb, 1 << 14, p, None);
        let fpr = empirical_fpr(|x| mh.contains(x), test.iter().map(|x| x.as_bytes()));
        assert!(fpr <= p * 2.5, "fpr {fpr} target {p}");
    }

    #[test]
    fn good_model_relaxes_backup_filter() {
        // The Appendix-E effect: because the bitmap filters out most
        // non-keys (FPR_m << 1), the backup filter may run at a much
        // looser FPR and thus be smaller than a standalone filter at p*.
        let (keys, validation, _, clf) = setup(4000);
        let kb: Vec<&[u8]> = keys.iter().map(|s| s.as_bytes()).collect();
        let vb: Vec<&[u8]> = validation.iter().map(|s| s.as_bytes()).collect();
        let p = 0.01;
        let mh = ModelHashBloom::build(clf, &kb, &vb, 1 << 14, p, None);
        let standalone = BloomFilter::new(keys.len(), p).size_bytes();
        assert!(
            mh.backup_bytes() < standalone,
            "backup {} standalone {}",
            mh.backup_bytes(),
            standalone
        );
        assert!(mh.fpr_m() < 0.7, "bitmap should reject many non-keys");
    }

    #[test]
    fn bitmap_size_is_m_bits() {
        let (keys, validation, _, clf) = setup(500);
        let kb: Vec<&[u8]> = keys.iter().map(|s| s.as_bytes()).collect();
        let vb: Vec<&[u8]> = validation.iter().map(|s| s.as_bytes()).collect();
        let mh = ModelHashBloom::build(clf, &kb, &vb, 1 << 12, 0.01, Some(0));
        assert_eq!(mh.bitmap_bytes(), (1 << 12) / 8);
        assert_eq!(mh.size_bytes(), mh.bitmap_bytes() + mh.backup_bytes());
    }
}
