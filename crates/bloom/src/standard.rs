//! The classical Bloom filter baseline.
//!
//! "Internally, Bloom filters use a bit array of size m and k hash
//! functions, which each map a key to one of the m array positions"
//! (§5). Sizing is the textbook optimum the paper quotes ("for one
//! billion records roughly 1.76 Gigabytes are needed" at 1% FPR):
//! `m = −n·ln p / (ln 2)²` and `k = (m/n)·ln 2`. Hashes are derived by
//! double hashing (`h_i = h1 + i·h2`), which is indistinguishable from
//! k independent hash functions for Bloom purposes.

use li_hash::murmur::{fmix64, murmur3_x64};

/// A classical Bloom filter over byte strings.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m: usize,
    k: u32,
    len: usize,
}

impl BloomFilter {
    /// Filter sized for `n` keys at target false-positive rate `p`.
    pub fn new(n: usize, p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "FPR must be in (0, 1)");
        let n = n.max(1);
        let m = (-(n as f64) * p.ln() / (std::f64::consts::LN_2 * std::f64::consts::LN_2)).ceil()
            as usize;
        let k = ((m as f64 / n as f64) * std::f64::consts::LN_2)
            .round()
            .max(1.0) as u32;
        Self::with_params(m.max(64), k)
    }

    /// Filter with explicit bit count and hash count.
    pub fn with_params(m: usize, k: u32) -> Self {
        assert!(m > 0 && k > 0);
        Self {
            bits: vec![0u64; m.div_ceil(64)],
            m,
            k,
            len: 0,
        }
    }

    #[inline]
    fn positions(&self, key: &[u8]) -> impl Iterator<Item = usize> + '_ {
        let h1 = murmur3_x64(key, 0x51_7C_C1_B7);
        let h2 = fmix64(h1 ^ 0x6A09_E667_F3BC_C909) | 1; // odd step
        let m = self.m as u64;
        (0..self.k as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize)
    }

    /// Insert a key.
    pub fn insert(&mut self, key: &[u8]) {
        let positions: Vec<usize> = self.positions(key).collect();
        for p in positions {
            self.bits[p / 64] |= 1u64 << (p % 64);
        }
        self.len += 1;
    }

    /// Whether the key *may* be in the set (false positives possible,
    /// false negatives impossible).
    #[inline]
    pub fn contains(&self, key: &[u8]) -> bool {
        self.positions(key)
            .all(|p| self.bits[p / 64] >> (p % 64) & 1 == 1)
    }

    /// Bit-array size in bytes (the paper's memory metric).
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Number of hash functions.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of bits.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Inserted key count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no keys were inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Analytic FPR for the current load: `(1 − e^{−kn/m})^k`.
    pub fn analytic_fpr(&self) -> f64 {
        let exponent = -(self.k as f64) * self.len as f64 / self.m as f64;
        (1.0 - exponent.exp()).powi(self.k as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives_ever() {
        let mut bf = BloomFilter::new(1000, 0.01);
        let keys: Vec<String> = (0..1000).map(|i| format!("key-{i}")).collect();
        for k in &keys {
            bf.insert(k.as_bytes());
        }
        for k in &keys {
            assert!(bf.contains(k.as_bytes()), "false negative for {k}");
        }
    }

    #[test]
    fn fpr_is_near_target() {
        let n = 20_000;
        let mut bf = BloomFilter::new(n, 0.01);
        for i in 0..n {
            bf.insert(format!("in-{i}").as_bytes());
        }
        let mut fp = 0usize;
        let probes = 50_000;
        for i in 0..probes {
            if bf.contains(format!("out-{i}").as_bytes()) {
                fp += 1;
            }
        }
        let fpr = fp as f64 / probes as f64;
        assert!(fpr < 0.02, "fpr {fpr} (target 0.01)");
        assert!(fpr > 0.001, "fpr {fpr} suspiciously low — sizing bug?");
    }

    #[test]
    fn sizing_matches_paper_numbers() {
        // §5: 1% FPR → ~9.585 bits/key → 1B keys ≈ 1.2GB bits... the
        // paper's 1.76GB figure corresponds to ~0.1% (14.4 bits/key).
        // Check the formula at both points.
        let bf1 = BloomFilter::new(1_000_000, 0.01);
        let bits_per_key = bf1.m() as f64 / 1_000_000.0;
        assert!((9.0..10.2).contains(&bits_per_key), "{bits_per_key}");
        let bf2 = BloomFilter::new(1_000_000, 0.001);
        let bits_per_key2 = bf2.m() as f64 / 1_000_000.0;
        assert!((13.8..15.2).contains(&bits_per_key2), "{bits_per_key2}");
        // Optimal k ≈ 7 at 1%.
        assert!((6..=8).contains(&bf1.k()));
    }

    #[test]
    fn lower_fpr_costs_more_memory() {
        let loose = BloomFilter::new(10_000, 0.05);
        let tight = BloomFilter::new(10_000, 0.001);
        assert!(tight.size_bytes() > loose.size_bytes() * 2);
    }

    #[test]
    fn analytic_fpr_tracks_load() {
        let mut bf = BloomFilter::new(1000, 0.01);
        assert_eq!(bf.analytic_fpr(), 0.0);
        for i in 0..1000 {
            bf.insert(format!("{i}").as_bytes());
        }
        let a = bf.analytic_fpr();
        assert!((0.005..0.02).contains(&a), "{a}");
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let bf = BloomFilter::new(100, 0.01);
        assert!(!bf.contains(b"anything"));
        assert!(bf.is_empty());
    }
}
