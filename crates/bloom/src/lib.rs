//! # li-bloom — learned existence indexes (§5 of the paper)
//!
//! "The last common index type of DBMS are existence indexes, most
//! importantly Bloom filters … a Bloom filter does guarantee that there
//! exists no false negatives, but has potential false positives."
//!
//! Three filters, one contract (no false negatives):
//!
//! * [`BloomFilter`] — the classical baseline: an `m`-bit array with `k`
//!   hash functions, sized analytically from the target false-positive
//!   rate (`m = −n·ln p / (ln 2)²`).
//! * [`LearnedBloom`] (§5.1.1) — "Bloom filters as a classification
//!   problem": a probabilistic classifier `f` with threshold `τ`, plus
//!   an **overflow** Bloom filter over the classifier's false negatives
//!   so the no-false-negative guarantee is restored. The FPR budget is
//!   split `FPR_τ = FPR_B = p*/2` and τ is tuned on a held-out
//!   validation set of non-keys, exactly as in the paper.
//! * [`ModelHashBloom`] (§5.1.2 / Appendix E) — "Bloom filters with
//!   model-hashes": discretize the classifier output into an `m`-bit
//!   bitmap (`d = ⌊f(x)·m⌋`) and combine with a backup Bloom filter at
//!   `FPR_B = p*/FPR_m`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod learned;
pub mod model_hash;
pub mod standard;

pub use learned::{LearnedBloom, LearnedBloomReport};
pub use li_models::Classifier;
pub use model_hash::ModelHashBloom;
pub use standard::BloomFilter;

/// Measure the empirical false-positive rate of any `contains`-style
/// predicate over a set of known non-keys.
pub fn empirical_fpr<'a>(
    contains: impl Fn(&'a [u8]) -> bool,
    non_keys: impl IntoIterator<Item = &'a [u8]>,
) -> f64 {
    let mut total = 0usize;
    let mut positive = 0usize;
    for nk in non_keys {
        total += 1;
        if contains(nk) {
            positive += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        positive as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_fpr_counts_positives() {
        let keys: Vec<&[u8]> = vec![b"a", b"b", b"c", b"d"];
        let fpr = empirical_fpr(|x| x[0] <= b'b', keys.iter().copied());
        assert!((fpr - 0.5).abs() < 1e-12);
        assert_eq!(empirical_fpr(|_| true, std::iter::empty()), 0.0);
    }
}
