//! The learned Bloom filter (§5.1.1): classifier + overflow filter.
//!
//! "One way to frame the existence index is as a binary probabilistic
//! classification task … we can turn the model into an existence index
//! by choosing a threshold τ above which we will assume that the key
//! exists … In order to preserve the no false negatives constraint, we
//! create an overflow Bloom filter \[over\] the set of false negatives
//! from f … The overall FPR of our system therefore is
//! FPR_O = FPR_τ + (1 − FPR_τ)·FPR_B. For simplicity, we set
//! FPR_τ = FPR_B = p*/2 so that FPR_O ≤ p*. We tune τ to achieve this
//! FPR on \[the held-out non-key set\] Ũ."
//!
//! [`LearnedBloom::build`] does exactly that: scores the validation
//! non-keys, picks τ as the `(1 − p*/2)`-quantile of those scores,
//! collects the keys scoring below τ into an overflow [`BloomFilter`]
//! sized for FPR `p*/2`, and reports the memory split.

use crate::standard::BloomFilter;
use li_models::Classifier;

/// A learned Bloom filter: classifier + threshold + overflow filter.
pub struct LearnedBloom<C> {
    classifier: C,
    tau: f64,
    overflow: BloomFilter,
    report: LearnedBloomReport,
}

/// Build-time accounting (drives Figure 10 and the §5.2 numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnedBloomReport {
    /// Chosen threshold τ.
    pub tau: f64,
    /// Classifier false-negative rate on the keys (fraction that must
    /// be covered by the overflow filter). §5.2: "this gives a FNR of
    /// 55%" at 0.5% FPR_τ.
    pub fnr: f64,
    /// Classifier FPR measured on the validation non-keys.
    pub validation_fpr: f64,
    /// Classifier model size in bytes (deployment/f32 accounting where
    /// the classifier provides it).
    pub model_bytes: usize,
    /// Overflow Bloom filter size in bytes.
    pub overflow_bytes: usize,
    /// Total: model + overflow.
    pub total_bytes: usize,
}

impl<C: Classifier> LearnedBloom<C> {
    /// Build from a trained classifier, the key set, a held-out
    /// validation set of non-keys, and the overall FPR target `p*`.
    ///
    /// `model_bytes` lets callers supply deployment-size accounting
    /// (e.g. [`li_models::GruClassifier::size_bytes_f32`]); pass `None`
    /// to use the classifier's own `size_bytes`.
    pub fn build(
        classifier: C,
        keys: &[&[u8]],
        validation_non_keys: &[&[u8]],
        p_star: f64,
        model_bytes: Option<usize>,
    ) -> Self {
        assert!(p_star > 0.0 && p_star < 1.0);
        assert!(!keys.is_empty(), "a filter over no keys is pointless");
        assert!(
            !validation_non_keys.is_empty(),
            "τ tuning requires validation non-keys"
        );
        let half = p_star / 2.0;

        // Tune τ on the validation non-keys: the (1 − p*/2) quantile of
        // their scores gives FPR_τ ≈ p*/2.
        let mut scores: Vec<f64> = validation_non_keys
            .iter()
            .map(|nk| classifier.score(nk))
            .collect();
        scores.sort_unstable_by(|a, b| a.total_cmp(b));
        let idx = (((1.0 - half) * scores.len() as f64).ceil() as usize).min(scores.len() - 1);
        // Nudge above the quantile score so `>= τ` admits at most p*/2
        // of the validation set; cap at 1 + ε handled by f64 math.
        let tau = scores[idx] + f64::EPSILON;
        let validation_fpr =
            scores.iter().filter(|&&s| s >= tau).count() as f64 / scores.len() as f64;

        // Collect classifier false negatives into the overflow filter.
        let false_negatives: Vec<&&[u8]> =
            keys.iter().filter(|k| classifier.score(k) < tau).collect();
        let fnr = false_negatives.len() as f64 / keys.len() as f64;
        let mut overflow = BloomFilter::new(false_negatives.len().max(1), half);
        for k in &false_negatives {
            overflow.insert(k);
        }

        let model_bytes = model_bytes.unwrap_or_else(|| classifier.size_bytes());
        let overflow_bytes = overflow.size_bytes();
        let report = LearnedBloomReport {
            tau,
            fnr,
            validation_fpr,
            model_bytes,
            overflow_bytes,
            total_bytes: model_bytes + overflow_bytes,
        };
        Self {
            classifier,
            tau,
            overflow,
            report,
        }
    }

    /// Existence query: "if f(x) ≥ τ, the key is believed to exist;
    /// otherwise, check the overflow Bloom filter" (Figure 9(c)).
    pub fn contains(&self, key: &[u8]) -> bool {
        self.classifier.score(key) >= self.tau || self.overflow.contains(key)
    }

    /// Build-time accounting.
    pub fn report(&self) -> &LearnedBloomReport {
        &self.report
    }

    /// Total memory (model + overflow filter).
    pub fn size_bytes(&self) -> usize {
        self.report.total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::empirical_fpr;
    use li_data::strings::UrlGenerator;
    use li_models::NgramLogReg;

    struct Setup {
        keys: Vec<String>,
        validation: Vec<String>,
        test: Vec<String>,
        classifier: NgramLogReg,
    }

    fn setup(n_keys: usize) -> Setup {
        let mut gen = UrlGenerator::new(11);
        let (keys, mut negs) = gen.dataset(n_keys, n_keys * 2, 0.5);
        let test = negs.split_off(n_keys);
        let validation = negs;
        let kb: Vec<&[u8]> = keys.iter().map(|s| s.as_bytes()).collect();
        let vb: Vec<&[u8]> = validation.iter().map(|s| s.as_bytes()).collect();
        let classifier = NgramLogReg::train(13, 8, 0.1, &kb, &vb, 3);
        Setup {
            keys,
            validation,
            test,
            classifier,
        }
    }

    fn build(s: &Setup, p: f64) -> LearnedBloom<NgramLogReg> {
        let kb: Vec<&[u8]> = s.keys.iter().map(|x| x.as_bytes()).collect();
        let vb: Vec<&[u8]> = s.validation.iter().map(|x| x.as_bytes()).collect();
        LearnedBloom::build(s.classifier.clone(), &kb, &vb, p, None)
    }

    #[test]
    fn zero_false_negatives_guaranteed() {
        let s = setup(2000);
        let lb = build(&s, 0.01);
        for k in &s.keys {
            assert!(lb.contains(k.as_bytes()), "false negative: {k}");
        }
    }

    #[test]
    fn test_set_fpr_near_target() {
        // §5.2: "The FPR on the test set is 0.4976%, validating the
        // chosen threshold" — held-out FPR must be near p*.
        let s = setup(3000);
        let p = 0.02;
        let lb = build(&s, p);
        let fpr = empirical_fpr(|x| lb.contains(x), s.test.iter().map(|x| x.as_bytes()));
        assert!(fpr <= p * 2.5, "fpr {fpr} vs target {p}");
    }

    #[test]
    fn saves_memory_over_standard_bloom() {
        // The headline §5.2 result: at equal FPR targets, model +
        // overflow beats the standard filter when the classifier is
        // accurate. (Our n-gram model is megabyte-scale only at large
        // table_bits; with 2^13 buckets it is 64KB — compare against a
        // standard filter over the same keys.)
        let s = setup(5000);
        let p = 0.01;
        let lb = build(&s, p);
        let std_bytes = BloomFilter::new(s.keys.len(), p).size_bytes();
        // With only 5k keys a standard filter is ~6KB, so the n-gram
        // model cannot win at this scale; check the *overflow shrinkage*
        // instead — the scale-free part of the claim.
        let full_overflow = BloomFilter::new(s.keys.len(), p / 2.0).size_bytes();
        assert!(
            lb.report().overflow_bytes < full_overflow,
            "overflow {} must shrink below a full filter {}",
            lb.report().overflow_bytes,
            full_overflow
        );
        assert!(lb.report().fnr < 0.9, "classifier must catch some keys");
        let _ = std_bytes;
    }

    #[test]
    fn report_accounting_is_consistent() {
        let s = setup(1000);
        let lb = build(&s, 0.01);
        let r = lb.report();
        assert_eq!(r.total_bytes, r.model_bytes + r.overflow_bytes);
        assert!((0.0..=1.0).contains(&r.fnr));
        assert!(r.validation_fpr <= 0.011, "{}", r.validation_fpr);
    }

    #[test]
    fn tighter_fpr_grows_overflow() {
        let s = setup(3000);
        let loose = build(&s, 0.05);
        let tight = build(&s, 0.002);
        // Tighter p* raises τ → at least as many false negatives, each
        // costing at least as many overflow bits. (With a near-perfect
        // classifier both FNRs can be ~0, hence >= not >.)
        assert!(tight.report().fnr >= loose.report().fnr);
        assert!(tight.report().overflow_bytes >= loose.report().overflow_bytes);
        assert!(tight.report().tau >= loose.report().tau);
    }

    #[test]
    fn custom_model_bytes_are_respected() {
        let s = setup(500);
        let kb: Vec<&[u8]> = s.keys.iter().map(|x| x.as_bytes()).collect();
        let vb: Vec<&[u8]> = s.validation.iter().map(|x| x.as_bytes()).collect();
        let lb = LearnedBloom::build(s.classifier.clone(), &kb, &vb, 0.01, Some(1234));
        assert_eq!(lb.report().model_bytes, 1234);
    }
}
