//! Learned sorting (§7 "Beyond Indexing: Learned Algorithms").
//!
//! "The basic idea to speed-up sorting is to use an existing CDF model F
//! to put the records roughly in sorted order and then correct the
//! nearly perfectly sorted data, for example, with insertion sort."
//!
//! [`learned_sort`] implements that: fit a cheap CDF model on a sample,
//! scatter every key into its predicted bucket (a counting-sort-style
//! distribution pass), concatenate the buckets, and fix residual local
//! disorder with insertion sort. When the model is accurate the scatter
//! leaves only tiny inversions and the fixup is near-linear; for a
//! pathological model the algorithm still terminates with a sorted
//! result because insertion sort is exact (just slow), and a guard falls
//! back to `sort_unstable` when the scatter looks bad.

use li_models::{clamp_position, LinearModel, Model, MultivariateLinear};

/// CDF model family used for the distribution pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortModel {
    /// Single linear model (cheapest; great for near-uniform data).
    #[default]
    Linear,
    /// Multivariate with engineered features (handles skew like
    /// lognormal far better at slightly higher cost).
    Multivariate,
}

/// Sort `keys` using a learned CDF model. Returns a fully sorted vector.
pub fn learned_sort(keys: &[u64], model: SortModel) -> Vec<u64> {
    learned_sort_with(keys, model, 2048)
}

/// [`learned_sort`] with an explicit training-sample budget.
pub fn learned_sort_with(keys: &[u64], model: SortModel, sample_budget: usize) -> Vec<u64> {
    let n = keys.len();
    if n <= 64 {
        let mut v = keys.to_vec();
        v.sort_unstable();
        return v;
    }

    // 1. Sample + sort the sample + fit the CDF model on it.
    let stride = (n / sample_budget.max(1)).max(1);
    let mut sample: Vec<u64> = keys.iter().step_by(stride).copied().collect();
    sample.sort_unstable();
    let sample_f: Vec<f64> = sample.iter().map(|&k| k as f64).collect();
    // Model maps key -> rank within the *sample*; scaling to n happens in
    // the scatter below.
    let predict: Box<dyn Fn(f64) -> f64> = match model {
        SortModel::Linear => {
            let m = LinearModel::fit_keys(&sample_f);
            Box::new(move |x| m.predict(x))
        }
        SortModel::Multivariate => {
            let m = MultivariateLinear::fit_keys(li_models::FeatureMap::FULL, &sample_f);
            Box::new(move |x| m.predict(x))
        }
    };
    let sample_n = sample.len() as f64;

    // 2. Distribution pass: scatter into ~n/16 buckets by predicted CDF.
    let n_buckets = (n / 16).max(1);
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); n_buckets];
    for &k in keys {
        let cdf = predict(k as f64) / sample_n; // ∈ roughly [0, 1]
        let b = clamp_position(cdf * n_buckets as f64, n_buckets);
        buckets[b].push(k);
    }

    // Guard: if the model collapsed (e.g. constant prediction), most keys
    // land in one bucket and the "nearly sorted" premise fails — fall
    // back to a comparison sort outright.
    let max_bucket = buckets.iter().map(Vec::len).max().unwrap_or(0);
    if max_bucket > n / 2 && n_buckets > 4 {
        let mut v = keys.to_vec();
        v.sort_unstable();
        return v;
    }

    // 3. Concatenate buckets (sorting each small bucket) and fix the
    // residual disorder with insertion sort — exact regardless of model
    // quality.
    let mut out = Vec::with_capacity(n);
    for bucket in buckets.iter_mut() {
        bucket.sort_unstable();
        out.extend_from_slice(bucket);
    }
    insertion_sort(&mut out);
    out
}

/// Classic insertion sort: O(n + inversions) — linear on nearly-sorted
/// input, which is exactly what the distribution pass produces.
fn insertion_sort(v: &mut [u64]) {
    for i in 1..v.len() {
        let x = v[i];
        let mut j = i;
        while j > 0 && v[j - 1] > x {
            v[j] = v[j - 1];
            j -= 1;
        }
        v[j] = x;
    }
}

/// Count inversions remaining after only the distribution pass — used by
/// the ablation bench to report model quality.
pub fn scatter_disorder(keys: &[u64], model: SortModel) -> f64 {
    let n = keys.len();
    if n < 2 {
        return 0.0;
    }
    let stride = (n / 2048).max(1);
    let mut sample: Vec<u64> = keys.iter().step_by(stride).copied().collect();
    sample.sort_unstable();
    let sample_f: Vec<f64> = sample.iter().map(|&k| k as f64).collect();
    let m = match model {
        SortModel::Linear => LinearModel::fit_keys(&sample_f),
        SortModel::Multivariate => {
            // Reuse the linear path for the metric's purposes when the
            // multivariate model is requested but collapses.
            LinearModel::fit_keys(&sample_f)
        }
    };
    let sample_n = sample.len() as f64;
    let n_buckets = (n / 16).max(1);
    let mut out_of_place = 0usize;
    let mut prev_bucket = 0usize;
    for &k in keys {
        let b = clamp_position(m.predict(k as f64) / sample_n * n_buckets as f64, n_buckets);
        if b < prev_bucket {
            out_of_place += 1;
        }
        prev_bucket = b;
    }
    out_of_place as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use li_models::rng::SplitMix64;

    fn is_sorted(v: &[u64]) -> bool {
        v.windows(2).all(|w| w[0] <= w[1])
    }

    fn check_sorts(keys: Vec<u64>) {
        for model in [SortModel::Linear, SortModel::Multivariate] {
            let sorted = learned_sort(&keys, model);
            assert!(is_sorted(&sorted), "{model:?}");
            let mut expect = keys.clone();
            expect.sort_unstable();
            assert_eq!(sorted, expect, "{model:?} must be a sorted permutation");
        }
    }

    #[test]
    fn sorts_uniform_random() {
        let mut rng = SplitMix64::new(1);
        check_sorts((0..50_000).map(|_| rng.next_u64()).collect());
    }

    #[test]
    fn sorts_lognormal_skew() {
        let mut rng = SplitMix64::new(2);
        check_sorts(
            (0..30_000)
                .map(|_| ((rng.normal() * 2.0).exp() * 1e6) as u64)
                .collect(),
        );
    }

    #[test]
    fn sorts_with_duplicates() {
        let mut rng = SplitMix64::new(3);
        check_sorts((0..20_000).map(|_| rng.next_u64() % 100).collect());
    }

    #[test]
    fn sorts_already_sorted_and_reversed() {
        check_sorts((0..10_000u64).collect());
        check_sorts((0..10_000u64).rev().collect());
    }

    #[test]
    fn sorts_tiny_inputs() {
        check_sorts(vec![]);
        check_sorts(vec![5]);
        check_sorts(vec![9, 1]);
        check_sorts((0..64u64).rev().collect());
    }

    #[test]
    fn sorts_constant_input_via_fallback() {
        check_sorts(vec![7u64; 10_000]);
    }

    #[test]
    fn scatter_disorder_is_low_for_uniform_data() {
        let mut rng = SplitMix64::new(4);
        let mut keys: Vec<u64> = (0..50_000).map(|_| rng.next_u64() % 1_000_000).collect();
        let d_random = scatter_disorder(&keys, SortModel::Linear);
        keys.sort_unstable();
        let d_sorted = scatter_disorder(&keys, SortModel::Linear);
        // Sorted input scatters perfectly monotonically.
        assert_eq!(d_sorted, 0.0);
        // Random input is mostly fixed by the scatter: most adjacent
        // pairs land in non-decreasing buckets.
        assert!(d_random < 0.5, "disorder {d_random}");
    }
}
