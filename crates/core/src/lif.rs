//! The Learning Index Framework (LIF) — index synthesis (§3.1).
//!
//! "The LIF can be regarded as an index synthesis system; given an index
//! specification, LIF generates different index configurations, optimizes
//! them, and tests them automatically." The paper tunes "the various
//! parameters of the model (i.e., number of stages, hidden layers per
//! model, etc.) with a simple grid-search" (§3.3).
//!
//! [`Lif::synthesize`] does exactly that: it builds every candidate in
//! the grid (learned configurations *and* B-Tree page sizes, so the
//! synthesizer can honestly pick a B-Tree when the data demands it),
//! measures real lookup latency over a sampled workload, and returns a
//! ranked report. Selection picks the fastest candidate whose index size
//! fits the optional byte budget.
//!
//! All candidates are built over **one shared [`KeyStore`]**: synthesis
//! of N candidates performs zero key-array copies — the grid search's
//! memory cost is the sum of the *index* sizes, not N× the dataset.

use crate::rmi::{Rmi, RmiConfig, TopModel};
use crate::search::SearchStrategy;
use li_btree::BTreeIndex;
use li_index::{KeyStore, RangeIndex};
use li_models::rng::SplitMix64;
use li_models::FeatureMap;
use std::time::Instant;

/// What to synthesize an index for.
#[derive(Debug, Clone)]
pub struct LifSpec {
    /// Candidate second-stage sizes for learned configs.
    pub leaf_counts: Vec<usize>,
    /// Candidate stage-0 models.
    pub top_models: Vec<TopModel>,
    /// Candidate search strategies.
    pub searches: Vec<SearchStrategy>,
    /// Candidate B-Tree page sizes (baseline candidates).
    pub btree_pages: Vec<usize>,
    /// Optional index-size ceiling in bytes.
    pub size_budget: Option<usize>,
    /// Number of sampled queries used for timing.
    pub probe_queries: usize,
    /// RNG seed for query sampling.
    pub seed: u64,
}

impl Default for LifSpec {
    fn default() -> Self {
        Self {
            leaf_counts: vec![256, 1024, 4096],
            top_models: vec![
                TopModel::Linear,
                TopModel::Multivariate(FeatureMap::FULL),
                TopModel::Mlp {
                    hidden: 1,
                    width: 16,
                },
            ],
            searches: vec![SearchStrategy::ModelBiasedBinary],
            btree_pages: vec![64, 128, 256],
            size_budget: None,
            probe_queries: 10_000,
            seed: 0x11F,
        }
    }
}

/// One evaluated candidate configuration.
pub struct LifCandidate {
    /// The built index (usable directly).
    pub index: Box<dyn RangeIndex>,
    /// Candidate description.
    pub name: String,
    /// Measured mean lookup latency (nanoseconds).
    pub lookup_ns: f64,
    /// Index size in bytes, **excluding** the shared key array — the
    /// paper's "Size (MB)" accounting, and what the size budget
    /// constrains (every candidate shares the same `KeyStore`, so the
    /// key bytes are a constant across the grid).
    pub size_bytes: usize,
    /// Index size **including** the shared key array
    /// (`size_bytes + KeyStore::size_bytes`): the resident footprint if
    /// this candidate were deployed alone. Because the store is shared,
    /// summing this field across candidates double-counts keys — use
    /// `size_bytes` for grid totals.
    pub size_bytes_with_keys: usize,
    /// Build (training) time in milliseconds.
    pub build_ms: f64,
}

/// The synthesis report: every candidate, ranked by measured latency.
pub struct LifReport {
    /// All candidates, fastest first.
    pub candidates: Vec<LifCandidate>,
    /// Index into `candidates` of the selected one (fastest within the
    /// size budget; falls back to smallest if none fit).
    pub best: usize,
}

impl std::fmt::Debug for LifCandidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LifCandidate")
            .field("name", &self.name)
            .field("lookup_ns", &self.lookup_ns)
            .field("size_bytes", &self.size_bytes)
            .field("size_bytes_with_keys", &self.size_bytes_with_keys)
            .field("build_ms", &self.build_ms)
            .finish_non_exhaustive()
    }
}

impl LifReport {
    /// The selected candidate.
    pub fn best(&self) -> &LifCandidate {
        &self.candidates[self.best]
    }
}

/// The index synthesis entry point.
pub struct Lif;

impl Lif {
    /// Grid-search all configurations in `spec` over `data`.
    ///
    /// Accepts anything convertible to a [`KeyStore`]; a borrowed slice
    /// is copied once into the store, after which every candidate in
    /// the grid shares that single allocation (verified by
    /// `KeyStore::ptr_eq` in the tests).
    pub fn synthesize(data: impl Into<KeyStore>, spec: &LifSpec) -> LifReport {
        let store: KeyStore = data.into();
        assert!(!store.is_empty(), "cannot synthesize an index over no data");
        let queries = sample_queries(&store, spec.probe_queries.max(1), spec.seed);

        let mut candidates: Vec<LifCandidate> = Vec::new();
        for &page in &spec.btree_pages {
            let t0 = Instant::now();
            let idx = BTreeIndex::new(store.clone(), page);
            let build_ms = t0.elapsed().as_secs_f64() * 1e3;
            candidates.push(evaluate(Box::new(idx), build_ms, &queries));
        }
        for top in &spec.top_models {
            for &leaves in &spec.leaf_counts {
                for &search in &spec.searches {
                    let cfg = RmiConfig::two_stage(top.clone(), leaves).with_search(search);
                    let t0 = Instant::now();
                    let idx = Rmi::build(store.clone(), &cfg);
                    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
                    candidates.push(evaluate(Box::new(idx), build_ms, &queries));
                }
            }
        }

        candidates.sort_by(|a, b| a.lookup_ns.total_cmp(&b.lookup_ns));
        let best = match spec.size_budget {
            None => 0,
            Some(budget) => candidates
                .iter()
                .position(|c| c.size_bytes <= budget)
                .unwrap_or_else(|| {
                    // Nothing fits: take the smallest index.
                    candidates
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, c)| c.size_bytes)
                        .map(|(i, _)| i)
                        .expect("non-empty candidates")
                }),
        };
        LifReport { candidates, best }
    }
}

fn sample_queries(data: &[u64], n: usize, seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| data[rng.below(data.len())]).collect()
}

fn evaluate(index: Box<dyn RangeIndex>, build_ms: f64, queries: &[u64]) -> LifCandidate {
    // Warm up, then time the whole batch.
    let mut acc = 0usize;
    for &q in queries.iter().take(64) {
        acc = acc.wrapping_add(index.lower_bound(q));
    }
    let t0 = Instant::now();
    for &q in queries {
        acc = acc.wrapping_add(index.lower_bound(q));
    }
    let lookup_ns = t0.elapsed().as_nanos() as f64 / queries.len() as f64;
    std::hint::black_box(acc);
    let size_bytes = index.size_bytes();
    LifCandidate {
        name: index.name(),
        lookup_ns,
        size_bytes,
        size_bytes_with_keys: size_bytes + index.key_store().size_bytes(),
        build_ms,
        index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> LifSpec {
        LifSpec {
            leaf_counts: vec![64],
            top_models: vec![TopModel::Linear],
            searches: vec![SearchStrategy::ModelBiasedBinary],
            btree_pages: vec![128],
            size_budget: None,
            probe_queries: 500,
            seed: 5,
        }
    }

    #[test]
    fn produces_all_grid_candidates() {
        let data: Vec<u64> = (0..5000u64).map(|i| i * 3).collect();
        let spec = LifSpec {
            leaf_counts: vec![32, 64],
            top_models: vec![TopModel::Linear, TopModel::Multivariate(FeatureMap::FULL)],
            searches: vec![
                SearchStrategy::ModelBiasedBinary,
                SearchStrategy::Exponential,
            ],
            btree_pages: vec![64, 128],
            ..small_spec()
        };
        let report = Lif::synthesize(&data, &spec);
        // 2 btrees + 2 tops × 2 leaf counts × 2 searches = 10.
        assert_eq!(report.candidates.len(), 10);
        // Ranked ascending by latency.
        assert!(report
            .candidates
            .windows(2)
            .all(|w| w[0].lookup_ns <= w[1].lookup_ns));
    }

    #[test]
    fn best_candidate_answers_queries_correctly() {
        let data: Vec<u64> = (0..3000u64).map(|i| i * 7 + 1).collect();
        let report = Lif::synthesize(&data, &small_spec());
        let best = report.best();
        for &k in data.iter().step_by(97) {
            assert_eq!(best.index.lookup(k), Some((k as usize - 1) / 7));
        }
    }

    #[test]
    fn size_budget_forces_smaller_index() {
        let data: Vec<u64> = (0..20_000u64).map(|i| i * 2).collect();
        let spec = LifSpec {
            // A learned config way under budget and a B-Tree way over.
            leaf_counts: vec![16],
            btree_pages: vec![2],
            size_budget: Some(4096),
            ..small_spec()
        };
        let report = Lif::synthesize(&data, &spec);
        assert!(
            report.best().size_bytes <= 4096,
            "{}",
            report.best().size_bytes
        );
    }

    #[test]
    fn synthesis_copies_no_key_arrays() {
        // 4 candidates (1 btree + 3 leaf counts) over one shared store:
        // every candidate's key_store must alias the caller's allocation.
        let store = KeyStore::new((0..5000u64).map(|i| i * 3).collect());
        let spec = LifSpec {
            leaf_counts: vec![16, 64, 256],
            btree_pages: vec![128],
            probe_queries: 200,
            ..small_spec()
        };
        let report = Lif::synthesize(store.clone(), &spec);
        assert_eq!(report.candidates.len(), 4);
        for c in &report.candidates {
            assert!(
                c.index.key_store().ptr_eq(&store),
                "{} copied the key array",
                c.name
            );
        }
        // Handles: ours + one per candidate (hybrid leaves would add
        // more; this grid has none). No hidden copies means the count is
        // exactly 1 + 4.
        assert_eq!(store.strong_count(), 1 + report.candidates.len());
    }

    #[test]
    fn size_accounting_excludes_and_includes_the_shared_store() {
        let data: Vec<u64> = (0..8000u64).collect();
        let key_bytes = data.len() * std::mem::size_of::<u64>();
        let report = Lif::synthesize(&data, &small_spec());
        for c in &report.candidates {
            assert_eq!(
                c.size_bytes_with_keys,
                c.size_bytes + key_bytes,
                "{}: with-keys accounting must be index + one shared store",
                c.name
            );
            // The index-only size is what the paper (and the budget)
            // measures; it must be far below the data itself here.
            assert!(c.size_bytes < key_bytes, "{}", c.name);
        }
    }

    #[test]
    fn budget_selection_unchanged_by_shared_store_refactor() {
        // The budget constrains the *index-only* size, exactly as it did
        // when every candidate owned its keys: a budget below the key
        // array's size must still be satisfiable by a small index.
        let data: Vec<u64> = (0..20_000u64).map(|i| i * 2).collect();
        let spec = LifSpec {
            leaf_counts: vec![16],
            btree_pages: vec![2],
            size_budget: Some(4096),
            ..small_spec()
        };
        let report = Lif::synthesize(&data, &spec);
        let best = report.best();
        assert!(best.size_bytes <= 4096, "{}", best.size_bytes);
        // Counting the shared keys would blow the budget for everyone;
        // the selection must not do that.
        assert!(best.size_bytes_with_keys > 4096);
        assert!(best.name.starts_with("rmi"), "{}", best.name);
    }

    #[test]
    fn impossible_budget_falls_back_to_smallest() {
        let data: Vec<u64> = (0..5000u64).collect();
        let spec = LifSpec {
            size_budget: Some(1),
            ..small_spec()
        };
        let report = Lif::synthesize(&data, &spec);
        let min = report
            .candidates
            .iter()
            .map(|c| c.size_bytes)
            .min()
            .unwrap();
        assert_eq!(report.best().size_bytes, min);
    }
}
