//! Immutable sorted runs — the middle tier of the LSM-style write path.
//!
//! When a [`DeltaIndex`](crate::delta::DeltaIndex) buffer fills in tiered
//! mode it is *sealed* into a [`SortedRun`] instead of being merged into
//! the base: the keys are frozen as-is and a cheap linear mini-model is
//! fitted over them in one O(run) pass. Sealing never retrains the base
//! RMI — that cost is deferred to background compaction, which folds many
//! runs into the base with a single retrain. This is exactly the
//! memtable-flush / SSTable split LSM-trees use, applied to the paper's
//! delta-buffer insert path (Appendix D.1).
//!
//! A run's mini-model is a [`LinearModel`] over (key → index) with a
//! certified maximum error, so point and lower-bound probes search only a
//! `±(max_err + 1)` window — the same bounded-search contract the full
//! RMI provides, at a fraction of the fit cost. Fitting a run does **not**
//! count as a training event ([`crate::rmi::train_count`] stays flat), so
//! the persistence layer can refit mini-models on load while still
//! proving the base was never retrained.

use std::sync::Arc;

use li_models::{LinearModel, Model};

/// An immutable sorted unique key run with a linear mini-model.
///
/// Runs are born from sealing a full delta buffer and are shared via
/// `Arc` between the live index and its snapshots, which is what makes
/// multi-tier snapshots torn-free: once sealed, a run never changes.
///
/// # Examples
/// ```
/// use li_core::run::SortedRun;
///
/// let run = SortedRun::seal(vec![10u64, 20, 30, 40]);
/// assert_eq!(run.len(), 4);
/// assert!(run.contains(30));
/// assert_eq!(run.lower_bound(25), 2);
/// assert_eq!(run.range(15, 35), &[20, 30]);
/// ```
#[derive(Debug, Clone)]
pub struct SortedRun {
    keys: Arc<[u64]>,
    model: LinearModel,
    max_err: usize,
}

impl SortedRun {
    /// Seal sorted unique `keys` into an immutable run, fitting the
    /// linear mini-model and certifying its maximum absolute error in
    /// one extra pass. O(keys) total — never a base retrain, and not a
    /// training event for [`crate::rmi::train_count`].
    ///
    /// # Panics
    /// In debug builds, if `keys` is not strictly sorted.
    ///
    /// # Examples
    /// ```
    /// use li_core::run::SortedRun;
    ///
    /// let before = li_core::train_count();
    /// let run = SortedRun::seal(vec![1u64, 5, 9]);
    /// assert_eq!(li_core::train_count(), before, "sealing never trains");
    /// assert_eq!(run.as_slice(), &[1, 5, 9]);
    /// ```
    pub fn seal(keys: impl Into<Arc<[u64]>>) -> Self {
        let keys: Arc<[u64]> = keys.into();
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "a run must be sorted unique"
        );
        let model = LinearModel::fit(keys.iter().enumerate().map(|(i, &k)| (k as f64, i as f64)));
        let mut max_err = 0usize;
        for (i, &k) in keys.iter().enumerate() {
            let pred = clamp_pred(model.predict(k as f64), keys.len());
            max_err = max_err.max(pred.abs_diff(i));
        }
        Self {
            keys,
            model,
            max_err,
        }
    }

    /// Number of keys in the run.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the run holds no keys.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The run's keys, sorted unique.
    pub fn as_slice(&self) -> &[u64] {
        &self.keys
    }

    /// The certified maximum absolute error of the mini-model: every
    /// key's true index is within `max_err` of its prediction.
    pub fn max_err(&self) -> usize {
        self.max_err
    }

    /// Index of the first key `>= key` (the run-local lower-bound rank).
    ///
    /// The mini-model predicts a position and only the certified
    /// `±(max_err + 1)` window is binary-searched; a boundary check
    /// widens the window exponentially in the (never observed in
    /// practice) case where an off-window query key defeats the linear
    /// error bound, so the answer is exact for every input.
    ///
    /// # Examples
    /// ```
    /// use li_core::run::SortedRun;
    ///
    /// let run = SortedRun::seal(vec![10u64, 20, 30]);
    /// assert_eq!(run.lower_bound(0), 0);
    /// assert_eq!(run.lower_bound(20), 1);
    /// assert_eq!(run.lower_bound(21), 2);
    /// assert_eq!(run.lower_bound(u64::MAX), 3);
    /// ```
    pub fn lower_bound(&self, key: u64) -> usize {
        let n = self.keys.len();
        if n == 0 {
            return 0;
        }
        let pred = clamp_pred(self.model.predict(key as f64), n);
        let pad = self.max_err + 1;
        let mut lo = pred.saturating_sub(pad);
        let mut hi = (pred + pad).min(n);
        // Widen until the window brackets the answer: the result index r
        // satisfies lo <= r iff keys[lo-1] < key (or lo == 0), and
        // r <= hi iff keys[hi] >= key (or hi == n).
        let mut step = pad;
        while lo > 0 && self.keys[lo - 1] >= key {
            lo = lo.saturating_sub(step);
            step = step.saturating_mul(2);
        }
        let mut step = pad;
        while hi < n && self.keys[hi] < key {
            hi = (hi + step).min(n);
            step = step.saturating_mul(2);
        }
        lo + self.keys[lo..hi].partition_point(|&k| k < key)
    }

    /// Whether `key` is in the run (one mini-model-windowed probe).
    pub fn contains(&self, key: u64) -> bool {
        let at = self.lower_bound(key);
        self.keys.get(at) == Some(&key)
    }

    /// All run keys in `[lo, hi)` as a sorted subslice (zero-copy).
    pub fn range(&self, lo: u64, hi: u64) -> &[u64] {
        if lo >= hi {
            return &[];
        }
        let a = self.lower_bound(lo);
        let b = self.lower_bound(hi);
        &self.keys[a..b]
    }
}

/// Clamp a raw model prediction to a valid index in `[0, n)`, mapping
/// NaN/negative/overflow predictions to in-range positions.
fn clamp_pred(pred: f64, n: usize) -> usize {
    if !pred.is_finite() {
        return n / 2;
    }
    // `n >= 1` at every call site (empty runs return early).
    pred.max(0.0).min((n - 1) as f64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_probes_exactly() {
        let keys: Vec<u64> = (0..500u64).map(|i| i * i * 7 + 3).collect();
        let run = SortedRun::seal(keys.clone());
        assert_eq!(run.len(), 500);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(run.lower_bound(k), i, "key {k}");
            assert!(run.contains(k));
            assert!(!run.contains(k + 1) || keys.binary_search(&(k + 1)).is_ok());
        }
    }

    #[test]
    fn lower_bound_matches_partition_point_for_arbitrary_queries() {
        let keys: Vec<u64> = (0..300u64).map(|i| i * 1000 + (i % 7) * 13).collect();
        let run = SortedRun::seal(keys.clone());
        for q in (0..310_000u64).step_by(311) {
            assert_eq!(
                run.lower_bound(q),
                keys.partition_point(|&k| k < q),
                "q={q}"
            );
        }
        assert_eq!(run.lower_bound(u64::MAX), keys.len());
        assert_eq!(run.lower_bound(0), 0);
    }

    #[test]
    fn empty_and_singleton_runs() {
        let empty = SortedRun::seal(Vec::<u64>::new());
        assert!(empty.is_empty());
        assert_eq!(empty.lower_bound(5), 0);
        assert!(!empty.contains(5));
        assert_eq!(empty.range(0, u64::MAX), &[] as &[u64]);

        let one = SortedRun::seal(vec![42u64]);
        assert_eq!(one.lower_bound(41), 0);
        assert_eq!(one.lower_bound(42), 0);
        assert_eq!(one.lower_bound(43), 1);
        assert!(one.contains(42) && !one.contains(43));
    }

    #[test]
    fn extreme_keys_stay_exact() {
        let keys = vec![0u64, 1, u64::MAX - 1, u64::MAX];
        let run = SortedRun::seal(keys.clone());
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(run.lower_bound(k), i, "key {k}");
            assert!(run.contains(k));
        }
        assert_eq!(run.lower_bound(2), 2);
        assert!(!run.contains(2));
    }

    #[test]
    fn range_is_a_correct_subslice() {
        let keys: Vec<u64> = (0..100u64).map(|i| i * 10).collect();
        let run = SortedRun::seal(keys);
        assert_eq!(run.range(15, 45), &[20, 30, 40]);
        assert_eq!(run.range(0, 1), &[0]);
        assert_eq!(run.range(995, u64::MAX), &[]);
        assert_eq!(run.range(50, 50), &[]);
        assert_eq!(run.range(60, 50), &[]);
    }

    #[test]
    fn sealing_is_not_a_training_event() {
        let before = crate::rmi::train_count();
        let _run = SortedRun::seal((0..10_000u64).collect::<Vec<_>>());
        assert_eq!(crate::rmi::train_count(), before);
    }

    #[test]
    fn mini_model_window_is_tight_on_smooth_data() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 17).collect();
        let run = SortedRun::seal(keys);
        assert!(run.max_err() <= 1, "max_err {}", run.max_err());
    }
}
