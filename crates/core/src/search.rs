//! Search strategies for learned range indexes (§3.4).
//!
//! "Learned indexes might have an advantage here: the models actually
//! predict the position of the key, not just the region." The strategies:
//!
//! * [`SearchStrategy::ModelBiasedBinary`] — "our default search
//!   strategy, which only varies from traditional binary search in that
//!   the first middle point is set to the value predicted by the model".
//! * [`SearchStrategy::BiasedQuaternary`] — three initial split points
//!   `pos − σ, pos, pos + σ` so the hardware can prefetch all three,
//!   then classic quaternary search.
//! * [`SearchStrategy::Exponential`] — gallop outward from the
//!   prediction; needs no stored error bounds.
//! * [`SearchStrategy::FullBinary`] — ignore the prediction inside the
//!   error window (the "traditional" control).
//!
//! All strategies search within the min-/max-error window recorded at
//! training time. Because RMI models need not be monotonic, the window
//! can be wrong for *non-stored* keys; [`search_with_widening`]
//! implements the paper's fix — "if the found upper (lower) bound key is
//! on the boundary of the search area … we incrementally adjust the
//! search area" — which makes every lookup exact regardless of model
//! quality.

use li_btree::search::{exponential_search, lower_bound};

/// Last-mile search strategy used after the model prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchStrategy {
    /// Binary search whose first probe is the model prediction.
    #[default]
    ModelBiasedBinary,
    /// Quaternary search seeded at `pos − σ, pos, pos + σ`.
    BiasedQuaternary,
    /// Exponential (galloping) search from the prediction.
    Exponential,
    /// Plain binary search over the error window.
    FullBinary,
}

impl SearchStrategy {
    /// All strategies, for grid sweeps and ablation benches.
    pub const ALL: [SearchStrategy; 4] = [
        SearchStrategy::ModelBiasedBinary,
        SearchStrategy::BiasedQuaternary,
        SearchStrategy::Exponential,
        SearchStrategy::FullBinary,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            SearchStrategy::ModelBiasedBinary => "biased-binary",
            SearchStrategy::BiasedQuaternary => "biased-quaternary",
            SearchStrategy::Exponential => "exponential",
            SearchStrategy::FullBinary => "binary",
        }
    }

    /// Stable on-disk tag for the persistence format (v1). Tags are
    /// append-only: existing values never change meaning.
    pub fn to_tag(self) -> u8 {
        match self {
            SearchStrategy::ModelBiasedBinary => 0,
            SearchStrategy::BiasedQuaternary => 1,
            SearchStrategy::Exponential => 2,
            SearchStrategy::FullBinary => 3,
        }
    }

    /// Inverse of [`SearchStrategy::to_tag`]; `None` for unknown tags
    /// (a newer writer or a corrupt manifest).
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(SearchStrategy::ModelBiasedBinary),
            1 => Some(SearchStrategy::BiasedQuaternary),
            2 => Some(SearchStrategy::Exponential),
            3 => Some(SearchStrategy::FullBinary),
            _ => None,
        }
    }

    /// Find the lower bound of `key` within `data[lo..hi]`, exploiting
    /// the model's position estimate `pos` and error std `sigma`.
    /// Result is only locally correct; callers use
    /// [`search_with_widening`] for global correctness.
    #[inline]
    pub fn search(
        &self,
        data: &[u64],
        key: u64,
        pos: usize,
        sigma: usize,
        lo: usize,
        hi: usize,
    ) -> usize {
        debug_assert!(lo <= hi && hi <= data.len());
        match self {
            SearchStrategy::ModelBiasedBinary => biased_binary(data, key, pos, lo, hi),
            SearchStrategy::BiasedQuaternary => biased_quaternary(data, key, pos, sigma, lo, hi),
            SearchStrategy::Exponential => {
                // The gallop itself establishes a correct bracket inside
                // [0, n), so it ignores the window by design (§3.4: "not
                // requiring to store any min- and max-errors").
                exponential_search(data, key, pos)
            }
            SearchStrategy::FullBinary => lower_bound(data, key, lo, hi),
        }
    }
}

/// Binary search with the first middle point at the model prediction.
#[inline]
fn biased_binary(data: &[u64], key: u64, pos: usize, mut lo: usize, mut hi: usize) -> usize {
    // First probe at the prediction: if the model is good this halves the
    // remaining window to ~error rather than ~(hi-lo)/2.
    if lo < hi {
        let mid = pos.clamp(lo, hi - 1);
        if data[mid] < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lower_bound(data, key, lo, hi)
}

/// Quaternary search seeded with `pos − σ, pos, pos + σ` (the paper's
/// "we make a guess that most of our predictions are accurate and focus
/// our attention first around the position estimate").
#[inline]
fn biased_quaternary(
    data: &[u64],
    key: u64,
    pos: usize,
    sigma: usize,
    mut lo: usize,
    mut hi: usize,
) -> usize {
    let sigma = sigma.max(1);
    // Initial three probes (conceptually prefetched together).
    if lo < hi {
        let p1 = pos.saturating_sub(sigma).clamp(lo, hi - 1);
        let p2 = pos.clamp(lo, hi - 1);
        let p3 = (pos + sigma).clamp(lo, hi - 1);
        // Narrow [lo, hi) using the three probes.
        if data[p1] >= key {
            hi = p1;
        } else if data[p2] >= key {
            lo = p1 + 1;
            hi = p2;
        } else if data[p3] >= key {
            lo = p2 + 1;
            hi = p3;
        } else {
            lo = p3 + 1;
        }
    }
    // Continue with classic quaternary: three split points per round.
    while hi - lo > 3 {
        let q = (hi - lo) / 4;
        let (m1, m2, m3) = (lo + q, lo + 2 * q, lo + 3 * q);
        if data[m1] >= key {
            hi = m1;
        } else if data[m2] >= key {
            lo = m1 + 1;
            hi = m2;
        } else if data[m3] >= key {
            lo = m2 + 1;
            hi = m3;
        } else {
            lo = m3 + 1;
        }
    }
    lower_bound(data, key, lo, hi)
}

/// Exact lower bound using a strategy plus the §3.4 automatic
/// search-area adjustment: if the local result lies on a window boundary
/// that cannot be certified against the neighboring element, the window
/// is doubled and the search retried. Converges in O(log n) widenings;
/// with a monotonic model it never widens for stored keys.
pub fn search_with_widening(
    data: &[u64],
    key: u64,
    strategy: SearchStrategy,
    pos: usize,
    sigma: usize,
    mut lo: usize,
    mut hi: usize,
) -> usize {
    let n = data.len();
    lo = lo.min(n);
    hi = hi.min(n);
    if lo > hi {
        std::mem::swap(&mut lo, &mut hi);
    }
    loop {
        let r = strategy.search(data, key, pos, sigma, lo, hi);
        // Certify the boundaries:
        //  - r > lo: some element in-window is < key, left edge is safe.
        //    r == lo is also safe when lo == 0 or data[lo-1] < key.
        let left_ok = r > lo || lo == 0 || data[lo - 1] < key;
        //  - r < hi: some in-window element >= key, right edge safe.
        //    r == hi is also safe when hi == n or data[hi] >= key (then
        //    hi itself is the first >= key).
        let right_ok = r < hi || hi == n || data[hi] >= key;
        if left_ok && right_ok {
            return r;
        }
        // Widen: double the window around the prediction.
        let width = (hi - lo).max(8);
        lo = if left_ok {
            lo
        } else {
            lo.saturating_sub(width)
        };
        hi = if right_ok { hi } else { (hi + width).min(n) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(data: &[u64], key: u64) -> usize {
        data.partition_point(|&k| k < key)
    }

    fn data_sets() -> Vec<Vec<u64>> {
        vec![
            vec![],
            vec![10],
            (0..100u64).map(|i| i * 3).collect(),
            (0..1000u64).map(|i| i * i / 7 + i).collect(),
        ]
    }

    #[test]
    fn all_strategies_exact_with_correct_window() {
        for data in data_sets() {
            let n = data.len();
            for strategy in SearchStrategy::ALL {
                for q in (0..3100u64).step_by(7) {
                    let ans = oracle(&data, q);
                    // Window centered on the truth with slack.
                    let lo = ans.saturating_sub(5);
                    let hi = (ans + 5).min(n);
                    let r = search_with_widening(&data, q, strategy, ans.min(n), 3, lo, hi);
                    assert_eq!(r, ans, "{} q={q} n={n}", strategy.name());
                }
            }
        }
    }

    #[test]
    fn widening_recovers_from_arbitrarily_wrong_windows() {
        let data: Vec<u64> = (0..5000u64).map(|i| i * 2 + 1).collect();
        for strategy in SearchStrategy::ALL {
            for q in [0u64, 1, 4999, 5000, 9999, 10_001, 100_000] {
                let ans = oracle(&data, q);
                // Deliberately wrong windows.
                for (pos, lo, hi) in [
                    (0usize, 0usize, 1usize),
                    (4999, 4999, 5000),
                    (2500, 2400, 2401),
                    (0, 0, 0),
                    (4999, 5000, 5000),
                ] {
                    let r = search_with_widening(&data, q, strategy, pos, 2, lo, hi);
                    assert_eq!(r, ans, "{} q={q} window=({lo},{hi})", strategy.name());
                }
            }
        }
    }

    #[test]
    fn biased_binary_first_probe_helps_exact_predictions() {
        // With pos == answer the first probe immediately certifies one
        // side; correctness is what we check here.
        let data: Vec<u64> = (0..1000u64).map(|i| i * 10).collect();
        for q in (0..10_000u64).step_by(11) {
            let ans = oracle(&data, q);
            let r = search_with_widening(
                &data,
                q,
                SearchStrategy::ModelBiasedBinary,
                ans.min(data.len().saturating_sub(1)),
                1,
                0,
                data.len(),
            );
            assert_eq!(r, ans);
        }
    }

    #[test]
    fn quaternary_handles_degenerate_sigma_and_windows() {
        let data: Vec<u64> = (0..50u64).collect();
        for q in 0..55u64 {
            let ans = oracle(&data, q);
            for sigma in [0usize, 1, 100] {
                let r = search_with_widening(
                    &data,
                    q,
                    SearchStrategy::BiasedQuaternary,
                    25,
                    sigma,
                    0,
                    data.len(),
                );
                assert_eq!(r, ans, "q={q} sigma={sigma}");
            }
        }
    }

    #[test]
    fn empty_data_returns_zero() {
        for strategy in SearchStrategy::ALL {
            assert_eq!(search_with_widening(&[], 5, strategy, 0, 1, 0, 0), 0);
        }
    }

    #[test]
    fn inverted_window_is_repaired() {
        let data: Vec<u64> = (0..100u64).collect();
        let r = search_with_widening(&data, 42, SearchStrategy::FullBinary, 42, 1, 80, 20);
        assert_eq!(r, 42);
    }
}
