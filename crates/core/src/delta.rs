//! Delta-buffered inserts for learned indexes (Appendix D.1), with an
//! optional LSM-style tiered write path.
//!
//! "There always exists a much simpler alternative to handling inserts
//! by building a delta-index \[60\]. All inserts are kept in buffer and
//! from time to time merged with a potential retraining of the model.
//! This approach is already widely used, for example in Bigtable."
//!
//! [`DeltaIndex`] wraps an [`Rmi`] with a sorted insert buffer. In the
//! classic (untiered) configuration, lookups consult both sides and a
//! full buffer is merged into the base with a retrain — the paper's D.1
//! design verbatim. In **tiered** mode ([`DeltaIndex::with_tiering`]),
//! a full buffer is instead *sealed* into an immutable [`SortedRun`]
//! with its own O(run) linear mini-model, and the stack of runs is only
//! folded into the base — ONE retrain for many sealed buffers — by an
//! explicit [`DeltaIndex::compact`] call, which the serving layer
//! schedules on its background `RebalanceWorker`. That breaks the
//! merge-threshold / retrain-cost tradeoff the same way LSM-trees do:
//! the hot insert path never pays a base retrain.
//!
//! The base RMI and every sealed run live behind `Arc`s, so both merges
//! and compactions are *whole-tier swaps*: readers holding a
//! [`DeltaSnapshot`] keep the old trained model, runs and zero-copy
//! [`KeyStore`] alive for as long as they need them, which is what makes
//! the `li-serve` write path's snapshot-consistent concurrent reads
//! possible — even mid-compaction.

use std::sync::Arc;

use crate::rmi::{Rmi, RmiConfig};
use crate::run::SortedRun;
use li_index::{KeyStore, RangeIndex};

/// Linear two-pointer merge of two sorted sequences into one sorted
/// vector (stable: ties take the left side first).
fn merge_sorted(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Fold-merge of many sorted disjoint slices into one sorted vector.
/// The slice count is bounded by the run stack (small), so a fold of
/// two-way merges is within a constant of a heap-based k-way merge.
fn merge_many(slices: &[&[u64]]) -> Vec<u64> {
    let mut acc: Vec<u64> = Vec::new();
    for s in slices {
        if acc.is_empty() {
            acc = s.to_vec();
        } else if !s.is_empty() {
            acc = merge_sorted(&acc, s);
        }
    }
    acc
}

/// An updatable learned index: RMI base + sorted delta buffer, plus (in
/// tiered mode) a bounded stack of immutable sorted runs between them.
///
/// The base keys live in the RMI's shared [`KeyStore`]; only the (small,
/// bounded) insert buffer is owned, mutable storage. The trained base and
/// every sealed run sit behind `Arc`s so [`DeltaIndex::snapshot`] is
/// O(pending): it clones the `Arc`s and freezes the buffer, never the
/// keys or the models.
///
/// Reads fan across the tiers newest-first — buffer, then runs (newest
/// sealed first), then base — and the tiers are mutually disjoint at all
/// times, so each tier's contribution to `len`/`rank` simply adds up.
#[derive(Debug)]
pub struct DeltaIndex {
    base: Arc<Rmi>,
    config: RmiConfig,
    delta: Vec<u64>,
    /// Sealed immutable runs, oldest first ([`DeltaIndex::seal`] pushes).
    runs: Vec<Arc<SortedRun>>,
    /// Cached total key count across `runs` (kept in sync by
    /// seal/compact/merge so `len` is O(1)).
    sealed: usize,
    merge_threshold: usize,
    /// `0` = untiered (classic merge-at-threshold); `> 0` = seal at the
    /// threshold and report [`DeltaIndex::needs_compaction`] once this
    /// many runs have stacked up.
    max_runs: usize,
    merges: usize,
    seals: usize,
    compactions: usize,
    base_probes: u64,
}

impl DeltaIndex {
    /// Build over initial `data` (sorted, unique); buffer up to
    /// `merge_threshold` inserts between retrains.
    pub fn new(data: impl Into<KeyStore>, config: RmiConfig, merge_threshold: usize) -> Self {
        Self::from_trained(Rmi::build(data, &config), config, merge_threshold)
    }

    /// Wrap an already-trained base RMI (no retraining) — for callers
    /// that tune the model before handing it over, e.g. the sharded
    /// write path's per-shard retune loop. `config` is what future
    /// merge+retrain cycles rebuild with, so pass the configuration the
    /// base was actually trained under.
    pub fn from_trained(base: Rmi, config: RmiConfig, merge_threshold: usize) -> Self {
        assert!(merge_threshold > 0);
        Self {
            base: Arc::new(base),
            config,
            delta: Vec::new(),
            runs: Vec::new(),
            sealed: 0,
            merge_threshold,
            max_runs: 0,
            merges: 0,
            seals: 0,
            compactions: 0,
            base_probes: 0,
        }
    }

    /// Switch this index to the LSM-style tiered write path: a full
    /// buffer is sealed into an immutable [`SortedRun`] (O(buffer), no
    /// base retrain) instead of merged, and once `max_runs` runs have
    /// stacked up [`DeltaIndex::needs_compaction`] turns true so the
    /// owner can fold them into the base with ONE retrain — inline via
    /// [`DeltaIndex::compact`], or off-thread the way `li-serve`'s
    /// background worker does.
    ///
    /// `max_runs == 0` keeps the classic untiered merge-at-threshold
    /// behavior. The index itself never compacts on its own in tiered
    /// mode: the run stack only shrinks when the owner asks, which is
    /// what lets a serving layer prove that compaction runs *only* on
    /// its background worker.
    ///
    /// # Examples
    /// ```
    /// use li_core::delta::DeltaIndex;
    /// use li_core::rmi::RmiConfig;
    ///
    /// let mut idx = DeltaIndex::new(vec![100u64, 200], RmiConfig::default(), 4).with_tiering(2);
    /// let before = li_core::train_count();
    /// for k in 0..8u64 {
    ///     idx.insert(k); // two buffers' worth: two seals, zero retrains
    /// }
    /// assert_eq!(idx.seals(), 2);
    /// assert_eq!(li_core::train_count(), before, "sealing never retrains");
    /// assert!(idx.needs_compaction());
    /// assert_eq!(idx.compact(), 2); // both runs folded, ONE retrain
    /// assert_eq!(idx.len(), 10);
    /// ```
    pub fn with_tiering(mut self, max_runs: usize) -> Self {
        self.max_runs = max_runs;
        self
    }

    /// Insert a key, returning whether it was newly inserted (`false`
    /// for duplicates of existing keys, which are ignored to keep the
    /// unique-sorted-key invariant). At the merge threshold the full
    /// buffer is merged+retrained (untiered) or sealed into a run
    /// (tiered).
    ///
    /// The duplicate check fans across the tiers newest-first: the
    /// O(log pending) sorted-buffer probe runs first and short-circuits,
    /// then the sealed runs (newest first, mini-model windows), and the
    /// full learned lookup against the base only runs when everything
    /// above missed. The buffer probe doubles as the insertion position,
    /// so bulk loads do one buffer search per insert, not two. The
    /// tiers-before-base order is safe because all tiers are mutually
    /// disjoint at all times: a key only enters the buffer after missing
    /// *every* probe, sealing moves the whole buffer into a run
    /// verbatim, and merge/compaction move whole tiers into the base
    /// atomically (under `&mut self`), so no tier can ever hold a key
    /// another tier has. [`DeltaIndex::merge`] re-checks the invariant
    /// with a strict sortedness assertion on the merged array in debug
    /// builds.
    pub fn insert(&mut self, key: u64) -> bool {
        let pos = self.delta.partition_point(|&k| k < key);
        if self.delta.get(pos).is_some_and(|&k| k == key) || self.in_runs(key) {
            return false;
        }
        self.base_probes += 1;
        if self.base.lookup(key).is_some() {
            return false;
        }
        self.delta.insert(pos, key);
        if self.delta.len() >= self.merge_threshold {
            self.overflow();
        }
        true
    }

    /// Insert a whole batch of keys in one pass over the sorted buffer,
    /// returning one newly-inserted flag per key *in input order*
    /// (`false` for keys already present in any tier, and for the second
    /// and later occurrences of a key duplicated within the batch).
    ///
    /// Observationally identical to calling [`DeltaIndex::insert`] once
    /// per key in input order — same final contents, same flags — but
    /// the buffer is rebuilt with a single linear merge instead of one
    /// `Vec::insert` memmove per key, and the overflow check runs once
    /// at the end instead of per key, so a batch triggers at most one
    /// retrain (untiered) or seal (tiered).
    ///
    /// Keys resolved by the pending-buffer or run probes are excluded
    /// from the base `lower_bound_batch` membership pass entirely — the
    /// base only ever sees keys no upper tier could answer (observable
    /// via [`DeltaIndex::base_probes`]).
    ///
    /// # Examples
    /// ```
    /// use li_core::delta::DeltaIndex;
    /// use li_core::rmi::RmiConfig;
    ///
    /// let mut idx = DeltaIndex::new(vec![10u64, 20, 30], RmiConfig::default(), 64);
    /// // 20 is in the base, the second 15 duplicates the first.
    /// let flags = idx.insert_batch(&[15, 20, 15, 7]);
    /// assert_eq!(flags, vec![true, false, false, true]);
    /// assert_eq!(idx.len(), 5);
    /// ```
    pub fn insert_batch(&mut self, keys: &[u64]) -> Vec<bool> {
        let mut flags = vec![false; keys.len()];
        if keys.is_empty() {
            return flags;
        }
        // Stable sort by key: equal keys keep input order, so for
        // intra-batch duplicates the FIRST occurrence is the one
        // reported as inserted — matching the scalar loop.
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by_key(|&i| keys[i]);
        // Candidates: not an intra-batch duplicate, not in the buffer,
        // not in any sealed run. Base membership for the survivors is
        // resolved below with the RMI's phase-split batched lookup, so
        // the model/search cache misses of distinct candidates overlap
        // instead of serializing per key.
        let mut cand_keys: Vec<u64> = Vec::with_capacity(keys.len());
        let mut cand_slots: Vec<usize> = Vec::with_capacity(keys.len());
        for &i in &order {
            let k = keys[i];
            if cand_keys.last() == Some(&k) {
                continue; // intra-batch duplicate (equal keys are adjacent)
            }
            if self.delta.binary_search(&k).is_ok() {
                continue; // already buffered
            }
            if self.in_runs(k) {
                continue; // already sealed in a run
            }
            cand_keys.push(k);
            cand_slots.push(i);
        }
        let mut fresh: Vec<u64> = Vec::with_capacity(cand_keys.len());
        if !cand_keys.is_empty() {
            self.base_probes += cand_keys.len() as u64;
            let mut lbs = vec![0usize; cand_keys.len()];
            self.base.lower_bound_batch(&cand_keys, &mut lbs);
            let data = self.base.data();
            for ((&k, &slot), &lb) in cand_keys.iter().zip(&cand_slots).zip(&lbs) {
                if lb < data.len() && data[lb] == k {
                    continue; // already in the base
                }
                fresh.push(k);
                flags[slot] = true;
            }
        }
        if !fresh.is_empty() {
            self.delta = merge_sorted(&self.delta, &fresh);
            if self.delta.len() >= self.merge_threshold {
                self.overflow();
            }
        }
        flags
    }

    /// Whether any sealed run holds `key` (probed newest-first: recent
    /// inserts are the likeliest re-insert targets).
    fn in_runs(&self, key: u64) -> bool {
        self.runs.iter().rev().any(|r| r.contains(key))
    }

    /// The full-buffer action: merge+retrain when untiered, seal into a
    /// run when tiered.
    fn overflow(&mut self) {
        if self.max_runs == 0 {
            self.merge();
        } else {
            self.seal();
        }
    }

    /// Whether `key` exists in any tier. Probes the small sorted buffer
    /// first, then the sealed runs newest-first; the learned base is
    /// only consulted when every upper tier misses.
    pub fn contains(&self, key: u64) -> bool {
        self.delta.binary_search(&key).is_ok()
            || self.in_runs(key)
            || self.base.lookup(key).is_some()
    }

    /// Number of keys `< key` across all tiers — the global lower-bound
    /// rank in the merged view. Tier disjointness makes this a plain
    /// sum of per-tier ranks.
    pub fn rank(&self, key: u64) -> usize {
        self.base.lower_bound(key)
            + self.runs.iter().map(|r| r.lower_bound(key)).sum::<usize>()
            + self.delta.partition_point(|&k| k < key)
    }

    /// Total keys (base + sealed runs + buffer).
    pub fn len(&self) -> usize {
        self.base.data().len() + self.sealed + self.delta.len()
    }

    /// Whether the index holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keys currently waiting in the mutable delta buffer (sealed run
    /// keys are counted by [`DeltaIndex::sealed_keys`], not here).
    pub fn pending(&self) -> usize {
        self.delta.len()
    }

    /// How many merge+retrain cycles have run.
    pub fn merges(&self) -> usize {
        self.merges
    }

    /// How many buffers have been sealed into immutable runs.
    pub fn seals(&self) -> usize {
        self.seals
    }

    /// How many compactions (run stacks folded into the base with one
    /// retrain) have run.
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    /// Sealed runs currently stacked between the buffer and the base.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total keys across all sealed runs.
    pub fn sealed_keys(&self) -> usize {
        self.sealed
    }

    /// The tiering bound this index was built with (`0` = untiered).
    pub fn max_runs(&self) -> usize {
        self.max_runs
    }

    /// Whether the run stack has reached its bound and the owner should
    /// schedule a [`DeltaIndex::compact`]. Always `false` untiered.
    pub fn needs_compaction(&self) -> bool {
        self.max_runs > 0 && self.runs.len() >= self.max_runs
    }

    /// How many keys the write paths have had to check against the
    /// trained base (scalar probes plus batched `lower_bound_batch`
    /// membership candidates). Keys resolved by the pending-buffer or
    /// run probes never reach the base and are not counted — the
    /// regression tests pin that down.
    pub fn base_probes(&self) -> u64 {
        self.base_probes
    }

    /// An immutable, internally consistent view of the index as of now:
    /// the current trained base and sealed runs (shared via `Arc`,
    /// zero-copy) plus a frozen copy of the pending buffer (bounded by
    /// the merge threshold). Later inserts, seals, compactions and
    /// merges never disturb an outstanding snapshot — every structural
    /// change swaps `Arc`s, it never mutates what they point at.
    pub fn snapshot(&self) -> DeltaSnapshot {
        DeltaSnapshot {
            base: Arc::clone(&self.base),
            runs: self.runs.clone(),
            // One copy straight into the Arc allocation (a Vec clone
            // would copy again on the Vec -> Arc<[u64]> conversion).
            delta: Arc::from(self.delta.as_slice()),
        }
    }

    /// Seal the current buffer into an immutable [`SortedRun`] (O(buffer)
    /// linear mini-model fit, **no** base retrain). No-op on an empty
    /// buffer. Normally driven by the overflow path in tiered mode, but
    /// callable directly — e.g. to freeze a half-full buffer before a
    /// planned compaction.
    pub fn seal(&mut self) {
        if self.delta.is_empty() {
            return;
        }
        // Seal FIRST, then mutate: `SortedRun::seal` allocates and can
        // panic, at which point the index must still be its pre-seal
        // self (the serving layer recovers poisoned locks with
        // `into_inner`).
        let run = Arc::new(SortedRun::seal(self.delta.as_slice()));
        self.sealed += run.len();
        self.delta.clear();
        self.runs.push(run);
        self.seals += 1;
    }

    /// Fold every sealed run into the base with ONE retrain, leaving the
    /// mutable buffer untouched. Returns the number of runs folded (0 if
    /// the stack was empty). This is the inline form; a serving layer
    /// that must not block writers trains off-lock from a snapshot via
    /// [`DeltaSnapshot::train_compacted`] and publishes with
    /// [`DeltaIndex::install_compacted`].
    pub fn compact(&mut self) -> usize {
        if self.runs.is_empty() {
            return 0;
        }
        let cut = self.snapshot();
        let rebuilt = cut
            .train_compacted(&self.config)
            .expect("non-empty run stack");
        self.install_compacted(&cut, rebuilt)
            .expect("inline compaction cannot race itself")
    }

    /// Publish an off-lock compaction: install `rebuilt` (trained from
    /// `cut` via [`DeltaSnapshot::train_compacted`]) as the new base and
    /// drop exactly the runs `cut` captured. Returns the number of runs
    /// folded, or `None` — installing nothing — if the base or any
    /// captured run changed since the cut (a concurrent merge or
    /// compaction won the race; the caller simply retries later, exactly
    /// like the rebalancer's `Raced` outcome). Runs sealed *after* the
    /// cut are unaffected and stay stacked.
    ///
    /// # Examples
    /// ```
    /// use li_core::delta::DeltaIndex;
    /// use li_core::rmi::RmiConfig;
    ///
    /// let mut idx = DeltaIndex::new(vec![100u64], RmiConfig::default(), 2).with_tiering(2);
    /// for k in 0..4u64 {
    ///     idx.insert(k);
    /// }
    /// let cut = idx.snapshot();
    /// let rebuilt = cut.train_compacted(idx.config()).unwrap(); // off-lock in real use
    /// assert_eq!(idx.install_compacted(&cut, rebuilt), Some(2));
    /// assert_eq!(idx.run_count(), 0);
    /// assert_eq!(idx.len(), 5);
    /// ```
    pub fn install_compacted(&mut self, cut: &DeltaSnapshot, rebuilt: Rmi) -> Option<usize> {
        if !Arc::ptr_eq(&self.base, &cut.base) {
            return None;
        }
        let k = cut.runs.len();
        if k == 0
            || self.runs.len() < k
            || !self.runs[..k]
                .iter()
                .zip(&cut.runs)
                .all(|(a, b)| Arc::ptr_eq(a, b))
        {
            return None;
        }
        let folded: usize = self.runs[..k].iter().map(|r| r.len()).sum();
        self.base = Arc::new(rebuilt);
        self.runs.drain(..k);
        self.sealed -= folded;
        self.compactions += 1;
        Some(k)
    }

    /// [`DeltaIndex::install_compacted`] plus a configuration swap:
    /// install `rebuilt` — trained from `cut`'s
    /// [`DeltaSnapshot::merged_keys`] under a possibly *different*
    /// configuration than the current base — and make `config` the
    /// index's configuration from now on (future merge retrains use
    /// it). This is how a serving layer's backend re-selection changes
    /// a shard's family at compaction time: same race rules, same
    /// return value, but the decision sticks.
    pub fn install_compacted_with(
        &mut self,
        cut: &DeltaSnapshot,
        rebuilt: Rmi,
        config: RmiConfig,
    ) -> Option<usize> {
        let folded = self.install_compacted(cut, rebuilt)?;
        self.config = config;
        Some(folded)
    }

    /// Force a full collapse now: every sealed run AND the buffer merged
    /// into the base with one retrain. In untiered mode (no runs) this
    /// is exactly the classic D.1 merge.
    pub fn merge(&mut self) {
        if self.delta.is_empty() && self.runs.is_empty() {
            return;
        }
        let merged = self.export_keys();
        // All tiers must be mutually disjoint (the insert-path duplicate
        // probe checks upper tiers first — see `insert`); any overlap
        // would double-count in `len`/`rank` and show up here as an
        // equal adjacent pair.
        debug_assert!(
            merged.windows(2).all(|w| w[0] < w[1]),
            "tiers must be mutually disjoint"
        );
        // Retrain BEFORE touching any field: `Rmi::build` is the one
        // call here that can panic (allocation, model fitting), and at
        // that point the index must still be exactly its pre-merge self
        // — the serving layer recovers poisoned locks with
        // `into_inner`, which is only sound if every panic leaves the
        // guarded value valid. The whole-base Arc swap afterwards also
        // keeps outstanding snapshots of the old base intact.
        let rebuilt = Rmi::build(merged, &self.config);
        self.base = Arc::new(rebuilt);
        self.delta.clear();
        self.runs.clear();
        self.sealed = 0;
        self.merges += 1;
    }

    /// Range scan over the merged view: all keys in `[lo, hi)`, sorted.
    pub fn range_keys(&self, lo: u64, hi: u64) -> Vec<u64> {
        range_keys_of(&self.base, &self.runs, &self.delta, lo, hi)
    }

    /// Export every key (base + runs + buffer) as one sorted unique
    /// vector — the hand-off a sharded write path uses when a shard
    /// splits and gives half its keys to a sibling, or when two cold
    /// shards merge.
    pub fn export_keys(&self) -> Vec<u64> {
        let mut slices: Vec<&[u64]> = Vec::with_capacity(self.runs.len() + 2);
        slices.push(self.base.data());
        for r in &self.runs {
            slices.push(r.as_slice());
        }
        slices.push(&self.delta);
        merge_many(&slices)
    }

    /// Split the full merged keyset at `pivot`: `(keys < pivot,
    /// keys >= pivot)`, both sorted unique. The right half starts the
    /// sibling shard whose ownership range begins at `pivot`.
    pub fn split_keys(&self, pivot: u64) -> (Vec<u64>, Vec<u64>) {
        let mut all = self.export_keys();
        let at = all.partition_point(|&k| k < pivot);
        let right = all.split_off(at);
        (all, right)
    }

    /// Error statistics of the trained base RMI (the per-shard retuning
    /// and split-on-error signals). Buffered and sealed keys are not
    /// reflected until the next merge or compaction — this reports the
    /// model actually serving the base, which is what retuning
    /// decisions care about.
    pub fn base_stats(&self) -> &crate::rmi::RmiStats {
        self.base.stats()
    }

    /// The merge threshold this index was built with.
    pub fn merge_threshold(&self) -> usize {
        self.merge_threshold
    }

    /// The configuration merge+retrain cycles rebuild with.
    pub fn config(&self) -> &RmiConfig {
        &self.config
    }

    /// Restore an index from persisted state: an already-trained base
    /// plus the delta buffer exactly as it was saved — the warm-restart
    /// "replay deltas on load" path. Nothing is retrained: `pending` is
    /// installed as the buffer verbatim, and because every saved buffer
    /// satisfies `pending.len() < merge_threshold` (an overflow fires
    /// *at* the threshold, so a live index never holds more), installing
    /// it cannot trigger a merge either.
    ///
    /// # Panics
    /// If `merge_threshold == 0`, `pending.len() >= merge_threshold`,
    /// or `pending` is not sorted, unique and disjoint from the base.
    pub fn with_pending(
        base: Rmi,
        config: RmiConfig,
        merge_threshold: usize,
        pending: Vec<u64>,
    ) -> Self {
        Self::with_tiers(base, config, merge_threshold, 0, Vec::new(), pending)
    }

    /// Restore a tiered index from persisted state: an already-trained
    /// base, the sealed run stack (oldest first, mini-models refitted
    /// here in O(run) — **not** a training event), and the pending
    /// buffer verbatim. Nothing retrains the base:
    /// [`crate::rmi::train_count`] is flat across this call.
    ///
    /// # Panics
    /// If `merge_threshold == 0`, `pending.len() >= merge_threshold`,
    /// any run is empty or unsorted, or the tiers (base, runs, pending)
    /// are not mutually disjoint sorted-unique sets.
    pub fn with_tiers(
        base: Rmi,
        config: RmiConfig,
        merge_threshold: usize,
        max_runs: usize,
        runs: Vec<Vec<u64>>,
        pending: Vec<u64>,
    ) -> Self {
        assert!(merge_threshold > 0);
        assert!(
            pending.len() < merge_threshold,
            "a saved delta buffer is always below the merge threshold"
        );
        assert!(
            pending.windows(2).all(|w| w[0] < w[1]),
            "pending must be sorted unique"
        );
        for run in &runs {
            assert!(!run.is_empty(), "sealed runs are never empty");
            assert!(
                run.windows(2).all(|w| w[0] < w[1]),
                "runs must be sorted unique"
            );
        }
        // Mutual disjointness across ALL tiers: the merged view of
        // disjoint sorted-unique sets is strictly sorted; any overlap
        // (base∩run, run∩run, run∩pending, base∩pending) surfaces as an
        // equal adjacent pair.
        {
            let mut slices: Vec<&[u64]> = Vec::with_capacity(runs.len() + 2);
            slices.push(base.data());
            for r in &runs {
                slices.push(r);
            }
            slices.push(&pending);
            let merged = merge_many(&slices);
            assert!(
                merged.windows(2).all(|w| w[0] < w[1]),
                "tiers must be mutually disjoint"
            );
        }
        let sealed = runs.iter().map(Vec::len).sum();
        let runs = runs
            .into_iter()
            .map(|r| Arc::new(SortedRun::seal(r)))
            .collect();
        Self {
            base: Arc::new(base),
            config,
            delta: pending,
            runs,
            sealed,
            merge_threshold,
            max_runs,
            merges: 0,
            seals: 0,
            compactions: 0,
            base_probes: 0,
        }
    }
}

/// An immutable point-in-time view of a [`DeltaIndex`]: the trained base
/// and sealed runs at snapshot time (`Arc`-shared with the live index —
/// zero key copies) plus the then-pending buffer. All reads answered
/// from one snapshot are mutually consistent no matter how many inserts,
/// seals, compactions or retrains the live index runs concurrently.
#[derive(Debug, Clone)]
pub struct DeltaSnapshot {
    base: Arc<Rmi>,
    runs: Vec<Arc<SortedRun>>,
    delta: Arc<[u64]>,
}

impl DeltaSnapshot {
    /// Whether `key` existed when the snapshot was taken.
    pub fn contains(&self, key: u64) -> bool {
        self.delta.binary_search(&key).is_ok()
            || self.runs.iter().rev().any(|r| r.contains(key))
            || self.base.lookup(key).is_some()
    }

    /// Number of keys `< key` in the snapshot (lower-bound rank over the
    /// merged view).
    pub fn rank(&self, key: u64) -> usize {
        self.base.lower_bound(key)
            + self.runs.iter().map(|r| r.lower_bound(key)).sum::<usize>()
            + self.delta.partition_point(|&k| k < key)
    }

    /// Total keys in the snapshot.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.base.data().len() + self.runs.iter().map(|r| r.len()).sum::<usize>() + self.delta.len()
    }

    /// Keys that were pending in the buffer at snapshot time.
    pub fn pending(&self) -> usize {
        self.delta.len()
    }

    /// Range scan over the snapshot's merged view: all keys in
    /// `[lo, hi)`, sorted.
    pub fn range_keys(&self, lo: u64, hi: u64) -> Vec<u64> {
        range_keys_of(&self.base, &self.runs, &self.delta, lo, hi)
    }

    /// The snapshot's base key store (for zero-copy assertions: a
    /// snapshot taken before a merge shares its store with nothing the
    /// live index currently holds, one taken after shares it exactly).
    pub fn base_store(&self) -> &KeyStore {
        self.base.key_store()
    }

    /// The snapshot's trained base index (the persistence layer reads
    /// its coefficients and key array from here at save time).
    pub fn base_index(&self) -> &Rmi {
        &self.base
    }

    /// The sealed runs at snapshot time, oldest first (`Arc`-shared with
    /// the live index — the persistence layer serializes their key
    /// slices from here at save time).
    pub fn runs(&self) -> &[Arc<SortedRun>] {
        &self.runs
    }

    /// The keys that were pending in the buffer at snapshot time
    /// (sorted, unique, disjoint from every other tier — what a snapshot
    /// file records for replay on load).
    pub fn delta_keys(&self) -> &[u64] {
        &self.delta
    }

    /// The keys a compaction of this snapshot would fold into the new
    /// base: base keys plus every captured run, merged sorted unique
    /// (the pending buffer stays live and is excluded). This is what a
    /// serving layer re-runs backend selection over before deciding how
    /// to train the compacted base.
    pub fn merged_keys(&self) -> Vec<u64> {
        let mut slices: Vec<&[u64]> = Vec::with_capacity(self.runs.len() + 1);
        slices.push(self.base.data());
        for r in &self.runs {
            slices.push(r.as_slice());
        }
        merge_many(&slices)
    }

    /// Train the compacted base this snapshot implies: base keys plus
    /// every captured run, merged and trained with ONE `Rmi::build`
    /// (leaving out the pending buffer, which stays live). Returns
    /// `None` when the snapshot captured no runs. This is the off-lock
    /// half of background compaction; publish the result with
    /// [`DeltaIndex::install_compacted`].
    pub fn train_compacted(&self, config: &RmiConfig) -> Option<Rmi> {
        if self.runs.is_empty() {
            return None;
        }
        let mut slices: Vec<&[u64]> = Vec::with_capacity(self.runs.len() + 1);
        slices.push(self.base.data());
        for r in &self.runs {
            slices.push(r.as_slice());
        }
        let merged = merge_many(&slices);
        debug_assert!(
            merged.windows(2).all(|w| w[0] < w[1]),
            "tiers must be mutually disjoint"
        );
        Some(Rmi::build(merged, config))
    }
}

/// Shared range-scan body for the live index and its snapshots.
fn range_keys_of(base: &Rmi, runs: &[Arc<SortedRun>], delta: &[u64], lo: u64, hi: u64) -> Vec<u64> {
    let base_range = base.range(lo, hi);
    let d_lo = delta.partition_point(|&k| k < lo);
    let d_hi = delta.partition_point(|&k| k < hi);
    let mut slices: Vec<&[u64]> = Vec::with_capacity(runs.len() + 2);
    slices.push(&base.data()[base_range]);
    for r in runs {
        slices.push(r.range(lo, hi));
    }
    slices.push(&delta[d_lo..d_hi]);
    merge_many(&slices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmi::TopModel;

    fn cfg() -> RmiConfig {
        RmiConfig::two_stage(TopModel::Linear, 64)
    }

    #[test]
    fn insert_then_lookup() {
        let data: Vec<u64> = (0..1000u64).map(|i| i * 10).collect();
        let mut idx = DeltaIndex::new(data, cfg(), 100);
        assert!(idx.contains(10));
        assert!(!idx.contains(11));
        idx.insert(11);
        assert!(idx.contains(11));
        assert_eq!(idx.pending(), 1);
        assert_eq!(idx.len(), 1001);
    }

    #[test]
    fn merge_triggers_at_threshold_and_preserves_keys() {
        let data: Vec<u64> = (0..500u64).map(|i| i * 3).collect();
        let mut idx = DeltaIndex::new(data, cfg(), 10);
        for k in 0..25u64 {
            idx.insert(k * 3 + 1);
        }
        assert!(idx.merges() >= 2, "merges {}", idx.merges());
        assert!(idx.pending() < 10);
        for k in 0..25u64 {
            assert!(idx.contains(k * 3 + 1), "lost {}", k * 3 + 1);
        }
        for k in 0..500u64 {
            assert!(idx.contains(k * 3));
        }
    }

    #[test]
    fn duplicates_are_ignored_and_reported() {
        let mut idx = DeltaIndex::new(vec![1, 5, 9], cfg(), 100);
        assert!(!idx.insert(5), "base duplicate must report false");
        assert!(idx.insert(7), "fresh key must report true");
        assert!(!idx.insert(7), "buffered duplicate must report false");
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn export_and_split_round_trip() {
        let mut idx = DeltaIndex::new(vec![10u64, 20, 30, 40], cfg(), 100);
        idx.insert(25);
        idx.insert(5);
        assert_eq!(idx.export_keys(), vec![5, 10, 20, 25, 30, 40]);

        let (left, right) = idx.split_keys(25);
        assert_eq!(left, vec![5, 10, 20]);
        assert_eq!(right, vec![25, 30, 40]);
        // Pivot below/above everything: one side empty.
        assert_eq!(idx.split_keys(0).0, Vec::<u64>::new());
        assert_eq!(idx.split_keys(u64::MAX).1, Vec::<u64>::new());
        // Export survives a merge unchanged.
        idx.merge();
        assert_eq!(idx.export_keys(), vec![5, 10, 20, 25, 30, 40]);
    }

    #[test]
    fn base_stats_reflect_the_trained_base() {
        let data: Vec<u64> = (0..2000u64).collect();
        let mut idx = DeltaIndex::new(data, cfg(), 8);
        // Linear data: the base model is near-exact.
        assert!(idx.base_stats().max_abs_err <= 1);
        assert_eq!(idx.merge_threshold(), 8);
        // Stats follow the base across a retrain.
        for k in 0..16u64 {
            idx.insert(5000 + k * 3);
        }
        assert!(idx.merges() >= 1);
        assert!(idx.base_stats().leaves > 0);
    }

    /// Regression for the duplicate-check split: duplicate inserts must
    /// never occupy buffer slots, so they can neither trigger merges nor
    /// perturb the merge cadence of the unique inserts around them.
    #[test]
    fn duplicate_inserts_do_not_affect_merge_counts() {
        let threshold = 8usize;
        let mut idx = DeltaIndex::new(vec![1000, 2000, 3000], cfg(), threshold);

        // Hammer one buffered key: threshold× re-inserts, zero merges.
        idx.insert(5);
        for _ in 0..threshold * 2 {
            idx.insert(5);
        }
        assert_eq!(idx.merges(), 0);
        assert_eq!(idx.pending(), 1);

        // Interleave unique inserts with base and buffer duplicates; the
        // merge count must be exactly what the unique inserts alone give:
        // 16 unique total (incl. the 5 above) at threshold 8 -> 2 merges.
        for k in 0..15u64 {
            idx.insert(k * 2 + 11);
            idx.insert(1000); // base duplicate
            idx.insert(5); // previously inserted key
        }
        assert_eq!(idx.merges(), 2, "pending={}", idx.pending());
        assert_eq!(idx.pending(), 0);
        assert_eq!(idx.len(), 3 + 16);
    }

    /// The duplicate probe checks the buffer before the base. That
    /// order is only sound if base ∩ buffer == ∅ at all times — a key
    /// living on both sides would be reported "duplicate" correctly but
    /// would double-count in `len`/`rank`. This test drives keys through
    /// every membership transition (fresh → buffered → merged-to-base →
    /// re-inserted) and checks the bookkeeping that any overlap would
    /// break; `merge` additionally debug_asserts strict sortedness of
    /// the merged array, which an overlap would violate.
    #[test]
    fn base_and_buffer_stay_disjoint_across_merge_cycles() {
        let threshold = 4usize;
        let mut idx = DeltaIndex::new(vec![100u64, 200, 300], cfg(), threshold);
        let mut oracle: std::collections::BTreeSet<u64> = [100u64, 200, 300].into();

        for round in 0..6u64 {
            // Fresh keys — land in the buffer.
            for k in 0..3u64 {
                let key = round * 10 + k;
                assert_eq!(
                    idx.insert(key),
                    oracle.insert(key),
                    "round {round} key {key}"
                );
            }
            // Re-insert keys that earlier rounds already pushed through
            // a merge (now in the base): the base probe must catch them
            // even though the buffer probe no longer can.
            for k in 0..3u64 {
                let key = round.saturating_sub(1) * 10 + k;
                assert!(
                    !idx.insert(key),
                    "round {round}: merged key {key} re-entered"
                );
            }
            idx.merge();
            assert_eq!(idx.pending(), 0);
            // Any base/buffer overlap double-counts here.
            assert_eq!(idx.len(), oracle.len(), "round {round}");
            assert_eq!(idx.rank(u64::MAX), oracle.len(), "round {round}");
        }
        // Re-run the whole history once more: every key is now in the
        // base, nothing may enter the buffer.
        for round in 0..6u64 {
            for k in 0..3u64 {
                assert!(!idx.insert(round * 10 + k));
            }
        }
        assert_eq!(idx.pending(), 0);
        assert_eq!(idx.len(), oracle.len());
    }

    #[test]
    fn insert_batch_matches_scalar_inserts() {
        // Same stream applied batched and scalar must agree on flags,
        // contents, and rank bookkeeping — through multiple merges.
        let base: Vec<u64> = (0..200u64).map(|i| i * 5).collect();
        let mut batched = DeltaIndex::new(base.clone(), cfg(), 16);
        let mut scalar = DeltaIndex::new(base, cfg(), 16);
        let stream: Vec<u64> = (0..300u64).map(|i| (i * 37) % 1100).collect();
        for chunk in stream.chunks(23) {
            let got = batched.insert_batch(chunk);
            let want: Vec<bool> = chunk.iter().map(|&k| scalar.insert(k)).collect();
            assert_eq!(got, want);
        }
        assert_eq!(batched.len(), scalar.len());
        assert_eq!(
            batched.range_keys(0, u64::MAX),
            scalar.range_keys(0, u64::MAX)
        );
        for q in (0..1200u64).step_by(7) {
            assert_eq!(batched.rank(q), scalar.rank(q), "q={q}");
        }
    }

    #[test]
    fn insert_batch_intra_batch_duplicates_first_occurrence_wins() {
        let mut idx = DeltaIndex::new(vec![50u64], cfg(), 100);
        let flags = idx.insert_batch(&[7, 7, 50, 9, 7, 9]);
        assert_eq!(flags, vec![true, false, false, true, false, false]);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.pending(), 2);
    }

    #[test]
    fn insert_batch_triggers_at_most_one_merge() {
        let mut idx = DeltaIndex::new(vec![1_000u64], cfg(), 8);
        // 20 fresh keys at threshold 8: scalar would merge twice,
        // batched merges exactly once at the end — same final keyset.
        let keys: Vec<u64> = (0..20u64).collect();
        let flags = idx.insert_batch(&keys);
        assert!(flags.iter().all(|&f| f));
        assert_eq!(idx.merges(), 1);
        assert_eq!(idx.pending(), 0);
        assert_eq!(idx.len(), 21);
    }

    #[test]
    fn insert_batch_empty_and_all_duplicates() {
        let mut idx = DeltaIndex::new(vec![1u64, 2, 3], cfg(), 4);
        assert_eq!(idx.insert_batch(&[]), Vec::<bool>::new());
        let flags = idx.insert_batch(&[1, 2, 3, 1]);
        assert_eq!(flags, vec![false; 4]);
        assert_eq!(idx.pending(), 0, "duplicates must not occupy buffer slots");
        assert_eq!(idx.merges(), 0);
    }

    /// Satellite regression: keys the pending-buffer (or run) probes
    /// already resolved must be excluded from the base
    /// `lower_bound_batch` membership pass — `base_probes` counts
    /// exactly the keys that reach the base.
    #[test]
    fn buffered_keys_skip_the_base_membership_pass() {
        let mut idx = DeltaIndex::new(vec![10u64, 20, 30], cfg(), 64);
        idx.insert_batch(&[1, 2, 3]);
        let after_seed = idx.base_probes();
        assert_eq!(after_seed, 3, "three fresh candidates probe the base");

        // Everything already buffered (plus an intra-batch duplicate):
        // the base pass must see zero candidates.
        idx.insert_batch(&[1, 2, 3, 2]);
        assert_eq!(idx.base_probes(), after_seed);

        // Mixed batch: only the one non-buffered key reaches the base.
        idx.insert_batch(&[1, 4, 2]);
        assert_eq!(idx.base_probes(), after_seed + 1);

        // Scalar path agrees: buffered duplicate short-circuits, fresh
        // key pays one probe.
        idx.insert(4);
        assert_eq!(idx.base_probes(), after_seed + 1);
        idx.insert(5);
        assert_eq!(idx.base_probes(), after_seed + 2);
    }

    /// Keys sealed into runs are resolved by the run probe and likewise
    /// never reach the base membership pass.
    #[test]
    fn sealed_keys_skip_the_base_membership_pass() {
        let mut idx = DeltaIndex::new(vec![1000u64], cfg(), 4).with_tiering(4);
        idx.insert_batch(&[1, 2, 3, 4]); // fills the buffer -> sealed
        assert_eq!(idx.run_count(), 1);
        assert_eq!(idx.pending(), 0);
        let probes = idx.base_probes();

        idx.insert_batch(&[1, 2, 3, 4]); // all in the run now
        assert_eq!(idx.base_probes(), probes, "run-resolved keys hit the base");
        assert!(!idx.insert(3), "scalar re-insert of a sealed key");
        assert_eq!(idx.base_probes(), probes);
    }

    #[test]
    fn reinserting_sealed_run_keys_never_duplicates_across_tiers() {
        // Invariant 7 on the insert path: keys 1..=4 live ONLY in a
        // sealed run (the seal emptied the buffer; they were never in
        // the base). A duplicate insert must bounce off the run probe
        // — not slip past it into the buffer, which would put the same
        // key in two tiers at once.
        let mut idx = DeltaIndex::new(vec![1000u64], cfg(), 4).with_tiering(4);
        idx.insert_batch(&[1, 2, 3, 4]);
        assert_eq!((idx.run_count(), idx.pending()), (1, 0));
        let (len0, sealed0) = (idx.len(), idx.sealed_keys());

        for k in [1u64, 2, 3, 4] {
            assert!(!idx.insert(k), "sealed key {k} re-reported as new");
        }
        assert!(idx.insert_batch(&[4, 3, 2, 1]).iter().all(|&f| !f));
        // Nothing moved: no tier grew, no key crossed tiers.
        assert_eq!(idx.len(), len0);
        assert_eq!(idx.pending(), 0, "duplicates must not enter the buffer");
        assert_eq!(idx.run_count(), 1);
        assert_eq!(idx.sealed_keys(), sealed0);
        let exported = idx.export_keys();
        assert!(
            exported.windows(2).all(|w| w[0] < w[1]),
            "cross-tier duplication: export not strictly sorted: {exported:?}"
        );
        assert_eq!(exported, vec![1, 2, 3, 4, 1000]);
        // Replay idempotence (the recovery path re-applies logged
        // inserts through this exact route): a second full replay is a
        // no-op even when every key is run-resident.
        assert!(idx.insert_batch(&[1, 2, 3, 4]).iter().all(|&f| !f));
        assert_eq!(idx.len(), len0);
    }

    #[test]
    fn rank_counts_across_base_and_delta() {
        let mut idx = DeltaIndex::new(vec![10, 20, 30], cfg(), 100);
        idx.insert(15);
        idx.insert(5);
        // keys < 21: 5, 10, 15, 20.
        assert_eq!(idx.rank(21), 4);
        assert_eq!(idx.rank(0), 0);
        assert_eq!(idx.rank(100), 5);
    }

    #[test]
    fn range_scan_merges_both_sides_sorted() {
        let mut idx = DeltaIndex::new(vec![10, 20, 30, 40], cfg(), 100);
        idx.insert(25);
        idx.insert(35);
        assert_eq!(idx.range_keys(15, 36), vec![20, 25, 30, 35]);
        assert_eq!(idx.range_keys(0, 100), vec![10, 20, 25, 30, 35, 40]);
        assert_eq!(idx.range_keys(36, 36), Vec::<u64>::new());
    }

    #[test]
    fn append_workload_stays_consistent() {
        // The D.1 "appends with increasing timestamps" scenario.
        let data: Vec<u64> = (0..1000u64).collect();
        let mut idx = DeltaIndex::new(data, cfg(), 64);
        for k in 1000..1500u64 {
            idx.insert(k);
        }
        assert_eq!(idx.len(), 1500);
        for k in (0..1500u64).step_by(37) {
            assert!(idx.contains(k));
            assert_eq!(idx.rank(k), k as usize);
        }
    }

    #[test]
    fn forced_merge_is_idempotent() {
        let mut idx = DeltaIndex::new(vec![1, 2, 3], cfg(), 100);
        idx.merge();
        assert_eq!(idx.merges(), 0); // empty buffer: no-op
        idx.insert(10);
        idx.merge();
        assert_eq!(idx.merges(), 1);
        assert_eq!(idx.pending(), 0);
        assert!(idx.contains(10));
    }

    #[test]
    fn snapshot_is_zero_copy_and_unaffected_by_later_writes() {
        let data: Vec<u64> = (0..100u64).map(|i| i * 4).collect();
        let mut idx = DeltaIndex::new(data, cfg(), 8);
        idx.insert(1);
        idx.insert(9);

        let snap = idx.snapshot();
        // Zero-copy: snapshot base shares the live index's allocation.
        assert!(snap.base_store().ptr_eq(idx.base.key_store()));
        assert_eq!(snap.len(), 102);
        assert_eq!(snap.pending(), 2);
        assert!(snap.contains(1) && snap.contains(9) && snap.contains(0));
        assert_eq!(snap.rank(10), 5); // 0, 1, 4, 8, 9

        // Drive the live index through a merge+retrain: the base Arc is
        // swapped, the snapshot keeps the old one intact.
        for k in 0..10u64 {
            idx.insert(k * 4 + 2);
        }
        assert!(idx.merges() >= 1);
        assert!(!snap.base_store().ptr_eq(idx.base.key_store()));
        assert_eq!(snap.len(), 102, "snapshot must not see later inserts");
        assert!(!snap.contains(2));
        assert_eq!(snap.range_keys(0, 10), vec![0, 1, 4, 8, 9]);
    }

    #[test]
    fn snapshot_agrees_with_live_index_at_capture_time() {
        let mut idx = DeltaIndex::new(vec![10, 20, 30], cfg(), 100);
        idx.insert(15);
        let snap = idx.snapshot();
        for q in [0u64, 5, 10, 15, 16, 25, 35, u64::MAX] {
            assert_eq!(snap.rank(q), idx.rank(q), "q={q}");
            assert_eq!(snap.contains(q), idx.contains(q), "q={q}");
        }
        assert_eq!(snap.range_keys(0, u64::MAX), idx.range_keys(0, u64::MAX));
    }

    // ------------------------------------------------------------------
    // Tiered mode.
    // ------------------------------------------------------------------

    #[test]
    fn tiered_overflow_seals_instead_of_merging() {
        let before = crate::rmi::train_count();
        let mut idx = DeltaIndex::new(vec![1000u64, 2000], cfg(), 4).with_tiering(3);
        let built = crate::rmi::train_count(); // DeltaIndex::new trained once
        for k in 0..12u64 {
            idx.insert(k);
        }
        assert_eq!(idx.seals(), 3);
        assert_eq!(idx.merges(), 0);
        assert_eq!(idx.run_count(), 3);
        assert_eq!(idx.sealed_keys(), 12);
        assert_eq!(idx.pending(), 0);
        assert_eq!(idx.len(), 14);
        assert!(idx.needs_compaction());
        assert_eq!(
            crate::rmi::train_count(),
            built,
            "seals must never retrain the base"
        );
        assert!(built > before);

        // Reads see all tiers.
        for k in 0..12u64 {
            assert!(idx.contains(k));
        }
        assert_eq!(idx.rank(u64::MAX), 14);
        assert_eq!(idx.range_keys(0, 6), vec![0, 1, 2, 3, 4, 5]);

        // Compaction folds all runs with exactly one retrain.
        let pre = crate::rmi::train_count();
        assert_eq!(idx.compact(), 3);
        assert_eq!(crate::rmi::train_count(), pre + 1);
        assert_eq!(idx.run_count(), 0);
        assert_eq!(idx.compactions(), 1);
        assert!(!idx.needs_compaction());
        assert_eq!(idx.len(), 14);
        for k in 0..12u64 {
            assert!(idx.contains(k));
        }
    }

    #[test]
    fn tiered_index_tracks_oracle_across_tier_transitions() {
        let mut idx = DeltaIndex::new(vec![5000u64, 6000], cfg(), 8).with_tiering(2);
        let mut oracle: std::collections::BTreeSet<u64> = [5000u64, 6000].into();
        for i in 0..200u64 {
            let k = (i * 97) % 300;
            assert_eq!(idx.insert(k), oracle.insert(k), "key {k}");
            if idx.needs_compaction() {
                idx.compact();
            }
            if i % 17 == 0 {
                assert_eq!(idx.len(), oracle.len());
                assert_eq!(idx.rank(150), oracle.range(..150).count());
            }
        }
        assert_eq!(idx.len(), oracle.len());
        let all: Vec<u64> = oracle.iter().copied().collect();
        assert_eq!(idx.range_keys(0, u64::MAX), all);
        assert_eq!(idx.export_keys(), all);
    }

    #[test]
    fn mid_compaction_snapshot_is_never_torn() {
        let mut idx = DeltaIndex::new(vec![10_000u64], cfg(), 4).with_tiering(2);
        for k in 0..9u64 {
            idx.insert(k * 2);
        }
        assert_eq!(idx.run_count(), 2);
        assert_eq!(idx.pending(), 1);

        // The "cut" a background compactor would take...
        let cut = idx.snapshot();
        let expected: Vec<u64> = cut.range_keys(0, u64::MAX);
        assert_eq!(cut.len(), 10);
        // ...concurrent writers keep going (new buffer entries AND a
        // fresh seal stacked above the cut)...
        for k in 0..4u64 {
            idx.insert(k * 2 + 1);
        }
        assert_eq!(idx.run_count(), 3);
        // ...the rebuilt base lands: exactly the cut runs fold, the
        // post-cut run and buffer survive untouched.
        let rebuilt = cut.train_compacted(idx.config()).unwrap();
        assert_eq!(idx.install_compacted(&cut, rebuilt), Some(2));
        assert_eq!(idx.run_count(), 1);
        assert_eq!(idx.len(), 14);
        // The cut snapshot still answers from its own frozen world.
        assert_eq!(cut.range_keys(0, u64::MAX), expected);
        assert_eq!(cut.len(), 10);
        assert!(!cut.contains(1));
        // And the live index is whole: no torn or duplicated keys.
        let live = idx.range_keys(0, u64::MAX);
        assert!(live.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(live.len(), 14);
    }

    #[test]
    fn stale_compaction_cut_is_rejected() {
        let mut idx = DeltaIndex::new(vec![100u64], cfg(), 2).with_tiering(2);
        for k in 0..4u64 {
            idx.insert(k);
        }
        let cut = idx.snapshot();
        let rebuilt = cut.train_compacted(idx.config()).unwrap();
        // A forced merge swaps the base out from under the cut.
        idx.merge();
        assert_eq!(idx.install_compacted(&cut, rebuilt), None);
        assert_eq!(idx.compactions(), 0);
        assert_eq!(idx.len(), 5);
    }

    #[test]
    fn merge_collapses_all_tiers_in_tiered_mode() {
        let mut idx = DeltaIndex::new(vec![900u64], cfg(), 3).with_tiering(4);
        for k in 0..8u64 {
            idx.insert(k * 3);
        }
        assert!(idx.run_count() >= 2);
        assert!(idx.pending() > 0);
        idx.merge();
        assert_eq!(idx.run_count(), 0);
        assert_eq!(idx.pending(), 0);
        assert_eq!(idx.sealed_keys(), 0);
        assert_eq!(idx.len(), 9);
        assert_eq!(idx.rank(u64::MAX), 9);
    }

    #[test]
    fn with_tiers_restores_without_training() {
        let base = Rmi::build((0..100u64).map(|i| i * 10).collect::<Vec<_>>(), &cfg());
        let before = crate::rmi::train_count();
        let idx = DeltaIndex::with_tiers(
            base,
            cfg(),
            8,
            4,
            vec![vec![1, 11, 21], vec![2, 12, 22]],
            vec![3, 13],
        );
        assert_eq!(crate::rmi::train_count(), before, "restore must not train");
        assert_eq!(idx.run_count(), 2);
        assert_eq!(idx.sealed_keys(), 6);
        assert_eq!(idx.pending(), 2);
        assert_eq!(idx.len(), 108);
        for k in [1u64, 11, 21, 2, 12, 22, 3, 13, 0, 990] {
            assert!(idx.contains(k), "key {k}");
        }
        assert_eq!(idx.rank(u64::MAX), 108);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn with_tiers_rejects_overlapping_tiers() {
        let base = Rmi::build(vec![10u64, 20], &cfg());
        let _ = DeltaIndex::with_tiers(base, cfg(), 8, 2, vec![vec![5, 20]], Vec::new());
    }
}
