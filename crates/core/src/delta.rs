//! Delta-buffered inserts for learned indexes (Appendix D.1).
//!
//! "There always exists a much simpler alternative to handling inserts
//! by building a delta-index \[60\]. All inserts are kept in buffer and
//! from time to time merged with a potential retraining of the model.
//! This approach is already widely used, for example in Bigtable."
//!
//! [`DeltaIndex`] wraps an [`Rmi`] with a sorted insert buffer. Lookups
//! consult both sides; when the buffer reaches `merge_threshold` the
//! base data and buffer are merged and the RMI retrained. Appends that
//! follow the learned pattern (the paper's D.1 observation about
//! timestamp appends being O(1)) stay cheap because merging is linear
//! and retraining a linear-top RMI is a single pass.
//!
//! The base RMI lives behind an `Arc`, so a merge+retrain is a
//! *whole-base swap*: readers holding a [`DeltaSnapshot`] keep the old
//! trained model (and its zero-copy [`KeyStore`]) alive for as long as
//! they need it, which is what makes the `li-serve` write path's
//! snapshot-consistent concurrent reads possible.

use std::sync::Arc;

use crate::rmi::{Rmi, RmiConfig};
use li_index::{KeyStore, RangeIndex};

/// Linear two-pointer merge of two sorted sequences into one sorted
/// vector (stable: ties take the left side first).
fn merge_sorted(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// An updatable learned index: RMI base + sorted delta buffer.
///
/// The base keys live in the RMI's shared [`KeyStore`]; only the (small,
/// bounded) insert buffer is owned, mutable storage. The trained base
/// sits behind an `Arc` so [`DeltaIndex::snapshot`] is O(pending): it
/// clones the `Arc` and freezes the buffer, never the keys or the model.
#[derive(Debug)]
pub struct DeltaIndex {
    base: Arc<Rmi>,
    config: RmiConfig,
    delta: Vec<u64>,
    merge_threshold: usize,
    merges: usize,
}

impl DeltaIndex {
    /// Build over initial `data` (sorted, unique); buffer up to
    /// `merge_threshold` inserts between retrains.
    pub fn new(data: impl Into<KeyStore>, config: RmiConfig, merge_threshold: usize) -> Self {
        Self::from_trained(Rmi::build(data, &config), config, merge_threshold)
    }

    /// Wrap an already-trained base RMI (no retraining) — for callers
    /// that tune the model before handing it over, e.g. the sharded
    /// write path's per-shard retune loop. `config` is what future
    /// merge+retrain cycles rebuild with, so pass the configuration the
    /// base was actually trained under.
    pub fn from_trained(base: Rmi, config: RmiConfig, merge_threshold: usize) -> Self {
        assert!(merge_threshold > 0);
        Self {
            base: Arc::new(base),
            config,
            delta: Vec::new(),
            merge_threshold,
            merges: 0,
        }
    }

    /// Insert a key, returning whether it was newly inserted (`false`
    /// for duplicates of base or buffered keys, which are ignored to
    /// keep the unique-sorted-key invariant). Triggers a merge + retrain
    /// when the buffer is full.
    ///
    /// The duplicate check is split: the O(log pending) sorted-buffer
    /// probe runs first and short-circuits, so re-inserting a buffered
    /// key never pays the full learned lookup against the base — and the
    /// probe doubles as the insertion position, so bulk loads do one
    /// buffer search per insert, not two. The buffer-before-base order
    /// is safe because base and buffer are disjoint at all times: a key
    /// only enters the buffer after missing *both* probes, and a merge
    /// moves the whole buffer into the base atomically (under `&mut
    /// self`), so neither side can ever hold a key the other has.
    /// [`DeltaIndex::merge`] re-checks the invariant with a strict
    /// sortedness assertion on the merged array in debug builds.
    pub fn insert(&mut self, key: u64) -> bool {
        let pos = self.delta.partition_point(|&k| k < key);
        if self.delta.get(pos).is_some_and(|&k| k == key) || self.base.lookup(key).is_some() {
            return false;
        }
        self.delta.insert(pos, key);
        if self.delta.len() >= self.merge_threshold {
            self.merge();
        }
        true
    }

    /// Insert a whole batch of keys in one pass over the sorted buffer,
    /// returning one newly-inserted flag per key *in input order*
    /// (`false` for keys already present in base or buffer, and for the
    /// second and later occurrences of a key duplicated within the
    /// batch).
    ///
    /// Observationally identical to calling [`DeltaIndex::insert`] once
    /// per key in input order — same final contents, same flags — but
    /// the buffer is rebuilt with a single linear merge instead of one
    /// `Vec::insert` memmove per key, and the merge+retrain check runs
    /// once at the end instead of per key, so a batch triggers at most
    /// one retrain (the keyset after it is identical either way).
    ///
    /// # Examples
    /// ```
    /// use li_core::delta::DeltaIndex;
    /// use li_core::rmi::RmiConfig;
    ///
    /// let mut idx = DeltaIndex::new(vec![10u64, 20, 30], RmiConfig::default(), 64);
    /// // 20 is in the base, the second 15 duplicates the first.
    /// let flags = idx.insert_batch(&[15, 20, 15, 7]);
    /// assert_eq!(flags, vec![true, false, false, true]);
    /// assert_eq!(idx.len(), 5);
    /// ```
    pub fn insert_batch(&mut self, keys: &[u64]) -> Vec<bool> {
        let mut flags = vec![false; keys.len()];
        if keys.is_empty() {
            return flags;
        }
        // Stable sort by key: equal keys keep input order, so for
        // intra-batch duplicates the FIRST occurrence is the one
        // reported as inserted — matching the scalar loop.
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by_key(|&i| keys[i]);
        // Candidates: not an intra-batch duplicate, not in the buffer.
        // Base membership is resolved below with the RMI's phase-split
        // batched lookup, so the model/search cache misses of distinct
        // candidates overlap instead of serializing per key.
        let mut cand_keys: Vec<u64> = Vec::with_capacity(keys.len());
        let mut cand_slots: Vec<usize> = Vec::with_capacity(keys.len());
        for &i in &order {
            let k = keys[i];
            if cand_keys.last() == Some(&k) {
                continue; // intra-batch duplicate (equal keys are adjacent)
            }
            if self.delta.binary_search(&k).is_ok() {
                continue; // already buffered
            }
            cand_keys.push(k);
            cand_slots.push(i);
        }
        let mut lbs = vec![0usize; cand_keys.len()];
        self.base.lower_bound_batch(&cand_keys, &mut lbs);
        let data = self.base.data();
        let mut fresh: Vec<u64> = Vec::with_capacity(cand_keys.len());
        for ((&k, &slot), &lb) in cand_keys.iter().zip(&cand_slots).zip(&lbs) {
            if lb < data.len() && data[lb] == k {
                continue; // already in the base
            }
            fresh.push(k);
            flags[slot] = true;
        }
        if !fresh.is_empty() {
            self.delta = merge_sorted(&self.delta, &fresh);
            if self.delta.len() >= self.merge_threshold {
                self.merge();
            }
        }
        flags
    }

    /// Whether `key` exists (base or buffer). Probes the small sorted
    /// buffer first; the learned base is only consulted on a buffer
    /// miss.
    pub fn contains(&self, key: u64) -> bool {
        self.delta.binary_search(&key).is_ok() || self.base.lookup(key).is_some()
    }

    /// Number of keys `< key` across base and buffer — the global
    /// lower-bound rank in the merged view.
    pub fn rank(&self, key: u64) -> usize {
        self.base.lower_bound(key) + self.delta.partition_point(|&k| k < key)
    }

    /// Total keys (base + buffer).
    pub fn len(&self) -> usize {
        self.base.data().len() + self.delta.len()
    }

    /// Whether the index holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keys currently waiting in the delta buffer.
    pub fn pending(&self) -> usize {
        self.delta.len()
    }

    /// How many merge+retrain cycles have run.
    pub fn merges(&self) -> usize {
        self.merges
    }

    /// An immutable, internally consistent view of the index as of now:
    /// the current trained base (shared via `Arc`, zero-copy) plus a
    /// frozen copy of the pending buffer (bounded by the merge
    /// threshold). Later inserts, merges and retrains never disturb an
    /// outstanding snapshot — a merge swaps in a *new* base `Arc`, it
    /// does not mutate the old one.
    pub fn snapshot(&self) -> DeltaSnapshot {
        DeltaSnapshot {
            base: Arc::clone(&self.base),
            // One copy straight into the Arc allocation (a Vec clone
            // would copy again on the Vec -> Arc<[u64]> conversion).
            delta: Arc::from(self.delta.as_slice()),
        }
    }

    /// Force a merge + retrain now.
    pub fn merge(&mut self) {
        if self.delta.is_empty() {
            return;
        }
        let merged = merge_sorted(self.base.data(), &self.delta);
        // Base and buffer must be disjoint (the insert-path duplicate
        // probe checks buffer first, then base — see `insert`); any
        // overlap would double-count in `len`/`rank` and show up here
        // as an equal adjacent pair.
        debug_assert!(
            merged.windows(2).all(|w| w[0] < w[1]),
            "base ∩ buffer must be empty"
        );
        // Retrain BEFORE touching any field: `Rmi::build` is the one
        // call here that can panic (allocation, model fitting), and at
        // that point the index must still be exactly its pre-merge self
        // — the serving layer recovers poisoned locks with
        // `into_inner`, which is only sound if every panic leaves the
        // guarded value valid. The whole-base Arc swap afterwards also
        // keeps outstanding snapshots of the old base intact.
        let rebuilt = Rmi::build(merged, &self.config);
        self.base = Arc::new(rebuilt);
        self.delta.clear();
        self.merges += 1;
    }

    /// Range scan over the merged view: all keys in `[lo, hi)`, sorted.
    pub fn range_keys(&self, lo: u64, hi: u64) -> Vec<u64> {
        range_keys_of(&self.base, &self.delta, lo, hi)
    }

    /// Export every key (base + buffer) as one sorted unique vector —
    /// the hand-off a sharded write path uses when a shard splits and
    /// gives half its keys to a sibling, or when two cold shards merge.
    pub fn export_keys(&self) -> Vec<u64> {
        merge_sorted(self.base.data(), &self.delta)
    }

    /// Split the full merged keyset at `pivot`: `(keys < pivot,
    /// keys >= pivot)`, both sorted unique. The right half starts the
    /// sibling shard whose ownership range begins at `pivot`.
    pub fn split_keys(&self, pivot: u64) -> (Vec<u64>, Vec<u64>) {
        let mut all = self.export_keys();
        let at = all.partition_point(|&k| k < pivot);
        let right = all.split_off(at);
        (all, right)
    }

    /// Error statistics of the trained base RMI (the per-shard retuning
    /// and split-on-error signals). Buffered keys are not reflected
    /// until the next merge — this reports the model actually serving
    /// the base, which is what retuning decisions care about.
    pub fn base_stats(&self) -> &crate::rmi::RmiStats {
        self.base.stats()
    }

    /// The merge threshold this index was built with.
    pub fn merge_threshold(&self) -> usize {
        self.merge_threshold
    }

    /// The configuration merge+retrain cycles rebuild with.
    pub fn config(&self) -> &RmiConfig {
        &self.config
    }

    /// Restore an index from persisted state: an already-trained base
    /// plus the delta buffer exactly as it was saved — the warm-restart
    /// "replay deltas on load" path. Nothing is retrained: `pending` is
    /// installed as the buffer verbatim, and because every saved buffer
    /// satisfies `pending.len() < merge_threshold` (a merge fires *at*
    /// the threshold, so a live index never holds more), installing it
    /// cannot trigger a merge either.
    ///
    /// # Panics
    /// If `merge_threshold == 0`, `pending.len() >= merge_threshold`,
    /// or `pending` is not sorted, unique and disjoint from the base.
    pub fn with_pending(
        base: Rmi,
        config: RmiConfig,
        merge_threshold: usize,
        pending: Vec<u64>,
    ) -> Self {
        assert!(merge_threshold > 0);
        assert!(
            pending.len() < merge_threshold,
            "a saved delta buffer is always below the merge threshold"
        );
        assert!(
            pending.windows(2).all(|w| w[0] < w[1]),
            "pending must be sorted unique"
        );
        assert!(
            pending.iter().all(|&k| base.lookup(k).is_none()),
            "pending must be disjoint from the base"
        );
        Self {
            base: Arc::new(base),
            config,
            delta: pending,
            merge_threshold,
            merges: 0,
        }
    }
}

/// An immutable point-in-time view of a [`DeltaIndex`]: the trained base
/// at snapshot time (`Arc`-shared with the live index — zero key copies)
/// plus the then-pending buffer. All reads answered from one snapshot
/// are mutually consistent no matter how many inserts, merges or
/// retrains the live index runs concurrently.
#[derive(Debug, Clone)]
pub struct DeltaSnapshot {
    base: Arc<Rmi>,
    delta: Arc<[u64]>,
}

impl DeltaSnapshot {
    /// Whether `key` existed when the snapshot was taken.
    pub fn contains(&self, key: u64) -> bool {
        self.delta.binary_search(&key).is_ok() || self.base.lookup(key).is_some()
    }

    /// Number of keys `< key` in the snapshot (lower-bound rank over the
    /// merged view).
    pub fn rank(&self, key: u64) -> usize {
        self.base.lower_bound(key) + self.delta.partition_point(|&k| k < key)
    }

    /// Total keys in the snapshot.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.base.data().len() + self.delta.len()
    }

    /// Keys that were pending in the buffer at snapshot time.
    pub fn pending(&self) -> usize {
        self.delta.len()
    }

    /// Range scan over the snapshot's merged view: all keys in
    /// `[lo, hi)`, sorted.
    pub fn range_keys(&self, lo: u64, hi: u64) -> Vec<u64> {
        range_keys_of(&self.base, &self.delta, lo, hi)
    }

    /// The snapshot's base key store (for zero-copy assertions: a
    /// snapshot taken before a merge shares its store with nothing the
    /// live index currently holds, one taken after shares it exactly).
    pub fn base_store(&self) -> &KeyStore {
        self.base.key_store()
    }

    /// The snapshot's trained base index (the persistence layer reads
    /// its coefficients and key array from here at save time).
    pub fn base_index(&self) -> &Rmi {
        &self.base
    }

    /// The keys that were pending in the buffer at snapshot time
    /// (sorted, unique, disjoint from the base — what a snapshot file
    /// records for replay on load).
    pub fn delta_keys(&self) -> &[u64] {
        &self.delta
    }
}

/// Shared range-scan body for the live index and its snapshots.
fn range_keys_of(base: &Rmi, delta: &[u64], lo: u64, hi: u64) -> Vec<u64> {
    let base_range = base.range(lo, hi);
    let d_lo = delta.partition_point(|&k| k < lo);
    let d_hi = delta.partition_point(|&k| k < hi);
    merge_sorted(&base.data()[base_range], &delta[d_lo..d_hi])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmi::TopModel;

    fn cfg() -> RmiConfig {
        RmiConfig::two_stage(TopModel::Linear, 64)
    }

    #[test]
    fn insert_then_lookup() {
        let data: Vec<u64> = (0..1000u64).map(|i| i * 10).collect();
        let mut idx = DeltaIndex::new(data, cfg(), 100);
        assert!(idx.contains(10));
        assert!(!idx.contains(11));
        idx.insert(11);
        assert!(idx.contains(11));
        assert_eq!(idx.pending(), 1);
        assert_eq!(idx.len(), 1001);
    }

    #[test]
    fn merge_triggers_at_threshold_and_preserves_keys() {
        let data: Vec<u64> = (0..500u64).map(|i| i * 3).collect();
        let mut idx = DeltaIndex::new(data, cfg(), 10);
        for k in 0..25u64 {
            idx.insert(k * 3 + 1);
        }
        assert!(idx.merges() >= 2, "merges {}", idx.merges());
        assert!(idx.pending() < 10);
        for k in 0..25u64 {
            assert!(idx.contains(k * 3 + 1), "lost {}", k * 3 + 1);
        }
        for k in 0..500u64 {
            assert!(idx.contains(k * 3));
        }
    }

    #[test]
    fn duplicates_are_ignored_and_reported() {
        let mut idx = DeltaIndex::new(vec![1, 5, 9], cfg(), 100);
        assert!(!idx.insert(5), "base duplicate must report false");
        assert!(idx.insert(7), "fresh key must report true");
        assert!(!idx.insert(7), "buffered duplicate must report false");
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn export_and_split_round_trip() {
        let mut idx = DeltaIndex::new(vec![10u64, 20, 30, 40], cfg(), 100);
        idx.insert(25);
        idx.insert(5);
        assert_eq!(idx.export_keys(), vec![5, 10, 20, 25, 30, 40]);

        let (left, right) = idx.split_keys(25);
        assert_eq!(left, vec![5, 10, 20]);
        assert_eq!(right, vec![25, 30, 40]);
        // Pivot below/above everything: one side empty.
        assert_eq!(idx.split_keys(0).0, Vec::<u64>::new());
        assert_eq!(idx.split_keys(u64::MAX).1, Vec::<u64>::new());
        // Export survives a merge unchanged.
        idx.merge();
        assert_eq!(idx.export_keys(), vec![5, 10, 20, 25, 30, 40]);
    }

    #[test]
    fn base_stats_reflect_the_trained_base() {
        let data: Vec<u64> = (0..2000u64).collect();
        let mut idx = DeltaIndex::new(data, cfg(), 8);
        // Linear data: the base model is near-exact.
        assert!(idx.base_stats().max_abs_err <= 1);
        assert_eq!(idx.merge_threshold(), 8);
        // Stats follow the base across a retrain.
        for k in 0..16u64 {
            idx.insert(5000 + k * 3);
        }
        assert!(idx.merges() >= 1);
        assert!(idx.base_stats().leaves > 0);
    }

    /// Regression for the duplicate-check split: duplicate inserts must
    /// never occupy buffer slots, so they can neither trigger merges nor
    /// perturb the merge cadence of the unique inserts around them.
    #[test]
    fn duplicate_inserts_do_not_affect_merge_counts() {
        let threshold = 8usize;
        let mut idx = DeltaIndex::new(vec![1000, 2000, 3000], cfg(), threshold);

        // Hammer one buffered key: threshold× re-inserts, zero merges.
        idx.insert(5);
        for _ in 0..threshold * 2 {
            idx.insert(5);
        }
        assert_eq!(idx.merges(), 0);
        assert_eq!(idx.pending(), 1);

        // Interleave unique inserts with base and buffer duplicates; the
        // merge count must be exactly what the unique inserts alone give:
        // 16 unique total (incl. the 5 above) at threshold 8 -> 2 merges.
        for k in 0..15u64 {
            idx.insert(k * 2 + 11);
            idx.insert(1000); // base duplicate
            idx.insert(5); // previously inserted key
        }
        assert_eq!(idx.merges(), 2, "pending={}", idx.pending());
        assert_eq!(idx.pending(), 0);
        assert_eq!(idx.len(), 3 + 16);
    }

    /// The duplicate probe checks the buffer before the base. That
    /// order is only sound if base ∩ buffer == ∅ at all times — a key
    /// living on both sides would be reported "duplicate" correctly but
    /// would double-count in `len`/`rank`. This test drives keys through
    /// every membership transition (fresh → buffered → merged-to-base →
    /// re-inserted) and checks the bookkeeping that any overlap would
    /// break; `merge` additionally debug_asserts strict sortedness of
    /// the merged array, which an overlap would violate.
    #[test]
    fn base_and_buffer_stay_disjoint_across_merge_cycles() {
        let threshold = 4usize;
        let mut idx = DeltaIndex::new(vec![100u64, 200, 300], cfg(), threshold);
        let mut oracle: std::collections::BTreeSet<u64> = [100u64, 200, 300].into();

        for round in 0..6u64 {
            // Fresh keys — land in the buffer.
            for k in 0..3u64 {
                let key = round * 10 + k;
                assert_eq!(
                    idx.insert(key),
                    oracle.insert(key),
                    "round {round} key {key}"
                );
            }
            // Re-insert keys that earlier rounds already pushed through
            // a merge (now in the base): the base probe must catch them
            // even though the buffer probe no longer can.
            for k in 0..3u64 {
                let key = round.saturating_sub(1) * 10 + k;
                assert!(
                    !idx.insert(key),
                    "round {round}: merged key {key} re-entered"
                );
            }
            idx.merge();
            assert_eq!(idx.pending(), 0);
            // Any base/buffer overlap double-counts here.
            assert_eq!(idx.len(), oracle.len(), "round {round}");
            assert_eq!(idx.rank(u64::MAX), oracle.len(), "round {round}");
        }
        // Re-run the whole history once more: every key is now in the
        // base, nothing may enter the buffer.
        for round in 0..6u64 {
            for k in 0..3u64 {
                assert!(!idx.insert(round * 10 + k));
            }
        }
        assert_eq!(idx.pending(), 0);
        assert_eq!(idx.len(), oracle.len());
    }

    #[test]
    fn insert_batch_matches_scalar_inserts() {
        // Same stream applied batched and scalar must agree on flags,
        // contents, and rank bookkeeping — through multiple merges.
        let base: Vec<u64> = (0..200u64).map(|i| i * 5).collect();
        let mut batched = DeltaIndex::new(base.clone(), cfg(), 16);
        let mut scalar = DeltaIndex::new(base, cfg(), 16);
        let stream: Vec<u64> = (0..300u64).map(|i| (i * 37) % 1100).collect();
        for chunk in stream.chunks(23) {
            let got = batched.insert_batch(chunk);
            let want: Vec<bool> = chunk.iter().map(|&k| scalar.insert(k)).collect();
            assert_eq!(got, want);
        }
        assert_eq!(batched.len(), scalar.len());
        assert_eq!(
            batched.range_keys(0, u64::MAX),
            scalar.range_keys(0, u64::MAX)
        );
        for q in (0..1200u64).step_by(7) {
            assert_eq!(batched.rank(q), scalar.rank(q), "q={q}");
        }
    }

    #[test]
    fn insert_batch_intra_batch_duplicates_first_occurrence_wins() {
        let mut idx = DeltaIndex::new(vec![50u64], cfg(), 100);
        let flags = idx.insert_batch(&[7, 7, 50, 9, 7, 9]);
        assert_eq!(flags, vec![true, false, false, true, false, false]);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.pending(), 2);
    }

    #[test]
    fn insert_batch_triggers_at_most_one_merge() {
        let mut idx = DeltaIndex::new(vec![1_000u64], cfg(), 8);
        // 20 fresh keys at threshold 8: scalar would merge twice,
        // batched merges exactly once at the end — same final keyset.
        let keys: Vec<u64> = (0..20u64).collect();
        let flags = idx.insert_batch(&keys);
        assert!(flags.iter().all(|&f| f));
        assert_eq!(idx.merges(), 1);
        assert_eq!(idx.pending(), 0);
        assert_eq!(idx.len(), 21);
    }

    #[test]
    fn insert_batch_empty_and_all_duplicates() {
        let mut idx = DeltaIndex::new(vec![1u64, 2, 3], cfg(), 4);
        assert_eq!(idx.insert_batch(&[]), Vec::<bool>::new());
        let flags = idx.insert_batch(&[1, 2, 3, 1]);
        assert_eq!(flags, vec![false; 4]);
        assert_eq!(idx.pending(), 0, "duplicates must not occupy buffer slots");
        assert_eq!(idx.merges(), 0);
    }

    #[test]
    fn rank_counts_across_base_and_delta() {
        let mut idx = DeltaIndex::new(vec![10, 20, 30], cfg(), 100);
        idx.insert(15);
        idx.insert(5);
        // keys < 21: 5, 10, 15, 20.
        assert_eq!(idx.rank(21), 4);
        assert_eq!(idx.rank(0), 0);
        assert_eq!(idx.rank(100), 5);
    }

    #[test]
    fn range_scan_merges_both_sides_sorted() {
        let mut idx = DeltaIndex::new(vec![10, 20, 30, 40], cfg(), 100);
        idx.insert(25);
        idx.insert(35);
        assert_eq!(idx.range_keys(15, 36), vec![20, 25, 30, 35]);
        assert_eq!(idx.range_keys(0, 100), vec![10, 20, 25, 30, 35, 40]);
        assert_eq!(idx.range_keys(36, 36), Vec::<u64>::new());
    }

    #[test]
    fn append_workload_stays_consistent() {
        // The D.1 "appends with increasing timestamps" scenario.
        let data: Vec<u64> = (0..1000u64).collect();
        let mut idx = DeltaIndex::new(data, cfg(), 64);
        for k in 1000..1500u64 {
            idx.insert(k);
        }
        assert_eq!(idx.len(), 1500);
        for k in (0..1500u64).step_by(37) {
            assert!(idx.contains(k));
            assert_eq!(idx.rank(k), k as usize);
        }
    }

    #[test]
    fn forced_merge_is_idempotent() {
        let mut idx = DeltaIndex::new(vec![1, 2, 3], cfg(), 100);
        idx.merge();
        assert_eq!(idx.merges(), 0); // empty buffer: no-op
        idx.insert(10);
        idx.merge();
        assert_eq!(idx.merges(), 1);
        assert_eq!(idx.pending(), 0);
        assert!(idx.contains(10));
    }

    #[test]
    fn snapshot_is_zero_copy_and_unaffected_by_later_writes() {
        let data: Vec<u64> = (0..100u64).map(|i| i * 4).collect();
        let mut idx = DeltaIndex::new(data, cfg(), 8);
        idx.insert(1);
        idx.insert(9);

        let snap = idx.snapshot();
        // Zero-copy: snapshot base shares the live index's allocation.
        assert!(snap.base_store().ptr_eq(idx.base.key_store()));
        assert_eq!(snap.len(), 102);
        assert_eq!(snap.pending(), 2);
        assert!(snap.contains(1) && snap.contains(9) && snap.contains(0));
        assert_eq!(snap.rank(10), 5); // 0, 1, 4, 8, 9

        // Drive the live index through a merge+retrain: the base Arc is
        // swapped, the snapshot keeps the old one intact.
        for k in 0..10u64 {
            idx.insert(k * 4 + 2);
        }
        assert!(idx.merges() >= 1);
        assert!(!snap.base_store().ptr_eq(idx.base.key_store()));
        assert_eq!(snap.len(), 102, "snapshot must not see later inserts");
        assert!(!snap.contains(2));
        assert_eq!(snap.range_keys(0, 10), vec![0, 1, 4, 8, 9]);
    }

    #[test]
    fn snapshot_agrees_with_live_index_at_capture_time() {
        let mut idx = DeltaIndex::new(vec![10, 20, 30], cfg(), 100);
        idx.insert(15);
        let snap = idx.snapshot();
        for q in [0u64, 5, 10, 15, 16, 25, 35, u64::MAX] {
            assert_eq!(snap.rank(q), idx.rank(q), "q={q}");
            assert_eq!(snap.contains(q), idx.contains(q), "q={q}");
        }
        assert_eq!(snap.range_keys(0, u64::MAX), idx.range_keys(0, u64::MAX));
    }
}
