//! Delta-buffered inserts for learned indexes (Appendix D.1).
//!
//! "There always exists a much simpler alternative to handling inserts
//! by building a delta-index [60]. All inserts are kept in buffer and
//! from time to time merged with a potential retraining of the model.
//! This approach is already widely used, for example in Bigtable."
//!
//! [`DeltaIndex`] wraps an [`Rmi`] with a sorted insert buffer. Lookups
//! consult both sides; when the buffer reaches `merge_threshold` the
//! base data and buffer are merged and the RMI retrained. Appends that
//! follow the learned pattern (the paper's D.1 observation about
//! timestamp appends being O(1)) stay cheap because merging is linear
//! and retraining a linear-top RMI is a single pass.

use crate::rmi::{Rmi, RmiConfig};
use li_index::{KeyStore, RangeIndex};

/// An updatable learned index: RMI base + sorted delta buffer.
///
/// The base keys live in the RMI's shared [`KeyStore`]; only the (small,
/// bounded) insert buffer is owned, mutable storage.
#[derive(Debug)]
pub struct DeltaIndex {
    base: Rmi,
    config: RmiConfig,
    delta: Vec<u64>,
    merge_threshold: usize,
    merges: usize,
}

impl DeltaIndex {
    /// Build over initial `data` (sorted, unique); buffer up to
    /// `merge_threshold` inserts between retrains.
    pub fn new(data: impl Into<KeyStore>, config: RmiConfig, merge_threshold: usize) -> Self {
        assert!(merge_threshold > 0);
        Self {
            base: Rmi::build(data, &config),
            config,
            delta: Vec::new(),
            merge_threshold,
            merges: 0,
        }
    }

    /// Insert a key. Duplicates (of base or buffered keys) are ignored,
    /// keeping the unique-sorted-key invariant. Triggers a merge +
    /// retrain when the buffer is full.
    pub fn insert(&mut self, key: u64) {
        if self.contains(key) {
            return;
        }
        let pos = self.delta.partition_point(|&k| k < key);
        self.delta.insert(pos, key);
        if self.delta.len() >= self.merge_threshold {
            self.merge();
        }
    }

    /// Whether `key` exists (base or buffer).
    pub fn contains(&self, key: u64) -> bool {
        self.base.lookup(key).is_some() || self.delta.binary_search(&key).is_ok()
    }

    /// Number of keys `< key` across base and buffer — the global
    /// lower-bound rank in the merged view.
    pub fn rank(&self, key: u64) -> usize {
        self.base.lower_bound(key) + self.delta.partition_point(|&k| k < key)
    }

    /// Total keys (base + buffer).
    pub fn len(&self) -> usize {
        self.base.data().len() + self.delta.len()
    }

    /// Whether the index holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keys currently waiting in the delta buffer.
    pub fn pending(&self) -> usize {
        self.delta.len()
    }

    /// How many merge+retrain cycles have run.
    pub fn merges(&self) -> usize {
        self.merges
    }

    /// Force a merge + retrain now.
    pub fn merge(&mut self) {
        if self.delta.is_empty() {
            return;
        }
        let base_data = self.base.data();
        let mut merged = Vec::with_capacity(base_data.len() + self.delta.len());
        // Two-pointer linear merge of two sorted unique sequences.
        let (mut i, mut j) = (0usize, 0usize);
        while i < base_data.len() && j < self.delta.len() {
            if base_data[i] <= self.delta[j] {
                merged.push(base_data[i]);
                i += 1;
            } else {
                merged.push(self.delta[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&base_data[i..]);
        merged.extend_from_slice(&self.delta[j..]);
        self.delta.clear();
        self.base = Rmi::build(merged, &self.config);
        self.merges += 1;
    }

    /// Range scan over the merged view: all keys in `[lo, hi)`, sorted.
    pub fn range_keys(&self, lo: u64, hi: u64) -> Vec<u64> {
        let base = self.base.range(lo, hi);
        let d_lo = self.delta.partition_point(|&k| k < lo);
        let d_hi = self.delta.partition_point(|&k| k < hi);
        let mut out = Vec::with_capacity(base.len() + d_hi - d_lo);
        let base_keys = &self.base.data()[base];
        let delta_keys = &self.delta[d_lo..d_hi];
        let (mut i, mut j) = (0usize, 0usize);
        while i < base_keys.len() && j < delta_keys.len() {
            if base_keys[i] <= delta_keys[j] {
                out.push(base_keys[i]);
                i += 1;
            } else {
                out.push(delta_keys[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&base_keys[i..]);
        out.extend_from_slice(&delta_keys[j..]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmi::TopModel;

    fn cfg() -> RmiConfig {
        RmiConfig::two_stage(TopModel::Linear, 64)
    }

    #[test]
    fn insert_then_lookup() {
        let data: Vec<u64> = (0..1000u64).map(|i| i * 10).collect();
        let mut idx = DeltaIndex::new(data, cfg(), 100);
        assert!(idx.contains(10));
        assert!(!idx.contains(11));
        idx.insert(11);
        assert!(idx.contains(11));
        assert_eq!(idx.pending(), 1);
        assert_eq!(idx.len(), 1001);
    }

    #[test]
    fn merge_triggers_at_threshold_and_preserves_keys() {
        let data: Vec<u64> = (0..500u64).map(|i| i * 3).collect();
        let mut idx = DeltaIndex::new(data, cfg(), 10);
        for k in 0..25u64 {
            idx.insert(k * 3 + 1);
        }
        assert!(idx.merges() >= 2, "merges {}", idx.merges());
        assert!(idx.pending() < 10);
        for k in 0..25u64 {
            assert!(idx.contains(k * 3 + 1), "lost {}", k * 3 + 1);
        }
        for k in 0..500u64 {
            assert!(idx.contains(k * 3));
        }
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut idx = DeltaIndex::new(vec![1, 5, 9], cfg(), 100);
        idx.insert(5);
        idx.insert(7);
        idx.insert(7);
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn rank_counts_across_base_and_delta() {
        let mut idx = DeltaIndex::new(vec![10, 20, 30], cfg(), 100);
        idx.insert(15);
        idx.insert(5);
        // keys < 21: 5, 10, 15, 20.
        assert_eq!(idx.rank(21), 4);
        assert_eq!(idx.rank(0), 0);
        assert_eq!(idx.rank(100), 5);
    }

    #[test]
    fn range_scan_merges_both_sides_sorted() {
        let mut idx = DeltaIndex::new(vec![10, 20, 30, 40], cfg(), 100);
        idx.insert(25);
        idx.insert(35);
        assert_eq!(idx.range_keys(15, 36), vec![20, 25, 30, 35]);
        assert_eq!(idx.range_keys(0, 100), vec![10, 20, 25, 30, 35, 40]);
        assert_eq!(idx.range_keys(36, 36), Vec::<u64>::new());
    }

    #[test]
    fn append_workload_stays_consistent() {
        // The D.1 "appends with increasing timestamps" scenario.
        let data: Vec<u64> = (0..1000u64).collect();
        let mut idx = DeltaIndex::new(data, cfg(), 64);
        for k in 1000..1500u64 {
            idx.insert(k);
        }
        assert_eq!(idx.len(), 1500);
        for k in (0..1500u64).step_by(37) {
            assert!(idx.contains(k));
            assert_eq!(idx.rank(k), k as usize);
        }
    }

    #[test]
    fn forced_merge_is_idempotent() {
        let mut idx = DeltaIndex::new(vec![1, 2, 3], cfg(), 100);
        idx.merge();
        assert_eq!(idx.merges(), 0); // empty buffer: no-op
        idx.insert(10);
        idx.merge();
        assert_eq!(idx.merges(), 1);
        assert_eq!(idx.pending(), 0);
        assert!(idx.contains(10));
    }
}
