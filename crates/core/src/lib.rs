//! # li-core — the Recursive Model Index and the Learning Index Framework
//!
//! This crate is the paper's primary contribution, implemented in full:
//!
//! * [`Rmi`] — the Recursive Model Index of §3.2: a hierarchy of models
//!   where "at each stage the model takes the key as an input and based
//!   on it picks another model, until the final stage predicts the
//!   position", trained stage-wise exactly as Algorithm 1, with per-leaf
//!   min-/max-/std-error bookkeeping.
//! * [`RmiConfig`]/[`TopModel`] — the §3.3 model zoo for stage 0 (linear,
//!   multivariate with feature engineering, 0–2-hidden-layer ReLU nets)
//!   over linear inner/leaf stages.
//! * **Hybrid indexes** (§3.3, Algorithm 1 lines 11–14): leaves whose
//!   absolute error exceeds a threshold are replaced by B-Tree leaves, so
//!   "in the case of an extremely difficult to learn data distribution"
//!   the index degrades gracefully into "virtually an entire B-Tree".
//! * [`search`] — the §3.4 search strategies: model-biased binary search,
//!   biased quaternary search, exponential search, plus the automatic
//!   search-area widening that makes lookups exact even for
//!   non-monotonic models.
//! * [`StringRmi`] (§3.5) — fixed-N tokenization of strings into ℝᴺ and
//!   an RMI over vector-input models.
//! * [`Lif`] (§3.1) — the Learning Index Framework: grid-search index
//!   synthesis over configurations, choosing by measured lookup cost.
//! * [`DeltaIndex`] (Appendix D.1) — delta-buffered inserts with
//!   merge-and-retrain, plus an LSM-style tiered mode where full buffers
//!   seal into immutable [`SortedRun`]s (per-run linear mini-models) and
//!   background compaction folds them into the base with one retrain.
//! * [`learned_sort`] (§7 "Beyond Indexing") — CDF-model distribution
//!   sort with insertion-sort fixup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delta;
pub mod lif;
pub mod multidim;
pub mod paging;
pub mod rmi;
pub mod run;
pub mod search;
pub mod sort;
pub mod string_rmi;

pub use delta::{DeltaIndex, DeltaSnapshot};
pub use lif::{Lif, LifCandidate, LifReport, LifSpec};
// The shared vocabulary comes straight from the foundation crate —
// li-core no longer reaches through its own baseline for it.
pub use li_index::{KeyStore, Prediction, RangeIndex};
pub use multidim::ZOrderRmi;
pub use paging::{PagedRmi, PagedStore};
pub use rmi::{
    train_count, Leaf, LeafKind, LeafModelParams, LeafParams, Rmi, RmiConfig, RmiParams, RmiStats,
    TopModel,
};
pub use run::SortedRun;
pub use search::SearchStrategy;
pub use sort::learned_sort;
pub use string_rmi::{tokenize, StringRmi, StringRmiConfig};
