//! Learned indexes over string keys (§3.5).
//!
//! Tokenization follows the paper exactly: *"we consider an n-length
//! string to be a feature vector x ∈ ℝⁿ where xᵢ is the ASCII decimal
//! value … we will set a maximum input length N. Because the data is
//! sorted lexicographically, we will truncate the keys to length N before
//! tokenization. For strings with length n < N, we set xᵢ = 0 for
//! i > n."*
//!
//! The index is a two-stage RMI whose models take the vector as input:
//! the top model is either a multivariate linear regression (`w·x + b`)
//! or a 1–2-hidden-layer [`VecMlp`]; the leaves are vector-linear models
//! (§3.7.2 uses "10,000 models on the 2nd stage"). Hybrid mode replaces
//! high-error leaves with plain binary search over their key range —
//! the B-Tree-page equivalent for strings (t = 128 / 64 in Figure 6).

use crate::search::SearchStrategy;
use li_index::KeyStore;
use li_models::vecmlp::VecMlp;
use li_models::{clamp_position, mlp::MlpConfig, MultivariateLinear};

/// Tokenize a string to a fixed-length `N` feature vector of ASCII/byte
/// values, zero-padded (§3.5).
pub fn tokenize(s: &str, n: usize) -> Vec<f64> {
    let bytes = s.as_bytes();
    (0..n)
        .map(|i| bytes.get(i).map_or(0.0, |&b| b as f64))
        .collect()
}

/// Stage-0 model for string keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StringTopModel {
    /// Multivariate linear regression over the token vector.
    Linear,
    /// ReLU net with `hidden` layers of `width` neurons over the vector.
    Mlp {
        /// Hidden layer count (1 or 2).
        hidden: usize,
        /// Neurons per hidden layer.
        width: usize,
    },
}

/// Configuration for [`StringRmi`].
#[derive(Debug, Clone)]
pub struct StringRmiConfig {
    /// Maximum tokenized length `N`.
    pub max_len: usize,
    /// Stage-0 model.
    pub top: StringTopModel,
    /// Leaf-model count (paper: 10k).
    pub leaves: usize,
    /// Last-mile search strategy.
    pub search: SearchStrategy,
    /// Hybrid threshold: leaves with worse max-abs-error fall back to
    /// binary search over their range (`None` disables).
    pub hybrid_threshold: Option<u32>,
}

impl Default for StringRmiConfig {
    fn default() -> Self {
        Self {
            max_len: 16,
            top: StringTopModel::Linear,
            leaves: 1024,
            search: SearchStrategy::ModelBiasedBinary,
            hybrid_threshold: None,
        }
    }
}

#[derive(Debug, Clone)]
enum StringTop {
    Linear(MultivariateLinear),
    Mlp(Box<VecMlp>),
}

impl StringTop {
    fn predict(&self, v: &[f64]) -> f64 {
        match self {
            StringTop::Linear(m) => m.predict_vector(v),
            StringTop::Mlp(m) => m.predict_vector(v),
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            StringTop::Linear(m) => li_models::Model::size_bytes(m) / 2,
            StringTop::Mlp(m) => m.size_bytes() / 2,
        }
    }
}

#[derive(Debug, Clone)]
enum StringLeaf {
    /// Vector-linear model + error envelope.
    Linear {
        model: MultivariateLinear,
        min_err: i64,
        max_err: i64,
        std_err: f64,
    },
    /// Hybrid fallback: binary search over `[lo, hi)` (a B-Tree page).
    Search { lo: usize, hi: usize },
}

/// A learned range index over lexicographically sorted strings.
#[derive(Debug, Clone)]
pub struct StringRmi {
    data: KeyStore<String>,
    vectors: Vec<Vec<f64>>,
    top: StringTop,
    leaves: Vec<StringLeaf>,
    max_len: usize,
    search: SearchStrategy,
    hybrid_count: usize,
}

impl StringRmi {
    /// Train over `data` (sorted lexicographically, unique; shared via a
    /// generic [`KeyStore`]).
    pub fn build(data: impl Into<KeyStore<String>>, config: &StringRmiConfig) -> Self {
        let data: KeyStore<String> = data.into();
        debug_assert!(
            data.windows(2).all(|w| w[0] < w[1]),
            "data must be sorted unique"
        );
        let n = data.len();
        let vectors: Vec<Vec<f64>> = data.iter().map(|s| tokenize(s, config.max_len)).collect();
        let ys: Vec<f64> = (0..n).map(|i| i as f64).collect();

        let top = match config.top {
            StringTopModel::Linear => {
                StringTop::Linear(MultivariateLinear::fit_vectors(&vectors, &ys))
            }
            StringTopModel::Mlp { hidden, width } => {
                let cfg = MlpConfig::new(hidden, width);
                StringTop::Mlp(Box::new(VecMlp::fit(&cfg, &vectors, &ys)))
            }
        };

        // Route into leaf buckets (Algorithm 1).
        let m = config.leaves.max(1);
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (i, v) in vectors.iter().enumerate() {
            let pred = top.predict(v);
            buckets[route(pred, m, n)].push(i);
        }

        let mut leaves = Vec::with_capacity(m);
        let mut hybrid_count = 0usize;
        let mut boundary = 0usize;
        for bucket in &buckets {
            if bucket.is_empty() {
                leaves.push(StringLeaf::Linear {
                    model: MultivariateLinear::fit_vectors(&[], &[]),
                    min_err: boundary as i64,
                    max_err: boundary as i64,
                    std_err: 0.0,
                });
                continue;
            }
            let vecs: Vec<Vec<f64>> = bucket.iter().map(|&i| vectors[i].clone()).collect();
            let ys: Vec<f64> = bucket.iter().map(|&i| i as f64).collect();
            let model = MultivariateLinear::fit_vectors(&vecs, &ys);
            let mut min_err = i64::MAX;
            let mut max_err = i64::MIN;
            let mut sum_sq = 0.0;
            for (v, &y) in vecs.iter().zip(&ys) {
                let p = clamp_position(model.predict_vector(v), n) as i64;
                let e = y as i64 - p;
                min_err = min_err.min(e);
                max_err = max_err.max(e);
                sum_sq += (e as f64) * (e as f64);
            }
            let abs = min_err.unsigned_abs().max(max_err.unsigned_abs());
            let leaf = match config.hybrid_threshold {
                Some(t) if abs > t as u64 => {
                    hybrid_count += 1;
                    let lo = *bucket.first().expect("non-empty");
                    let hi = *bucket.last().expect("non-empty") + 1;
                    StringLeaf::Search { lo, hi }
                }
                _ => StringLeaf::Linear {
                    model,
                    min_err,
                    max_err,
                    std_err: (sum_sq / bucket.len() as f64).sqrt(),
                },
            };
            boundary = bucket.last().expect("non-empty") + 1;
            leaves.push(leaf);
        }

        Self {
            data,
            vectors,
            top,
            leaves,
            max_len: config.max_len,
            search: config.search,
            hybrid_count,
        }
    }

    /// The sorted string keys.
    pub fn data(&self) -> &[String] {
        &self.data
    }

    /// The shared key store the index was built over.
    pub fn key_store(&self) -> &KeyStore<String> {
        &self.data
    }

    /// Number of leaves replaced by binary-search pages (hybrid mode).
    pub fn hybrid_leaves(&self) -> usize {
        self.hybrid_count
    }

    /// Index size in bytes (deployment accounting; excludes the strings).
    pub fn size_bytes(&self) -> usize {
        // Vector-linear leaf: max_len f32 weights + bias + err envelope.
        let leaf_bytes = self.max_len * 4 + 4 + 8;
        self.top.size_bytes() + self.leaves.len() * leaf_bytes
    }

    /// Position estimate plus error window for a query (the "model
    /// execution" phase, timed separately in Figure 6).
    pub fn predict(&self, key: &str) -> (usize, usize, usize) {
        let (pos, lo, hi, _) = self.predict_full(key);
        (pos, lo, hi)
    }

    /// Prediction plus the leaf's error σ (drives quaternary search).
    fn predict_full(&self, key: &str) -> (usize, usize, usize, usize) {
        let n = self.data.len();
        if n == 0 {
            return (0, 0, 0, 1);
        }
        let v = tokenize(key, self.max_len);
        let pred = self.top.predict(&v);
        let leaf = &self.leaves[route(pred, self.leaves.len(), n)];
        match leaf {
            StringLeaf::Linear {
                model,
                min_err,
                max_err,
                std_err,
            } => {
                let pos = clamp_position(model.predict_vector(&v), n);
                let lo = pos.saturating_add_signed(*min_err as isize).min(n);
                let hi = (pos.saturating_add_signed(*max_err as isize) + 1).min(n);
                (pos, lo, hi, (std_err.ceil() as usize).max(1))
            }
            StringLeaf::Search { lo, hi } => (*lo, *lo, *hi, 1),
        }
    }

    /// Position of the first key `>= key`.
    pub fn lower_bound(&self, key: &str) -> usize {
        let n = self.data.len();
        if n == 0 {
            return 0;
        }
        let (pos, lo, hi, sigma) = self.predict_full(key);
        // Same boundary-certified widening as the integer RMI, but with
        // string comparisons.
        let mut lo = lo.min(n);
        let mut hi = hi.min(n);
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        // §3.4 biased probes: narrow the window around the prediction
        // before the exact search.
        match self.search {
            SearchStrategy::BiasedQuaternary => {
                // Three probes at pos−σ, pos, pos+σ (conceptually
                // prefetched together).
                if lo < hi {
                    let p1 = pos.saturating_sub(sigma).clamp(lo, hi - 1);
                    let p2 = pos.clamp(lo, hi - 1);
                    let p3 = (pos + sigma).clamp(lo, hi - 1);
                    if self.data[p1].as_str() >= key {
                        hi = p1;
                    } else if self.data[p2].as_str() >= key {
                        lo = p1 + 1;
                        hi = p2;
                    } else if self.data[p3].as_str() >= key {
                        lo = p2 + 1;
                        hi = p3;
                    } else {
                        lo = p3 + 1;
                    }
                }
            }
            _ => {
                // Model-biased first probe: split at the prediction.
                if lo < hi {
                    let mid = pos.clamp(lo, hi - 1);
                    if self.data[mid].as_str() < key {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
            }
        }
        loop {
            let r = lo + self.data[lo..hi].partition_point(|s| s.as_str() < key);
            let left_ok = r > lo || lo == 0 || self.data[lo - 1].as_str() < key;
            let right_ok = r < hi || hi == n || self.data[hi].as_str() >= key;
            if left_ok && right_ok {
                return r;
            }
            let width = (hi - lo).max(8);
            lo = if left_ok {
                lo
            } else {
                lo.saturating_sub(width)
            };
            hi = if right_ok { hi } else { (hi + width).min(n) };
        }
    }

    /// Position of `key` if present.
    pub fn lookup(&self, key: &str) -> Option<usize> {
        let r = self.lower_bound(key);
        (r < self.data.len() && self.data[r] == key).then_some(r)
    }

    /// Mean absolute prediction error over stored keys (diagnostics).
    pub fn mean_abs_err(&self) -> f64 {
        let n = self.data.len();
        if n == 0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for (i, v) in self.vectors.iter().enumerate() {
            let pred = self.top.predict(v);
            let leaf = &self.leaves[route(pred, self.leaves.len(), n)];
            let p = match leaf {
                StringLeaf::Linear { model, .. } => clamp_position(model.predict_vector(v), n),
                StringLeaf::Search { lo, .. } => *lo,
            };
            sum += (p as f64 - i as f64).abs();
        }
        sum / n as f64
    }
}

#[inline]
fn route(pred: f64, m: usize, n: usize) -> usize {
    if n == 0 || m == 0 {
        return 0;
    }
    clamp_position(pred * (m as f64) / (n as f64), m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> Vec<String> {
        let mut v: Vec<String> = (0..n).map(|i| format!("doc-{:08}", i * 7)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    fn oracle(data: &[String], key: &str) -> usize {
        data.partition_point(|s| s.as_str() < key)
    }

    #[test]
    fn tokenize_pads_and_truncates() {
        assert_eq!(tokenize("ab", 4), vec![97.0, 98.0, 0.0, 0.0]);
        assert_eq!(tokenize("abcdef", 3), vec![97.0, 98.0, 99.0]);
        assert_eq!(tokenize("", 2), vec![0.0, 0.0]);
    }

    #[test]
    fn exact_on_structured_doc_ids() {
        let data = dataset(3000);
        let rmi = StringRmi::build(data.clone(), &StringRmiConfig::default());
        for s in data.iter().step_by(7) {
            assert_eq!(rmi.lookup(s), Some(oracle(&data, s)));
        }
        // Missing keys.
        for i in 0..200usize {
            let q = format!("doc-{:08}", i * 7 + 3);
            assert_eq!(rmi.lower_bound(&q), oracle(&data, &q), "q={q}");
        }
        // Out-of-range probes.
        assert_eq!(rmi.lower_bound(""), 0);
        assert_eq!(rmi.lower_bound("zzzz"), data.len());
    }

    #[test]
    fn exact_with_mlp_top() {
        let data = dataset(1200);
        let cfg = StringRmiConfig {
            top: StringTopModel::Mlp {
                hidden: 1,
                width: 8,
            },
            leaves: 64,
            ..Default::default()
        };
        let rmi = StringRmi::build(data.clone(), &cfg);
        for s in data.iter().step_by(11) {
            assert_eq!(rmi.lookup(s), Some(oracle(&data, s)));
        }
    }

    #[test]
    fn hybrid_mode_kicks_in_and_stays_exact() {
        // Random-ish strings give the linear leaves large errors at a
        // tiny leaf count.
        let mut data: Vec<String> = (0..2000u64)
            .map(|i| format!("{:016x}", i.wrapping_mul(0x9E3779B97F4A7C15)))
            .collect();
        data.sort_unstable();
        data.dedup();
        let cfg = StringRmiConfig {
            leaves: 8,
            hybrid_threshold: Some(4),
            ..Default::default()
        };
        let rmi = StringRmi::build(data.clone(), &cfg);
        assert!(rmi.hybrid_leaves() > 0);
        for s in data.iter().step_by(13) {
            assert_eq!(rmi.lookup(s), Some(oracle(&data, s)));
        }
    }

    #[test]
    fn quaternary_search_matches_binary_for_strings() {
        let data = li_data::strings::doc_ids(3000, 5);
        let mk = |search| {
            StringRmi::build(
                data.clone(),
                &StringRmiConfig {
                    leaves: 128,
                    search,
                    ..Default::default()
                },
            )
        };
        let qs = mk(SearchStrategy::BiasedQuaternary);
        let bs = mk(SearchStrategy::ModelBiasedBinary);
        for s in data.iter().step_by(7) {
            assert_eq!(qs.lower_bound(s), bs.lower_bound(s));
        }
        let mut gen = li_data::strings::UrlGenerator::new(2);
        for _ in 0..100 {
            let q = gen.benign_url();
            assert_eq!(qs.lower_bound(&q), bs.lower_bound(&q), "q={q}");
        }
    }

    #[test]
    fn empty_and_tiny() {
        let rmi = StringRmi::build(vec![], &StringRmiConfig::default());
        assert_eq!(rmi.lower_bound("x"), 0);
        let rmi = StringRmi::build(vec!["m".into()], &StringRmiConfig::default());
        assert_eq!(rmi.lower_bound("a"), 0);
        assert_eq!(rmi.lower_bound("m"), 0);
        assert_eq!(rmi.lower_bound("z"), 1);
    }

    #[test]
    fn size_scales_with_leaves() {
        let data = dataset(2000);
        let small = StringRmi::build(
            data.clone(),
            &StringRmiConfig {
                leaves: 64,
                ..Default::default()
            },
        );
        let large = StringRmi::build(
            data,
            &StringRmiConfig {
                leaves: 1024,
                ..Default::default()
            },
        );
        assert!(large.size_bytes() > small.size_bytes());
    }

    #[test]
    fn more_leaves_reduce_error() {
        // Skewed shard prefixes + base-32 payloads: tokenization is not
        // globally linear, so leaf refinement must cut error (unlike the
        // perfectly-linear zero-padded decimal IDs used elsewhere).
        let data = li_data::strings::doc_ids(5000, 1);
        let coarse = StringRmi::build(
            data.clone(),
            &StringRmiConfig {
                leaves: 4,
                ..Default::default()
            },
        );
        let fine = StringRmi::build(
            data,
            &StringRmiConfig {
                leaves: 512,
                ..Default::default()
            },
        );
        assert!(
            fine.mean_abs_err() < coarse.mean_abs_err() * 0.5,
            "fine {} coarse {}",
            fine.mean_abs_err(),
            coarse.mean_abs_err()
        );
    }

    #[test]
    fn exact_on_real_doc_id_generator() {
        let data = li_data::strings::doc_ids(3000, 2);
        let cfg = StringRmiConfig {
            leaves: 256,
            ..Default::default()
        };
        let rmi = StringRmi::build(data.clone(), &cfg);
        for s in data.iter().step_by(17) {
            assert_eq!(rmi.lookup(s), Some(oracle(&data, s)));
        }
        // Probes that are not stored keys.
        let mut gen = li_data::strings::UrlGenerator::new(1);
        for _ in 0..100 {
            let q = gen.benign_url();
            assert_eq!(rmi.lower_bound(&q), oracle(&data, &q), "q={q}");
        }
    }
}
