//! Multi-dimensional learned indexes (§7 "Future Work").
//!
//! "Arguably the most exciting research direction for the idea of
//! learned indexes is to extend them to multi-dimensional indexes …
//! Ideally, this model would be able to estimate the position of all
//! records filtered by any combination of attributes."
//!
//! This module implements the natural first step the follow-up
//! literature took: linearize 2-D points onto a **Z-order (Morton)
//! curve** and learn the CDF of the Morton codes with an RMI. Point
//! lookups are exact; rectangle range queries decompose the query box
//! into Morton intervals (BIGMIN-style splitting) and run one learned
//! range scan per interval, filtering the residual false positives.

use crate::rmi::{Rmi, RmiConfig};
use li_index::RangeIndex;

/// Interleave the bits of `x` and `y` (32 bits each) into a Morton code.
#[inline]
pub fn morton_encode(x: u32, y: u32) -> u64 {
    spread(x) | (spread(y) << 1)
}

/// Recover `(x, y)` from a Morton code.
#[inline]
pub fn morton_decode(z: u64) -> (u32, u32) {
    (compact(z), compact(z >> 1))
}

#[inline]
fn spread(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

#[inline]
fn compact(z: u64) -> u32 {
    let mut x = z & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// A learned 2-D point index over the Z-order curve.
#[derive(Debug)]
pub struct ZOrderRmi {
    rmi: Rmi,
    /// Points in Morton order (parallel to the RMI's key array).
    points: Vec<(u32, u32)>,
}

impl ZOrderRmi {
    /// Build from unique 2-D points.
    pub fn build(mut points: Vec<(u32, u32)>, config: &RmiConfig) -> Self {
        points.sort_unstable_by_key(|&(x, y)| morton_encode(x, y));
        points.dedup();
        let codes: Vec<u64> = points.iter().map(|&(x, y)| morton_encode(x, y)).collect();
        let rmi = Rmi::build(codes, config);
        Self { rmi, points }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Exact point lookup.
    pub fn contains(&self, x: u32, y: u32) -> bool {
        self.rmi.lookup(morton_encode(x, y)).is_some()
    }

    /// All points inside the rectangle `[x0, x1] × [y0, y1]`, in Morton
    /// order. Decomposes the box into up to `max_splits` Morton
    /// intervals; each interval becomes one learned range scan whose
    /// hits are filtered against the box (false positives arise where
    /// the curve leaves the box inside an interval).
    pub fn range_query(&self, x0: u32, y0: u32, x1: u32, y1: u32) -> Vec<(u32, u32)> {
        assert!(x0 <= x1 && y0 <= y1, "degenerate rectangle");
        let mut out = Vec::new();
        let mut stack = vec![(morton_encode(x0, y0), morton_encode(x1, y1))];
        let mut splits = 0usize;
        const MAX_SPLITS: usize = 64;

        while let Some((z_lo, z_hi)) = stack.pop() {
            // How many points fall in this Morton interval?
            let lo_pos = self.rmi.lower_bound(z_lo);
            let hi_pos = self.rmi.upper_bound(z_hi);
            if lo_pos >= hi_pos {
                continue;
            }
            // Small interval or split budget exhausted: scan + filter.
            if hi_pos - lo_pos <= 64 || splits >= MAX_SPLITS {
                for &(px, py) in &self.points[lo_pos..hi_pos] {
                    if (x0..=x1).contains(&px) && (y0..=y1).contains(&py) {
                        out.push((px, py));
                    }
                }
                continue;
            }
            // Otherwise split the interval at the midpoint of the Morton
            // range, clamping each half back into the query box
            // (LITMAX/BIGMIN approximation: recompute tight corner codes
            // for the two sub-boxes induced by the dominant split bit).
            splits += 1;
            let mid = z_lo + (z_hi - z_lo) / 2;
            let (mx, my) = morton_decode(mid);
            let cx = mx.clamp(x0, x1);
            let cy = my.clamp(y0, y1);
            // Two overlapping halves of the box, each with a tighter
            // Morton envelope.
            stack.push((morton_encode(x0, y0), morton_encode(cx, cy)));
            stack.push((morton_encode(cx, cy), morton_encode(x1, y1)));
        }

        out.sort_unstable_by_key(|&(x, y)| morton_encode(x, y));
        out.dedup();
        out
    }

    /// Index size in bytes (model only, excluding points).
    pub fn size_bytes(&self) -> usize {
        self.rmi.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmi::TopModel;

    fn grid_points(w: u32, h: u32) -> Vec<(u32, u32)> {
        (0..w)
            .flat_map(|x| (0..h).map(move |y| (x * 3, y * 5)))
            .collect()
    }

    #[test]
    fn morton_roundtrip() {
        for &(x, y) in &[
            (0u32, 0u32),
            (1, 0),
            (0, 1),
            (123_456, 654_321),
            (u32::MAX, 0),
            (u32::MAX, u32::MAX),
        ] {
            assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
        }
    }

    #[test]
    fn morton_preserves_locality_ordering() {
        // The defining property used by range decomposition: codes of a
        // box's corners bound the codes of all points inside it.
        let (x0, y0, x1, y1) = (10u32, 20u32, 50u32, 60u32);
        let lo = morton_encode(x0, y0);
        let hi = morton_encode(x1, y1);
        for x in (x0..=x1).step_by(7) {
            for y in (y0..=y1).step_by(9) {
                let z = morton_encode(x, y);
                assert!(z >= lo && z <= hi, "({x},{y})");
            }
        }
    }

    #[test]
    fn contains_finds_all_points() {
        let pts = grid_points(40, 40);
        let idx = ZOrderRmi::build(pts.clone(), &RmiConfig::two_stage(TopModel::Linear, 64));
        assert_eq!(idx.len(), pts.len());
        for &(x, y) in pts.iter().step_by(17) {
            assert!(idx.contains(x, y));
            assert!(!idx.contains(x + 1, y)); // off-grid
        }
    }

    #[test]
    fn range_query_matches_brute_force() {
        let pts = grid_points(50, 50);
        let idx = ZOrderRmi::build(pts.clone(), &RmiConfig::two_stage(TopModel::Linear, 128));
        for &(x0, y0, x1, y1) in &[
            (0u32, 0u32, 30u32, 30u32),
            (10, 10, 11, 200),
            (147, 245, 147, 245),
            (0, 0, 1000, 1000),
            (33, 0, 90, 12),
        ] {
            let mut expect: Vec<(u32, u32)> = pts
                .iter()
                .copied()
                .filter(|&(x, y)| (x0..=x1).contains(&x) && (y0..=y1).contains(&y))
                .collect();
            expect.sort_unstable_by_key(|&(x, y)| morton_encode(x, y));
            let got = idx.range_query(x0, y0, x1, y1);
            assert_eq!(got, expect, "box ({x0},{y0})-({x1},{y1})");
        }
    }

    #[test]
    fn range_query_on_clustered_points() {
        let mut rng = li_models::rng::SplitMix64::new(12);
        let pts: Vec<(u32, u32)> = (0..5000)
            .map(|_| {
                let cx = if rng.next_f64() < 0.5 {
                    1000.0
                } else {
                    50_000.0
                };
                (
                    (cx + rng.normal() * 300.0).abs() as u32,
                    (cx + rng.normal() * 300.0).abs() as u32,
                )
            })
            .collect();
        let idx = ZOrderRmi::build(pts.clone(), &RmiConfig::two_stage(TopModel::Linear, 256));
        let mut sorted_pts = pts;
        sorted_pts.sort_unstable_by_key(|&(x, y)| morton_encode(x, y));
        sorted_pts.dedup();
        let (x0, y0, x1, y1) = (800, 800, 1300, 1300);
        let mut expect: Vec<(u32, u32)> = sorted_pts
            .iter()
            .copied()
            .filter(|&(x, y)| (x0..=x1).contains(&x) && (y0..=y1).contains(&y))
            .collect();
        expect.sort_unstable_by_key(|&(x, y)| morton_encode(x, y));
        assert_eq!(idx.range_query(x0, y0, x1, y1), expect);
    }

    #[test]
    fn empty_and_single_point() {
        let idx = ZOrderRmi::build(vec![], &RmiConfig::default());
        assert!(idx.is_empty());
        assert!(!idx.contains(1, 1));
        assert_eq!(idx.range_query(0, 0, 10, 10), vec![]);

        let idx = ZOrderRmi::build(vec![(5, 5)], &RmiConfig::default());
        assert!(idx.contains(5, 5));
        assert_eq!(idx.range_query(0, 0, 10, 10), vec![(5, 5)]);
        assert_eq!(idx.range_query(6, 6, 10, 10), vec![]);
    }
}
