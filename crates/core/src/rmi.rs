//! The Recursive Model Index (§3.2) with hybrid training (Algorithm 1).
//!
//! An RMI is "a hierarchy of models, where at each stage the model takes
//! the key as an input and based on it picks another model, until the
//! final stage predicts the position". Stage 0 is one model (linear,
//! multivariate, or a small ReLU net); inner stages and leaves are simple
//! linear models — §3.7.1 found "for the second stage, simple, linear
//! models, had the best performance".
//!
//! Training is stage-wise, exactly Algorithm 1 of the paper:
//!
//! 1. train the stage-0 model on all `(key, position)` pairs;
//! 2. route every key through the *trained* prefix of stages —
//!    `model = ⌊M · f(x) / N⌋` — collecting per-model training subsets;
//! 3. train each next-stage model on its subset;
//! 4. at the last stage, record each model's min-, max- and standard
//!    error over its keys, and (hybrid mode) replace any model whose
//!    absolute error exceeds `threshold` with a B-Tree over its range.
//!
//! Lookups run the model cascade (no search between stages — "the output
//! of Model 1.1 is directly used to pick the model in the next stage"),
//! then do a §3.4 last-mile search inside `[pos + min_err, pos +
//! max_err]`, with automatic window widening so non-monotonic models are
//! still exact for every query.

use crate::search::{search_with_widening, SearchStrategy};
use li_btree::BTreeIndex;
use li_index::{KeyStore, Prediction, RangeIndex};
use li_models::{
    clamp_position, FeatureMap, LinearModel, Mlp, MlpConfig, Model, MultivariateLinear,
};

/// Stage-0 model family (§3.3's model zoo).
#[derive(Debug, Clone, PartialEq)]
pub enum TopModel {
    /// Simple linear regression (a 0-hidden-layer NN).
    Linear,
    /// Multivariate linear regression over engineered features
    /// (key, log key, key², √key) — the Figure-5 configuration.
    Multivariate(FeatureMap),
    /// Multivariate linear regression with automatic feature selection.
    MultivariateAuto,
    /// Fully-connected ReLU net with `hidden` hidden layers of `width`
    /// neurons (§3.3: 0–2 layers, width ≤ 32).
    Mlp {
        /// Hidden layer count (1 or 2; use `Linear` for 0).
        hidden: usize,
        /// Neurons per hidden layer.
        width: usize,
    },
}

impl TopModel {
    fn fit(&self, keys: &[f64]) -> TrainedTop {
        match *self {
            TopModel::Linear => TrainedTop::Linear(LinearModel::fit_keys(keys)),
            TopModel::Multivariate(fm) => {
                TrainedTop::Multivariate(Box::new(MultivariateLinear::fit_keys(fm, keys)))
            }
            TopModel::MultivariateAuto => {
                let ys: Vec<f64> = (0..keys.len()).map(|i| i as f64).collect();
                TrainedTop::Multivariate(Box::new(MultivariateLinear::fit_select(keys, &ys)))
            }
            TopModel::Mlp { hidden, width } => {
                let cfg = MlpConfig::new(hidden, width);
                TrainedTop::Mlp(Box::new(Mlp::fit_keys(&cfg, keys)))
            }
        }
    }

    /// Short display name, e.g. `"mlp(2x16)"`.
    pub fn name(&self) -> String {
        match self {
            TopModel::Linear => "linear".into(),
            TopModel::Multivariate(_) => "multivariate".into(),
            TopModel::MultivariateAuto => "multivariate-auto".into(),
            TopModel::Mlp { hidden, width } => format!("mlp({hidden}x{width})"),
        }
    }
}

/// A trained stage-0 model.
#[derive(Debug, Clone)]
enum TrainedTop {
    Linear(LinearModel),
    Multivariate(Box<MultivariateLinear>),
    Mlp(Box<Mlp>),
}

impl TrainedTop {
    #[inline]
    fn predict(&self, x: f64) -> f64 {
        match self {
            TrainedTop::Linear(m) => m.predict(x),
            TrainedTop::Multivariate(m) => m.predict(x),
            TrainedTop::Mlp(m) => m.predict(x),
        }
    }

    fn size_bytes(&self) -> usize {
        // Deployment accounting: f32 weights, as LIF code-generation
        // would emit (§3.1). Stored training form is f64.
        (match self {
            TrainedTop::Linear(m) => m.size_bytes(),
            TrainedTop::Multivariate(m) => m.size_bytes(),
            TrainedTop::Mlp(m) => m.size_bytes(),
        }) / 2
    }

    fn op_count(&self) -> usize {
        match self {
            TrainedTop::Linear(m) => m.op_count(),
            TrainedTop::Multivariate(m) => m.op_count(),
            TrainedTop::Mlp(m) => m.op_count(),
        }
    }
}

/// Configuration of an [`Rmi`].
#[derive(Debug, Clone)]
pub struct RmiConfig {
    /// Stage-0 model.
    pub top: TopModel,
    /// Models per stage after stage 0. The last entry is the leaf count
    /// (the paper's "second stage size": 10k–200k); earlier entries are
    /// optional intermediate linear stages.
    pub stages: Vec<usize>,
    /// Last-mile search strategy (§3.4).
    pub search: SearchStrategy,
    /// Hybrid threshold (Algorithm 1 line 13): replace a leaf with a
    /// B-Tree when its max absolute error exceeds this. `None` disables
    /// hybrid mode.
    pub hybrid_threshold: Option<u32>,
    /// Page size for hybrid B-Tree leaves.
    pub hybrid_page_size: usize,
}

impl Default for RmiConfig {
    fn default() -> Self {
        Self {
            top: TopModel::Linear,
            stages: vec![1024],
            search: SearchStrategy::ModelBiasedBinary,
            hybrid_threshold: None,
            hybrid_page_size: 128,
        }
    }
}

impl RmiConfig {
    /// Two-stage RMI with `leaves` linear leaf models — the paper's
    /// work-horse configuration.
    pub fn two_stage(top: TopModel, leaves: usize) -> Self {
        Self {
            top,
            stages: vec![leaves],
            ..Self::default()
        }
    }

    /// Set the search strategy.
    pub fn with_search(mut self, s: SearchStrategy) -> Self {
        self.search = s;
        self
    }

    /// Enable hybrid B-Tree fallback at the given error threshold.
    pub fn with_hybrid(mut self, threshold: u32) -> Self {
        self.hybrid_threshold = Some(threshold);
        self
    }
}

/// A last-stage model (Algorithm 1's `index[M][j]`).
#[derive(Debug, Clone)]
pub enum LeafKind {
    /// Simple linear regression over the leaf's keys.
    Linear(LinearModel),
    /// Hybrid fallback: a B-Tree over the leaf's key range, used when
    /// the linear model's error exceeded the threshold.
    BTree {
        /// Global position of the first key covered by this leaf.
        offset: usize,
        /// B-Tree over `data[offset .. offset + len]`.
        tree: Box<BTreeIndex>,
    },
}

/// A trained leaf with its error envelope.
#[derive(Debug, Clone)]
pub struct Leaf {
    /// The model (or B-Tree fallback).
    pub kind: LeafKind,
    /// Worst under-prediction: `min(position − prediction)` over the
    /// leaf's keys.
    pub min_err: i64,
    /// Worst over-prediction: `max(position − prediction)`.
    pub max_err: i64,
    /// Standard deviation of the prediction error (drives the σ of
    /// biased quaternary search).
    pub std_err: f64,
    /// Number of keys routed to this leaf at training time.
    pub n_keys: usize,
}

impl Leaf {
    fn empty() -> Self {
        Self {
            kind: LeafKind::Linear(LinearModel::constant(0.0)),
            min_err: 0,
            max_err: 0,
            std_err: 0.0,
            n_keys: 0,
        }
    }
}

/// Summary statistics of a trained RMI.
#[derive(Debug, Clone)]
pub struct RmiStats {
    /// Keys the index was trained over.
    pub keys: usize,
    /// Leaf-model count (the "2nd stage size").
    pub leaves: usize,
    /// Leaves replaced by B-Trees (hybrid mode).
    pub btree_leaves: usize,
    /// Mean absolute prediction error over all keys.
    pub mean_abs_err: f64,
    /// Largest absolute prediction error over all keys.
    pub max_abs_err: u64,
    /// Index size in bytes (deployment accounting; excludes data).
    pub size_bytes: usize,
    /// Arithmetic ops for one stage-0 + leaf prediction.
    pub op_count: usize,
}

/// The serializable parameters of one trained leaf (see [`RmiParams`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LeafParams {
    /// The leaf model.
    pub model: LeafModelParams,
    /// Worst under-prediction recorded at training time.
    pub min_err: i64,
    /// Worst over-prediction recorded at training time.
    pub max_err: i64,
    /// Standard deviation of the prediction error.
    pub std_err: f64,
    /// Keys routed to this leaf at training time.
    pub n_keys: u64,
}

/// The serializable model of one leaf (see [`RmiParams`]).
#[derive(Debug, Clone, PartialEq)]
pub enum LeafModelParams {
    /// A linear leaf: `position ≈ slope · key + intercept`.
    Linear {
        /// Fitted slope.
        slope: f64,
        /// Fitted intercept.
        intercept: f64,
    },
    /// A hybrid B-Tree leaf over `data[offset .. offset + len]`. The
    /// tree itself is *structure*, not learned parameters — it is
    /// rebuilt from the mapped key slice on load (no training).
    BTree {
        /// Global position of the first covered key.
        offset: u64,
        /// Number of covered keys.
        len: u64,
        /// Page size the tree was built with.
        page_size: u64,
    },
}

/// Everything a trained [`Rmi`] knows beyond the key array itself: the
/// fitted coefficients of every stage plus per-leaf error envelopes.
/// This is what the persistence layer writes into a snapshot manifest —
/// warm restart is "map the key file, deserialize these, rebuild
/// structure" with **no retraining** ([`Rmi::from_params`] never fits a
/// model; [`train_count`] witnesses that).
///
/// Format v1 covers linear-top RMIs (the workspace's serving default);
/// [`Rmi::to_params`] returns `None` for multivariate/MLP tops, which
/// save paths surface as an unsupported-backend error.
#[derive(Debug, Clone, PartialEq)]
pub struct RmiParams {
    /// Stage-0 linear model as `(slope, intercept)`.
    pub top: (f64, f64),
    /// Intermediate linear stages as `(slope, intercept)` lists.
    pub mids: Vec<Vec<(f64, f64)>>,
    /// Per-leaf parameters.
    pub leaves: Vec<LeafParams>,
    /// Last-mile search strategy.
    pub search: SearchStrategy,
}

/// Deployment bytes accounted per linear leaf: two f32 parameters, the
/// error pair packed as two i16s, and an f32 σ — the compact form a LIF
/// code generator emits. (10k leaves ≈ 0.16MB, matching Figure 4's
/// "2nd stage models: 10k → 0.15MB" row.)
const LEAF_DEPLOY_BYTES: usize = 4 + 4 + 2 + 2 + 4;

/// Process-wide count of RMI training runs ([`Rmi::build`] calls).
/// Exists so persistence tests can *prove* that a warm load rebuilds
/// structure without retraining: take the count, load, take it again,
/// assert equal.
static TRAIN_EVENTS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The number of RMI training runs ([`Rmi::build`] calls) this process
/// has executed so far. [`Rmi::from_params`] does not bump it — that is
/// the warm-restart guarantee the persistence suite asserts.
pub fn train_count() -> u64 {
    TRAIN_EVENTS.load(std::sync::atomic::Ordering::Relaxed)
}

/// The Recursive Model Index over a sorted `u64` array.
#[derive(Debug, Clone)]
pub struct Rmi {
    data: KeyStore,
    top: TrainedTop,
    /// Intermediate linear stages (usually empty; the paper's default is
    /// two stages total).
    mids: Vec<Vec<LinearModel>>,
    leaves: Vec<Leaf>,
    search: SearchStrategy,
    stats_cache: RmiStats,
}

impl Rmi {
    /// Train an RMI over `data` (sorted ascending, unique) — Algorithm 1.
    /// Accepts anything convertible to a [`KeyStore`]; pass a `KeyStore`
    /// clone to train over an array shared with other indexes at zero
    /// copy.
    pub fn build(data: impl Into<KeyStore>, config: &RmiConfig) -> Self {
        TRAIN_EVENTS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let data: KeyStore = data.into();
        assert!(
            !config.stages.is_empty(),
            "need at least one stage after stage 0"
        );
        assert!(config.stages.iter().all(|&m| m > 0));
        debug_assert!(
            data.windows(2).all(|w| w[0] < w[1]),
            "data must be sorted unique"
        );

        let n = data.len();
        let keys_f64: Vec<f64> = data.iter().map(|&k| k as f64).collect();

        // Stage 0 (Algorithm 1 line 6, i = 1): train on everything.
        let top = config.top.fit(&keys_f64);

        // Inner stages: route with the trained prefix, then fit linear
        // models per member (lines 4-10).
        let mut mids: Vec<Vec<LinearModel>> = Vec::new();
        let inner_stage_count = config.stages.len() - 1;
        for s in 0..inner_stage_count {
            let m = config.stages[s];
            let mut buckets: Vec<Vec<(f64, f64)>> = vec![Vec::new(); m];
            for (i, &x) in keys_f64.iter().enumerate() {
                let pred = predict_through(&top, &mids, x, n);
                buckets[route(pred, m, n)].push((x, i as f64));
            }
            let stage: Vec<LinearModel> = buckets
                .into_iter()
                .map(|b| LinearModel::fit(b.into_iter()))
                .collect();
            mids.push(stage);
        }

        // Leaf stage: fit, then compute error envelopes (lines 11-12).
        let leaf_count = *config.stages.last().expect("non-empty stages");
        let mut buckets: Vec<Vec<(f64, usize)>> = vec![Vec::new(); leaf_count];
        for (i, &x) in keys_f64.iter().enumerate() {
            let pred = predict_through(&top, &mids, x, n);
            buckets[route(pred, leaf_count, n)].push((x, i));
        }

        let mut leaves = Vec::with_capacity(leaf_count);
        for bucket in &buckets {
            if bucket.is_empty() {
                leaves.push(Leaf::empty());
                continue;
            }
            let model = LinearModel::fit(bucket.iter().map(|&(x, y)| (x, y as f64)));
            let mut min_err = i64::MAX;
            let mut max_err = i64::MIN;
            let mut sum_sq = 0.0f64;
            for &(x, y) in bucket {
                let p = clamp_position(model.predict(x), n) as i64;
                let e = y as i64 - p;
                min_err = min_err.min(e);
                max_err = max_err.max(e);
                sum_sq += (e as f64) * (e as f64);
            }
            let std_err = (sum_sq / bucket.len() as f64).sqrt();

            // Hybrid replacement (lines 13-14).
            let abs_err = min_err.unsigned_abs().max(max_err.unsigned_abs());
            let kind = match config.hybrid_threshold {
                Some(t) if abs_err > t as u64 => {
                    let first = bucket.iter().map(|&(_, y)| y).min().expect("non-empty");
                    let last = bucket.iter().map(|&(_, y)| y).max().expect("non-empty");
                    // Zero-copy: the leaf B-Tree indexes a slice *view*
                    // of the shared key array, not a copy of it.
                    let tree =
                        BTreeIndex::new(data.slice(first..last + 1), config.hybrid_page_size);
                    LeafKind::BTree {
                        offset: first,
                        tree: Box::new(tree),
                    }
                }
                _ => LeafKind::Linear(model),
            };
            leaves.push(Leaf {
                kind,
                min_err,
                max_err,
                std_err,
                n_keys: bucket.len(),
            });
        }

        // Empty leaves predict the boundary position of the nearest
        // preceding non-empty leaf, so predictions stay roughly monotone
        // across leaves and mis-routed queries widen minimally.
        let mut boundary = 0usize;
        for (leaf, bucket) in leaves.iter_mut().zip(&buckets) {
            if bucket.is_empty() {
                leaf.kind = LeafKind::Linear(LinearModel::constant(boundary as f64));
            } else {
                boundary = bucket.iter().map(|&(_, y)| y).max().expect("non-empty") + 1;
            }
        }

        let mut rmi = Self {
            data,
            top,
            mids,
            leaves,
            search: config.search,
            stats_cache: RmiStats {
                keys: 0,
                leaves: leaf_count,
                btree_leaves: 0,
                mean_abs_err: 0.0,
                max_abs_err: 0,
                size_bytes: 0,
                op_count: 0,
            },
        };
        rmi.stats_cache = rmi.compute_stats();
        rmi
    }

    /// Route a key through the cascade to its leaf index.
    #[inline]
    fn leaf_index(&self, x: f64) -> usize {
        let pred = predict_through(&self.top, &self.mids, x, self.data.len());
        route(pred, self.leaves.len(), self.data.len())
    }

    /// The full per-query model phase: cascade + leaf prediction +
    /// error-window arithmetic, producing the last-mile search plan
    /// `(pos, lo, hi, sigma)`. Shared by the scalar path, `predict`, and
    /// the phase-split batched path. Requires a non-empty key array.
    #[inline]
    fn plan(&self, key: u64) -> (usize, usize, usize, usize) {
        let n = self.data.len();
        let x = key as f64;
        let leaf = &self.leaves[self.leaf_index(x)];
        match &leaf.kind {
            LeafKind::Linear(m) => {
                let pos = clamp_position(m.predict(x), n);
                let lo = pos.saturating_add_signed(leaf.min_err as isize).min(n);
                let hi = (pos.saturating_add_signed(leaf.max_err as isize) + 1).min(n);
                let sigma = (leaf.std_err.ceil() as usize).max(1);
                (pos, lo, hi, sigma)
            }
            LeafKind::BTree { offset, tree } => {
                // The leaf B-Tree answers exactly for keys inside its
                // range; boundary results are certified globally by the
                // widening search (handles keys mis-routed to this leaf).
                let pos = (offset + tree.lower_bound(key)).min(n);
                (pos, pos, pos, 1)
            }
        }
    }

    /// The leaf a key routes to (for inspection/tests).
    pub fn leaf_for(&self, key: u64) -> &Leaf {
        &self.leaves[self.leaf_index(key as f64)]
    }

    /// Summary statistics.
    pub fn stats(&self) -> &RmiStats {
        &self.stats_cache
    }

    /// The configured search strategy.
    pub fn search_strategy(&self) -> SearchStrategy {
        self.search
    }

    /// Change the search strategy (no retraining required — §3.4's
    /// strategies all consume the same stored error envelope).
    pub fn set_search_strategy(&mut self, s: SearchStrategy) {
        self.search = s;
    }

    fn compute_stats(&self) -> RmiStats {
        let n = self.data.len();
        let mut sum_abs = 0.0f64;
        let mut max_abs = 0u64;
        let mut btree_leaves = 0usize;
        for leaf in &self.leaves {
            if matches!(leaf.kind, LeafKind::BTree { .. }) {
                btree_leaves += 1;
            }
            let worst = leaf.min_err.unsigned_abs().max(leaf.max_err.unsigned_abs());
            max_abs = max_abs.max(worst);
            sum_abs += leaf.std_err * leaf.n_keys as f64;
        }
        let size_bytes = self.top.size_bytes()
            + self.mids.iter().map(|s| s.len() * (4 + 4)).sum::<usize>()
            + self
                .leaves
                .iter()
                .map(|l| match &l.kind {
                    LeafKind::Linear(_) => LEAF_DEPLOY_BYTES,
                    LeafKind::BTree { tree, .. } => LEAF_DEPLOY_BYTES + tree.size_bytes(),
                })
                .sum::<usize>();
        RmiStats {
            keys: n,
            leaves: self.leaves.len(),
            btree_leaves,
            mean_abs_err: if n == 0 { 0.0 } else { sum_abs / n as f64 },
            max_abs_err: max_abs,
            size_bytes,
            op_count: self.top.op_count() + 2 + self.mids.len() * 4,
        }
    }

    /// Extract the serializable parameters of this trained index (for
    /// the persistence layer). Returns `None` when the stage-0 model is
    /// not linear — format v1 does not encode multivariate/MLP tops.
    pub fn to_params(&self) -> Option<RmiParams> {
        let top = match &self.top {
            TrainedTop::Linear(m) => (m.slope(), m.intercept()),
            _ => return None,
        };
        let mids = self
            .mids
            .iter()
            .map(|stage| stage.iter().map(|m| (m.slope(), m.intercept())).collect())
            .collect();
        let leaves = self
            .leaves
            .iter()
            .map(|leaf| LeafParams {
                model: match &leaf.kind {
                    LeafKind::Linear(m) => LeafModelParams::Linear {
                        slope: m.slope(),
                        intercept: m.intercept(),
                    },
                    LeafKind::BTree { offset, tree } => LeafModelParams::BTree {
                        offset: *offset as u64,
                        len: tree.key_store().len() as u64,
                        page_size: tree.page_size() as u64,
                    },
                },
                min_err: leaf.min_err,
                max_err: leaf.max_err,
                std_err: leaf.std_err,
                n_keys: leaf.n_keys as u64,
            })
            .collect();
        Some(RmiParams {
            top,
            mids,
            leaves,
            search: self.search,
        })
    }

    /// Reassemble a trained index from its serialized parameters and
    /// the key array it was trained over — the warm-restart path. No
    /// model is fitted (the process [`train_count`] does not move);
    /// hybrid B-Tree leaves are rebuilt *structurally* over zero-copy
    /// slices of `data`, exactly as training left them.
    ///
    /// Returns `None` when the parameters cannot describe a valid index
    /// over `data`: no leaves, a B-Tree leaf range out of bounds, or a
    /// `page_size < 2`.
    pub fn from_params(data: impl Into<KeyStore>, params: &RmiParams) -> Option<Self> {
        let data: KeyStore = data.into();
        let n = data.len();
        if params.leaves.is_empty() {
            return None;
        }
        let mut leaves = Vec::with_capacity(params.leaves.len());
        for lp in &params.leaves {
            let kind = match lp.model {
                LeafModelParams::Linear { slope, intercept } => {
                    LeafKind::Linear(LinearModel::new(slope, intercept))
                }
                LeafModelParams::BTree {
                    offset,
                    len,
                    page_size,
                } => {
                    let offset = usize::try_from(offset).ok()?;
                    let len = usize::try_from(len).ok()?;
                    let page_size = usize::try_from(page_size).ok()?;
                    if page_size < 2 || offset.checked_add(len)? > n {
                        return None;
                    }
                    let tree = BTreeIndex::new(data.slice(offset..offset + len), page_size);
                    LeafKind::BTree {
                        offset,
                        tree: Box::new(tree),
                    }
                }
            };
            leaves.push(Leaf {
                kind,
                min_err: lp.min_err,
                max_err: lp.max_err,
                std_err: lp.std_err,
                n_keys: usize::try_from(lp.n_keys).ok()?,
            });
        }
        let mut rmi = Self {
            data,
            top: TrainedTop::Linear(LinearModel::new(params.top.0, params.top.1)),
            mids: params
                .mids
                .iter()
                .map(|stage| stage.iter().map(|&(s, i)| LinearModel::new(s, i)).collect())
                .collect(),
            leaves,
            search: params.search,
            stats_cache: RmiStats {
                keys: 0,
                leaves: 0,
                btree_leaves: 0,
                mean_abs_err: 0.0,
                max_abs_err: 0,
                size_bytes: 0,
                op_count: 0,
            },
        };
        rmi.stats_cache = rmi.compute_stats();
        Some(rmi)
    }
}

/// Run the trained model cascade down to (but excluding) the leaf stage.
#[inline]
fn predict_through(top: &TrainedTop, mids: &[Vec<LinearModel>], x: f64, n: usize) -> f64 {
    let mut pred = top.predict(x);
    for stage in mids {
        let idx = route(pred, stage.len(), n);
        pred = stage[idx].predict(x);
    }
    pred
}

/// Algorithm 1 line 9: `⌊M · f(x) / N⌋`, clamped into `[0, M)`.
#[inline]
fn route(pred: f64, m: usize, n: usize) -> usize {
    if n == 0 || m == 0 {
        return 0;
    }
    let scaled = pred * (m as f64) / (n as f64);
    clamp_position(scaled, m)
}

impl RangeIndex for Rmi {
    fn key_store(&self) -> &KeyStore {
        &self.data
    }

    #[inline]
    fn predict(&self, key: u64) -> Prediction {
        if self.data.is_empty() {
            return Prediction {
                pos: 0,
                lo: 0,
                hi: 0,
            };
        }
        let (pos, lo, hi, _) = self.plan(key);
        Prediction { pos, lo, hi }
    }

    #[inline]
    fn lower_bound(&self, key: u64) -> usize {
        if self.data.is_empty() {
            return 0;
        }
        let (pos, lo, hi, sigma) = self.plan(key);
        search_with_widening(&self.data, key, self.search, pos, sigma, lo, hi)
    }

    /// Phase-split batched lookup: run the model cascade for *every*
    /// query first (pure arithmetic over the small model tables), then
    /// resolve every last-mile search against the data array. The
    /// loop fission keeps the data-array cache misses of different
    /// queries independent, so the hardware can overlap them instead of
    /// waiting out predict→search serially per query.
    fn lower_bound_batch(&self, queries: &[u64], out: &mut [usize]) {
        assert_eq!(
            queries.len(),
            out.len(),
            "lower_bound_batch: queries and out must have equal length"
        );
        if self.data.is_empty() {
            out.fill(0);
            return;
        }
        // Phase 1: model execution for all queries.
        let plans: Vec<(usize, usize, usize, usize)> =
            queries.iter().map(|&q| self.plan(q)).collect();
        // Phase 2: all last-mile searches.
        for ((o, &q), &(pos, lo, hi, sigma)) in out.iter_mut().zip(queries).zip(&plans) {
            *o = search_with_widening(&self.data, q, self.search, pos, sigma, lo, hi);
        }
    }

    fn size_bytes(&self) -> usize {
        self.stats_cache.size_bytes
    }

    fn name(&self) -> String {
        let hybrid = if self.stats_cache.btree_leaves > 0 {
            format!(",hybrid={}", self.stats_cache.btree_leaves)
        } else {
            String::new()
        };
        format!(
            "rmi({},leaves={}{hybrid},{})",
            match &self.top {
                TrainedTop::Linear(_) => "linear".to_string(),
                TrainedTop::Multivariate(_) => "multivariate".to_string(),
                TrainedTop::Mlp(m) => format!("mlp({}h)", m.hidden_layers()),
            },
            self.leaves.len(),
            self.search.name(),
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(data: &[u64], key: u64) -> usize {
        data.partition_point(|&k| k < key)
    }

    fn check_exact(data: Vec<u64>, cfg: &RmiConfig) {
        let rmi = Rmi::build(data.clone(), cfg);
        let mut queries: Vec<u64> = vec![0, 1, u64::MAX];
        for &k in data.iter().step_by(3) {
            queries.extend_from_slice(&[k.saturating_sub(1), k, k.saturating_add(1)]);
        }
        for q in queries {
            assert_eq!(rmi.lower_bound(q), oracle(&data, q), "{} q={q}", rmi.name());
        }
    }

    fn linear_data(n: u64) -> Vec<u64> {
        (0..n).map(|i| 1_000_000 + i).collect()
    }

    fn quadratic_data(n: u64) -> Vec<u64> {
        (0..n).map(|i| i * i + 7).collect()
    }

    #[test]
    fn exact_on_linear_data_all_strategies() {
        for s in SearchStrategy::ALL {
            check_exact(
                linear_data(2000),
                &RmiConfig::two_stage(TopModel::Linear, 64).with_search(s),
            );
        }
    }

    #[test]
    fn exact_on_quadratic_data() {
        check_exact(
            quadratic_data(3000),
            &RmiConfig::two_stage(TopModel::Linear, 128),
        );
    }

    #[test]
    fn exact_with_multivariate_top() {
        check_exact(
            quadratic_data(2000),
            &RmiConfig::two_stage(TopModel::Multivariate(FeatureMap::FULL), 64),
        );
    }

    #[test]
    fn exact_with_mlp_top() {
        check_exact(
            quadratic_data(1500),
            &RmiConfig::two_stage(
                TopModel::Mlp {
                    hidden: 1,
                    width: 8,
                },
                32,
            ),
        );
    }

    #[test]
    fn exact_with_three_stages() {
        let cfg = RmiConfig {
            top: TopModel::Linear,
            stages: vec![16, 256],
            ..Default::default()
        };
        check_exact(quadratic_data(2500), &cfg);
    }

    #[test]
    fn tiny_inputs() {
        check_exact(vec![], &RmiConfig::default());
        check_exact(vec![5], &RmiConfig::default());
        check_exact(vec![5, 9], &RmiConfig::two_stage(TopModel::Linear, 4));
    }

    #[test]
    fn linear_data_has_near_zero_error() {
        // §2's promise: a linear pattern is learned perfectly.
        let rmi = Rmi::build(
            linear_data(10_000),
            &RmiConfig::two_stage(TopModel::Linear, 16),
        );
        assert!(
            rmi.stats().max_abs_err <= 1,
            "max err {}",
            rmi.stats().max_abs_err
        );
    }

    #[test]
    fn more_leaves_shrink_error() {
        let data = quadratic_data(20_000);
        let small = Rmi::build(data.clone(), &RmiConfig::two_stage(TopModel::Linear, 16));
        let large = Rmi::build(data, &RmiConfig::two_stage(TopModel::Linear, 1024));
        assert!(
            large.stats().mean_abs_err < small.stats().mean_abs_err / 2.0,
            "large {} small {}",
            large.stats().mean_abs_err,
            small.stats().mean_abs_err
        );
    }

    #[test]
    fn hybrid_replaces_bad_leaves_with_btrees() {
        // A step-heavy distribution defeats per-leaf linear models at a
        // coarse leaf count, triggering hybrid replacement.
        let mut data: Vec<u64> = Vec::new();
        let mut v = 0u64;
        for i in 0..5000u64 {
            v += if (i / 100) % 2 == 0 { 1 } else { 10_000 };
            data.push(v);
        }
        let cfg = RmiConfig::two_stage(TopModel::Linear, 8).with_hybrid(10);
        let rmi = Rmi::build(data.clone(), &cfg);
        assert!(rmi.stats().btree_leaves > 0, "expected hybrid leaves");
        // Still exact everywhere.
        for &k in data.iter().step_by(7) {
            assert_eq!(rmi.lower_bound(k), oracle(&data, k));
        }
        for q in (0..60_000u64).step_by(101) {
            assert_eq!(rmi.lower_bound(q), oracle(&data, q));
        }
    }

    #[test]
    fn hybrid_threshold_zero_degenerates_to_all_btrees() {
        // §3.3: "in the case of an extremely difficult to learn data
        // distribution, all models would be automatically replaced by
        // B-Trees, making it virtually an entire B-Tree."
        let data = quadratic_data(2000);
        let cfg = RmiConfig::two_stage(TopModel::Linear, 4).with_hybrid(0);
        let rmi = Rmi::build(data.clone(), &cfg);
        let nonempty = rmi.leaves.iter().filter(|l| l.n_keys > 0).count();
        assert_eq!(rmi.stats().btree_leaves, nonempty);
        check_exact(data, &cfg);
    }

    #[test]
    fn error_envelope_contains_all_stored_keys() {
        let data = quadratic_data(5000);
        let rmi = Rmi::build(data.clone(), &RmiConfig::two_stage(TopModel::Linear, 64));
        for (i, &k) in data.iter().enumerate() {
            let p = rmi.predict(k);
            assert!(
                (p.lo..p.hi.max(p.lo + 1)).contains(&i),
                "key {k} at {i} outside window {}..{}",
                p.lo,
                p.hi
            );
        }
    }

    #[test]
    fn size_accounting_matches_paper_scale() {
        // Figure 4: 10k second-stage models ≈ 0.15MB.
        let data = linear_data(50_000);
        let rmi = Rmi::build(data, &RmiConfig::two_stage(TopModel::Linear, 10_000));
        let mb = rmi.size_bytes() as f64 / (1024.0 * 1024.0);
        assert!((0.1..0.25).contains(&mb), "size {mb} MB");
    }

    #[test]
    fn stats_and_name_are_consistent() {
        let rmi = Rmi::build(
            linear_data(1000),
            &RmiConfig::two_stage(TopModel::Linear, 32),
        );
        assert_eq!(rmi.stats().leaves, 32);
        assert!(rmi.name().contains("leaves=32"));
        assert_eq!(rmi.search_strategy(), SearchStrategy::ModelBiasedBinary);
    }

    #[test]
    fn set_search_strategy_keeps_results_identical() {
        let data = quadratic_data(3000);
        let mut rmi = Rmi::build(data.clone(), &RmiConfig::two_stage(TopModel::Linear, 64));
        let base: Vec<usize> = data.iter().map(|&k| rmi.lower_bound(k)).collect();
        for s in SearchStrategy::ALL {
            rmi.set_search_strategy(s);
            for (&k, &expect) in data.iter().zip(&base) {
                assert_eq!(rmi.lower_bound(k), expect, "{}", s.name());
            }
        }
    }

    #[test]
    fn batched_lookup_matches_scalar_for_all_strategies() {
        let data = quadratic_data(3000);
        let queries: Vec<u64> = (0..4000u64).map(|i| i * i / 2 + 3).collect();
        for s in SearchStrategy::ALL {
            let rmi = Rmi::build(
                data.clone(),
                &RmiConfig::two_stage(TopModel::Linear, 64).with_search(s),
            );
            let mut out = vec![0usize; queries.len()];
            rmi.lower_bound_batch(&queries, &mut out);
            for (&q, &got) in queries.iter().zip(&out) {
                assert_eq!(got, rmi.lower_bound(q), "{} q={q}", s.name());
            }
        }
    }

    #[test]
    fn batched_lookup_matches_scalar_with_hybrid_leaves() {
        let mut data: Vec<u64> = Vec::new();
        let mut v = 0u64;
        for i in 0..3000u64 {
            v += if (i / 100) % 2 == 0 { 1 } else { 10_000 };
            data.push(v);
        }
        let rmi = Rmi::build(
            data.clone(),
            &RmiConfig::two_stage(TopModel::Linear, 8).with_hybrid(10),
        );
        assert!(rmi.stats().btree_leaves > 0);
        let queries: Vec<u64> = (0..50_000u64).step_by(17).collect();
        let mut out = vec![0usize; queries.len()];
        rmi.lower_bound_batch(&queries, &mut out);
        for (&q, &got) in queries.iter().zip(&out) {
            assert_eq!(got, rmi.lower_bound(q), "q={q}");
        }
    }

    #[test]
    fn hybrid_leaves_share_the_key_store() {
        // The B-Tree fallback leaves must be views into the RMI's own
        // key array, not per-leaf copies.
        let mut data: Vec<u64> = Vec::new();
        let mut v = 0u64;
        for i in 0..3000u64 {
            v += if (i / 100) % 2 == 0 { 1 } else { 10_000 };
            data.push(v);
        }
        let store = KeyStore::new(data);
        let rmi = Rmi::build(
            store.clone(),
            &RmiConfig::two_stage(TopModel::Linear, 8).with_hybrid(10),
        );
        assert!(rmi.key_store().ptr_eq(&store));
        let mut hybrid_seen = 0usize;
        for leaf in &rmi.leaves {
            if let LeafKind::BTree { tree, .. } = &leaf.kind {
                hybrid_seen += 1;
                assert!(tree.key_store().ptr_eq(&store), "leaf copied the keys");
            }
        }
        assert!(hybrid_seen > 0);
    }

    #[test]
    fn leaf_for_reports_routing() {
        let data = linear_data(1000);
        let rmi = Rmi::build(data.clone(), &RmiConfig::two_stage(TopModel::Linear, 8));
        let leaf = rmi.leaf_for(data[0]);
        assert!(leaf.n_keys > 0);
    }

    #[test]
    fn params_round_trip_is_exact_and_trains_nothing() {
        // Hybrid config so the round trip covers B-Tree leaves too.
        let data = quadratic_data(3000);
        let cfg = RmiConfig::two_stage(TopModel::Linear, 32).with_hybrid(8);
        let store = KeyStore::new(data.clone());
        let rmi = Rmi::build(store.clone(), &cfg);
        let params = rmi.to_params().expect("linear top is serializable");

        let before = crate::rmi::train_count();
        let back = Rmi::from_params(store.clone(), &params).expect("valid params");
        assert_eq!(
            crate::rmi::train_count(),
            before,
            "from_params must not train"
        );
        assert!(back.key_store().ptr_eq(&store), "rebuild shares the store");
        assert_eq!(back.to_params().as_ref(), Some(&params), "exact round trip");
        assert_eq!(back.stats().btree_leaves, rmi.stats().btree_leaves);
        for q in data.iter().flat_map(|&k| [k - 1, k, k + 1]) {
            assert_eq!(back.lower_bound(q), rmi.lower_bound(q), "q={q}");
        }
    }

    #[test]
    fn params_reject_non_linear_tops_and_bad_ranges() {
        let data = linear_data(500);
        let mlp = Rmi::build(
            data.clone(),
            &RmiConfig::two_stage(
                TopModel::Mlp {
                    hidden: 1,
                    width: 4,
                },
                8,
            ),
        );
        assert!(mlp.to_params().is_none(), "v1 cannot encode an MLP top");

        let rmi = Rmi::build(data.clone(), &RmiConfig::two_stage(TopModel::Linear, 8));
        let mut params = rmi.to_params().unwrap();
        params.leaves[0].model = LeafModelParams::BTree {
            offset: 400,
            len: 200, // out of bounds for 500 keys
            page_size: 16,
        };
        assert!(Rmi::from_params(data.clone(), &params).is_none());
        params.leaves[0].model = LeafModelParams::BTree {
            offset: 0,
            len: 10,
            page_size: 1, // BTreeIndex requires >= 2
        };
        assert!(Rmi::from_params(data, &params).is_none());
    }
}
