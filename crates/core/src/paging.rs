//! Paged / disk-resident data support (Appendix D.2).
//!
//! The core RMI assumes "one continuous block"; for data "partitioned …
//! into larger pages that are stored in separate regions on disk" the
//! position-is-CDF identity breaks. Appendix D.2's first remedy is what
//! we implement here: *"Another option is to have an additional
//! translation table in the form of <first_key, disk-position>. With the
//! translation table the rest of the index structure remains the same …
//! it is possible to use the predicted position with the min- and
//! max-error to reduce the number of bytes which have to be read from a
//! large page."*
//!
//! [`PagedStore`] models a file of fixed-size pages holding the sorted
//! keys; [`PagedRmi`] = RMI over the logical key sequence + translation
//! table mapping logical page → storage location, counting page reads so
//! tests and benches can verify the I/O reduction the paper predicts.

use crate::rmi::{Rmi, RmiConfig};
use li_index::RangeIndex;
use std::cell::Cell;

/// A simulated page store: fixed-size pages in arbitrary storage order.
#[derive(Debug)]
pub struct PagedStore {
    /// Keys per page.
    page_size: usize,
    /// Pages in *storage* order (not logical order).
    pages: Vec<Vec<u64>>,
    /// Read counter (interior-mutable so lookups stay `&self`).
    reads: Cell<usize>,
}

impl PagedStore {
    /// Split sorted keys into pages and scatter them across storage in a
    /// deterministic shuffled order (disk pages are rarely laid out
    /// logically).
    pub fn new(keys: &[u64], page_size: usize, seed: u64) -> Self {
        assert!(page_size >= 2);
        let mut pages: Vec<Vec<u64>> = keys.chunks(page_size).map(|c| c.to_vec()).collect();
        let mut rng = li_models::rng::SplitMix64::new(seed);
        rng.shuffle(&mut pages);
        Self {
            page_size,
            pages,
            reads: Cell::new(0),
        }
    }

    /// Read a page by storage position (counts as one I/O).
    pub fn read_page(&self, pos: usize) -> &[u64] {
        self.reads.set(self.reads.get() + 1);
        &self.pages[pos]
    }

    /// Total page reads so far.
    pub fn reads(&self) -> usize {
        self.reads.get()
    }

    /// Reset the read counter.
    pub fn reset_reads(&self) {
        self.reads.set(0);
    }

    /// Keys per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn find_logical_order(&self) -> Vec<(u64, usize)> {
        // <first_key, disk-position> pairs, sorted by first key — the
        // translation table of Appendix D.2.
        let mut table: Vec<(u64, usize)> = self
            .pages
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(pos, p)| (p[0], pos))
            .collect();
        table.sort_unstable_by_key(|&(k, _)| k);
        table
    }
}

/// RMI + translation table over a paged store.
#[derive(Debug)]
pub struct PagedRmi<'a> {
    store: &'a PagedStore,
    rmi: Rmi,
    /// `<first_key, disk-position>`, sorted by first key; index in this
    /// table == logical page number.
    translation: Vec<(u64, usize)>,
}

impl<'a> PagedRmi<'a> {
    /// Build over a store: reconstructs the logical key order, trains the
    /// RMI on it, and keeps the translation table.
    pub fn build(store: &'a PagedStore, config: &RmiConfig) -> Self {
        let translation = store.find_logical_order();
        let mut logical_keys = Vec::with_capacity(store.page_count() * store.page_size());
        for &(_, pos) in &translation {
            // Building reads every page once (a full scan, like any
            // index build); not counted against lookup I/O.
            logical_keys.extend_from_slice(&store.pages[pos]);
        }
        let rmi = Rmi::build(logical_keys, config);
        Self {
            store,
            rmi,
            translation,
        }
    }

    /// Look up a key: predict the logical position, translate the
    /// containing page(s) to storage positions, read only those pages.
    /// Returns `Some((storage_page, offset_in_page))`.
    pub fn lookup(&self, key: u64) -> Option<(usize, usize)> {
        let n = self.rmi.data().len();
        if n == 0 {
            return None;
        }
        let page_size = self.store.page_size();
        // The error envelope bounds which logical pages can hold the key.
        let p = self.rmi.predict(key);
        let first_page = p.lo.min(n - 1) / page_size;
        let last_page = (p.hi.saturating_sub(1)).min(n - 1) / page_size;
        // Tighten with the translation table itself (its first_keys are
        // exact separators — D.2's "reduce the number of bytes read").
        let tbl = &self.translation;
        let tbl_page = tbl.partition_point(|&(fk, _)| fk <= key).saturating_sub(1);
        let lo_page = first_page.max(tbl_page.min(last_page));
        let hi_page = last_page.min(tbl.len().saturating_sub(1));
        for &(_, storage_pos) in tbl.iter().take(hi_page + 1).skip(lo_page) {
            let page = self.store.read_page(storage_pos);
            if let Ok(off) = page.binary_search(&key) {
                return Some((storage_pos, off));
            }
            // Pages are sorted: if this page's last key exceeds the key,
            // no later page can contain it.
            if page.last().is_some_and(|&l| l > key) {
                return None;
            }
        }
        None
    }

    /// The translation table size in bytes (12 bytes per entry: u64 key
    /// + u32 position).
    pub fn translation_bytes(&self) -> usize {
        self.translation.len() * 12
    }

    /// The underlying RMI's stats.
    pub fn rmi(&self) -> &Rmi {
        &self.rmi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmi::TopModel;

    fn store_and_index(n: u64, page: usize) -> (PagedStore, Vec<u64>) {
        let keys: Vec<u64> = (0..n).map(|i| i * 7 + 3).collect();
        (PagedStore::new(&keys, page, 99), keys)
    }

    #[test]
    fn finds_every_stored_key_in_scattered_pages() {
        let (store, keys) = store_and_index(5000, 64);
        let idx = PagedRmi::build(&store, &RmiConfig::two_stage(TopModel::Linear, 128));
        for &k in keys.iter().step_by(37) {
            let (page, off) = idx.lookup(k).unwrap_or_else(|| panic!("missing {k}"));
            assert_eq!(store.pages[page][off], k);
        }
    }

    #[test]
    fn missing_keys_return_none() {
        let (store, _) = store_and_index(2000, 32);
        let idx = PagedRmi::build(&store, &RmiConfig::two_stage(TopModel::Linear, 64));
        for i in 0..200u64 {
            assert_eq!(idx.lookup(i * 7 + 4), None, "key {}", i * 7 + 4);
        }
        assert_eq!(idx.lookup(0), None);
        assert_eq!(idx.lookup(u64::MAX), None);
    }

    #[test]
    fn accurate_model_reads_about_one_page_per_lookup() {
        // The D.2 payoff: with a near-exact model, a lookup touches ~1
        // page instead of log(n) index pages + 1.
        let (store, keys) = store_and_index(20_000, 128);
        let idx = PagedRmi::build(&store, &RmiConfig::two_stage(TopModel::Linear, 512));
        store.reset_reads();
        let probes = 500;
        for &k in keys.iter().step_by(keys.len() / probes) {
            idx.lookup(k);
        }
        let avg_reads = store.reads() as f64 / probes as f64;
        assert!(avg_reads < 1.6, "avg page reads {avg_reads}");
    }

    #[test]
    fn translation_table_size_is_per_page() {
        let (store, _) = store_and_index(10_000, 100);
        let idx = PagedRmi::build(&store, &RmiConfig::two_stage(TopModel::Linear, 64));
        assert_eq!(idx.translation_bytes(), store.page_count() * 12);
    }

    #[test]
    fn works_with_partial_last_page() {
        let (store, keys) = store_and_index(1003, 64); // 1003 % 64 != 0
        let idx = PagedRmi::build(&store, &RmiConfig::two_stage(TopModel::Linear, 32));
        let last = *keys.last().expect("non-empty");
        assert!(idx.lookup(last).is_some());
    }
}
