//! Striped relaxed-atomic counters, gauges, and the registry that
//! snapshots and renders them.
//!
//! The hot-path contract: recording into any primitive here is a
//! handful of relaxed atomic operations on a cache-line-padded cell —
//! no locks, no allocation, no fences. Contended counters stripe
//! across `STRIPES` (8) padded cells keyed by a per-thread id, so two
//! writer threads in steady state touch different cache lines. All
//! mutual exclusion lives on the cold paths: registration
//! (get-or-create by name) and [`GaugeSet::set_all`] (called by the
//! snapshot assembler, never by recorders).

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSnapshot};
use crate::ring::{TraceEvent, TraceRing};

/// Number of counter stripes; power of two so the stripe pick is a
/// mask. Eight 64-byte lines = 512 bytes per counter — cheap for the
/// handful of hot counters a serving tier needs.
pub(crate) const STRIPES: usize = 8;

/// One atomic on its own cache line, so striped neighbors never
/// false-share.
#[repr(align(64))]
#[derive(Default)]
pub(crate) struct PaddedU64(pub(crate) AtomicU64);

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Round-robin stripe assignment: stable per thread, spread across
    /// stripes so concurrent recorders land on different cache lines.
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
}

pub(crate) fn stripe_id() -> usize {
    STRIPE.with(|s| *s)
}

/// A monotonically increasing striped counter.
///
/// [`Counter::add`] is one relaxed `fetch_add` on the calling thread's
/// stripe; [`Counter::value`] sums the stripes (a read-side cost, paid
/// only by snapshots). The sum equals the sequential total of all
/// adds — stripes never lose increments, they only spread them.
#[derive(Default)]
pub struct Counter {
    stripes: [PaddedU64; STRIPES],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n`. Wait-free, one relaxed atomic add.
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[stripe_id()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add 1 and report whether this increment lands on the calling
    /// stripe's 1-in-`period` sampling boundary (`period` rounded up
    /// to a power of two; 0 and 1 both mean "always").
    ///
    /// This fuses an op counter with a [`Sampler`] so a hot path that
    /// both counts every op and latency-samples a fraction of them
    /// pays **one** thread-local stripe lookup and **one** relaxed
    /// `fetch_add` — instead of two of each. With a constant `period`
    /// the mask computation folds away entirely.
    #[inline]
    pub fn incr_sampled(&self, period: u64) -> bool {
        let mask = period.max(1).next_power_of_two() - 1;
        let prior = self.stripes[stripe_id()].0.fetch_add(1, Ordering::Relaxed);
        prior & mask == 0
    }

    /// Current total across all stripes.
    pub fn value(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.value())
    }
}

/// A single last-write-wins value (queue depth, shard count, …).
///
/// Signed so gauges can go down; stored as one padded atomic.
#[derive(Default)]
pub struct Gauge {
    cell: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.value())
    }
}

/// An indexed family of gauges under one name (per-shard depth, runs,
/// buffer fill), rendered as `name{label="i"} v`.
///
/// The member count follows the live topology (shards split and
/// merge), so values live behind a mutex — but the only writer is the
/// snapshot assembler calling [`GaugeSet::set_all`] under its own
/// topology lock, never a hot-path recorder.
#[derive(Default)]
pub struct GaugeSet {
    values: Mutex<Vec<u64>>,
}

impl GaugeSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the whole family at once (one consistent topology
    /// observation).
    pub fn set_all(&self, vs: &[u64]) {
        let mut g = self.values.lock().unwrap_or_else(|e| e.into_inner());
        g.clear();
        g.extend_from_slice(vs);
    }

    /// Copy of the current family.
    pub fn values(&self) -> Vec<u64> {
        self.values
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

impl std::fmt::Debug for GaugeSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GaugeSet({:?})", self.values())
    }
}

/// A striped 1-in-N sampling decision, for instrumentation whose
/// per-event cost (two `Instant::now` calls ≈ 50 ns) would otherwise
/// dominate the operation being measured.
///
/// `tick()` is one relaxed add on the thread's stripe and returns
/// `true` once per `period` ticks **per stripe** — so every thread
/// samples at the same 1-in-`period` rate regardless of how threads
/// map to stripes.
pub struct Sampler {
    mask: u64,
    stripes: [PaddedU64; STRIPES],
}

impl Sampler {
    /// Sample 1 in `period` (rounded up to a power of two; 0 and 1
    /// both mean "always").
    pub fn new(period: u64) -> Self {
        Sampler {
            mask: period.max(1).next_power_of_two() - 1,
            stripes: Default::default(),
        }
    }

    /// Advance the stripe-local tick; `true` means "measure this one".
    #[inline]
    pub fn tick(&self) -> bool {
        let prior = self.stripes[stripe_id()].0.fetch_add(1, Ordering::Relaxed);
        prior & self.mask == 0
    }

    /// The effective period (power of two).
    pub fn period(&self) -> u64 {
        self.mask + 1
    }
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sampler(1/{})", self.period())
    }
}

/// Everything registered under one name space: counters, gauges,
/// gauge families, histograms, and trace rings.
///
/// Registration (get-or-create by name) takes a mutex — it happens
/// once per metric at construction time. Recording never touches the
/// registry at all: callers hold `Arc`s to the primitives.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    counters: Vec<(String, Arc<Counter>)>,
    gauges: Vec<(String, Arc<Gauge>)>,
    gauge_sets: Vec<(String, String, Arc<GaugeSet>)>,
    histograms: Vec<(String, Arc<Histogram>)>,
    rings: Vec<(String, Arc<TraceRing>)>,
}

fn get_or_insert<T>(
    list: &mut Vec<(String, Arc<T>)>,
    name: &str,
    make: impl FnOnce() -> T,
) -> Arc<T> {
    if let Some((_, v)) = list.iter().find(|(n, _)| n == name) {
        return Arc::clone(v);
    }
    let v = Arc::new(make());
    list.push((name.to_string(), Arc::clone(&v)));
    v
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&mut self.lock().counters, name, Counter::new)
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&mut self.lock().gauges, name, Gauge::new)
    }

    /// Get or create the gauge family `name`, indexed by `label`.
    pub fn gauge_set(&self, name: &str, label: &str) -> Arc<GaugeSet> {
        let mut g = self.lock();
        if let Some((_, _, v)) = g.gauge_sets.iter().find(|(n, _, _)| n == name) {
            return Arc::clone(v);
        }
        let v = Arc::new(GaugeSet::new());
        g.gauge_sets
            .push((name.to_string(), label.to_string(), Arc::clone(&v)));
        v
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&mut self.lock().histograms, name, Histogram::new)
    }

    /// Get or create the trace ring `name` with `capacity` slots
    /// (rounded up to a power of two) and a kind → name resolver for
    /// rendering. `capacity` and `kind_name` apply only on creation.
    pub fn ring(
        &self,
        name: &str,
        capacity: usize,
        kind_name: fn(u32) -> &'static str,
    ) -> Arc<TraceRing> {
        get_or_insert(&mut self.lock().rings, name, || {
            TraceRing::new(capacity, kind_name)
        })
    }

    /// A consistent point-in-time read of every registered metric.
    ///
    /// "Consistent" at the metric level: each counter total, gauge
    /// family, histogram and ring tail is itself read atomically /
    /// tear-free; recorders running concurrently advance the totals
    /// monotonically between snapshots.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.lock();
        MetricsSnapshot {
            counters: g
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.value()))
                .collect(),
            gauges: g
                .gauges
                .iter()
                .map(|(n, c)| (n.clone(), c.value()))
                .collect(),
            gauge_sets: g
                .gauge_sets
                .iter()
                .map(|(n, l, s)| (n.clone(), l.clone(), s.values()))
                .collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
            events: g
                .rings
                .iter()
                .map(|(n, r)| (n.clone(), r.snapshot()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.lock();
        f.debug_struct("MetricsRegistry")
            .field("counters", &g.counters.len())
            .field("gauges", &g.gauges.len())
            .field("gauge_sets", &g.gauge_sets.len())
            .field("histograms", &g.histograms.len())
            .field("rings", &g.rings.len())
            .finish()
    }
}

/// A frozen, point-in-time copy of a [`MetricsRegistry`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// `(name, total)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, label, values)` for every gauge family.
    pub gauge_sets: Vec<(String, String, Vec<u64>)>,
    /// `(name, snapshot)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `(name, oldest→newest tail)` for every trace ring.
    pub events: Vec<(String, Vec<TraceEvent>)>,
}

/// Quantiles rendered in the text exposition.
const RENDERED_QUANTILES: [(f64, &str); 4] =
    [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

impl MetricsSnapshot {
    /// The counter `name`'s total, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The gauge `name`'s value, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The gauge family `name`'s values, if registered.
    pub fn gauge_set(&self, name: &str) -> Option<&[u64]> {
        self.gauge_sets
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, v)| v.as_slice())
    }

    /// The histogram `name`'s snapshot, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The event tail of ring `name`, oldest → newest.
    pub fn ring(&self, name: &str) -> Option<&[TraceEvent]> {
        self.events
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, e)| e.as_slice())
    }

    /// Prometheus-style text exposition: counters and gauges as plain
    /// samples, gauge families with an index label, histograms as
    /// quantile samples plus `_count`/`_sum`/`_mean`, and each trace
    /// ring's tail as trailing comment lines.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        for (name, label, vs) in &self.gauge_sets {
            let _ = writeln!(out, "# TYPE {name} gauge");
            for (i, v) in vs.iter().enumerate() {
                let _ = writeln!(out, "{name}{{{label}=\"{i}\"}} {v}");
            }
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, qs) in RENDERED_QUANTILES {
                let _ = writeln!(
                    out,
                    "{name}{{quantile=\"{qs}\"}} {}",
                    h.value_at_quantile(q)
                );
            }
            let _ = writeln!(out, "{name}_count {}", h.count());
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_mean {:.1}", h.mean());
        }
        for (name, events) in &self.events {
            let _ = writeln!(out, "# ring {name} ({} events, oldest first)", events.len());
            for e in events {
                let _ = writeln!(
                    out,
                    "# {name}: +{}us {} a={} b={}",
                    e.at_us, e.name, e.a, e.b
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_get_or_create_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.add(4);
        assert_eq!(reg.counter("x").value(), 7);
        assert_eq!(reg.counter("y").value(), 0);
    }

    #[test]
    fn striped_counter_sums_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
    }

    #[test]
    fn sampler_rate_is_exact_per_stripe() {
        let s = Sampler::new(8);
        assert_eq!(s.period(), 8);
        let hits = (0..800).filter(|_| s.tick()).count();
        assert_eq!(hits, 100, "single-threaded 1-in-8 is exact");
    }

    #[test]
    fn render_text_covers_every_primitive() {
        let reg = MetricsRegistry::new();
        reg.counter("ops_total").add(5);
        reg.gauge("depth").set(-2);
        reg.gauge_set("shard_len", "shard").set_all(&[10, 20]);
        reg.histogram("lat_ns").record(50);
        let text = reg.snapshot().render_text();
        assert!(text.contains("ops_total 5"));
        assert!(text.contains("depth -2"));
        assert!(text.contains("shard_len{shard=\"0\"} 10"));
        assert!(text.contains("shard_len{shard=\"1\"} 20"));
        // Values below 64 recover exactly from their unit bucket.
        assert!(text.contains("lat_ns{quantile=\"0.99\"} 50"));
        assert!(text.contains("lat_ns_count 1"));
    }
}
